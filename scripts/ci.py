#!/usr/bin/env python
"""Staged CI runner — the single entry point behind ``scripts/check.sh``.

Stages, in order:

==============  ====================================================  ======
name             what runs                                            --fast
===============  ===================================================  ======
lint             ``scripts/lint_repro.py`` (determinism lint)         yes
tier1            ``pytest -x -q`` (the tier-1 suite)                  yes
slow             ``pytest -x -q -m slow`` (full conformance matrix)   no
coverage         ``scripts/coverage_floor.py``                        no
plan-equivalence compiled-vs-interpret execution plans: bit-identical yes
                 ledger counts and iterates over representative
                 solves (``cross_check_plan_modes``)
perf-gates       quick microkernel + service + traffic benches     yes
                 with ``--check``, then ``scripts/bench_compare.py``
                 on their output (regression vs the bench
                 trajectory, which it extends)
traffic          ``bench_traffic --quick --check`` twice: the       yes
                 bench's own p99 / rejection-rate / speedup gates,
                 plus byte-identical JSON across the two runs (the
                 seeded-traffic determinism contract)
macro-gates      ``bench_transient --quick --check`` twice: the     yes
                 end-to-end reuse-multiple gate of the transient
                 sequence workload (>= 3x over the no-reuse
                 oracle, ledger-verified, every step converged),
                 plus byte-identical JSON across the two runs
trace-gate       ``repro.trace.gate.run_gate()`` — reduction shapes   yes
                 from exported spans, both exec modes
determinism      byte-identical chrome traces across repeated         yes
                 solves, fused == per_rank ledger counts,
                 order-stable ``CostLedger.split``
===============  ===================================================  ======

Each stage reports wall seconds; in-process stages that solve under a
ledger (trace-gate, determinism) also report *modeled* seconds from
``perfmodel`` at nranks=64.  Failed stages carry a machine-readable
``reason`` code (``subprocess-failed``, ``gate-failed``,
``determinism-broken``, ``stage-exception``, ...).  The two bench-gate
stages (``perf-gates``, ``macro-gates``) are retried once on failure —
benches gate on modeled numbers but still shell out, and a transient
subprocess hiccup should not fail the pipeline; both attempts are
recorded in the summary.  A machine-readable ``ci_summary.json`` is
written next to the repo root after every run, pass or fail
(``--json`` additionally prints it to stdout).

``--changed-since <ref>`` maps the paths touched since a git ref to the
minimal stage set via :func:`stages_for_paths`: a pure-docs diff runs
lint only, a tests-only diff runs lint + tier1, a bench-only diff adds
the bench-gate stages, and anything under ``src/`` (or any path the map
does not recognize) runs the full ``--fast`` set.

    PYTHONPATH=src python scripts/ci.py            # everything
    PYTHONPATH=src python scripts/ci.py --fast     # skip slow + coverage
    PYTHONPATH=src python scripts/ci.py --stage lint --stage trace-gate
    PYTHONPATH=src python scripts/ci.py --fast --json --changed-since main
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SUMMARY = os.path.join(ROOT, "ci_summary.json")
FAST_STAGES = ("lint", "tier1", "plan-equivalence", "perf-gates",
               "traffic", "macro-gates", "trace-gate", "determinism")
ALL_STAGES = ("lint", "tier1", "slow", "coverage", "plan-equivalence",
              "perf-gates", "traffic", "macro-gates", "trace-gate",
              "determinism")
#: stages retried once on failure (shell out to bench subprocesses)
BENCH_GATE_STAGES = ("perf-gates", "macro-gates")


def stages_for_paths(paths: list[str]) -> set[str]:
    """Minimal fast-stage set for a change touching exactly ``paths``.

    Pure (no git, no filesystem) so it is unit-testable.  Unknown paths
    — and anything under ``src/`` or the CI scripts themselves — map to
    the full fast set: when in doubt, run everything.
    """
    needed: set[str] = set()
    for path in paths:
        p = path.replace(os.sep, "/")
        if (p.startswith("docs/") or p.startswith(".github/")
                or p.endswith(".md") or p.endswith(".rst")):
            needed.add("lint")
        elif p.startswith("tests/"):
            needed |= {"lint", "tier1"}
        elif p.startswith("benchmarks/") or p == "scripts/bench_compare.py":
            needed |= {"lint", "tier1", "perf-gates", "traffic",
                       "macro-gates"}
        else:  # src/, scripts/ci.py, config files, anything unmapped
            return set(FAST_STAGES)
    return needed or set(FAST_STAGES)


def changed_paths(ref: str) -> list[str]:
    """Paths touched between ``ref`` and the working tree (incl. dirty)."""
    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        cwd=ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"ci: git diff --name-only {ref} failed: "
                         f"{proc.stderr.strip()}")
    return [line for line in proc.stdout.splitlines() if line.strip()]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    return env


def _run(cmd: list[str]) -> dict:
    """Run a subprocess stage; stream output through."""
    proc = subprocess.run(cmd, env=_env(), cwd=ROOT)
    out = {"ok": proc.returncode == 0, "exit": proc.returncode,
           "command": " ".join(os.path.relpath(c, ROOT)
                               if os.path.isabs(c) else c for c in cmd)}
    if not out["ok"]:
        out["reason"] = "subprocess-failed"
    return out


# ----------------------------------------------------------------------
def stage_lint() -> dict:
    return _run([sys.executable, os.path.join(ROOT, "scripts",
                                              "lint_repro.py")])


def stage_tier1() -> dict:
    return _run([sys.executable, "-m", "pytest", "-x", "-q"])


def stage_slow() -> dict:
    return _run([sys.executable, "-m", "pytest", "-x", "-q", "-m", "slow"])


def stage_coverage() -> dict:
    return _run([sys.executable, os.path.join(ROOT, "scripts",
                                              "coverage_floor.py")])


def stage_plan_equivalence() -> dict:
    """Compiled plans must be bit-identical twins of the interpreter.

    Runs one representative solve per compiled surface — the block cycle
    (bgmres), the recycled block cycle (gcrodr p>1), the pseudo-block
    column path (gmres) and the GMRES-DR arena — under both
    ``-hpddm_plan`` modes and asserts identical ``CostLedger.counts()``
    and bitwise-equal solutions via ``cross_check_plan_modes`` (which
    raises on any divergence).
    """
    import numpy as np
    import scipy.sparse as sp

    from repro import api
    from repro.util import ledger
    from repro.util.ledger import CostLedger
    from repro.util.options import Options
    from repro.verify import cross_check_plan_modes

    n = 200
    rng = np.random.default_rng(17)
    a = sp.diags([-1.4 * np.ones(n - 1), 4.0 * np.ones(n),
                  -0.6 * np.ones(n - 1)], [-1, 0, 1]).tocsr()
    m = sp.diags(1.0 / a.diagonal()).tocsr()
    workloads = {
        "bgmres/cgs2_1r": (Options(krylov_method="bgmres",
                                   orthogonalization="cgs2_1r",
                                   gmres_restart=20), 3),
        "gcrodr/sketched": (Options(krylov_method="gcrodr", recycle=5,
                                    orthogonalization="sketched",
                                    gmres_restart=20), 3),
        "gmres/cholqr2": (Options(krylov_method="gmres",
                                  orthogonalization="cholqr2",
                                  gmres_restart=20), 2),
        "gmresdr/cgs2_1r": (Options(krylov_method="gmresdr", recycle=5,
                                    orthogonalization="cgs2_1r",
                                    gmres_restart=20), 1),
    }
    outer = CostLedger()
    for what, (opts, p) in workloads.items():
        b = np.random.default_rng(3).standard_normal((n, p))

        def run(plan, opts=opts, b=b):
            res = api.solve(a, b, m, options=opts.replace(plan=plan))
            outer.merge(ledger.current())
            return res

        cross_check_plan_modes(run, extract=lambda r: np.asarray(r.x),
                               what=what)
        print(f"plan-equivalence: {what}: counts + iterates bit-identical")
    return {"ok": True, "modeled_seconds": _modeled_seconds(outer)}


def stage_perf_gates() -> dict:
    """Quick benches with their built-in ``--check`` gates, then the
    trajectory comparison reusing the same JSON (no double bench runs)."""
    with tempfile.TemporaryDirectory() as tmp:
        k_json = os.path.join(tmp, "kernels.json")
        s_json = os.path.join(tmp, "service.json")
        t_json = os.path.join(tmp, "traffic.json")
        f_json = os.path.join(tmp, "shifted.json")
        n_json = os.path.join(tmp, "transient.json")
        for script, out in (("bench_micro_kernels.py", k_json),
                            ("bench_service.py", s_json),
                            ("bench_traffic.py", t_json),
                            ("bench_shifted.py", f_json),
                            ("bench_transient.py", n_json)):
            res = _run([sys.executable,
                        os.path.join(ROOT, "benchmarks", script),
                        "--quick", "--check", "--out", out])
            if not res["ok"]:
                res["reason"] = "gate-failed"
                return res
        current = ["--current-kernels", k_json, "--current-service", s_json,
                   "--current-traffic", t_json, "--current-shifted", f_json,
                   "--current-transient", n_json]
        res = _run([sys.executable,
                    os.path.join(ROOT, "scripts", "bench_compare.py"),
                    "--self-test"] + current)
        if not res["ok"]:
            return res
        res = _run([sys.executable,
                    os.path.join(ROOT, "scripts", "bench_compare.py")]
                   + current)
        if not res["ok"]:
            res["reason"] = "trajectory-regression"
        return res


def stage_traffic() -> dict:
    """Seeded-traffic gates + byte-determinism of the replay harness.

    Runs the quick (10^3-request) traffic bench twice: each run enforces
    the bench's own gates (async >= 1.5x sync modeled throughput, p99
    tail-latency ceiling, bounded burst rejection rate) and the two JSON
    payloads must be byte-identical — two invocations of one seeded
    config may not differ anywhere, reports and metric snapshots
    included.
    """
    with tempfile.TemporaryDirectory() as tmp:
        paths = [os.path.join(tmp, f"traffic_{i}.json") for i in (1, 2)]
        for path in paths:
            res = _run([sys.executable,
                        os.path.join(ROOT, "benchmarks", "bench_traffic.py"),
                        "--quick", "--check", "--out", path])
            if not res["ok"]:
                return res
        with open(paths[0], "rb") as fh:
            first = fh.read()
        with open(paths[1], "rb") as fh:
            second = fh.read()
        if first != second:
            return {"ok": False, "reason": "determinism-broken",
                    "error": "two seeded traffic runs produced different "
                             "payloads (determinism contract broken)"}
        print("traffic: gates passed twice, payloads byte-identical "
              f"({len(first)} bytes)")
        return {"ok": True}


def stage_macro_gates() -> dict:
    """Transient-sequence macro gate + byte-determinism of its report.

    Runs the quick transient bench twice: each run enforces the bench's
    own gates (end-to-end reuse multiple >= 3x over the no-reuse oracle,
    every step of every rung converged, per-step cost shares merging
    bit-for-bit to the batch ledgers, sync/async iteration parity) and
    the two JSON payloads must be byte-identical.
    """
    with tempfile.TemporaryDirectory() as tmp:
        paths = [os.path.join(tmp, f"transient_{i}.json") for i in (1, 2)]
        for path in paths:
            res = _run([sys.executable,
                        os.path.join(ROOT, "benchmarks",
                                     "bench_transient.py"),
                        "--quick", "--check", "--out", path])
            if not res["ok"]:
                res["reason"] = "gate-failed"
                return res
        with open(paths[0], "rb") as fh:
            first = fh.read()
        with open(paths[1], "rb") as fh:
            second = fh.read()
        if first != second:
            return {"ok": False, "reason": "determinism-broken",
                    "error": "two transient macro-bench runs produced "
                             "different payloads (the sequence workload "
                             "must be byte-deterministic)"}
        print("macro-gates: reuse-multiple gate passed twice, payloads "
              f"byte-identical ({len(first)} bytes)")
        return {"ok": True}


def _modeled_seconds(led) -> float:
    from repro.perfmodel import modeled_time
    return modeled_time(led, 64).total


def stage_trace_gate() -> dict:
    from repro.trace.gate import GateError, run_gate
    from repro.util import ledger
    outer = ledger.CostLedger()
    try:
        with ledger.install(outer):
            report = run_gate()
    except GateError as exc:
        print(f"trace-gate FAILED: {exc}", file=sys.stderr)
        return {"ok": False, "error": str(exc)}
    shapes = report["reductions_per_cycle"]
    shifted = report["fused"]["shifted"]["bgmres"]
    print(f"trace-gate: gmres {shapes['gmres']} reductions/cycle, "
          f"gcrodr {shapes['gcrodr']} = 2(m-k); cgs2_1r <= 2/step; "
          f"shifted k=8 family at {shifted['headline_ratio']:.2f}x the "
          f"reductions of k=1; attribution conserved in both exec modes")
    return {"ok": True, "report": report,
            "modeled_seconds": _modeled_seconds(outer)}


def stage_determinism() -> dict:
    """Same inputs => byte-identical exports and bit-identical counts."""
    import numpy as np
    import scipy.sparse as sp

    from repro import api
    from repro.trace import chrome_trace_json, counts_signature
    from repro.trace.tracer import Tracer, install
    from repro.util import ledger
    from repro.util.ledger import CostLedger, Kernel
    from repro.util.options import Options

    rs = np.random.RandomState(99)
    a = sp.random(300, 300, density=0.02, random_state=rs, format="csr")
    a = a + sp.eye(300, format="csr") * 4.0
    b = np.random.default_rng(99).standard_normal(300)
    outer = CostLedger()

    def traced_solve(mode: str) -> tuple[tuple, str]:
        opts = Options(krylov_method="gcrodr", recycle=5, tol=1e-10,
                       exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            api.solve(a, b, options=opts)
        outer.merge(led)
        return counts_signature(led), chrome_trace_json(tr)

    sig1, trace1 = traced_solve("fused")
    sig2, trace2 = traced_solve("fused")
    sig3, trace3 = traced_solve("per_rank")
    if trace1 != trace2:
        return {"ok": False, "error": "chrome trace differs between "
                                      "identical fused runs"}
    if sig1 != sig2:
        return {"ok": False, "error": "ledger counts differ between "
                                      "identical fused runs"}
    if sig1 != sig3:
        return {"ok": False, "error": "fused and per_rank ledger counts "
                                      "diverge"}
    if trace1 != trace3:
        return {"ok": False, "error": "fused and per_rank chrome traces "
                                      "diverge (modeled times must match)"}

    # CostLedger.split share-rounding must be order-stable
    led = CostLedger()
    led.reduction(nbytes=123, count=7)
    led.p2p(messages=5, nbytes=77)
    for kern in (Kernel.SPMV, Kernel.BLAS3, Kernel.QR):
        led.flop(kern, 1e7 / 3)
    for name in ("alpha", "beta", "gamma"):
        led.event(name, 11)
    shares = [led.split(3) for _ in range(5)]
    first = [tuple(s.counts()[:4]) + (tuple(sorted(s.flops.items())),
                                      tuple(sorted(s.calls.items())))
             for s in shares[0]]
    for rep in shares[1:]:
        again = [tuple(s.counts()[:4]) + (tuple(sorted(s.flops.items())),
                                          tuple(sorted(s.calls.items())))
                 for s in rep]
        if again != first:
            return {"ok": False,
                    "error": "CostLedger.split is not order-stable"}
    print("determinism: repeated solves byte-identical, fused == per_rank, "
          "split order-stable")
    return {"ok": True, "modeled_seconds": _modeled_seconds(outer)}


STAGES = {
    "lint": stage_lint,
    "tier1": stage_tier1,
    "slow": stage_slow,
    "coverage": stage_coverage,
    "plan-equivalence": stage_plan_equivalence,
    "perf-gates": stage_perf_gates,
    "traffic": stage_traffic,
    "macro-gates": stage_macro_gates,
    "trace-gate": stage_trace_gate,
    "determinism": stage_determinism,
}
assert tuple(STAGES) == ALL_STAGES


def _attempt(name: str) -> dict:
    """Run one stage attempt; normalize to a summary entry."""
    t0 = time.perf_counter()
    try:
        result = STAGES[name]()
    except Exception as exc:  # a stage crashing is a stage failing
        result = {"ok": False, "reason": "stage-exception",
                  "error": f"{type(exc).__name__}: {exc}"}
    wall = time.perf_counter() - t0
    entry = {"name": name, "ok": bool(result.pop("ok")),
             "wall_seconds": round(wall, 3),
             "modeled_seconds": result.pop("modeled_seconds", None)}
    if not entry["ok"]:
        entry["reason"] = result.pop("reason", "stage-failed")
    entry.update({k: v for k, v in result.items()
                  if k not in ("report", "reason")})
    return entry


def run_stage(name: str) -> dict:
    """Run a stage, retrying the bench-gate stages once on failure.

    The retry exists for subprocess flakiness (a bench shelling out),
    not for nondeterministic gates — both attempts are recorded so a
    retried pass is visible in ``ci_summary.json``, never silent.
    """
    entry = _attempt(name)
    if entry["ok"] or name not in BENCH_GATE_STAGES:
        return entry
    print(f"-- {name}: attempt 1 failed "
          f"({entry.get('reason')}); retrying once")
    retry = _attempt(name)
    retry["attempts"] = [entry, dict(retry)]
    retry["retried"] = True
    return retry


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fast", action="store_true",
                    help=f"run only {', '.join(FAST_STAGES)}")
    ap.add_argument("--stage", action="append", choices=ALL_STAGES,
                    help="run only the named stage(s); repeatable")
    ap.add_argument("--changed-since", metavar="REF", default=None,
                    help="run only the stages the paths touched since "
                         "REF need (pure-docs diff => lint only)")
    ap.add_argument("--json", action="store_true",
                    help="print the ci_summary.json payload to stdout")
    ns = ap.parse_args(argv)

    changed = None
    if ns.stage:
        selected = [s for s in ALL_STAGES if s in set(ns.stage)]
    elif ns.changed_since:
        changed = changed_paths(ns.changed_since)
        needed = stages_for_paths(changed)
        selected = [s for s in FAST_STAGES if s in needed]
        print(f"ci: {len(changed)} path(s) changed since "
              f"{ns.changed_since} -> stages: {', '.join(selected)}")
    elif ns.fast:
        selected = list(FAST_STAGES)
    else:
        selected = list(ALL_STAGES)

    src = os.path.join(ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)

    summary = {"selected": selected, "stages": [], "passed": True}
    if changed is not None:
        summary["changed_since"] = ns.changed_since
        summary["changed_paths"] = changed
    for name in selected:
        print(f"\n== stage: {name} ==")
        entry = run_stage(name)
        summary["stages"].append(entry)
        status = "ok" if entry["ok"] else f"FAILED ({entry.get('reason')})"
        if entry.get("retried"):
            status += " [after retry]"
        modeled = (f", modeled {entry['modeled_seconds']:.3e}s"
                   if entry["modeled_seconds"] is not None else "")
        print(f"-- {name}: {status} ({entry['wall_seconds']:.1f}s "
              f"wall{modeled})")
        if not entry["ok"]:
            summary["passed"] = False
            break  # fail fast; later stages assume earlier ones held

    with open(SUMMARY, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=1)
        fh.write("\n")
    if ns.json:
        print(json.dumps(summary, indent=1))
    print(f"\nci: {'all stages passed' if summary['passed'] else 'FAILED'}"
          f" — summary in {os.path.relpath(SUMMARY, ROOT)}")
    return 0 if summary["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
