#!/usr/bin/env python
"""Statement-coverage floors for selected packages — stdlib only.

Runs the tier-1 pytest suite in-process under a ``sys.settrace`` hook
that records executed lines *only* for frames whose code lives in one of
the target packages (the global tracer returns ``None`` for every other
frame, so the overhead stays bounded).  Executable lines are enumerated
from the compiled code objects (``co_lines``), minus lines marked
``pragma: no cover``.

Each target carries its own floor; exit status is nonzero if any package
drops below its floor.  Raise the floors when you add tests; never lower
them to merge.

    PYTHONPATH=src python scripts/coverage_floor.py [pytest args]
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import types

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: package directory (or single module) -> minimum total statement
#: coverage (percent).  A ``.py`` entry floors just that file — used for
#: modules whose floor is tighter than (or tracked separately from)
#: their package's.
FLOORS = {
    os.path.join("src", "repro", "krylov"): 90.0,
    os.path.join("src", "repro", "krylov", "shifted.py"): 85.0,
    os.path.join("src", "repro", "service"): 88.0,
    os.path.join("src", "repro", "trace"): 85.0,
}

TARGETS = {os.path.join(ROOT, rel) + ("" if rel.endswith(".py") else os.sep):
           floor for rel, floor in FLOORS.items()}

_executed: dict[str, set[int]] = {}


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not any(filename.startswith(t) for t in TARGETS):
        return None  # no local trace: other modules run at full speed
    lines = _executed.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "call":
        lines.add(frame.f_lineno)
        return local
    return None


def _code_lines(co: types.CodeType) -> set[int]:
    lines = {ln for (_, _, ln) in co.co_lines() if ln}
    for const in co.co_consts:
        if isinstance(const, types.CodeType):
            lines |= _code_lines(const)
    return lines


def _executable_lines(path: str) -> set[int]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines = _code_lines(compile(source, path, "exec"))
    for i, text in enumerate(source.splitlines(), start=1):
        if "pragma: no cover" in text:
            lines.discard(i)
    return lines


def _report_target(target: str, floor: float) -> bool:
    """Print the per-file table for one package; True if it meets its floor."""
    total_exec = total_hit = 0
    rows = []
    if os.path.isfile(target):
        paths = [target]
    else:
        paths = [os.path.join(dirpath, name)
                 for dirpath, _, names in os.walk(target)
                 for name in sorted(names) if name.endswith(".py")]
    for path in paths:
        executable = _executable_lines(path)
        hit = _executed.get(path, set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((os.path.relpath(path, ROOT), len(hit),
                     len(executable), pct))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':<{width}}  covered  stmts    pct")
    for rel, nhit, nexe, pct in rows:
        print(f"{rel:<{width}}  {nhit:7d}  {nexe:5d}  {pct:5.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{width}}  {total_hit:7d}  {total_exec:5d}  {total_pct:5.1f}%")

    rel = os.path.relpath(target, ROOT)
    if total_pct < floor:
        print(f"coverage_floor: {total_pct:.1f}% < floor {floor:.1f}% "
              f"on {rel}", file=sys.stderr)
        return False
    print(f"coverage_floor: {total_pct:.1f}% >= floor {floor:.1f}% on {rel}")
    return True


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("pytest_args", nargs="*",
                    help="extra args forwarded to pytest (default: tests)")
    ns = ap.parse_args(argv)

    src = os.path.join(ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    import pytest  # after sys.path setup, before tracing

    sys.settrace(_tracer)
    threading.settrace(_tracer)
    try:
        rc = pytest.main(["-x"] + (ns.pytest_args or [os.path.join(ROOT, "tests")]))
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"coverage_floor: pytest failed (exit {rc})", file=sys.stderr)
        return int(rc)

    ok = True
    for target, floor in TARGETS.items():
        ok &= _report_target(target, floor)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
