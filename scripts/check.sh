#!/usr/bin/env bash
# Thin wrapper around the staged CI runner — see scripts/ci.py for the
# stage table.  Kept so existing entry points and docs stay valid.
#
#   ./scripts/check.sh            # every stage
#   ./scripts/check.sh --fast     # lint + tier1 + perf/trace/determinism gates
#   ./scripts/check.sh --stage X  # any ci.py stage selection
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python scripts/ci.py "$@"
