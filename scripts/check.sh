#!/usr/bin/env bash
# Repo check: tier-1 tests + the fused-engine perf gate.
#
#   ./scripts/check.sh
#
# Fails if any tier-1 test fails, or if the fused execution engine is
# slower than the per-rank oracle at nranks=64 (bench_micro_kernels
# --quick --check).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== perf gate: fused vs per-rank microkernels =="
python benchmarks/bench_micro_kernels.py --quick --check

echo
echo "all checks passed"
