#!/usr/bin/env bash
# Repo check: tier-1 tests + slow matrix + coverage floor + perf gate.
#
#   ./scripts/check.sh            # everything
#   ./scripts/check.sh --fast     # tier-1 + perf gate only
#
# Fails if any test fails, if statement coverage of src/repro/krylov/
# or src/repro/service/ drops below the floors in
# scripts/coverage_floor.py, if the fused execution engine is slower
# than the per-rank oracle at nranks=64 (bench_micro_kernels --quick
# --check), if the low-sync orthogonalization engine misses its budget
# (cgs2_1r: <= 2 reductions/step and >= 1.5x over mgs on the 40-block
# p=8 basis at equal orthogonality; same --quick --check run), or if
# coalesced service solves are less than 2x cheaper per request than
# sequential ones (bench_service --quick --check).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1 tests =="
python -m pytest -x -q

if [[ $fast -eq 0 ]]; then
  echo
  echo "== slow tier: full conformance matrix =="
  python -m pytest -x -q -m slow

  echo
  echo "== coverage floors: src/repro/krylov/, src/repro/service/ =="
  python scripts/coverage_floor.py
fi

echo
echo "== perf gate: fused vs per-rank microkernels =="
python benchmarks/bench_micro_kernels.py --quick --check

echo
echo "== perf gate: solve service coalescing + setup cache =="
python benchmarks/bench_service.py --quick --check

echo
echo "all checks passed"
