#!/usr/bin/env python
"""Bench-trajectory regression gate.

Re-runs the five quick perf benches (``bench_micro_kernels --quick``,
``bench_service --quick``, ``bench_traffic --quick``,
``bench_shifted --quick``, ``bench_transient --quick``), reduces them to
a small set of named metrics,
compares against the most recent same-config entry of
``benchmarks/results/BENCH_trajectory.json`` (bootstrapping from the
checked-in full-config ``BENCH_*.json`` gates when the trajectory is
empty), exits nonzero on regression, and appends a dated entry so the
trajectory grows one point per CI run.

Metric kinds and their tolerances:

* ``ratio`` — wall-clock-derived speedups (fused over per-rank at
  nranks=64, CGS2-1R over MGS, ...).  Noisy run-to-run, so the gate only
  requires ``current >= previous / RATIO_TOLERANCE`` (default 1.6x): a
  genuine 2x slowdown is caught, scheduler jitter is not.
* ``modeled`` — derived from ledger counts through the performance model
  (service amortized speedup).  Deterministic for a fixed config; compared
  to 1e-6 relative.
* ``exact`` — integer invariants (reductions per orthogonalization step,
  setup builds per coalesced batch).  Compared exactly.

``--self-test`` injects a synthetic 2x slowdown into the current metrics
and verifies the comparison logic rejects it (the gate that gates the
gate).

    PYTHONPATH=src python scripts/bench_compare.py [--self-test] ...
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "benchmarks", "results")
TRAJECTORY = os.path.join(RESULTS, "BENCH_trajectory.json")

RATIO_TOLERANCE = 1.6
MODELED_RTOL = 1e-6

#: kernels whose fused-over-per-rank speedup at nranks=64 is tracked
TRACKED_KERNELS = ("spmm", "col_dots", "cholqr")


def run_quick_benches(tmpdir: str) -> tuple[dict, dict, dict, dict]:
    """Run the quick benches with ``--check`` and return their JSON."""
    out = {}
    for script, name in (("bench_micro_kernels.py", "kernels"),
                         ("bench_service.py", "service"),
                         ("bench_traffic.py", "traffic"),
                         ("bench_shifted.py", "shifted"),
                         ("bench_transient.py", "transient")):
        path = os.path.join(tmpdir, f"{name}.json")
        cmd = [sys.executable, os.path.join(ROOT, "benchmarks", script),
               "--quick", "--check", "--out", path]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"bench_compare: {script} --check failed "
                             f"(exit {proc.returncode})")
        with open(path, encoding="utf-8") as fh:
            out[name] = json.load(fh)
    return (out["kernels"], out["service"], out["traffic"], out["shifted"],
            out["transient"])


def extract_metrics(kernels: dict, service: dict,
                    traffic: dict | None = None,
                    shifted: dict | None = None,
                    transient: dict | None = None) -> dict[str, dict]:
    """Reduce raw bench JSON to ``{metric: {value, kind}}``."""
    m: dict[str, dict] = {}
    speed = kernels["speedup_fused_over_per_rank"]
    for kern in TRACKED_KERNELS:
        m[f"kernel_speedup64_{kern}"] = {
            "value": float(speed[kern]["64"]), "kind": "ratio"}
    schemes = kernels["orthogonalization"]["schemes"]
    m["ortho_cgs2_1r_reductions_per_step"] = {
        "value": int(schemes["cgs2_1r"]["reductions_per_step_max"]),
        "kind": "exact"}
    m["ortho_cgs2_1r_speedup_over_mgs"] = {
        "value": float(schemes["cgs2_1r"]["speedup_over_mgs"]),
        "kind": "ratio"}
    level = kernels["level_schedule"]["speedup_frontier_over_reference"]
    m["triangular_block_diag_speedup"] = {
        "value": float(level["block_diag"]), "kind": "ratio"}
    plan = kernels["plan"]
    m["plan_compiled_speedup"] = {
        "value": float(plan["speedup_compiled"]), "kind": "ratio"}
    m["plan_oracle_identical"] = {
        "value": int(plan["counts_identical"] and plan["iterates_identical"]),
        "kind": "exact"}
    m["plan_optimizer_fused"] = {
        "value": int(plan["optimizer"]["fused"]), "kind": "exact"}
    rec = kernels["recycling"]
    # ledger-derived through the performance model: deterministic for a
    # fixed config, like the service metrics
    m["recycle_modeled_speedup_sketched"] = {
        "value": float(rec["modeled_speedup_sketched"]), "kind": "modeled"}
    m["recycle_reductions_per_cycle_sketched"] = {
        "value": float(rec["sketched"]["reductions_per_cycle"]),
        "kind": "exact"}
    m["recycle_solve_overhead_per_cycle"] = {
        "value": float(rec["solve"]["sketched"]["overhead_per_cycle"]),
        "kind": "modeled"}
    m["recycle_solve_convergence_equal"] = {
        "value": int(rec["solve"]["full"]["converged"]
                     == rec["solve"]["sketched"]["converged"]),
        "kind": "exact"}
    m["service_amortized_speedup"] = {
        "value": float(service["amortized_speedup"]), "kind": "modeled"}
    m["service_setup_builds_coalesced"] = {
        "value": int(service["coalesced"]["setup_builds"]), "kind": "exact"}
    if traffic is not None:
        # everything here is ledger-derived modeled time: deterministic
        # for a fixed config, so tracked at 1e-6 relative
        m["traffic_async_speedup"] = {
            "value": float(traffic["throughput_speedup_async_over_sync"]),
            "kind": "modeled"}
        m["traffic_async_p99"] = {
            "value": float(traffic["async"]["latency"]["p99"]),
            "kind": "modeled"}
        m["traffic_burst_rejection_rate"] = {
            "value": float(traffic["burst_bounded_queue"]["rejection_rate"]),
            "kind": "modeled"}
        m["traffic_cache_hit_rate"] = {
            "value": float(traffic["async"]["cache"]["hit_rate"]),
            "kind": "modeled"}
        m["traffic_all_converged"] = {
            "value": int(traffic["sync"]["all_converged"]
                         and traffic["async"]["all_converged"]),
            "kind": "exact"}
    if shifted is not None:
        # ledger counts + perfmodel at fixed config: deterministic
        for key, short in (("maxwell_frequency_sweep", "maxwell"),
                           ("tikhonov_lambda_sweep", "tikhonov")):
            work = shifted[key]
            m[f"shifted_{short}_modeled_speedup"] = {
                "value": float(work["modeled_speedup"]), "kind": "modeled"}
            m[f"shifted_{short}_family_over_single"] = {
                "value": float(work["reductions"]["family_over_single"]),
                "kind": "modeled"}
        m["shifted_all_converged"] = {
            "value": int(shifted["gate"]["all_converged"]), "kind": "exact"}
    if transient is not None:
        # ledger counts + perfmodel at fixed config: deterministic
        m["transient_reuse_multiple"] = {
            "value": float(transient["reuse_multiple"]), "kind": "modeled"}
        for rung in ("no_reuse", "cache_only", "cache_recycle",
                     "cache_recycle_shifted"):
            m[f"transient_{rung}_time_per_sim_second"] = {
                "value": float(transient["heat_ladder"][rung]
                               ["time_per_simulated_second"]),
                "kind": "modeled"}
        m["transient_all_converged"] = {
            "value": int(transient["gate"]["all_converged"]),
            "kind": "exact"}
        m["transient_ledger_verified"] = {
            "value": int(transient["gate"]["ledger_verified"]),
            "kind": "exact"}
        m["transient_parity_identical"] = {
            "value": int(transient["gate"]["parity_iterations_identical"]),
            "kind": "exact"}
    return m


def compare(current: dict[str, dict], baseline: dict[str, dict],
            *, label: str) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    failures = []
    for name, cur in sorted(current.items()):
        if name not in baseline:
            continue  # metric added after the baseline entry
        base_v, cur_v = baseline[name]["value"], cur["value"]
        kind = cur["kind"]
        if kind == "ratio":
            floor = base_v / RATIO_TOLERANCE
            if cur_v < floor:
                failures.append(
                    f"{name}: {cur_v:.3f} < {floor:.3f} "
                    f"(= {label} {base_v:.3f} / {RATIO_TOLERANCE}x tolerance)")
        elif kind == "modeled":
            if abs(cur_v - base_v) > MODELED_RTOL * max(abs(base_v), 1.0):
                failures.append(
                    f"{name}: {cur_v!r} != {label} {base_v!r} "
                    f"(modeled metric must be deterministic)")
        elif kind == "exact":
            if cur_v != base_v:
                failures.append(f"{name}: {cur_v!r} != {label} {base_v!r}")
        else:  # pragma: no cover - metric table is static
            failures.append(f"{name}: unknown kind {kind!r}")
    return failures


def bootstrap_floors(current: dict[str, dict]) -> list[str]:
    """First run ever: check the config-independent absolute gates that the
    full-config ``BENCH_*.json`` baselines also enforce."""
    failures = []
    if current["ortho_cgs2_1r_reductions_per_step"]["value"] != 2:
        failures.append("ortho_cgs2_1r_reductions_per_step != 2")
    if current["ortho_cgs2_1r_speedup_over_mgs"]["value"] < 1.5:
        failures.append("ortho_cgs2_1r_speedup_over_mgs < 1.5")
    if current["service_amortized_speedup"]["value"] < 2.0:
        failures.append("service_amortized_speedup < 2.0")
    if current["service_setup_builds_coalesced"]["value"] != 1:
        failures.append("service_setup_builds_coalesced != 1")
    for kern in TRACKED_KERNELS:
        if current[f"kernel_speedup64_{kern}"]["value"] < 1.0:
            failures.append(f"kernel_speedup64_{kern} < 1.0 "
                            f"(fused slower than per-rank oracle)")
    if current["plan_oracle_identical"]["value"] != 1:
        failures.append("plan_oracle_identical != 1 (compiled plan broke "
                        "the bit-identity contract)")
    if current["plan_compiled_speedup"]["value"] < 1.0:
        failures.append("plan_compiled_speedup < 1.0 "
                        "(compiled slower than the interpreter)")
    if current["recycle_modeled_speedup_sketched"]["value"] < 1.5:
        failures.append("recycle_modeled_speedup_sketched < 1.5")
    if current["recycle_reductions_per_cycle_sketched"]["value"] > 1.0:
        failures.append("recycle_reductions_per_cycle_sketched > 1 "
                        "(sketched maintenance must be O(1) communication)")
    if current["recycle_solve_overhead_per_cycle"]["value"] > 8.0:
        failures.append("recycle_solve_overhead_per_cycle > 8 "
                        "(per-cycle reduction overhead must stay O(1))")
    if current["recycle_solve_convergence_equal"]["value"] != 1:
        failures.append("recycle_solve_convergence_equal != 1 "
                        "(full and sketched spaces disagree on convergence)")
    if "traffic_async_speedup" in current:
        if current["traffic_async_speedup"]["value"] < 1.5:
            failures.append("traffic_async_speedup < 1.5")
        if current["traffic_all_converged"]["value"] != 1:
            failures.append("traffic_all_converged != 1")
        rej = current["traffic_burst_rejection_rate"]["value"]
        if not 0.0 < rej <= 0.5:
            failures.append(f"traffic_burst_rejection_rate {rej} "
                            f"outside (0, 0.5]")
    if "shifted_all_converged" in current:
        for short in ("maxwell", "tikhonov"):
            if current[f"shifted_{short}_modeled_speedup"]["value"] < 3.0:
                failures.append(f"shifted_{short}_modeled_speedup < 3.0 "
                                f"(shared basis must beat sequential)")
            ratio = current[f"shifted_{short}_family_over_single"]["value"]
            if ratio > 1.25:
                failures.append(f"shifted_{short}_family_over_single "
                                f"{ratio} > 1.25 (k-shift family must cost "
                                f"about one solve in reductions)")
        if current["shifted_all_converged"]["value"] != 1:
            failures.append("shifted_all_converged != 1")
    if "transient_reuse_multiple" in current:
        if current["transient_reuse_multiple"]["value"] < 3.0:
            failures.append("transient_reuse_multiple < 3.0 (end-to-end "
                            "engine must beat the no-reuse oracle 3x)")
        for name in ("transient_all_converged", "transient_ledger_verified",
                     "transient_parity_identical"):
            if current[name]["value"] != 1:
                failures.append(f"{name} != 1")
    return failures


def load_trajectory() -> list[dict]:
    if not os.path.exists(TRAJECTORY):
        return []
    with open(TRAJECTORY, encoding="utf-8") as fh:
        return json.load(fh)


def self_test(current: dict[str, dict]) -> int:
    """Inject a 2x slowdown and require the comparator to catch it."""
    degraded = json.loads(json.dumps(current))
    for name, entry in degraded.items():
        if entry["kind"] == "ratio":
            entry["value"] /= 2.0          # fused path got 2x slower
        elif entry["kind"] == "modeled":
            entry["value"] /= 2.0          # coalescing stopped amortizing
    failures = compare(degraded, current, label="pre-slowdown")
    ratio_hits = [f for f in failures if "tolerance" in f]
    if not ratio_hits:
        print("bench_compare --self-test: injected 2x slowdown was NOT "
              "caught", file=sys.stderr)
        return 1
    print(f"bench_compare --self-test: injected 2x slowdown caught "
          f"({len(failures)} metric(s) flagged):")
    for f in failures:
        print(f"  {f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current-kernels", type=str, default=None,
                    help="reuse an existing quick bench_micro_kernels JSON "
                         "instead of re-running")
    ap.add_argument("--current-service", type=str, default=None,
                    help="reuse an existing quick bench_service JSON")
    ap.add_argument("--current-traffic", type=str, default=None,
                    help="reuse an existing quick bench_traffic JSON")
    ap.add_argument("--current-shifted", type=str, default=None,
                    help="reuse an existing quick bench_shifted JSON")
    ap.add_argument("--current-transient", type=str, default=None,
                    help="reuse an existing quick bench_transient JSON")
    ap.add_argument("--no-append", action="store_true",
                    help="compare only; do not extend the trajectory")
    ap.add_argument("--self-test", action="store_true",
                    help="verify an injected 2x slowdown is caught, then exit")
    ns = ap.parse_args(argv)

    if ns.current_kernels and ns.current_service:
        with open(ns.current_kernels, encoding="utf-8") as fh:
            kernels = json.load(fh)
        with open(ns.current_service, encoding="utf-8") as fh:
            service = json.load(fh)
        traffic = None
        if ns.current_traffic:
            with open(ns.current_traffic, encoding="utf-8") as fh:
                traffic = json.load(fh)
        shifted = None
        if ns.current_shifted:
            with open(ns.current_shifted, encoding="utf-8") as fh:
                shifted = json.load(fh)
        transient = None
        if ns.current_transient:
            with open(ns.current_transient, encoding="utf-8") as fh:
                transient = json.load(fh)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            (kernels, service, traffic, shifted,
             transient) = run_quick_benches(tmp)
    current = extract_metrics(kernels, service, traffic, shifted, transient)

    if ns.self_test:
        return self_test(current)

    trajectory = load_trajectory()
    same_config = [e for e in trajectory if e.get("config") == "quick"]
    if same_config:
        baseline = same_config[-1]["metrics"]
        failures = compare(current, baseline,
                           label=f"trajectory[{same_config[-1]['date']}]")
        mode = f"vs trajectory entry {same_config[-1]['date']}"
    else:
        failures = bootstrap_floors(current)
        mode = "bootstrap (absolute floors; trajectory was empty)"

    print(f"bench_compare: {mode}")
    for name, entry in sorted(current.items()):
        print(f"  {name:<38} {entry['value']:>12.4f}  [{entry['kind']}]")
    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1

    if not ns.no_append:
        trajectory.append({
            "date": time.strftime("%Y-%m-%d"),
            "config": "quick",
            "metrics": current,
            "compared_against": mode,
        })
        with open(TRAJECTORY, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"bench_compare: appended entry #{len(trajectory)} to "
              f"{os.path.relpath(TRAJECTORY, ROOT)}")
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
