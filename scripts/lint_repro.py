#!/usr/bin/env python
"""Repo-specific determinism lint — stdlib ``ast`` only, no new deps.

Three rule families, each guarding an invariant the test suite and the
trace/bench gates rely on:

``unseeded-random``
    ``np.random.<legacy>`` global-state draws, or ``default_rng()`` /
    ``RandomState()`` called without a seed.  Everything stochastic must
    flow from an explicit seed (tests get theirs from ``conftest``'s
    ``make_rng``/``rng`` fixture) or runs stop being reproducible.

``wall-clock``
    ``time.time`` / ``perf_counter`` / ``monotonic`` / ``datetime.now``
    and friends outside ``src/repro/util/ledger.py`` (the single
    sanctioned clock reader — see the "Determinism invariant" note on
    :class:`CostLedger`), ``benchmarks/`` and ``scripts/``.  Wall clock
    in library code breaks determinism and makes trace replay
    meaningless, since every exported span time is *modeled*.

``distla-ledger``
    functions in ``src/repro/distla/`` that perform array math
    (``@``, ``np.dot``, ``np.einsum``, ``scipy`` spmv, ...) without any
    ledger charge in the same function.  Distributed-array ops are the
    costs the paper counts; silent ones undermine every gate downstream.

``plan-ledger``
    direct ledger-charging calls (``.flop`` / ``.reduction`` / ``.p2p``
    / ``.event``) anywhere in ``src/repro/plan/`` outside ``ir.py``.
    Plan-node bodies must charge exclusively through their pre-bound
    :class:`NodeCost` specs (built from the ``CostTable`` at lowering
    time) so the optimizer's charge-conservation proof and the
    interpreter-oracle bit-identity contract stay airtight; a body that
    reaches for the ledger directly re-derives costs at run time and
    silently escapes both.

False positives go in ``scripts/lint_allowlist.txt`` as
``<relpath>:<rule>`` (one per line, ``#`` comments allowed); a
``# lint: allow(<rule>)`` comment on the offending line also works.

    PYTHONPATH=src python scripts/lint_repro.py [paths...]
"""

from __future__ import annotations

import argparse
import ast
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ALLOWLIST = os.path.join(ROOT, "scripts", "lint_allowlist.txt")

#: legacy numpy global-RNG entry points (always unseeded by construction)
LEGACY_RANDOM = {
    "rand", "randn", "random", "randint", "random_sample", "standard_normal",
    "uniform", "normal", "choice", "permutation", "shuffle", "seed",
}
#: wall-clock callables as (module, attr)
CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "time_ns"),
    ("time", "perf_counter_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
#: ledger-charging attribute names that mark a distla op as accounted
CHARGE_ATTRS = {"flop", "reduction", "p2p", "event", "charge", "merge"}
#: simmpi collectives that charge the ledger internally
CHARGING_COLLECTIVES = {"allreduce_sum", "allgather_rows", "dot_columns",
                        "norm_columns"}
#: array-math markers in distla code
MATH_CALLS = {"dot", "einsum", "matmul", "vdot", "tensordot"}

SCANNED_DIRS = ("src", "tests", "benchmarks")
CLOCK_EXEMPT = (os.path.join("src", "repro", "util", "ledger.py"),)
CLOCK_EXEMPT_DIRS = ("benchmarks" + os.sep, "scripts" + os.sep)

#: ledger primitives a plan-node body may NOT call directly — charging
#: must flow through the pre-bound NodeCost specs built at lowering time
PLAN_CHARGE_ATTRS = {"flop", "reduction", "p2p", "event"}
PLAN_DIR = os.path.join("src", "repro", "plan") + os.sep
#: ir.py hosts ChargeSpec.charge itself — the one sanctioned ledger caller
PLAN_EXEMPT = (os.path.join("src", "repro", "plan", "ir.py"),)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute/name chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel: str, source_lines: list[str]):
        self.rel = rel
        self.lines = source_lines
        self.findings: list[tuple[str, int, str]] = []
        self.in_distla = os.path.join("src", "repro", "distla") in rel
        self.in_plan = rel.startswith(PLAN_DIR) and rel not in PLAN_EXEMPT

    # -- helpers -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, msg: str) -> None:
        line = self.lines[node.lineno - 1] if node.lineno <= len(self.lines) else ""
        if f"lint: allow({rule})" in line:
            return
        self.findings.append((rule, node.lineno, msg))

    # -- unseeded-random ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        tail = name.rsplit(".", 1)[-1]
        if name.endswith(".random." + tail) and tail in LEGACY_RANDOM \
                and (".random." in name or name.startswith("random.")):
            mod = name.split(".")[0]
            if mod in ("np", "numpy"):
                self._flag("unseeded-random", node,
                           f"legacy global-RNG call {name}() — pass an "
                           f"explicit Generator (conftest make_rng) instead")
        if tail in ("default_rng", "RandomState") and not node.args \
                and not node.keywords:
            self._flag("unseeded-random", node,
                       f"{name}() without a seed — every RNG must be "
                       f"explicitly seeded")
        if (name.split(".")[0] in ("time", "datetime", "dt")
                and (name.split(".")[0], tail) in CLOCK_CALLS) \
                or name in ("datetime.datetime.now", "datetime.datetime.utcnow"):
            if not self._clock_allowed():
                self._flag("wall-clock", node,
                           f"{name}() outside util/ledger.py — wall clock "
                           f"breaks determinism and trace replay")
        if self.in_plan and isinstance(node.func, ast.Attribute) \
                and node.func.attr in PLAN_CHARGE_ATTRS:
            self._flag("plan-ledger", node,
                       f"direct ledger call {name}() in plan code — "
                       f"plan nodes must charge only through their "
                       f"pre-bound NodeCost specs (CostTable at lowering "
                       f"time)")
        self.generic_visit(node)

    def _clock_allowed(self) -> bool:
        if self.rel in CLOCK_EXEMPT:
            return True
        return any(self.rel.startswith(d) for d in CLOCK_EXEMPT_DIRS)

    # -- distla-ledger -------------------------------------------------
    def _function_math_nodes(self, fn: ast.AST) -> list[ast.AST]:
        out = []
        for sub in ast.walk(fn):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.MatMult):
                out.append(sub)
            elif isinstance(sub, ast.Call):
                tail = _dotted(sub.func).rsplit(".", 1)[-1]
                if tail in MATH_CALLS:
                    out.append(sub)
        return out

    def _function_charges(self, fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                tail = name.rsplit(".", 1)[-1]
                if tail in CHARGE_ATTRS or tail in CHARGING_COLLECTIVES \
                        or name.endswith("ledger.current"):
                    return True
        return False

    def _visit_function(self, node) -> None:
        if self.in_distla:
            math_nodes = self._function_math_nodes(node)
            if math_nodes and not self._function_charges(node):
                self._flag("distla-ledger", math_nodes[0],
                           f"function {node.name!r} does array math but "
                           f"never charges the cost ledger")
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _load_allowlist() -> set[tuple[str, str]]:
    entries: set[tuple[str, str]] = set()
    if not os.path.exists(ALLOWLIST):
        return entries
    with open(ALLOWLIST, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            path, _, rule = line.rpartition(":")
            entries.add((path.strip(), rule.strip()))
    return entries


def lint_file(path: str) -> list[tuple[str, int, str]]:
    rel = os.path.relpath(path, ROOT)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # pragma: no cover - repo code always parses
        return [("syntax", exc.lineno or 0, str(exc))]
    visitor = _Visitor(rel, source.splitlines())
    visitor.visit(tree)
    return visitor.findings


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help=f"files/dirs to lint (default: {SCANNED_DIRS})")
    ns = ap.parse_args(argv)

    targets = ns.paths or [os.path.join(ROOT, d) for d in SCANNED_DIRS]
    files: list[str] = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, _, names in os.walk(target):
            files.extend(os.path.join(dirpath, n)
                         for n in sorted(names) if n.endswith(".py"))

    allow = _load_allowlist()
    total = 0
    for path in sorted(files):
        rel = os.path.relpath(path, ROOT)
        for rule, lineno, msg in lint_file(path):
            if (rel, rule) in allow:
                continue
            print(f"{rel}:{lineno}: [{rule}] {msg}")
            total += 1
    if total:
        print(f"\nlint_repro: {total} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_repro: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
