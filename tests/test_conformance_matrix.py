"""Property-based solver conformance matrix.

Sweeps solver x {left,right,flexible} x exec_mode x dtype x block size x
recycle strategy through the shared oracles in :mod:`tests.matrix`, with
the runtime invariant checker at ``full`` level so every configuration also
re-verifies its own Arnoldi/recycle/residual algebra.  The quick subset
runs in tier 1; the full cross product is behind the ``slow`` marker.

The mutation smoke tests are the checker's own conformance check: inject a
known-bad perturbation (loss of orthogonality, corrupt recycled space) and
assert the checker fires — guarding against a checker that silently passes
everything.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.krylov.cycle as cycle_mod
from repro import Options, solve
from repro.la.orthogonalization import project_out
from repro.verify import InvariantChecker, InvariantViolation, activate, \
    cross_check_exec_modes

from matrix import (SOLVERS, Config, assert_conforms, conformance_matrix,
                    make_problem)

QUICK = conformance_matrix(full=False)
FULL = conformance_matrix(full=True)


def test_matrix_is_large_enough():
    # the acceptance floor for the swept cross product
    assert len(FULL) >= 48
    assert {c.method for c in FULL} == set(SOLVERS)
    assert {c.variant for c in FULL} == {"left", "right", "flexible"}
    assert {c.exec_mode for c in FULL} == {"fused", "per_rank"}
    assert {c.dtype for c in FULL} == {np.float64, np.complex128}
    assert {c.strategy for c in FULL} >= {"A", "B"}


@pytest.mark.parametrize("cfg", QUICK, ids=Config.id)
def test_conformance_quick(cfg):
    out = assert_conforms(cfg)
    assert out.ok, f"{cfg.id()}: {out.failures}"


@pytest.mark.slow
@pytest.mark.parametrize("cfg", FULL, ids=Config.id)
def test_conformance_full(cfg):
    out = assert_conforms(cfg)
    assert out.ok, f"{cfg.id()}: {out.failures}"


@settings(max_examples=10, deadline=None)
@given(method=st.sampled_from(sorted(SOLVERS)),
       variant=st.sampled_from(["left", "right", "flexible"]),
       p=st.integers(1, 4), complex_=st.booleans(),
       strategy=st.sampled_from(["A", "B"]),
       seed=st.integers(0, 2**31 - 1))
def test_property_random_config_conforms(method, variant, p, complex_,
                                         strategy, seed):
    """Any valid cell of the (extended) matrix satisfies the oracles."""
    if method == "gmresdr" and variant == "flexible":
        variant = "right"
    if not SOLVERS[method]["block"]:
        p = 1
    cfg = Config(method, variant=variant,
                 dtype=np.complex128 if complex_ else np.float64,
                 p=p, strategy=strategy, seed=seed)
    out = assert_conforms(cfg)
    assert out.ok, f"{cfg.id()} (seed {seed}): {out.failures}"


class TestLedgerConservation:
    """Fused and per-rank execution must charge bit-identical ledgers."""

    CASES = [Config("gmres", p=3), Config("bgmres", p=3),
             Config("gcrodr", p=3), Config("gcrodr", p=1),
             Config("gmresdr", p=1)]

    @pytest.mark.parametrize("cfg", CASES, ids=Config.id)
    def test_solve_ledger_conserved(self, cfg):
        a, b, m = make_problem(cfg)
        o = cfg.options(verify="off")
        o.exec_mode = None  # the cross-check drives the mode itself
        chk = InvariantChecker("full", raise_on_violation=False)
        rf, rp = cross_check_exec_modes(
            lambda: solve(a, b, m, options=o), checker=chk,
            extract=lambda r: np.asarray(r.x), what=cfg.id())
        assert not chk.report()["violations"], chk.report()["violations"]
        assert rf.iterations == rp.iterations


class TestMutationSmoke:
    """Injected defects must trip the checker (checker-of-the-checker)."""

    def _solve(self, method, p, verify):
        cfg = Config(method, p=p)
        a, b, m = make_problem(cfg)
        return solve(a, b, m, options=cfg.options(verify=verify))

    def test_orthogonality_mutation_detected(self, monkeypatch):
        """Leak a component of the basis back into the orthogonalized block.

        Emulates a buggy block orthogonalization (the classic CGS failure
        mode): ``verify=full`` must catch it via the basis-orthonormality /
        Arnoldi-relation checks inside the block Arnoldi cycle.
        """
        def leaky_project_out(basis, w, scheme="cgs"):
            w2, h = project_out(basis, w, scheme=scheme)
            if basis.shape[1] >= 2:  # corrupt once the basis is nontrivial
                w2 = w2 + 1e-3 * basis[:, :1]
            return w2, h

        monkeypatch.setattr(cycle_mod, "project_out", leaky_project_out)
        with pytest.raises(InvariantViolation):
            self._solve("bgmres", p=3, verify="full")
        with pytest.raises(InvariantViolation):
            self._solve("bgcrodr", p=3, verify="full")

    def test_mutation_unnoticed_without_verify(self, monkeypatch):
        """The same defect sails through silently at verify=off — which is
        exactly why the checker exists."""
        def leaky_project_out(basis, w, scheme="cgs"):
            w2, h = project_out(basis, w, scheme=scheme)
            if basis.shape[1] >= 2:
                w2 = w2 + 1e-3 * basis[:, :1]
            return w2, h

        monkeypatch.setattr(cycle_mod, "project_out", leaky_project_out)
        res = self._solve("bgmres", p=3, verify="off")
        assert "verify" not in res.info  # no checker, no report

    def test_corrupt_recycled_space_detected_on_same_system_skip(self):
        """A stale/corrupt recycled pair adopted under the same-system skip
        (Fig. 1 lines 3-7 skipped) must be caught by the adoption check."""
        from repro.krylov.recycling import RecycledSubspace

        cfg = Config("gcrodr", p=1)
        a, b, m = make_problem(cfg)
        o = cfg.options(verify="full")
        res = solve(a, b, m, options=o)
        space = res.info["recycle"]
        assert space is not None and space.k > 0
        bad = RecycledSubspace(space.u + 0.01, space.c, op_tag=space.op_tag)
        with pytest.raises(InvariantViolation):
            solve(a, b + 1.0, m, options=o, recycle=bad, same_system=True)
        # cheap level checks C^H C only; corrupting C fires there too
        bad_c = RecycledSubspace(space.u, space.c * 1.01, op_tag=space.op_tag)
        o_cheap = cfg.options(verify="cheap")
        with pytest.raises(InvariantViolation):
            solve(a, b + 1.0, m, options=o_cheap, recycle=bad_c,
                  same_system=True)

    def test_false_convergence_mutation_detected(self):
        """A solver lying about its final residual must be caught by the
        api-level reported-vs-true check."""
        cfg = Config("gmres", p=2)
        a, b, m = make_problem(cfg)
        chk = InvariantChecker("cheap", raise_on_violation=False)
        with activate(chk):
            res = solve(a, b, m, options=cfg.options(verify="off"))
        # replay the api-level check against a corrupted solution
        chk2 = InvariantChecker("cheap")
        x_bad = np.asarray(res.x) + 1.0
        with pytest.raises(InvariantViolation):
            chk2.check_final_residual(a, x_bad, b,
                                      res.history.records[-1], 1e-8,
                                      converged=res.converged)
