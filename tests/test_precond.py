"""Tests for the preconditioner family: AMG, Schwarz, simple baselines."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, solve
from repro.precond.aggregation import (greedy_aggregation, strength_graph,
                                       tentative_prolongator)
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.schwarz import SchwarzPreconditioner
from repro.precond.simple import JacobiPreconditioner, SSORPreconditioner
from repro.problems.partition import (band_partition, decompose, grow_overlap,
                                      partition_of_unity,
                                      recursive_coordinate_bisection)

from conftest import laplacian_1d, laplacian_2d, relative_residuals


class TestAggregation:
    def test_strength_graph_symmetric(self):
        a = laplacian_2d(8)
        g = strength_graph(a, threshold=0.1)
        assert (g != g.T).nnz == 0
        assert np.all(g.diagonal() == 0)

    def test_threshold_drops_edges(self):
        # anisotropic: weak coupling in y
        nx = 10
        tx = laplacian_1d(nx)
        ty = 0.01 * laplacian_1d(nx)
        a = (sp.kron(sp.eye(nx), tx) + sp.kron(ty, sp.eye(nx))).tocsr()
        g_all = strength_graph(a, threshold=0.0)
        g_strong = strength_graph(a, threshold=0.25)
        assert g_strong.nnz < g_all.nnz

    def test_squaring_extends_reach(self):
        a = laplacian_1d(20)
        g1 = strength_graph(a, threshold=0.0)
        g2 = strength_graph(a, threshold=0.0, square=1)
        assert g2.nnz > g1.nnz

    def test_aggregation_covers_all_nodes(self):
        g = strength_graph(laplacian_2d(10), threshold=0.0)
        agg = greedy_aggregation(g)
        assert np.all(agg >= 0)
        assert agg.max() + 1 < g.shape[0]  # actual coarsening happened

    def test_isolated_nodes_become_singletons(self):
        g = sp.csr_matrix((5, 5), dtype=np.int8)
        agg = greedy_aggregation(g)
        assert len(np.unique(agg)) == 5

    def test_tentative_prolongator_reproduces_nullspace(self, rng):
        g = strength_graph(laplacian_1d(30), threshold=0.0)
        agg = greedy_aggregation(g)
        ns = np.ones((30, 1))
        t, coarse_ns = tentative_prolongator(agg, ns)
        # T @ coarse_ns must reproduce the fine nullspace exactly
        assert np.allclose(t @ coarse_ns, ns, atol=1e-12)

    def test_tentative_prolongator_block_size(self, rng):
        from repro.problems.elasticity import elasticity_3d
        prob = elasticity_3d(4)
        nodes = prob.n // 3
        agg = np.arange(nodes) // 4
        t, coarse_ns = tentative_prolongator(agg, prob.nullspace, block_size=3)
        assert np.allclose(t @ coarse_ns, prob.nullspace, atol=1e-10)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            tentative_prolongator(np.zeros(4, dtype=int), np.ones((13, 1)),
                                  block_size=3)


class TestAMG:
    def test_mesh_independent_iterations(self, rng):
        """The whole point of multigrid: iterations don't grow with n."""
        its = {}
        for nx in (20, 40):
            a = laplacian_2d(nx)
            m = SmoothedAggregationAMG(a)
            b = rng.standard_normal(a.shape[0])
            res = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                                 max_it=100))
            assert res.converged.all()
            its[nx] = res.iterations
        assert its[40] <= its[20] + 3

    def test_single_vcycle_reduces_error(self, rng):
        a = laplacian_2d(16)
        m = SmoothedAggregationAMG(a)
        x_true = rng.standard_normal(a.shape[0])
        b = a @ x_true
        x1 = m.apply(b.reshape(-1, 1))[:, 0]
        assert (np.linalg.norm(x_true - x1)
                < 0.5 * np.linalg.norm(x_true))

    def test_hierarchy_structure(self):
        a = laplacian_2d(30)
        m = SmoothedAggregationAMG(a, coarse_size=100)
        assert m.n_levels >= 2
        sizes = [l.a.shape[0] for l in m.levels]
        assert all(s2 < s1 for s1, s2 in zip(sizes, sizes[1:]))
        assert m.operator_complexity < 2.0

    def test_variable_smoothers_flagged(self):
        a = laplacian_2d(10)
        assert SmoothedAggregationAMG(a, smoother="gmres").is_variable
        assert SmoothedAggregationAMG(a, smoother="cg").is_variable
        assert not SmoothedAggregationAMG(a, smoother="chebyshev").is_variable
        assert not SmoothedAggregationAMG(a, smoother="jacobi").is_variable

    @pytest.mark.parametrize("smoother", ["chebyshev", "jacobi", "gmres", "cg"])
    def test_all_smoothers_converge(self, rng, smoother):
        a = laplacian_2d(14)
        m = SmoothedAggregationAMG(a, smoother=smoother,
                                   smoother_iterations=3)
        b = rng.standard_normal(a.shape[0])
        variant = "flexible" if m.is_variable else "right"
        res = solve(a, b, m, options=Options(tol=1e-8, variant=variant,
                                             max_it=150))
        assert res.converged.all()

    def test_unknown_smoother(self):
        with pytest.raises(ValueError):
            SmoothedAggregationAMG(laplacian_1d(10), smoother="ilu")

    def test_elasticity_nullspace_helps(self, rng):
        from repro.problems.elasticity import elasticity_3d
        prob = elasticity_3d(6)
        b = prob.rhs_vector
        o = Options(tol=1e-8, variant="right", max_it=300)
        with_ns = SmoothedAggregationAMG(prob.a, nullspace=prob.nullspace,
                                         block_size=3)
        without = SmoothedAggregationAMG(prob.a, block_size=3)
        r1 = solve(prob.a, b, with_ns, options=o)
        r0 = solve(prob.a, b, without, options=o)
        assert r1.converged.all()
        assert r1.iterations < r0.iterations

    def test_block_rhs_supported(self, rng):
        a = laplacian_2d(12)
        m = SmoothedAggregationAMG(a)
        b = rng.standard_normal((a.shape[0], 4))
        res = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                             max_it=100))
        assert res.converged.all()


class TestPartitioning:
    def test_rcb_balanced(self, rng):
        pts = rng.random((1000, 2))
        part = recursive_coordinate_bisection(pts, 8)
        counts = np.bincount(part)
        assert len(counts) == 8
        assert counts.max() - counts.min() <= 8

    def test_rcb_nonpower_of_two(self, rng):
        pts = rng.random((300, 3))
        part = recursive_coordinate_bisection(pts, 6)
        counts = np.bincount(part, minlength=6)
        assert np.all(counts > 0)
        assert abs(counts.max() - counts.min()) <= 6

    def test_band_partition_covers(self):
        a = laplacian_2d(12)
        part = band_partition(a, 5)
        assert np.all(np.bincount(part, minlength=5) > 0)

    def test_grow_overlap_monotone(self):
        a = laplacian_1d(50)
        owned = np.arange(10, 20)
        s1 = grow_overlap(a, owned, 1)
        s2 = grow_overlap(a, owned, 2)
        assert set(owned) <= set(s1) <= set(s2)
        assert len(s1) == 12 and len(s2) == 14

    @pytest.mark.parametrize("kind", ["boolean", "multiplicity"])
    def test_partition_of_unity_identity(self, kind):
        """sum R^T D R = I — the eq. (6) requirement."""
        a = laplacian_2d(10)
        dec = decompose(a, 4, overlap=2, pou=kind)
        assert dec.check_pou() < 1e-14

    def test_empty_subdomain_detected(self):
        a = laplacian_1d(6)
        with pytest.raises(ValueError):
            decompose(a, 6, overlap=1)  # RCM chunks of 1 grow into everything
            decompose(a, 7, overlap=1)


class TestSchwarz:
    def test_overlap_reduces_iterations(self, rng):
        a = laplacian_2d(25)
        b = rng.standard_normal(a.shape[0])
        its = {}
        for ov in (1, 3):
            m = SchwarzPreconditioner(a, nparts=6, overlap=ov, variant="ras")
            res = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                                 max_it=400))
            assert res.converged.all()
            its[ov] = res.iterations
        assert its[3] < its[1]

    @pytest.mark.parametrize("variant", ["asm", "ras"])
    def test_variants_converge_spd(self, rng, variant):
        a = laplacian_2d(20)
        b = rng.standard_normal(a.shape[0])
        m = SchwarzPreconditioner(a, nparts=4, overlap=2, variant=variant)
        res = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                             max_it=300))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-7)

    def test_single_subdomain_is_direct(self, rng):
        a = laplacian_2d(10)
        b = rng.standard_normal(a.shape[0])
        m = SchwarzPreconditioner(a, nparts=1, overlap=0, variant="asm")
        res = solve(a, b, m, options=Options(tol=1e-10, variant="right"))
        assert res.iterations <= 2

    def test_oras_beats_ras_on_indefinite(self, rng):
        """The Fig. 4 mechanism at algebraic-model scale."""
        n1 = 30
        h = 1.0 / (n1 + 1)
        k = 12.0
        helm = (laplacian_2d(n1) / h ** 2
                - k ** 2 * sp.eye(n1 * n1)).tocsr().astype(complex)
        b = rng.standard_normal(n1 * n1) + 1j * rng.standard_normal(n1 * n1)
        o = Options(tol=1e-8, variant="right", max_it=400, gmres_restart=50)
        m_ras = SchwarzPreconditioner(helm, nparts=8, overlap=2, variant="ras")
        m_oras = SchwarzPreconditioner(helm, nparts=8, overlap=2,
                                       variant="oras", interface_shift=0.05j)
        r_ras = solve(helm, b, m_ras, options=o)
        r_oras = solve(helm, b, m_oras, options=o)
        assert r_oras.converged.all()
        # RAS stalls or needs more iterations than ORAS
        assert (not r_ras.converged.all()) or \
            r_oras.iterations <= r_ras.iterations

    def test_block_apply_matches_column_apply(self, rng):
        a = laplacian_2d(15)
        m = SchwarzPreconditioner(a, nparts=4, overlap=1, variant="ras")
        x = rng.standard_normal((a.shape[0], 3))
        block = m.apply(x)
        cols = np.column_stack([m.apply(x[:, j:j + 1])[:, 0] for j in range(3)])
        assert np.allclose(block, cols, atol=1e-12)

    def test_local_matrix_size_checked(self):
        a = laplacian_2d(8)
        with pytest.raises(ValueError, match="size"):
            SchwarzPreconditioner(a, nparts=2, overlap=1, variant="oras",
                                  local_matrices=[sp.eye(3).tocsc()] * 2)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            SchwarzPreconditioner(laplacian_1d(10), variant="hybrid")


class TestSimplePreconditioners:
    def test_jacobi(self, rng):
        a = laplacian_2d(12)
        m = JacobiPreconditioner(a)
        b = rng.standard_normal(a.shape[0])
        r0 = solve(a, b, options=Options(tol=1e-8, max_it=2000))
        r1 = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                            max_it=2000))
        assert r1.converged.all()
        assert r1.iterations <= r0.iterations + 5

    def test_jacobi_zero_diag_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            JacobiPreconditioner(a)

    def test_ssor_application_matches_formula(self, rng):
        a = laplacian_2d(6)
        w = 1.2
        m = SSORPreconditioner(a, omega=w)
        x = rng.standard_normal((a.shape[0], 2))
        ad = a.toarray()
        d = np.diag(np.diag(ad))
        low = np.tril(ad, -1)
        up = np.triu(ad, 1)
        m_mat = (w / (2 - w)) * (d / w + low) @ np.linalg.inv(d / w) @ (d / w + up)
        expect = np.linalg.solve(m_mat, x)
        assert np.allclose(m.apply(x), expect, atol=1e-10)

    def test_ssor_accelerates_gmres(self, rng):
        a = laplacian_2d(15)
        b = rng.standard_normal(a.shape[0])
        m = SSORPreconditioner(a)
        r0 = solve(a, b, options=Options(tol=1e-8, max_it=3000))
        r1 = solve(a, b, m, options=Options(tol=1e-8, variant="right",
                                            max_it=3000))
        assert r1.converged.all()
        assert r1.iterations < r0.iterations

    def test_ssor_omega_bounds(self):
        with pytest.raises(ValueError):
            SSORPreconditioner(laplacian_1d(5), omega=2.0)


class TestTwoLevelSchwarz:
    def test_coarse_correction_flattens_iteration_growth(self, rng):
        """The classic two-level cure for the paper's Fig.-7 growth."""
        from repro import Options, solve
        a = laplacian_2d(36)
        b = rng.standard_normal(a.shape[0])
        o = Options(tol=1e-8, variant="right", max_it=500)
        one = {}
        two = {}
        for nparts in (4, 16):
            one[nparts] = solve(a, b, SchwarzPreconditioner(
                a, nparts=nparts, overlap=2), options=o).iterations
            two[nparts] = solve(a, b, SchwarzPreconditioner(
                a, nparts=nparts, overlap=2, coarse=True),
                options=o).iterations
        assert two[16] < one[16]
        # relative growth 4 -> 16 parts is milder with the coarse space
        assert two[16] / two[4] < one[16] / one[4] + 0.2

    def test_coarse_handles_constant_error_mode(self, rng):
        a = laplacian_2d(24)
        ones = np.ones(a.shape[0])
        m1 = SchwarzPreconditioner(a, nparts=8, overlap=2)
        m2 = SchwarzPreconditioner(a, nparts=8, overlap=2, coarse=True)
        r1 = np.linalg.norm(m1.apply((a @ ones).reshape(-1, 1))[:, 0] - ones)
        r2 = np.linalg.norm(m2.apply((a @ ones).reshape(-1, 1))[:, 0] - ones)
        assert r2 < 0.5 * r1

    def test_coarse_block_apply_consistent(self, rng):
        a = laplacian_2d(16)
        m = SchwarzPreconditioner(a, nparts=4, overlap=1, coarse=True)
        x = rng.standard_normal((a.shape[0], 3))
        block = m.apply(x)
        cols = np.column_stack([m.apply(x[:, j:j + 1])[:, 0]
                                for j in range(3)])
        assert np.allclose(block, cols, atol=1e-12)
