"""Tests for the incremental block-Hessenberg QR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.la.blockqr import BlockHessenbergQR
from conftest import make_rng


def _random_hessenberg(rng, m, p, dtype=np.float64):
    """Random block Hessenberg ((m+1)p x mp) with its column blocks."""
    n_rows = (m + 1) * p
    h = np.zeros((n_rows, m * p), dtype=dtype)
    for j in range(m):
        blk = rng.standard_normal(((j + 2) * p, p))
        if np.issubdtype(dtype, np.complexfloating):
            blk = blk + 1j * rng.standard_normal(blk.shape)
        h[: (j + 2) * p, j * p: (j + 1) * p] = blk
    return h


class TestIncrementalQR:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_triangular_factor_matches_numpy(self, rng, p, dtype):
        m = 6
        h = _random_hessenberg(rng, m, p, dtype)
        s1 = np.eye(p, dtype=dtype)
        hqr = BlockHessenbergQR(m, p, s1, dtype=dtype)
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        r_inc = hqr.triangular()
        _, r_ref = np.linalg.qr(h[:, : m * p])
        # R unique up to unitary diagonal: compare column norms and |R|
        assert np.allclose(np.abs(r_inc), np.abs(np.triu(r_ref)), atol=1e-9)

    def test_least_squares_solution(self, rng):
        m, p = 5, 3
        h = _random_hessenberg(rng, m, p)
        s1 = rng.standard_normal((p, p))
        hqr = BlockHessenbergQR(m, p, s1)
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        y = hqr.solve()
        rhs = np.zeros(((m + 1) * p, p))
        rhs[:p] = s1
        y_ref, *_ = np.linalg.lstsq(h, rhs, rcond=None)
        assert np.allclose(y, y_ref, atol=1e-8)

    def test_residual_norms_match_lstsq(self, rng):
        m, p = 4, 2
        h = _random_hessenberg(rng, m, p)
        s1 = rng.standard_normal((p, p))
        hqr = BlockHessenbergQR(m, p, s1)
        for j in range(m):
            res = hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
            hj = h[: (j + 2) * p, : (j + 1) * p]
            rhs = np.zeros(((j + 2) * p, p))
            rhs[:p] = s1
            y_ref, *_ = np.linalg.lstsq(hj, rhs, rcond=None)
            res_ref = np.linalg.norm(rhs - hj @ y_ref, axis=0)
            assert np.allclose(res, res_ref, atol=1e-9)

    def test_scalar_case_is_givens_equivalent(self, rng):
        # p=1 must reproduce classic GMRES residual recurrences
        m = 8
        h = _random_hessenberg(rng, m, 1)
        beta = 3.7
        hqr = BlockHessenbergQR(m, 1, np.array([[beta]]))
        for j in range(m):
            res = hqr.add_column(h[: j + 2, j: j + 1])
            assert res.shape == (1,)
            assert res[0] >= -1e-14

    def test_residuals_monotone_nonincreasing(self, rng):
        m, p = 6, 2
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        prev = np.full(p, np.inf)
        for j in range(m):
            res = hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
            assert np.all(res <= prev + 1e-12)
            prev = res


class TestAccessorsAndGuards:
    def test_hessenberg_storage(self, rng):
        m, p = 3, 2
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        assert np.allclose(hqr.hessenberg(), h)
        assert hqr.last_subdiagonal_block().shape == (p, p)
        assert np.allclose(hqr.last_subdiagonal_block(),
                           h[m * p:, (m - 1) * p:])

    def test_wrong_shape_rejected(self):
        hqr = BlockHessenbergQR(4, 2, np.eye(2))
        with pytest.raises(ValueError, match="shape"):
            hqr.add_column(np.ones((3, 2)))

    def test_overflow_rejected(self, rng):
        m, p = 2, 1
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        for j in range(m):
            hqr.add_column(h[: j + 2, j: j + 1])
        with pytest.raises(ValueError, match="full"):
            hqr.add_column(np.ones((m + 2, 1)))

    def test_rhs_shape_validated(self):
        with pytest.raises(ValueError, match="rhs0"):
            BlockHessenbergQR(4, 2, np.eye(3))

    def test_last_subdiagonal_before_any_column(self):
        hqr = BlockHessenbergQR(4, 2, np.eye(2))
        with pytest.raises(ValueError):
            hqr.last_subdiagonal_block()

    def test_empty_solve(self):
        hqr = BlockHessenbergQR(4, 2, np.eye(2))
        assert hqr.solve().shape == (0, 2)


class TestQApplication:
    def test_q_unitary(self, rng):
        m, p = 5, 2
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        q = hqr.q_matrix()
        assert np.allclose(q.conj().T @ q, np.eye(q.shape[0]), atol=1e-10)

    def test_qh_times_h_is_triangular(self, rng):
        m, p = 4, 3
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        transformed = hqr.apply_qh(h)
        assert np.allclose(transformed[: m * p], hqr.triangular(), atol=1e-9)
        assert np.allclose(transformed[m * p:], 0, atol=1e-9)

    def test_q_and_qh_inverse(self, rng):
        m, p = 4, 2
        h = _random_hessenberg(rng, m, p)
        hqr = BlockHessenbergQR(m, p, np.eye(p))
        for j in range(m):
            hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        x = rng.standard_normal((hqr.nrows_active, 3))
        assert np.allclose(hqr.apply_q(hqr.apply_qh(x)), x, atol=1e-10)

    def test_row_count_guard(self, rng):
        hqr = BlockHessenbergQR(4, 2, np.eye(2))
        hqr.add_column(np.ones((4, 2)))
        with pytest.raises(ValueError, match="rows"):
            hqr.apply_qh(np.ones((6, 1)))


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 6), p=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
def test_property_solution_minimizes(m, p, seed):
    rng = make_rng(seed)
    h = _random_hessenberg(rng, m, p)
    s1 = rng.standard_normal((p, p))
    hqr = BlockHessenbergQR(m, p, s1)
    for j in range(m):
        hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
    y = hqr.solve()
    rhs = np.zeros(((m + 1) * p, p))
    rhs[:p] = s1
    base = np.linalg.norm(rhs - h @ y, axis=0)
    # any perturbation of y must not decrease the residual
    for _ in range(3):
        dy = 1e-3 * rng.standard_normal(y.shape)
        pert = np.linalg.norm(rhs - h @ (y + dy), axis=0)
        assert np.all(pert >= base - 1e-9)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 6), p=st.integers(1, 3),
       seed=st.integers(0, 2**31 - 1), complex_=st.booleans())
def test_property_residuals_match_lstsq(m, p, seed, complex_):
    """Incremental residual estimates equal the true LS residuals — for
    real and complex dtypes, including the degenerate p=1 block."""
    dtype = np.complex128 if complex_ else np.float64
    rng = make_rng(seed)
    h = _random_hessenberg(rng, m, p, dtype)
    s1 = rng.standard_normal((p, p)).astype(dtype)
    if complex_:
        s1 = s1 + 1j * rng.standard_normal((p, p))
    hqr = BlockHessenbergQR(m, p, s1, dtype=dtype)
    for j in range(m):
        res = hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
        hj = h[: (j + 2) * p, : (j + 1) * p]
        rhs = np.zeros(((j + 2) * p, p), dtype=dtype)
        rhs[:p] = s1
        y_ref, *_ = np.linalg.lstsq(hj, rhs, rcond=None)
        ref = np.linalg.norm(rhs - hj @ y_ref, axis=0)
        assert np.allclose(res, ref, atol=1e-8, rtol=1e-6)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 5), seed=st.integers(0, 2**31 - 1),
       complex_=st.booleans())
def test_property_lucky_breakdown_gives_zero_residual(m, seed, complex_):
    """A zero last subdiagonal (p=1 lucky breakdown) makes the projected
    system square and consistent: the estimate must collapse to ~0."""
    dtype = np.complex128 if complex_ else np.float64
    rng = make_rng(seed)
    h = _random_hessenberg(rng, m, 1, dtype)
    h[m, m - 1] = 0.0  # exact breakdown on the final column
    hqr = BlockHessenbergQR(m, 1, np.array([[1.0]], dtype=dtype), dtype=dtype)
    res = None
    for j in range(m):
        res = hqr.add_column(h[: j + 2, j: j + 1])
    assert res is not None and res[0] <= 1e-9 * max(np.abs(h).max(), 1.0)
    y = hqr.solve()
    rhs = np.zeros((m + 1, 1), dtype=dtype)
    rhs[0, 0] = 1.0
    assert np.linalg.norm(rhs - h @ y) <= 1e-8 * max(np.abs(h).max(), 1.0)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(2, 6), p=st.integers(1, 3), q_extra=st.integers(1, 2),
       seed=st.integers(0, 2**31 - 1))
def test_property_wide_rhs_block_reduction_shape(m, p, q_extra, seed):
    """Under block-size reduction the tracked RHS block is wider (q > p);
    solve() must return a jp x q coefficient matrix minimizing each column."""
    rng = make_rng(seed)
    q_cols = p + q_extra
    h = _random_hessenberg(rng, m, p)
    s1 = rng.standard_normal((p, q_cols))
    hqr = BlockHessenbergQR(m, p, s1)
    for j in range(m):
        hqr.add_column(h[: (j + 2) * p, j * p: (j + 1) * p])
    y = hqr.solve()
    assert y.shape == (m * p, q_cols)
    rhs = np.zeros(((m + 1) * p, q_cols))
    rhs[:p] = s1
    y_ref, *_ = np.linalg.lstsq(h, rhs, rcond=None)
    assert np.allclose(np.linalg.norm(rhs - h @ y, axis=0),
                       np.linalg.norm(rhs - h @ y_ref, axis=0),
                       atol=1e-8)
