"""Tests for GMRES-DR (deflated restarting, the PETSc DGMRES baseline)."""

import numpy as np
import pytest

from repro import Options, solve
from repro.krylov.gcrodr import gcrodr
from repro.krylov.gmres import gmres
from repro.krylov.gmresdr import gmresdr
from repro.precond.simple import SSORPreconditioner

from conftest import complex_shifted, laplacian_1d, relative_residuals


def _opts(**kw):
    kw.setdefault("krylov_method", "gmresdr")
    kw.setdefault("gmres_restart", 30)
    kw.setdefault("recycle", 10)
    kw.setdefault("tol", 1e-8)
    kw.setdefault("max_it", 6000)
    return Options(**kw)


class TestConvergence:
    def test_deflation_rescues_restarted_gmres(self, rng):
        a = laplacian_1d(600)
        b = rng.standard_normal(600)
        rd = gmresdr(a, b, options=_opts())
        rg = gmres(a, b, options=Options(gmres_restart=30, tol=1e-8,
                                         max_it=6000))
        assert rd.converged.all()
        assert relative_residuals(a, rd.x, b)[0] < 1e-7
        assert (not rg.converged.all()) or rd.iterations < rg.iterations

    def test_equivalent_to_gcrodr_on_single_system(self, rng):
        """Parks et al.: GMRES-DR == GCRO-DR for one linear system."""
        a = laplacian_1d(500)
        b = rng.standard_normal(500)
        rd = gmresdr(a, b, options=_opts())
        rc = gcrodr(a, b, options=_opts(krylov_method="gcrodr"))
        assert rd.converged.all() and rc.converged.all()
        # equivalence is exact in exact arithmetic; allow round-off slack
        assert abs(rd.iterations - rc.iterations) <= 0.05 * rc.iterations + 3

    def test_preconditioned(self, rng):
        a = laplacian_1d(400)
        b = rng.standard_normal(400)
        m = SSORPreconditioner(a)
        res = gmresdr(a, b, m, options=_opts(variant="right"))
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-7

    def test_left_preconditioning(self, rng):
        a = laplacian_1d(300)
        b = rng.standard_normal(300)
        m = SSORPreconditioner(a)
        res = gmresdr(a, b, m, options=_opts(variant="left"))
        assert res.converged.all()

    def test_complex(self, rng):
        a = complex_shifted(300)
        b = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        res = gmresdr(a, b, options=_opts())
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-7

    def test_easy_system_single_cycle(self, rng):
        a = laplacian_1d(100, shift=1.0)
        b = rng.standard_normal(100)
        res = gmresdr(a, b, options=_opts())
        assert res.converged.all()
        assert res.restarts == 1


class TestGuards:
    def test_flexible_rejected(self):
        a = laplacian_1d(30)
        with pytest.raises(ValueError, match="variable"):
            gmresdr(a, np.ones(30), options=_opts(variant="flexible"))

    def test_multiple_rhs_rejected(self, rng):
        a = laplacian_1d(30)
        with pytest.raises(ValueError, match="single"):
            gmresdr(a, np.ones((30, 2)), options=_opts())

    def test_k_bounds_enforced(self):
        with pytest.raises(Exception):
            Options(krylov_method="gmresdr", gmres_restart=10, recycle=10)

    def test_api_dispatch(self, rng):
        a = laplacian_1d(120, shift=0.3)
        res = solve(a, rng.standard_normal(120),
                    options=_opts(gmres_restart=20, recycle=5))
        assert res.method == "gmresdr"
        assert res.converged.all()

    def test_no_cross_solve_recycling(self, rng):
        """The paper's point: DGMRES cannot recycle between solves."""
        a = laplacian_1d(200)
        res = solve(a, rng.standard_normal(200), options=_opts(max_it=8000))
        assert res.info.get("recycle") is None
