"""Tests for the sparse direct solver substrate (orderings, LU, solves)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.direct.numeric import gilbert_peierls_lu
from repro.direct.ordering import (compute_ordering, minimum_degree,
                                   reverse_cuthill_mckee)
from repro.direct.solver import SparseLU
from repro.direct.triangular import (LevelSchedule, TriangularFactor,
                                     _levels_by_row_reference,
                                     _levels_frontier)
from repro.util import ledger
from repro.util.ledger import Kernel

from conftest import make_rng, complex_shifted, laplacian_1d, laplacian_2d


def _random_sparse(rng, n, density=0.05, complex_=False):
    a = sp.random(n, n, density=density, random_state=int(rng.integers(2**31)))
    a = a + sp.diags(n / 2.0 + np.arange(n, dtype=float))
    if complex_:
        b = sp.random(n, n, density=density, random_state=int(rng.integers(2**31)))
        a = a + 1j * b
    return sp.csc_matrix(a)


class TestOrderings:
    @pytest.mark.parametrize("method", ["natural", "rcm", "amd"])
    def test_is_a_permutation(self, rng, method):
        a = laplacian_2d(8)
        perm = compute_ordering(a, method)
        assert sorted(perm.tolist()) == list(range(a.shape[0]))

    def test_amd_reduces_fill_vs_natural(self):
        a = laplacian_2d(15)
        fills = {}
        for method in ("natural", "amd"):
            lu = SparseLU(a, engine="gp", ordering=method)
            fills[method] = lu.factor_nnz
        assert fills["amd"] < fills["natural"]

    def test_rcm_reduces_bandwidth(self, rng):
        # random permutation of a banded matrix: RCM should recover low bandwidth
        n = 60
        a = laplacian_1d(n)
        p = rng.permutation(n)
        ap = sp.csr_matrix(a[p][:, p])
        perm = reverse_cuthill_mckee(ap)
        reord = ap[perm][:, perm].tocoo()
        bw = np.max(np.abs(reord.row - reord.col))
        assert bw <= 5

    def test_rcm_handles_disconnected_graph(self):
        a = sp.block_diag([laplacian_1d(10), laplacian_1d(7)]).tocsr()
        perm = reverse_cuthill_mckee(a)
        assert sorted(perm.tolist()) == list(range(17))

    def test_minimum_degree_on_star(self):
        # star graph: centre must be eliminated last
        n = 12
        rows = [0] * (n - 1) + list(range(1, n)) + list(range(n))
        cols = list(range(1, n)) + [0] * (n - 1) + list(range(n))
        a = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        perm = minimum_degree(a)
        assert perm[-1] == 0 or perm[0] != 0  # centre not eliminated first

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            compute_ordering(laplacian_1d(5), "colamd")


class TestGilbertPeierls:
    def test_factorization_identity(self, rng):
        a = _random_sparse(rng, 80)
        f = gilbert_peierls_lu(a)
        lhs = (f.l @ f.u).toarray()
        rhs = a.toarray()[f.perm_r][:, f.perm_c]
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_l_unit_lower_u_upper(self, rng):
        a = _random_sparse(rng, 50)
        f = gilbert_peierls_lu(a)
        l, u = f.l.toarray(), f.u.toarray()
        assert np.allclose(np.triu(l, 1), 0)
        assert np.allclose(np.diag(l), 1)
        assert np.allclose(np.tril(u, -1), 0)

    def test_matches_dense_lu_without_pivoting_need(self, rng):
        import scipy.linalg as sla
        n = 12
        ad = rng.standard_normal((n, n)) + np.diag([10.0] * n)
        f = gilbert_peierls_lu(sp.csc_matrix(ad))
        p, l, u = sla.lu(ad)
        if np.allclose(p, np.eye(n)):
            assert np.allclose(f.l.toarray(), l, atol=1e-10)
            assert np.allclose(f.u.toarray(), u, atol=1e-10)

    def test_pivoting_handles_zero_diagonal(self):
        a = sp.csc_matrix(np.array([[0.0, 2.0], [3.0, 1.0]]))
        f = gilbert_peierls_lu(a)
        lhs = (f.l @ f.u).toarray()
        rhs = a.toarray()[f.perm_r][:, f.perm_c]
        assert np.allclose(lhs, rhs)

    def test_singular_matrix_raises(self):
        a = sp.csc_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            gilbert_peierls_lu(a)

    def test_complex_factorization(self, rng):
        a = _random_sparse(rng, 40, complex_=True)
        f = gilbert_peierls_lu(a)
        lhs = (f.l @ f.u).toarray()
        rhs = a.toarray()[f.perm_r][:, f.perm_c]
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_flops_accounted(self, rng):
        a = _random_sparse(rng, 40)
        with ledger.install() as led:
            gilbert_peierls_lu(a)
        assert led.flops[Kernel.FACTORIZATION] > 0
        assert led.calls["lu_factorization"] == 1


class TestLevelSchedule:
    def test_diagonal_matrix_single_level(self):
        sched = LevelSchedule(sp.csr_matrix(sp.diags(np.ones(10)) * 0))
        assert sched.n_levels == 1
        assert len(sched.rows_by_level[0]) == 10

    def test_bidiagonal_fully_sequential(self):
        n = 8
        strict = sp.diags(np.ones(n - 1), -1).tocsr()
        sched = LevelSchedule(strict)
        assert sched.n_levels == n

    def test_levels_respect_dependencies(self, rng):
        a = sp.tril(_random_sparse(rng, 60), k=-1).tocsr()
        sched = LevelSchedule(a)
        level = sched.level_of_row
        coo = a.tocoo()
        for i, j in zip(coo.row, coo.col):
            assert level[i] > level[j]

    @pytest.mark.parametrize("fallback_width", [1, 2, 8, 10**9])
    def test_frontier_matches_reference(self, rng, fallback_width):
        # the vectorized frontier propagation must reproduce the per-row
        # recurrence exactly, whichever side of the adaptive threshold the
        # DAG lands on (fallback_width=1 forces pure frontier waves;
        # 10**9 forces the pure per-row fallback)
        for trial in range(8):
            n = int(rng.integers(1, 120))
            dens = float(rng.uniform(0.01, 0.4))
            a = sp.random(n, n, density=dens,
                          random_state=int(rng.integers(2**31)))
            low = sp.tril(a, k=-1).tocsr()
            ref = _levels_by_row_reference(n, low.indptr, low.indices)
            vec = _levels_frontier(n, low.indptr, low.indices,
                                   fallback_width=fallback_width)
            assert np.array_equal(ref, vec)

    def test_frontier_on_block_diagonal(self, rng):
        # the Schwarz concat shape: many independent blocks, wide frontiers
        sub = sp.tril(_random_sparse(rng, 40), k=-1).tocsr()
        blk = sp.block_diag([sub] * 8, format="csr")
        n = blk.shape[0]
        ref = _levels_by_row_reference(n, blk.indptr, blk.indices)
        vec = _levels_frontier(n, blk.indptr, blk.indices)
        assert np.array_equal(ref, vec)
        # block-diagonal structure never deepens the schedule
        assert vec.max() == _levels_by_row_reference(
            sub.shape[0], sub.indptr, sub.indices).max()


class TestTriangularFactor:
    @pytest.mark.parametrize("lower", [True, False])
    def test_matches_scipy(self, rng, lower):
        n = 80
        m = sp.random(n, n, density=0.1, random_state=7)
        m = sp.tril(m, -1) if lower else sp.triu(m, 1)
        m = (m + sp.diags(2.0 + np.arange(n, dtype=float))).tocsr()
        tri = TriangularFactor(m, lower=lower)
        b = rng.standard_normal((n, 3))
        x = tri.solve(b)
        x_ref = spla.spsolve_triangular(m.tocsr(), b, lower=lower)
        assert np.allclose(x, x_ref, atol=1e-9)

    def test_unit_diagonal(self, rng):
        n = 40
        strict = sp.tril(sp.random(n, n, density=0.2, random_state=3), -1)
        m = (strict + sp.eye(n)).tocsr()
        tri = TriangularFactor(m, lower=True, unit_diagonal=True)
        b = rng.standard_normal(n).reshape(-1, 1)
        assert np.allclose(m @ tri.solve(b), b, atol=1e-10)

    def test_singular_rejected(self):
        m = sp.csr_matrix(np.array([[1.0, 0.0], [5.0, 0.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            TriangularFactor(m, lower=True)

    def test_multirhs_matches_looped(self, rng):
        n = 60
        m = (sp.tril(sp.random(n, n, density=0.15, random_state=5), -1)
             + sp.diags(1.0 + np.arange(n, dtype=float))).tocsr()
        tri = TriangularFactor(m, lower=True)
        b = rng.standard_normal((n, 5))
        block = tri.solve(b)
        looped = np.column_stack([tri.solve(b[:, j:j + 1])[:, 0]
                                  for j in range(5)])
        assert np.allclose(block, looped, atol=1e-12)

    def test_blas3_classification(self, rng):
        n = 30
        m = (sp.tril(sp.random(n, n, density=0.2, random_state=2), -1)
             + sp.eye(n)).tocsr()
        tri = TriangularFactor(m, lower=True, unit_diagonal=True)
        with ledger.install() as led:
            tri.solve(rng.standard_normal((n, 1)))
        assert led.flops[Kernel.BLAS2] > 0
        with ledger.install() as led:
            tri.solve(rng.standard_normal((n, 8)))
        assert led.flops[Kernel.BLAS3] > 0


class TestSparseLU:
    @pytest.mark.parametrize("engine", ["gp", "scipy"])
    def test_solves_exactly(self, rng, engine):
        a = _random_sparse(rng, 120)
        lu = SparseLU(a, engine=engine)
        b = rng.standard_normal((120, 4))
        x = lu.solve(b)
        assert np.allclose(a @ x, b, atol=1e-8)

    @pytest.mark.parametrize("engine", ["gp", "scipy"])
    def test_complex(self, rng, engine):
        a = complex_shifted(90).tocsc()
        lu = SparseLU(a, engine=engine)
        b = rng.standard_normal(90) + 1j * rng.standard_normal(90)
        x = lu.solve(b)
        assert np.allclose(a @ x, b, atol=1e-8)
        assert x.shape == (90,)

    def test_auto_engine_selection(self):
        small = SparseLU(laplacian_1d(100))
        assert small.engine == "gp"
        big = SparseLU(laplacian_2d(45))  # 2025 unknowns
        assert big.engine == "scipy"

    def test_factor_once_solve_many(self, rng):
        a = laplacian_2d(12)
        n = a.shape[0]
        lu = SparseLU(a, engine="gp")
        for _ in range(3):
            b = rng.standard_normal(n)
            assert np.allclose(a @ lu.solve(b), b, atol=1e-8)

    def test_as_preconditioner_gives_one_iteration(self, rng):
        from repro import Options, solve
        a = laplacian_2d(10)
        lu = SparseLU(a, engine="gp")
        b = rng.standard_normal(a.shape[0])
        res = solve(a, b, lu.as_preconditioner(),
                    options=Options(tol=1e-10, variant="right"))
        assert res.converged.all()
        assert res.iterations <= 2

    def test_multirhs_cheaper_per_rhs(self, rng):
        """The measured Fig. 6 effect: blocked solves amortize the sweep."""
        import time
        a = laplacian_2d(40)  # 1600 unknowns
        lu = SparseLU(a, engine="scipy")
        n = a.shape[0]
        b1 = rng.standard_normal((n, 1))
        b32 = rng.standard_normal((n, 32))
        lu.solve(b1)  # warm up
        t0 = time.perf_counter()
        for _ in range(3):
            lu.solve(b1)
        t1 = (time.perf_counter() - t0) / 3
        t0 = time.perf_counter()
        for _ in range(3):
            lu.solve(b32)
        t32 = (time.perf_counter() - t0) / 3
        # 32 fused RHSs must cost far less than 32 single solves
        assert t32 < 16 * t1

    def test_wrong_rhs_size(self):
        lu = SparseLU(laplacian_1d(10))
        with pytest.raises(ValueError):
            lu.solve(np.ones(11))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            SparseLU(sp.random(4, 5, density=0.5))

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            SparseLU(laplacian_1d(10), engine="pardiso")


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 60), seed=st.integers(0, 2**31 - 1),
       complex_=st.booleans())
def test_property_lu_roundtrip(n, seed, complex_):
    rng = make_rng(seed)
    a = sp.random(n, n, density=min(1.0, 10 / n), random_state=seed)
    a = a + sp.diags(3.0 + rng.random(n) * n)
    if complex_:
        a = a + 1j * sp.random(n, n, density=min(1.0, 5 / n),
                               random_state=seed + 1)
    a = sp.csc_matrix(a)
    lu = SparseLU(a, engine="gp")
    b = rng.standard_normal((n, 2))
    x = lu.solve(b)
    assert np.allclose(a @ x, b, atol=1e-7 * max(1.0, abs(a).max()))
