"""Ledger-verified reduction counts and LOO properties of the
low-synchronization orthogonalization engine.

The tentpole claim of the engine is *communication*, not flops: CGS2-1r and
CholQR2 charge at most TWO global reductions per block Arnoldi step at every
basis depth (sketched: one), while the MGS oracle's count grows linearly
with the depth.  These tests read the claim straight off the cost ledger —
the same ledger the paper-figure benchmarks integrate — and pin the
loss-of-orthogonality each scheme must deliver in exchange.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.krylov.cycle as cycle_mod
from repro import Options, solve
from repro.distla.distqr import distributed_cholqr2
from repro.distla.distvec import DistributedBlockVector
from repro.la.orthogonalization import (LOW_SYNC_SCHEMES, ORTHO_SCHEME_NAMES,
                                        QR_SCHEME_NAMES, SCHEMES,
                                        PseudoBlockOrthogonalizer,
                                        householder_qr, make_arnoldi_engine,
                                        project_out)
from repro.simmpi.grid import VirtualGrid
from repro.util import ledger
from repro.util.execmode import use_exec_mode
from repro.util.ledger import CostLedger
from repro.verify import InvariantChecker, InvariantViolation, activate
from repro.verify.checker import checker_for

from conftest import make_rng
from matrix import Config, make_problem


def _complex(rng, *shape):
    return (rng.standard_normal(shape)
            + 1j * rng.standard_normal(shape)).astype(np.complex128)


def _run_engine(scheme, *, n, p, steps, k=0, seed=0, ill=False):
    """Drive an engine through ``steps`` Arnoldi-like steps.

    Returns ``(Q, per_step_reductions)`` where ``Q`` stacks the recycled
    block (if any), the initial block and every committed step block.
    """
    rng = make_rng(seed, p, k)
    ck = None
    v1 = _complex(rng, n, p)
    if k:
        ck, _ = householder_qr(_complex(rng, n, k))
        v1, _ = project_out(ck, v1, scheme="imgs")
    v1, _ = householder_qr(v1)

    led = CostLedger()
    counts = []
    blocks = [v1]
    with ledger.install(led):
        eng = make_arnoldi_engine(scheme, tol=1e-12,
                                  max_cols=(steps + 1) * p + k, seed=seed)
        eng.begin(v1, ck)
        for j in range(steps):
            w = _complex(rng, n, p)
            if ill:
                # graded column scales: kappa(w) ~ 1e8, well inside the
                # two-pass stability region but far past single-pass CGS
                w = w * np.logspace(0, -8, p)
            before = led.counts()[0]
            q, h, r, rank, e_col = eng.step(blocks, w, ck=ck)
            counts.append(led.counts()[0] - before)
            assert rank == p, f"unexpected deflation at step {j}"
            blocks.append(q)
    cols = ([ck] if ck is not None else []) + blocks
    return np.concatenate(cols, axis=1), counts


class TestEngineReductionCounts:
    """<= 2 reductions per step at EVERY depth — the headline invariant."""

    @pytest.mark.parametrize("scheme", LOW_SYNC_SCHEMES)
    @pytest.mark.parametrize("k", [0, 5])
    def test_step_reductions_bounded(self, scheme, k):
        budget = 1 if scheme == "sketched" else 2
        _, counts = _run_engine(scheme, n=400, p=8, steps=40, k=k)
        assert len(counts) == 40
        assert max(counts) <= budget, (
            f"{scheme}: per-step reductions {counts} exceed {budget}")
        # folding C_k into the stacked projector must not add messages
        assert counts[0] == counts[-1]

    def test_mgs_oracle_grows_with_depth(self):
        """The baseline the engine beats: MGS charges O(j) per step."""
        n, p = 400, 8
        rng = make_rng(7, p)
        orth = PseudoBlockOrthogonalizer("mgs", n=n, p=p,
                                         dtype=np.complex128, max_cols=41)
        v = np.zeros((41, n, p), dtype=np.complex128)
        v[0], _ = householder_qr(_complex(rng, n, p))
        led = CostLedger()
        per_step = {}
        with ledger.install(led):
            orth.begin(v[:1])
            for j in range(30):
                w = _complex(rng, n, p)
                before = led.counts()[0]
                w2, dots, nrm = orth.step(v[: j + 1], w, j)
                per_step[j] = led.counts()[0] - before
                v[j + 1] = w2 / nrm
                orth.commit(np.ones(p, dtype=bool))
        assert per_step[0] == 2
        assert per_step[29] == 31  # j + 2: linear in depth
        assert per_step[29] > 10 * 2  # vs. the low-sync budget

    @pytest.mark.parametrize("scheme,expected", [
        ("cgs", 2), ("imgs", 3), ("cgs2_1r", 2), ("cholqr2", 2),
        ("sketched", 1),
    ])
    def test_pseudo_block_step_counts(self, scheme, expected):
        """Per-column bundle path (gmres/pgcrodr/gmresdr): fixed counts."""
        n, p = 300, 3
        rng = make_rng(11, p)
        orth = PseudoBlockOrthogonalizer(scheme, n=n, p=p,
                                         dtype=np.complex128, max_cols=25)
        v = np.zeros((25, n, p), dtype=np.complex128)
        v0 = _complex(rng, n, p)
        v[0] = v0 / np.linalg.norm(v0, axis=0)
        led = CostLedger()
        with ledger.install(led):
            orth.begin(v[:1])
            for j in range(20):
                w = _complex(rng, n, p)
                before = led.counts()[0]
                w2, dots, nrm = orth.step(v[: j + 1], w, j)
                got = led.counts()[0] - before
                assert got == expected, f"{scheme} step {j}: {got}"
                v[j + 1] = w2 / nrm
                orth.commit(np.ones(p, dtype=bool))


class TestLossOfOrthogonality:
    """Each scheme must deliver the LOO its registry row promises."""

    @pytest.mark.parametrize("scheme", LOW_SYNC_SCHEMES)
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), p=st.sampled_from([1, 8]),
           ill=st.booleans())
    def test_basis_loo_within_registry_bound(self, scheme, seed, p, ill):
        q, _ = _run_engine(scheme, n=256, p=p, steps=6, k=3,
                           seed=seed, ill=ill)
        g = q.conj().T @ q
        loo = np.linalg.norm(g - np.eye(g.shape[0]))
        tol = SCHEMES[scheme].orth_tol
        assert loo <= tol, f"{scheme}: LOO {loo:.2e} > {tol:.2e}"

    def test_cgs2_1r_matches_mgs_quality(self):
        """Equal final orthogonality at a fraction of the messages."""
        q2, counts2 = _run_engine("cgs2_1r", n=400, p=8, steps=20, seed=3)
        loo2 = np.linalg.norm(q2.conj().T @ q2 - np.eye(q2.shape[1]))
        assert loo2 < 1e-12
        assert max(counts2) <= 2


class TestDistributedPrimitives:
    """Fused and per-rank paths: same values, bit-identical ledgers."""

    def test_gram_against_one_reduction_and_conserved(self):
        n, nranks, p = 120, 4, 2
        rng = make_rng(5, p)
        xs = _complex(rng, n, p)
        bs = [_complex(rng, n, p) for _ in range(3)]
        results, ledgers = {}, {}
        for mode in ("fused", "per_rank"):
            grid = VirtualGrid(n, nranks)
            led = CostLedger()
            with use_exec_mode(mode), ledger.install(led):
                x = DistributedBlockVector.from_global(grid, xs)
                basis = [DistributedBlockVector.from_global(grid, b)
                         for b in bs]
                results[mode] = x.gram_against(basis)
            ledgers[mode] = led.counts()
        np.testing.assert_allclose(results["fused"], results["per_rank"],
                                   rtol=1e-13)
        assert ledgers["fused"] == ledgers["per_rank"]
        assert ledgers["fused"][0] == 1  # ONE reduction for the whole stack
        expect = np.concatenate([b.conj().T @ xs for b in bs], axis=0)
        np.testing.assert_allclose(results["fused"], expect, rtol=1e-13)

    def test_distributed_cholqr2_two_reductions(self):
        n, nranks, p = 96, 4, 6
        rng = make_rng(9, p)
        xs = _complex(rng, n, p)
        ledgers = {}
        for mode in ("fused", "per_rank"):
            grid = VirtualGrid(n, nranks)
            led = CostLedger()
            with use_exec_mode(mode), ledger.install(led):
                x = DistributedBlockVector.from_global(grid, xs)
                q, r = distributed_cholqr2(x)
            ledgers[mode] = led.counts()
            qg = q.to_global()
            assert np.linalg.norm(qg.conj().T @ qg - np.eye(p)) < 1e-13
            assert np.linalg.norm(qg @ r - xs) / np.linalg.norm(xs) < 1e-13
            assert led.counts()[0] == 2
        assert ledgers["fused"] == ledgers["per_rank"]


class TestCheckerSchemeScaling:
    """verify tolerances come from the scheme registry, both checker paths."""

    @pytest.mark.parametrize("scheme", sorted(ORTHO_SCHEME_NAMES))
    def test_checker_for_applies_registry_tol(self, scheme):
        o = Options(krylov_method="gmres", verify="full",
                    orthogonalization=scheme)
        chk = checker_for(o, context="t")
        assert chk.orth_tol == SCHEMES[scheme].orth_tol

    def test_sketched_widens_residual_gap(self):
        o = Options(krylov_method="gmres", verify="full",
                    orthogonalization="sketched")
        chk = checker_for(o)
        assert chk.residual_gap_rtol == SCHEMES["sketched"].residual_gap_rtol
        assert chk.residual_gap_rtol > InvariantChecker("full").residual_gap_rtol

    def test_ambient_checker_is_scaled_too(self):
        """The api-level ambient checker must pick up scheme ceilings."""
        o = Options(krylov_method="gmres", verify="full",
                    orthogonalization="cholqr2")
        amb = InvariantChecker("full", context="api")
        with activate(amb):
            chk = checker_for(o)
        assert chk is amb
        assert amb.orth_tol == SCHEMES["cholqr2"].orth_tol


class TestRegistryIsSingleSource:
    """Options validation and the engine agree on the scheme names."""

    def test_registry_names_cover_options(self):
        assert set(LOW_SYNC_SCHEMES) <= set(ORTHO_SCHEME_NAMES)
        assert {"cgs", "mgs", "imgs"} <= set(ORTHO_SCHEME_NAMES)
        assert {"cholqr", "cholqr2", "tsqr",
                "householder"} <= set(QR_SCHEME_NAMES)
        for name, info in SCHEMES.items():
            assert info.name == name
            assert info.orth_tol > 0
            assert info.is_ortho or info.is_qr

    def test_options_reject_unknown_scheme(self):
        with pytest.raises(Exception):
            Options(krylov_method="gmres", orthogonalization="nope")

    @pytest.mark.parametrize("scheme", sorted(ORTHO_SCHEME_NAMES))
    def test_options_accept_every_registry_scheme(self, scheme):
        o = Options(krylov_method="gmres", orthogonalization=scheme)
        assert o.orthogonalization == scheme


class TestMutationSmokePerScheme:
    """A corrupted engine must still trip the (scheme-scaled) checker."""

    @pytest.mark.parametrize("scheme", LOW_SYNC_SCHEMES)
    def test_leaky_engine_detected(self, scheme, monkeypatch):
        real_make = cycle_mod.make_arnoldi_engine

        def bad_make(*args, **kw):
            eng = real_make(*args, **kw)
            orig = eng.step

            def leaky(v_blocks, w, *, ck=None):
                q, h, r, rank, e_col = orig(v_blocks, w, ck=ck)
                if len(v_blocks) >= 2:
                    q = q + 1e-2 * v_blocks[0]
                return q, h, r, rank, e_col

            eng.step = leaky
            return eng

        monkeypatch.setattr(cycle_mod, "make_arnoldi_engine", bad_make)
        cfg = Config("bgmres", p=3, ortho=scheme)
        a, b, m = make_problem(cfg)
        with pytest.raises(InvariantViolation):
            solve(a, b, m, options=cfg.options(verify="full"))


class TestRecycleSequencesAllSchemes:
    """Fresh solve -> adoption -> same-system skip, per scheme.

    The recycled pair is re-orthonormalized exactly whenever the scheme's
    basis is inexact, so even at ``verify=cheap`` (which checks ``C^H C``
    drift on adoption) every scheme must sail through the full sequence.
    """

    @pytest.mark.parametrize("scheme", sorted(ORTHO_SCHEME_NAMES))
    @pytest.mark.parametrize("p", [1, 3])
    def test_sequence(self, scheme, p):
        cfg = Config("gcrodr", p=p, ortho=scheme)
        a, b, m = make_problem(cfg)
        o = cfg.options(verify="cheap")
        r1 = solve(a, b, m, options=o)
        assert np.all(r1.converged)
        space = r1.info["recycle"]
        assert space is not None
        r2 = solve(a, b + 0.5, m, options=o, recycle=space)
        assert np.all(r2.converged)
        r3 = solve(a, b + 1.0, m, options=o,
                   recycle=r2.info["recycle"], same_system=True)
        assert np.all(r3.converged)
        for res in (r2, r3):
            rep = res.info.get("verify")
            assert rep is not None and not rep["violations"]
