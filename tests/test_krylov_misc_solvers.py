"""Tests for LGMRES, CG, Chebyshev, and the api-level dispatch."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import Options, Solver, solve
from repro.krylov.base import FunctionPreconditioner
from repro.krylov.cg import cg
from repro.krylov.chebyshev import ChebyshevSmoother, estimate_lambda_max
from repro.krylov.gcrodr import gcrodr
from repro.krylov.lgmres import lgmres
from repro.krylov.recycling import GLOBAL_STORE, RecycledSubspace, RecyclingStore

from conftest import (convection_diffusion_1d, laplacian_1d, laplacian_2d,
                      relative_residuals)


class TestLgmres:
    def test_converges(self, rng):
        a = laplacian_1d(400)
        b = rng.standard_normal(400)
        res = lgmres(a, b, options=Options(krylov_method="lgmres",
                                           gmres_restart=30, recycle=10,
                                           tol=1e-8, max_it=5000))
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-7

    def test_augmentation_accelerates_restarts(self, rng):
        """LGMRES(m, l) beats plain GMRES(m) on restart-limited problems."""
        from repro.krylov.gmres import gmres
        a = laplacian_1d(500)
        b = rng.standard_normal(500)
        o = dict(gmres_restart=30, tol=1e-8, max_it=6000)
        rg = gmres(a, b, options=Options(**o))
        rl = lgmres(a, b, options=Options(krylov_method="lgmres", recycle=10, **o))
        assert rl.converged.all()
        assert (not rg.converged.all()) or rl.iterations < rg.iterations

    def test_gcrodr_beats_lgmres(self, rng):
        """The paper's Fig. 3c claim, at model scale."""
        a = laplacian_1d(500)
        b = rng.standard_normal(500)
        o = dict(gmres_restart=30, recycle=10, tol=1e-8, max_it=6000)
        rl = lgmres(a, b, options=Options(krylov_method="lgmres", **o))
        rr = gcrodr(a, b, options=Options(krylov_method="gcrodr", **o))
        assert rr.converged.all() and rl.converged.all()
        assert rr.iterations < rl.iterations

    def test_multiple_rhs_rejected(self, rng):
        a = laplacian_1d(50)
        with pytest.raises(ValueError, match="single right-hand side"):
            lgmres(a, rng.standard_normal((50, 2)),
                   options=Options(krylov_method="lgmres"))

    def test_flexible_rejected(self):
        a = laplacian_1d(30)
        with pytest.raises(ValueError, match="flexible"):
            lgmres(a, np.ones(30), options=Options(krylov_method="lgmres",
                                                   variant="flexible"))

    def test_explicit_augment_argument(self, rng):
        a = laplacian_1d(300)
        b = rng.standard_normal(300)
        res = lgmres(a, b, augment=5,
                     options=Options(krylov_method="lgmres", gmres_restart=25,
                                     tol=1e-8, max_it=5000))
        assert res.converged.all()
        assert res.info["augment"] == 5

    def test_left_preconditioning(self, rng):
        a = convection_diffusion_1d(200)
        dinv = 1.0 / a.diagonal()
        m = FunctionPreconditioner(lambda x: dinv[:, None] * x)
        res = lgmres(a, rng.standard_normal(200), m,
                     options=Options(krylov_method="lgmres", variant="left",
                                     recycle=5, tol=1e-9, max_it=3000))
        assert res.converged.all()


class TestCg:
    def test_spd_convergence(self, rng):
        a = laplacian_2d(16)
        n = a.shape[0]
        b = rng.standard_normal((n, 3))
        res = cg(a, b, options=Options(krylov_method="cg", tol=1e-10,
                                       max_it=2000))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-9)

    def test_jacobi_preconditioned(self, rng):
        a = laplacian_2d(14)
        d = a.diagonal()
        m = FunctionPreconditioner(lambda x: x / d[:, None])
        b = rng.standard_normal(a.shape[0])
        r0 = cg(a, b, options=Options(krylov_method="cg", tol=1e-9, max_it=3000))
        r1 = cg(a, b, m, options=Options(krylov_method="cg", tol=1e-9,
                                         max_it=3000))
        assert r1.converged.all()
        assert r1.iterations <= r0.iterations + 2

    def test_exact_in_n_iterations(self, rng):
        n = 30
        a = laplacian_1d(n, shift=0.5)
        b = rng.standard_normal(n)
        res = cg(a, b, options=Options(krylov_method="cg", tol=1e-12,
                                       max_it=n + 5))
        assert res.converged.all()
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(res.x, x_ref, atol=1e-6)

    def test_fixed_iteration_smoother_mode(self, rng):
        # unreachable tolerance + small max_it = fixed smoother sweeps
        a = laplacian_2d(10)
        b = rng.standard_normal(a.shape[0])
        res = cg(a, b, options=Options(krylov_method="cg", tol=1e-300,
                                       max_it=4))
        assert res.iterations == 4
        assert not res.converged.all()

    def test_columns_freeze_independently(self, rng):
        a = laplacian_1d(80, shift=1.0)
        b = rng.standard_normal((80, 2))
        b[:, 1] *= 1e-8  # second column converges almost immediately
        res = cg(a, b, options=Options(krylov_method="cg", tol=1e-6,
                                       max_it=500))
        assert res.converged.all()
        its = res.iterations_per_rhs(1e-6)
        assert its[1] <= its[0]


class TestChebyshev:
    def test_lambda_max_estimate(self):
        a = laplacian_1d(100)
        lam = estimate_lambda_max(
            __import__("repro").as_operator(a), a.diagonal())
        # exact lambda_max(D^-1 A) = 2 for the 1-D Laplacian (diag = 2)
        assert 1.5 < lam < 2.2

    def test_smoother_damps_high_frequencies(self, rng):
        a = laplacian_1d(200)
        m = ChebyshevSmoother(a, degree=3)
        x_true = rng.standard_normal(200)
        b = a @ x_true
        x1 = m.apply(b.reshape(-1, 1))
        r1 = np.linalg.norm(b - a @ x1[:, 0])
        assert r1 < np.linalg.norm(b)

    def test_is_linear_operator(self, rng):
        """Fixed polynomial in A: apply must be exactly linear."""
        a = laplacian_1d(100)
        m = ChebyshevSmoother(a, degree=2)
        x = rng.standard_normal((100, 1))
        y = rng.standard_normal((100, 1))
        lhs = m.apply(2.0 * x + 3.0 * y)
        rhs = 2.0 * m.apply(x) + 3.0 * m.apply(y)
        assert np.allclose(lhs, rhs, atol=1e-12)
        assert not m.is_variable

    def test_as_gmres_preconditioner(self, rng):
        from repro.krylov.gmres import gmres
        a = laplacian_1d(300)
        m = ChebyshevSmoother(a, degree=4)
        b = rng.standard_normal(300)
        o = Options(tol=1e-8, max_it=4000)
        r0 = gmres(a, b, options=o)
        r1 = gmres(a, b, m, options=o.replace(variant="right"))
        assert r1.converged.all()
        assert r1.iterations < max(r0.iterations, 1)


class TestApiDispatch:
    @pytest.mark.parametrize("method,needs_recycle", [
        ("gmres", False), ("bgmres", False), ("cg", False),
        ("lgmres", False), ("gcrodr", True), ("bgcrodr", True),
    ])
    def test_all_methods_dispatch(self, rng, method, needs_recycle):
        a = laplacian_1d(120, shift=0.5)
        b = rng.standard_normal(120)
        kw = dict(krylov_method=method, tol=1e-8, max_it=3000)
        if needs_recycle:
            kw["recycle"] = 5
        if method == "lgmres":
            kw["recycle"] = 5
        res = solve(a, b, options=Options(**kw))
        assert res.converged.all()

    def test_unimplemented_methods_raise(self):
        a = laplacian_1d(10)
        with pytest.raises(NotImplementedError):
            solve(a, np.ones(10), options=Options(krylov_method="richardson"))

    def test_solver_reset(self, rng):
        a = laplacian_1d(200)
        s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=20,
                                   recycle=5, tol=1e-8, max_it=4000))
        s.solve(a, rng.standard_normal(200))
        assert s.recycled is not None
        s.reset()
        assert s.recycled is None
        assert s.results == []

    def test_solver_detects_operator_change(self, rng):
        n = 150
        a1 = laplacian_1d(n, shift=0.1)
        a2 = laplacian_1d(n, shift=0.6)
        s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=20,
                                   recycle=5, tol=1e-8, max_it=4000))
        s.solve(a1, rng.standard_normal(n))
        r2 = s.solve(a2, rng.standard_normal(n))
        assert not r2.info["same_system"]
        r3 = s.solve(a2, rng.standard_normal(n))
        assert r3.info["same_system"]


class TestRecyclingStore:
    def test_put_get_drop(self, rng):
        store = RecyclingStore()
        space = RecycledSubspace(rng.standard_normal((10, 2)),
                                 rng.standard_normal((10, 2)))
        store.put("heat", space)
        assert "heat" in store
        assert store.get("heat") is space
        assert len(store) == 1
        store.drop("heat")
        assert store.get("heat") is None

    def test_clear(self, rng):
        store = RecyclingStore()
        store.put(1, RecycledSubspace(np.ones((4, 1)), np.ones((4, 1))))
        store.clear()
        assert len(store) == 0

    def test_global_store_exists(self):
        assert isinstance(GLOBAL_STORE, RecyclingStore)

    def test_subspace_copy_independent(self, rng):
        s = RecycledSubspace(rng.standard_normal((8, 2)),
                             rng.standard_normal((8, 2)), op_tag="x")
        c = s.copy()
        c.u[:] = 0
        assert not np.allclose(s.u, 0)
        assert c.op_tag == "x"

    def test_matches_operator(self):
        s = RecycledSubspace(np.ones((4, 1)), np.ones((4, 1)), op_tag=42)
        assert s.matches_operator(42)
        assert not s.matches_operator(43)
        s2 = RecycledSubspace(np.ones((4, 1)), np.ones((4, 1)))
        assert not s2.matches_operator(None)
