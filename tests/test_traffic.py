"""Golden-replay tests for the deterministic traffic harness.

Pins the ISSUE-7 determinism contract: a seeded
:class:`~repro.service.traffic.TrafficConfig` expands to a byte-identical
schedule and report across invocations and across the ``sync``/``async``
service modes at equal inputs, and a mutation test proves the admission
bound is load-bearing (disabling it trips the harness's backpressure
assertion).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.service.scheduler import AsyncSolveService
from repro.service.traffic import (Arrival, TrafficConfig, build_operators,
                                   generate, run_traffic, schedule_digest)

#: CI-sized scenario: small enough to replay twice per mode in seconds
CFG = TrafficConfig(n_requests=120, n_operators=6, grid=6, shards=3,
                    pmax=8, rate=5e5)


@pytest.fixture(scope="module")
def reports():
    """One replay per mode, shared across the module's assertions."""
    return {mode: run_traffic(CFG, mode) for mode in ("sync", "async")}


class TestGenerator:
    def test_schedule_is_deterministic(self):
        a, b = generate(CFG), generate(CFG)
        assert a == b
        assert schedule_digest(a) == schedule_digest(b)

    def test_different_seed_different_schedule(self):
        other = dataclasses.replace(CFG, seed=CFG.seed + 1)
        assert schedule_digest(generate(CFG)) != \
            schedule_digest(generate(other))

    def test_zipf_popularity_is_skewed(self):
        from collections import Counter
        counts = Counter(a.op for a in generate(CFG))
        assert counts[0] > counts[max(counts)]  # hot head, cold tail

    def test_arrival_times_nondecreasing(self):
        times = [a.time for a in generate(CFG)]
        assert times == sorted(times)

    def test_bursts_collapse_timestamps(self):
        cfg = dataclasses.replace(CFG, burst_every=10, burst_size=5)
        arrivals = generate(cfg)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        # each burst window shares one timestamp
        assert times[10] == times[11] == times[14]

    def test_closed_loop_times_zero(self):
        cfg = dataclasses.replace(CFG, arrival="closed")
        assert all(a.time == 0.0 for a in generate(cfg))

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            generate(dataclasses.replace(CFG, arrival="warp"))

    def test_operators_distinct_fingerprints(self):
        from repro.service import operator_fingerprint
        fps = {operator_fingerprint(a) for a in build_operators(CFG)}
        assert len(fps) == CFG.n_operators


class TestGoldenReplay:
    def test_two_runs_byte_identical(self, reports):
        """The headline determinism gate: payload bytes compare equal."""
        again = run_traffic(CFG, "async")
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(reports["async"], sort_keys=True)
        assert again["metrics_snapshot"] == \
            reports["async"]["metrics_snapshot"]
        assert again["metrics_digest"] == reports["async"]["metrics_digest"]

    def test_sync_runs_byte_identical(self, reports):
        again = run_traffic(CFG, "sync")
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(reports["sync"], sort_keys=True)

    def test_modes_share_schedule_and_correctness(self, reports):
        """Equal inputs across modes: same schedule digest, same request
        population, every request solved and converged in both."""
        sync, async_ = reports["sync"], reports["async"]
        assert sync["schedule_digest"] == async_["schedule_digest"]
        assert sync["n_requests"] == async_["n_requests"]
        assert sync["n_admitted"] == async_["n_admitted"]  # no bound set
        assert sync["all_converged"] and async_["all_converged"]

    def test_async_faster_than_sync_oracle(self, reports):
        assert reports["async"]["throughput"] > reports["sync"]["throughput"]

    def test_report_shape(self, reports):
        for mode, r in reports.items():
            assert r["mode"] == mode
            assert set(r["latency"]) == {"p50", "p90", "p99", "mean", "max"}
            assert 0.0 < r["latency"]["p50"] <= r["latency"]["p99"] \
                <= r["latency"]["max"]
            assert r["batches"]["count"] > 0
            assert 0.0 <= r["cache"]["hit_rate"] <= 1.0
            assert r["rejection_rate"] == 0.0  # unbounded admission
        assert "queue_high_water" in reports["async"]
        assert "service_requests_total" in reports["async"][
            "metrics_snapshot"]
        assert "service_queue_depth" in reports["async"]["metrics_snapshot"]

    def test_closed_loop_runs(self):
        cfg = dataclasses.replace(CFG, n_requests=48, arrival="closed",
                                  users=8, think_time=1e-4)
        r1 = run_traffic(cfg, "async")
        r2 = run_traffic(cfg, "async")
        assert json.dumps(r1, sort_keys=True) == \
            json.dumps(r2, sort_keys=True)
        assert r1["all_converged"]
        assert r1["n_admitted"] == 48


class TestBackpressure:
    BOUNDED = dataclasses.replace(CFG, rate=1e6, queue_depth=4,
                                  burst_every=10, burst_size=8)

    def test_bounded_run_rejects_and_respects_bound(self):
        r = run_traffic(self.BOUNDED, "async")
        assert r["n_rejected"] > 0, "oversubscribed run must shed load"
        assert r["rejection_reasons"] == ["queue_full"]
        assert max(r["queue_high_water"]) <= self.BOUNDED.queue_depth
        assert r["n_admitted"] + r["n_rejected"] == r["n_requests"]
        assert r["all_converged"]  # shed load, never corrupt results

    def test_unbounded_admission_trips_the_assertion(self, monkeypatch):
        """Mutation test: if admission control is disabled, queues exceed
        the configured bound and the harness's backpressure assertion
        fires — proving the bound is enforced by ``_admit``, not by
        accident of the workload."""
        monkeypatch.setattr(AsyncSolveService, "_admit",
                            lambda self, req, shard: None)
        with pytest.raises(AssertionError, match="high water"):
            run_traffic(self.BOUNDED, "async")

    def test_rejected_requests_counted_in_metrics(self):
        r = run_traffic(self.BOUNDED, "async")
        assert 'service_rejected_total{reason="queue_full"}' in \
            r["metrics_snapshot"]
