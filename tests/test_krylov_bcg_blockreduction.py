"""Tests for Block CG and BGMRES block-size reduction."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import Options, solve
from repro.krylov.bcg import bcg
from repro.krylov.bgmres import bgmres
from repro.krylov.cg import cg
from repro.precond.simple import JacobiPreconditioner
from repro.util import ledger

from conftest import laplacian_1d, laplacian_2d, relative_residuals


class TestBlockCG:
    def test_spd_convergence(self, rng):
        a = laplacian_2d(18)
        b = rng.standard_normal((a.shape[0], 5))
        res = bcg(a, b, options=Options(krylov_method="bcg", tol=1e-9,
                                        max_it=2000))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_block_beats_pseudo_block(self, rng):
        """Shared Krylov space: fewer iterations than fused single CG."""
        a = laplacian_2d(20)
        b = rng.standard_normal((a.shape[0], 6))
        o = Options(krylov_method="bcg", tol=1e-9, max_it=3000)
        rb = bcg(a, b, options=o)
        rc = cg(a, b, options=o.replace(krylov_method="cg"))
        assert rb.converged.all()
        assert rb.iterations < rc.iterations

    def test_single_rhs_matches_cg(self, rng):
        a = laplacian_1d(200, shift=0.2)
        b = rng.standard_normal(200)
        o = Options(krylov_method="bcg", tol=1e-10, max_it=1000)
        rb = bcg(a, b, options=o)
        rc = cg(a, b, options=o.replace(krylov_method="cg"))
        assert abs(rb.iterations - rc.iterations) <= 1
        assert np.allclose(rb.x, rc.x, atol=1e-7)

    def test_colinear_rhs_breakdown_handled(self, rng):
        a = laplacian_1d(150, shift=0.3)
        v = rng.standard_normal(150)
        b = np.column_stack([v, 3.0 * v])
        res = bcg(a, b, options=Options(krylov_method="bcg", tol=1e-9,
                                        max_it=2000))
        assert res.converged.all()
        assert res.breakdown

    def test_preconditioned(self, rng):
        a = laplacian_2d(14)
        b = rng.standard_normal((a.shape[0], 3))
        m = JacobiPreconditioner(a)
        res = bcg(a, b, m, options=Options(krylov_method="bcg", tol=1e-9,
                                           max_it=2000))
        assert res.converged.all()

    def test_variable_preconditioner_rejected(self):
        from repro.krylov.base import FunctionPreconditioner
        a = laplacian_1d(30, shift=1.0)
        m = FunctionPreconditioner(lambda x: x, is_variable=True)
        with pytest.raises(ValueError, match="fixed"):
            bcg(a, np.ones((30, 2)), m)

    def test_exact_solution(self, rng):
        a = laplacian_1d(40, shift=0.5)
        b = rng.standard_normal((40, 2))
        res = bcg(a, b, options=Options(krylov_method="bcg", tol=1e-11,
                                        max_it=100))
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(res.x, x_ref, atol=1e-6)

    def test_api_dispatch(self, rng):
        a = laplacian_1d(60, shift=0.5)
        res = solve(a, rng.standard_normal((60, 2)),
                    options=Options(krylov_method="bcg", tol=1e-9))
        assert res.method == "bcg"
        assert res.converged.all()

    def test_two_reductions_per_iteration(self, rng):
        a = laplacian_1d(200, shift=0.2)
        b = rng.standard_normal((200, 4))
        with ledger.install() as led:
            res = bcg(a, b, options=Options(krylov_method="bcg", tol=1e-9,
                                            max_it=1000))
        # two gram reductions + one norm per iteration (plus the initial one)
        assert led.reductions <= 3 * res.iterations + 3


class TestBlockSizeReduction:
    def _colinear_problem(self, rng, n=250, eps=1e-10):
        a = sp.diags([-np.ones(n - 1), 2.4 * np.ones(n), -np.ones(n - 1)],
                     [-1, 0, 1]).tocsr()
        v = rng.standard_normal(n)
        b = np.column_stack([v, 2 * v + eps * rng.standard_normal(n),
                             rng.standard_normal(n)])
        return a, b

    def test_reduction_converges_all_columns(self, rng):
        a, b = self._colinear_problem(rng)
        o = Options(krylov_method="bgmres", tol=1e-9, max_it=2000,
                    block_reduction=True, deflation_tol=1e-8)
        with ledger.install() as led:
            res = bgmres(a, b, options=o)
        assert res.converged.all()
        assert led.calls["block_reduction"] >= 1
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_reduction_saves_work(self, rng):
        """Narrower blocks => fewer operator columns for the same result."""
        a, b = self._colinear_problem(rng)
        apps = {}
        for red in (False, True):
            o = Options(krylov_method="bgmres", tol=1e-9, max_it=2000,
                        block_reduction=red, deflation_tol=1e-8)
            with ledger.install() as led:
                res = bgmres(a, b, options=o)
            assert res.converged.all()
            apps[red] = led.calls["operator_apply"]
        assert apps[True] <= apps[False]

    def test_no_reduction_on_full_rank(self, rng):
        a = laplacian_1d(150, shift=0.4)
        b = rng.standard_normal((150, 3))
        o = Options(krylov_method="bgmres", tol=1e-9, max_it=2000,
                    block_reduction=True)
        with ledger.install() as led:
            res = bgmres(a, b, options=o)
        assert res.converged.all()
        assert led.calls["block_reduction"] == 0

    def test_option_parses_from_cli(self):
        from repro import parse_hpddm_args
        o = parse_hpddm_args(["-hpddm_krylov_method", "bgmres",
                              "-hpddm_block_reduction",
                              "-hpddm_deflation_tol", "1e-6"])
        assert o.block_reduction
        assert o.deflation_tol == 1e-6
