"""Tests for pseudo-block (F)GMRES."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options, solve
from repro.krylov.base import FunctionPreconditioner, Operator
from repro.krylov.gmres import gmres
from repro.util import ledger

from conftest import (complex_shifted, convection_diffusion_1d,
                      laplacian_1d, laplacian_2d, make_rng,
                      relative_residuals)


class TestBasicConvergence:
    def test_single_rhs(self, rng):
        a = convection_diffusion_1d(200)
        b = rng.standard_normal(200)
        res = gmres(a, b, options=Options(tol=1e-10))
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-9
        assert res.x.shape == (200,)  # 1-D rhs squeezed back

    def test_multiple_rhs_fused(self, rng):
        a = convection_diffusion_1d(300)
        b = rng.standard_normal((300, 5))
        res = gmres(a, b, options=Options(tol=1e-10))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-9)
        assert res.x.shape == (300, 5)

    def test_full_gmres_is_direct(self, rng):
        # unrestarted GMRES on a well-conditioned n x n system converges
        # within n iterations to the exact solution
        n = 40
        a = laplacian_1d(n, shift=1.0)
        b = rng.standard_normal(n)
        res = gmres(a, b, options=Options(gmres_restart=n, tol=1e-12, max_it=n + 2))
        assert res.converged.all()
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(res.x, x_ref, atol=1e-8)

    def test_identity_converges_in_one(self, rng):
        a = sp.eye(50).tocsr()
        b = rng.standard_normal((50, 2))
        res = gmres(a, b, options=Options(tol=1e-12))
        assert res.iterations <= 1
        assert res.converged.all()

    def test_zero_rhs_column(self, rng):
        a = laplacian_1d(60, shift=1.0)
        b = rng.standard_normal((60, 3))
        b[:, 1] = 0.0
        res = gmres(a, b, options=Options(tol=1e-10))
        assert res.converged.all()
        assert np.allclose(res.x[:, 1], 0.0)

    def test_zero_initial_residual_with_x0(self, rng):
        a = laplacian_1d(50, shift=1.0)
        x_true = rng.standard_normal(50)
        b = a @ x_true
        res = gmres(a, b, options=Options(tol=1e-10), x0=x_true)
        assert res.converged.all()
        assert res.iterations == 0

    def test_x0_respected(self, rng):
        a = convection_diffusion_1d(120)
        b = rng.standard_normal((120, 2))
        x0 = rng.standard_normal((120, 2))
        res = gmres(a, b, options=Options(tol=1e-10), x0=x0)
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-9)

    def test_max_it_respected(self, rng):
        a = laplacian_1d(500)  # hard for GMRES(10)
        b = rng.standard_normal(500)
        res = gmres(a, b, options=Options(gmres_restart=10, max_it=37, tol=1e-14))
        assert res.iterations <= 37
        assert not res.converged.all()

    def test_restart_counted(self, rng):
        a = laplacian_1d(200)
        b = rng.standard_normal(200)
        res = gmres(a, b, options=Options(gmres_restart=15, tol=1e-8, max_it=5000))
        assert res.restarts >= 2


class TestPreconditioning:
    @pytest.fixture
    def ilu_prec(self):
        a = convection_diffusion_1d(250)
        ilu = spla.spilu(a.tocsc(), drop_tol=1e-4)
        def apply(x):
            return np.column_stack([ilu.solve(x[:, j]) for j in range(x.shape[1])])
        return a, FunctionPreconditioner(apply)

    @pytest.mark.parametrize("variant", ["left", "right", "flexible"])
    def test_variants_converge(self, rng, ilu_prec, variant):
        a, m = ilu_prec
        b = rng.standard_normal((250, 3))
        res = gmres(a, b, m, options=Options(variant=variant, tol=1e-10))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_preconditioner_reduces_iterations(self, rng, ilu_prec):
        a, m = ilu_prec
        b = rng.standard_normal(250)
        plain = gmres(a, b, options=Options(tol=1e-8, max_it=1000))
        prec = gmres(a, b, m, options=Options(tol=1e-8, variant="right"))
        assert prec.iterations < plain.iterations

    def test_variable_preconditioner_requires_flexible(self):
        a = laplacian_1d(30, shift=1.0)
        m = FunctionPreconditioner(lambda x: x, is_variable=True)
        with pytest.raises(ValueError, match="flexible"):
            gmres(a, np.ones(30), m, options=Options(variant="right"))

    def test_variable_preconditioner_flexible_ok(self, rng):
        a = laplacian_1d(80, shift=0.5)
        calls = [0]
        def varjac(x):
            calls[0] += 1
            return x / (2.5 + 0.1 * np.sin(calls[0]))
        m = FunctionPreconditioner(varjac, is_variable=True)
        b = rng.standard_normal(80)
        res = gmres(a, b, m, options=Options(variant="flexible", tol=1e-9,
                                             max_it=500))
        assert res.converged.all()


class TestNumerics:
    def test_complex_system(self, rng):
        a = complex_shifted(150)
        b = rng.standard_normal((150, 2)) + 1j * rng.standard_normal((150, 2))
        res = gmres(a, b, options=Options(tol=1e-10))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-9)

    def test_imgs_on_tough_matrix(self, rng):
        # reorthogonalization should not be worse than CGS
        a = laplacian_2d(16)
        b = rng.standard_normal(a.shape[0])
        r1 = gmres(a, b, options=Options(tol=1e-8, orthogonalization="cgs",
                                         max_it=4000))
        r2 = gmres(a, b, options=Options(tol=1e-8, orthogonalization="imgs",
                                         max_it=4000))
        assert r2.converged.all()
        assert r2.iterations <= r1.iterations + 5

    def test_history_matches_final_residual(self, rng):
        a = convection_diffusion_1d(100)
        b = rng.standard_normal((100, 2))
        res = gmres(a, b, options=Options(tol=1e-9))
        true = relative_residuals(a, res.x, b)
        assert np.allclose(res.residual_norms, true, atol=1e-10)

    def test_history_monotone_per_column(self, rng):
        a = convection_diffusion_1d(150)
        b = rng.standard_normal((150, 3))
        res = gmres(a, b, options=Options(tol=1e-10))
        mat = res.history.matrix()
        # within a cycle the LS residual is non-increasing; across explicit
        # restarts small upticks at round-off scale are possible
        assert np.all(np.diff(mat, axis=0) <= 1e-8)

    def test_iterations_per_rhs(self, rng):
        a = convection_diffusion_1d(200)
        b = rng.standard_normal((200, 3))
        res = gmres(a, b, options=Options(tol=1e-9))
        its = res.iterations_per_rhs(1e-9)
        assert np.all(its >= 0)
        assert np.all(its <= res.iterations)


class TestOperatorHandling:
    def test_dense_array(self, rng):
        a = np.diag(np.arange(1.0, 31.0))
        b = rng.standard_normal(30)
        res = gmres(a, b, options=Options(tol=1e-12))
        assert res.converged.all()

    def test_custom_operator(self, rng):
        d = np.arange(1.0, 41.0)
        op = Operator((40, 40), np.float64, lambda x: d[:, None] * x, nnz=40)
        b = rng.standard_normal(40)
        res = gmres(op, b, options=Options(tol=1e-12))
        assert res.converged.all()

    def test_shape_mismatch_raises(self, rng):
        a = laplacian_1d(20)
        with pytest.raises(ValueError, match="mismatch"):
            gmres(a, np.ones(21))

    def test_bad_x0_shape_raises(self):
        a = laplacian_1d(20)
        with pytest.raises(ValueError, match="x0"):
            gmres(a, np.ones(20), x0=np.ones((20, 2)))


class TestPseudoBlockFusion:
    def test_reductions_independent_of_p(self, rng):
        """The fusion claim: reductions per iteration don't scale with p."""
        a = convection_diffusion_1d(200)
        counts = {}
        for p in (1, 4):
            b = rng.standard_normal((200, p))
            with ledger.install() as led:
                res = gmres(a, b, options=Options(tol=1e-8))
            counts[p] = (led.reductions, res.iterations)
        red1, it1 = counts[1]
        red4, it4 = counts[4]
        # per-iteration reduction count must be comparable (not ~p times more)
        assert red4 / max(it4, 1) < 2.5 * red1 / max(it1, 1)

    def test_single_spmm_per_iteration(self, rng):
        a = convection_diffusion_1d(150)
        b = rng.standard_normal((150, 6))
        with ledger.install() as led:
            res = gmres(a, b, options=Options(tol=1e-8))
        # operator applications = p per iteration *inside one fused call*
        assert led.calls["operator_apply"] <= (res.iterations + res.restarts + 1) * 6


@settings(max_examples=15, deadline=None)
@given(n=st.integers(10, 80), p=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
def test_property_gmres_solves_spd(n, p, seed):
    rng = make_rng(seed)
    a = laplacian_1d(n, shift=1.0)
    b = rng.standard_normal((n, p))
    res = gmres(a, b, options=Options(gmres_restart=min(30, n), tol=1e-9,
                                      max_it=50 * n))
    assert res.converged.all()
    assert np.all(relative_residuals(a, res.x, b) < 1e-8)
