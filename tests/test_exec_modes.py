"""Fused vs per-rank execution-mode equivalence.

The fused engine is required to be a *pure* optimization of the simulated
substrate: for every primitive and every full solve, the CostLedger counts
(reductions, reduction bytes, p2p messages, p2p bytes, flops by kernel and
named call counts) must be bit-identical between ``exec_mode="fused"`` and
``exec_mode="per_rank"``, and the numerics must agree to rounding.
"""

import gc

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import laplacian_1d, laplacian_2d

from repro import Options, parse_hpddm_args, solve
from repro.distla.distcsr import DistributedCSR
from repro.distla.distqr import (distributed_cgs_qr, distributed_cholqr,
                                 distributed_tsqr)
from repro.distla.distvec import DistributedBlockVector
from repro.krylov.base import as_operator
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.schwarz import SchwarzPreconditioner
from repro.precond.simple import JacobiPreconditioner
from repro.simmpi.grid import VirtualGrid
from repro.util import ledger
from repro.util.execmode import exec_mode, set_exec_mode, use_exec_mode
from repro.util.ledger import CostTable, Kernel
from repro.util.misc import identity_tag, next_tag

MODES = ("per_rank", "fused")


def ledger_state(led):
    """Every accounted quantity, as an exactly-comparable tuple."""
    return (led.reductions, led.reduction_bytes, led.p2p_messages,
            led.p2p_bytes, dict(led.flops), dict(led.calls))


def run_in_mode(mode, fn):
    """Run fn() under `mode` with a fresh ledger; return (result, counts)."""
    with use_exec_mode(mode), ledger.install() as led:
        out = fn()
    return out, ledger_state(led)


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

class TestPrimitiveEquivalence:
    def test_matmat(self, rng):
        a = laplacian_2d(12)
        x = rng.standard_normal((a.shape[0], 3))
        dcsr = DistributedCSR(a, nranks=8)
        y_pr, c_pr = run_in_mode("per_rank", lambda: dcsr.matmat(x))
        y_fu, c_fu = run_in_mode("fused", lambda: dcsr.matmat(x))
        assert c_fu == c_pr
        np.testing.assert_allclose(y_fu, y_pr, rtol=1e-13, atol=1e-13)
        np.testing.assert_allclose(y_fu, a @ x, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("op", ["dot", "col_dots", "norms", "axpy",
                                    "scale", "combine", "copy"])
    def test_vector_ops(self, rng, op):
        grid = VirtualGrid(96, 6)
        x = rng.standard_normal((96, 4))
        y = rng.standard_normal((96, 4))
        coeffs = rng.standard_normal((4, 2))

        def build_and_run():
            dx = DistributedBlockVector.from_global(grid, x)
            dy = DistributedBlockVector.from_global(grid, y)
            if op == "dot":
                return dx.dot(dy)
            if op == "col_dots":
                return dx.col_dots(dy)
            if op == "norms":
                return dx.norms()
            if op == "axpy":
                return dx.axpy(0.7, dy).to_global()
            if op == "scale":
                return dx.scale(-1.3).to_global()
            if op == "combine":
                return dx.combine(coeffs).to_global()
            return dx.copy().to_global()

        r_pr, c_pr = run_in_mode("per_rank", build_and_run)
        r_fu, c_fu = run_in_mode("fused", build_and_run)
        assert c_fu == c_pr
        np.testing.assert_allclose(r_fu, r_pr, rtol=1e-13, atol=1e-13)

    def test_inplace_ops_match_out_of_place(self, rng):
        grid = VirtualGrid(60, 4)
        x = rng.standard_normal((60, 3))
        y = rng.standard_normal((60, 3))
        for mode in MODES:
            with use_exec_mode(mode):
                dx = DistributedBlockVector.from_global(grid, x)
                dy = DistributedBlockVector.from_global(grid, y)
                out = dx.axpy_(0.5, dy)
                assert out is dx  # mutates in place, returns self
                np.testing.assert_allclose(dx.to_global(), x + 0.5 * y,
                                           rtol=1e-14, atol=1e-14)
                assert dx.scale_(2.0) is dx
                np.testing.assert_allclose(dx.to_global(), 2.0 * (x + 0.5 * y),
                                           rtol=1e-14, atol=1e-14)

    def test_fused_vector_has_contiguous_backing(self, rng):
        grid = VirtualGrid(40, 4)
        x = rng.standard_normal((40, 2))
        with use_exec_mode("fused"):
            dx = DistributedBlockVector.from_global(grid, x)
        assert dx.is_fused and dx.global_data is not None
        # per-rank views alias the backing store: mixed dispatch stays valid
        dx.locals[1][:] = 0.0
        assert np.all(dx.global_data[grid.rows(1)] == 0.0)
        with use_exec_mode("per_rank"):
            dpr = DistributedBlockVector.from_global(grid, x)
        assert not dpr.is_fused and dpr.global_data is None

    @pytest.mark.parametrize("qr", [distributed_cholqr, distributed_cgs_qr,
                                    distributed_tsqr])
    def test_distributed_qr(self, rng, qr):
        grid = VirtualGrid(80, 5)
        x = rng.standard_normal((80, 4))

        def run():
            dx = DistributedBlockVector.from_global(grid, x)
            q, r = qr(dx)
            return q.to_global(), r

        (q_pr, r_pr), c_pr = run_in_mode("per_rank", run)
        (q_fu, r_fu), c_fu = run_in_mode("fused", run)
        assert c_fu == c_pr
        np.testing.assert_allclose(r_fu, r_pr, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(q_fu, q_pr, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(q_fu.T @ q_fu, np.eye(4), atol=1e-10)

    @pytest.mark.parametrize("variant", ["asm", "ras", "oras"])
    def test_schwarz_apply(self, rng, variant):
        a = laplacian_2d(14)
        x = rng.standard_normal((a.shape[0], 3))
        m = SchwarzPreconditioner(a, nparts=6, overlap=1, variant=variant)
        y_pr, c_pr = run_in_mode("per_rank", lambda: m.apply(x))
        y_fu, c_fu = run_in_mode("fused", lambda: m.apply(x))
        assert c_fu == c_pr
        np.testing.assert_allclose(y_fu, y_pr, rtol=1e-11, atol=1e-12)


# ---------------------------------------------------------------------------
# full solves: identical ledgers and matching solutions (ISSUE acceptance)
# ---------------------------------------------------------------------------

def make_preconditioner(kind, a):
    if kind == "jacobi":
        return JacobiPreconditioner(a)
    if kind == "amg":
        return SmoothedAggregationAMG(a, coarse_size=40, max_levels=3)
    return SchwarzPreconditioner(a, nparts=4, overlap=1, variant="oras")


@pytest.mark.parametrize("precond", ["jacobi", "amg", "oras"])
@pytest.mark.parametrize("method,p,extra", [
    ("gmres", 1, {}),
    ("bgmres", 2, {}),
    ("gcrodr", 1, {"recycle": 5}),
    ("gcrodr", 3, {"recycle": 5}),   # pseudo-block GCRO-DR
])
class TestSolveEquivalence:
    def test_identical_ledgers_and_solutions(self, rng, method, p, extra, precond):
        a = laplacian_2d(16)
        b = rng.standard_normal((a.shape[0], p))
        m = make_preconditioner(precond, a)
        results = {}
        for mode in MODES:
            opts = Options(krylov_method=method, gmres_restart=20, tol=1e-8,
                           exec_mode=mode, **extra)
            dcsr = DistributedCSR(a, nranks=4)
            with ledger.install() as led:
                res = solve(dcsr, b, m, options=opts)
            assert res.converged.all()
            results[mode] = (res, ledger_state(led))
        res_pr, counts_pr = results["per_rank"]
        res_fu, counts_fu = results["fused"]
        # bit-identical accounting: reductions, bytes, messages, flops, calls
        assert counts_fu == counts_pr
        assert res_fu.iterations == res_pr.iterations
        np.testing.assert_allclose(res_fu.x, res_pr.x, rtol=1e-6, atol=1e-9)
        r = b - a @ res_fu.x
        assert np.all(np.linalg.norm(r, axis=0)
                      <= 1e-7 * np.linalg.norm(b, axis=0))


# ---------------------------------------------------------------------------
# mode plumbing
# ---------------------------------------------------------------------------

class TestModePlumbing:
    def test_default_is_fused(self):
        assert exec_mode() == "fused"

    def test_context_manager_nests_and_restores(self):
        assert exec_mode() == "fused"
        with use_exec_mode("per_rank"):
            assert exec_mode() == "per_rank"
            with use_exec_mode("fused"):
                assert exec_mode() == "fused"
            assert exec_mode() == "per_rank"
        assert exec_mode() == "fused"

    def test_set_returns_previous(self):
        prev = set_exec_mode("per_rank")
        try:
            assert prev == "fused"
            assert exec_mode() == "per_rank"
        finally:
            set_exec_mode(prev)
        assert exec_mode() == "fused"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            set_exec_mode("simd")
        with pytest.raises(ValueError):
            with use_exec_mode("simd"):
                pass  # pragma: no cover

    def test_options_validation_and_cli_roundtrip(self):
        with pytest.raises(ValueError):
            Options(exec_mode="bogus")
        assert Options().exec_mode is None  # inherit ambient
        opts = Options(exec_mode="per_rank")
        args = opts.hpddm_args()
        assert "-hpddm_exec_mode" in args
        assert parse_hpddm_args(args).exec_mode == "per_rank"
        assert "-hpddm_exec_mode" not in Options().hpddm_args()

    def test_solve_scopes_mode_to_the_call(self, rng):
        a = laplacian_1d(40)
        b = rng.standard_normal(40)
        assert exec_mode() == "fused"
        res = solve(a, b, options=Options(exec_mode="per_rank", tol=1e-10))
        assert res.converged.all()
        assert exec_mode() == "fused"  # restored after the solve


# ---------------------------------------------------------------------------
# satellite fixes: identity tags, nranks=1 short-circuit, CostTable
# ---------------------------------------------------------------------------

class TestIdentityTags:
    def test_monotonic_and_stable(self):
        a = sp.eye(5).tocsr()
        b = sp.eye(5).tocsr()
        assert identity_tag(a) == identity_tag(a)  # stable per object
        assert identity_tag(a) != identity_tag(b)  # distinct objects differ

    def test_tags_never_reused_after_gc(self):
        seen = set()
        for _ in range(50):
            m = sp.eye(3).tocsr()
            tag = identity_tag(m)
            assert tag not in seen  # id() would eventually collide here
            seen.add(tag)
            del m
            gc.collect()

    def test_next_tag_monotonic(self):
        t1, t2 = next_tag(), next_tag()
        assert t2 > t1

    def test_non_weakrefable_gets_fresh_tags(self):
        key = (1, 2, 3)  # tuples cannot be weak-referenced
        assert identity_tag(key) != identity_tag(key)

    def test_distcsr_and_operator_share_tag(self):
        a = laplacian_1d(20)
        dcsr = DistributedCSR(a, nranks=2)
        assert as_operator(dcsr).tag == dcsr.tag
        other = DistributedCSR(a, nranks=2)
        assert other.tag != dcsr.tag

    def test_sparse_same_object_same_tag(self):
        a = laplacian_1d(10)
        assert as_operator(a).tag == as_operator(a).tag


class TestSingleRankShortCircuit:
    def test_no_split_no_halo(self, rng):
        a = laplacian_2d(10)
        dcsr = DistributedCSR(a, nranks=1)
        assert dcsr._diag_blocks[0] is dcsr.global_matrix  # no copy
        assert dcsr._off_blocks == [None]
        assert len(dcsr.plans) == 1 and dcsr.plans[0].n_ghost == 0
        assert dcsr.cost.p2p_messages == 0
        x = rng.standard_normal((a.shape[0], 2))
        for mode in MODES:
            with use_exec_mode(mode), ledger.install() as led:
                y = dcsr.matmat(x)
            np.testing.assert_allclose(y, a @ x, rtol=1e-13)
            assert led.p2p_messages == 0 and led.p2p_bytes == 0


class TestCostTable:
    def test_charge_arithmetic(self):
        table = CostTable(p2p_messages=3, p2p_items=10, reductions=2,
                          reduction_items=5, flops_per_col=100.0,
                          events_per_col=(("foo", 2),))
        with ledger.install() as led:
            table.charge(ledger.current(), itemsize=8, p=4,
                         kernel=Kernel.SPMM)
        assert led.p2p_messages == 3
        assert led.p2p_bytes == 10 * 8 * 4   # items x itemsize x p
        assert led.reductions == 2
        # per-reduction payload, counted per event; does not scale with p
        assert led.reduction_bytes == 5 * 8 * 2
        assert led.flops[Kernel.SPMM] == 100.0 * 4
        assert led.calls["foo"] == 2 * 4

    def test_empty_table_charges_nothing(self):
        with ledger.install() as led:
            CostTable().charge(ledger.current(), p=7, kernel=Kernel.SPMV)
        assert ledger_state(led) == (0, 0, 0, 0, {}, {})

    def test_matches_per_rank_message_structure(self):
        # the precomputed table must reproduce the per-rank halo exchange
        a = laplacian_1d(64)
        dcsr = DistributedCSR(a, nranks=8)
        # 1-D chain: interior ranks have 2 neighbours, end ranks 1
        assert dcsr.cost.p2p_messages == 2 * 8 - 2
        assert dcsr.cost.p2p_items == sum(p.n_ghost for p in dcsr.plans)


class TestNullLedgerTimer:
    def test_timer_is_a_noop_without_ledger(self):
        null = ledger.current()
        with null.timer("phase"):
            pass
        # the singleton must not accumulate timer state across calls
        assert not null.timers
