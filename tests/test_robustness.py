"""Robustness and stress tests: scaling extremes, dtypes, nasty inputs."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options, Solver, solve
from repro.krylov.base import Operator

from conftest import make_rng, laplacian_1d, relative_residuals


class TestScalingExtremes:
    """Solvers must be invariant to uniform rescaling of A and b."""

    @pytest.mark.parametrize("scale", [1e-12, 1e12])
    @pytest.mark.parametrize("method,extra", [
        ("gmres", {}), ("gcrodr", {"recycle": 5}), ("bgmres", {}),
    ])
    def test_matrix_scaling(self, rng, scale, method, extra):
        a = laplacian_1d(150, shift=0.5)
        b = rng.standard_normal((150, 2))
        ref = solve(a, b, options=Options(krylov_method=method,
                                          gmres_restart=20, tol=1e-8,
                                          max_it=3000, **extra))
        scaled = solve(sp.csr_matrix(a * scale), b * scale,
                       options=Options(krylov_method=method,
                                       gmres_restart=20, tol=1e-8,
                                       max_it=3000, **extra))
        assert scaled.converged.all()
        assert abs(scaled.iterations - ref.iterations) <= 2
        assert np.allclose(scaled.x, ref.x, rtol=1e-5)

    def test_rhs_scaling_only(self, rng):
        a = laplacian_1d(100, shift=0.5)
        b = rng.standard_normal(100)
        r1 = solve(a, b, options=Options(tol=1e-9))
        r2 = solve(a, 1e9 * b, options=Options(tol=1e-9))
        assert r2.converged.all()
        assert np.allclose(r2.x, 1e9 * r1.x, rtol=1e-6)

    def test_float32_input_promoted(self, rng):
        a = laplacian_1d(80, shift=0.5).astype(np.float32)
        b = rng.standard_normal(80).astype(np.float32)
        res = solve(a, b, options=Options(tol=1e-8))
        assert res.converged.all()
        assert res.x.dtype == np.float64

    def test_mixed_real_complex(self, rng):
        a = laplacian_1d(90, shift=0.5)          # real operator
        b = rng.standard_normal(90) + 1j * rng.standard_normal(90)
        res = solve(a, b, options=Options(tol=1e-9))
        assert res.converged.all()
        assert np.iscomplexobj(res.x)
        assert relative_residuals(a, res.x, b)[0] < 1e-8


class TestDegenerateInputs:
    def test_all_zero_rhs_block(self):
        a = laplacian_1d(40, shift=0.5)
        for method, extra in [("gmres", {}), ("bgmres", {}),
                              ("gcrodr", {"recycle": 5}),
                              ("bgcrodr", {"recycle": 5})]:
            res = solve(a, np.zeros((40, 3)),
                        options=Options(krylov_method=method,
                                        gmres_restart=20, tol=1e-8, **extra))
            assert res.converged.all()
            assert np.allclose(res.x, 0)

    def test_one_by_one_system(self):
        a = sp.csr_matrix(np.array([[4.0]]))
        res = solve(a, np.array([8.0]), options=Options(tol=1e-12))
        assert res.converged.all()
        assert np.isclose(res.x[0], 2.0)

    def test_tiny_system_all_methods(self, rng):
        a = sp.csr_matrix(np.diag([1.0, 2.0, 3.0]) + 0.1)
        b = rng.standard_normal(3)
        for method, extra in [("gmres", {}), ("lgmres", {"recycle": 1}),
                              ("gcrodr", {"gmres_restart": 3, "recycle": 1}),
                              ("gmresdr", {"gmres_restart": 3, "recycle": 1})]:
            o = dict(krylov_method=method, tol=1e-10, max_it=100)
            o.update(extra)
            res = solve(a, b, options=Options(**o))
            assert res.converged.all(), method

    def test_exact_initial_guess_every_method(self, rng):
        a = laplacian_1d(50, shift=0.5)
        x_true = rng.standard_normal(50)
        b = a @ x_true
        for method, extra in [("gmres", {}), ("cg", {}),
                              ("gcrodr", {"recycle": 5})]:
            res = solve(a, b, options=Options(krylov_method=method,
                                              gmres_restart=20, tol=1e-8,
                                              **extra), x0=x_true)
            assert res.converged.all(), method
            assert res.iterations == 0, method

    def test_identity_operator(self, rng):
        n = 30
        op = Operator((n, n), np.float64, lambda x: x, nnz=n)
        b = rng.standard_normal(n)
        res = solve(op, b, options=Options(tol=1e-12))
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_highly_nonnormal_matrix(self, rng):
        """Strongly nonsymmetric Jordan-ish block: GMRES must still work."""
        n = 60
        a = sp.diags([np.full(n, 2.0), np.full(n - 1, 1.9)], [0, 1]).tocsr()
        b = rng.standard_normal(n)
        res = solve(a, b, options=Options(gmres_restart=60, tol=1e-10,
                                          max_it=600))
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-9


class TestSequenceRobustness:
    def test_alternating_operators(self, rng):
        """Solver must re-detect same-system correctly when A alternates."""
        n = 150
        a1 = laplacian_1d(n, shift=0.2)
        a2 = laplacian_1d(n, shift=0.7)
        s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=20,
                                   recycle=5, tol=1e-8, max_it=4000))
        for a in (a1, a2, a1, a1, a2):
            res = s.solve(a, rng.standard_normal(n))
            assert res.converged.all()
        flags = [r.info["same_system"] for r in s.results]
        assert flags == [False, False, False, True, False]

    def test_width_change_resets_pseudo_block_recycle(self, rng):
        """Changing the RHS width mid-sequence must not crash."""
        a = laplacian_1d(120, shift=0.3)
        s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=20,
                                   recycle=5, tol=1e-8, max_it=4000))
        r1 = s.solve(a, rng.standard_normal((120, 2)))
        r2 = s.solve(a, rng.standard_normal(120))        # p changes 2 -> 1
        r3 = s.solve(a, rng.standard_normal((120, 3)))   # 1 -> 3
        assert all(r.converged.all() for r in (r1, r2, r3))

    def test_long_sequence_stays_stable(self, rng):
        """20 recycled solves: iterations must not blow up over time."""
        a = laplacian_1d(300)
        s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=30,
                                   recycle=10, tol=1e-8, max_it=8000,
                                   recycle_same_system=True))
        its = [s.solve(a, rng.standard_normal(300)).iterations
               for _ in range(20)]
        assert all(r.converged.all() for r in s.results)
        late = np.mean(its[10:])
        early = np.mean(its[1:4])
        assert late <= 1.5 * early
        # recycled solves stay well below the cold first solve
        assert late < 0.9 * its[0]


@settings(max_examples=15, deadline=None)
@given(n=st.integers(10, 100), shift=st.floats(0.05, 2.0),
       scale=st.floats(1e-6, 1e6), seed=st.integers(0, 2**31 - 1))
def test_property_solution_correctness_under_scaling(n, shift, scale, seed):
    rng = make_rng(seed)
    a = sp.csr_matrix(laplacian_1d(n, shift=shift) * scale)
    b = rng.standard_normal(n)
    res = solve(a, b, options=Options(gmres_restart=min(30, n), tol=1e-9,
                                      max_it=80 * n))
    assert res.converged.all()
    assert relative_residuals(a, res.x, b)[0] < 1e-8
