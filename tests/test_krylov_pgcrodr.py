"""Tests for pseudo-block GCRO-DR (fused independent recurrences)."""

import numpy as np
import pytest

from repro import Options, Solver, solve
from repro.krylov.base import FunctionPreconditioner
from repro.krylov.gcrodr import gcrodr
from repro.krylov.gmres import gmres
from repro.krylov.pgcrodr import PseudoBlockRecycle, pgcrodr
from repro.util import ledger

from conftest import complex_shifted, laplacian_1d, relative_residuals


def _opts(**kw):
    kw.setdefault("krylov_method", "gcrodr")
    kw.setdefault("gmres_restart", 30)
    kw.setdefault("recycle", 10)
    kw.setdefault("tol", 1e-8)
    kw.setdefault("max_it", 8000)
    return Options(**kw)


class TestBasics:
    def test_multi_rhs_converges_where_pseudo_block_gmres_stalls(self, rng):
        a = laplacian_1d(500)
        b = rng.standard_normal((500, 4))
        rp = pgcrodr(a, b, options=_opts())
        rg = gmres(a, b, options=Options(gmres_restart=30, tol=1e-8,
                                         max_it=4000))
        assert rp.converged.all()
        assert np.all(relative_residuals(a, rp.x, b) < 1e-7)
        assert (not rg.converged.all()) or rp.iterations < rg.iterations

    def test_single_rhs_matches_gcrodr(self, rng):
        """With p = 1 the lockstep method IS standard GCRO-DR."""
        a = laplacian_1d(400)
        b = rng.standard_normal(400)
        rp = pgcrodr(a, b, options=_opts())
        rs = gcrodr(a, b, options=_opts())
        assert rp.iterations == rs.iterations
        assert np.allclose(rp.x, rs.x, atol=1e-8)

    def test_method_name(self, rng):
        a = laplacian_1d(100, shift=0.5)
        rp = pgcrodr(a, rng.standard_normal((100, 2)), options=_opts())
        assert rp.method == "pgcrodr"
        r1 = pgcrodr(a, rng.standard_normal(100), options=_opts())
        assert r1.method == "gcrodr"

    def test_complex(self, rng):
        a = complex_shifted(250)
        b = rng.standard_normal((250, 3)) + 1j * rng.standard_normal((250, 3))
        res = pgcrodr(a, b, options=_opts())
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-7)

    def test_requires_positive_k(self, rng):
        a = laplacian_1d(50)
        with pytest.raises(ValueError, match="recycle"):
            pgcrodr(a, np.ones((50, 2)),
                    options=Options(krylov_method="gmres", recycle=0))

    def test_zero_column_handled(self, rng):
        a = laplacian_1d(80, shift=0.5)
        b = rng.standard_normal((80, 3))
        b[:, 1] = 0.0
        res = pgcrodr(a, b, options=_opts())
        assert res.converged.all()
        assert np.allclose(res.x[:, 1], 0.0)


class TestRecyclingAcrossSolves:
    def test_per_column_spaces_reduce_iterations(self, rng):
        a = laplacian_1d(500)
        b1 = rng.standard_normal((500, 3))
        r1 = pgcrodr(a, b1, options=_opts())
        rec = r1.info["recycle"]
        assert isinstance(rec, PseudoBlockRecycle)
        assert rec.p == 3
        assert all(s is not None and s.k <= 10 for s in rec.spaces)
        b2 = rng.standard_normal((500, 3))
        r2 = pgcrodr(a, b2, options=_opts(), recycle=rec, same_system=True)
        assert r2.converged.all()
        assert r2.iterations < 0.8 * r1.iterations

    def test_per_column_invariants(self, rng):
        a = laplacian_1d(300)
        b = rng.standard_normal((300, 2))
        res = pgcrodr(a, b, options=_opts())
        for space in res.info["recycle"].spaces:
            c = space.c
            assert np.linalg.norm(c.conj().T @ c - np.eye(space.k)) < 1e-8
            au = a @ space.u
            assert np.linalg.norm(au - c) / np.linalg.norm(au) < 1e-7

    def test_operator_change_reorthonormalizes(self, rng):
        n = 250
        a1 = laplacian_1d(n, shift=0.1)
        a2 = laplacian_1d(n, shift=0.5)
        r1 = pgcrodr(a1, rng.standard_normal((n, 2)), options=_opts())
        r2 = pgcrodr(a2, rng.standard_normal((n, 2)), options=_opts(),
                     recycle=r1.info["recycle"], same_system=False)
        assert r2.converged.all()
        for space in r2.info["recycle"].spaces:
            au = a2 @ space.u
            assert np.linalg.norm(au - space.c) / np.linalg.norm(au) < 1e-6

    def test_same_system_skips_updates(self, rng):
        a = laplacian_1d(300)
        r1 = pgcrodr(a, rng.standard_normal((300, 2)), options=_opts())
        with ledger.install() as led:
            r2 = pgcrodr(a, rng.standard_normal((300, 2)), options=_opts(),
                         recycle=r1.info["recycle"], same_system=True)
        assert r2.converged.all()
        assert led.calls["recycle_update"] == 0


class TestDispatchAndFusion:
    def test_api_routes_multi_rhs_gcrodr_to_pseudo_block(self, rng):
        a = laplacian_1d(120, shift=0.5)
        res = solve(a, rng.standard_normal((120, 3)),
                    options=_opts(gmres_restart=20, recycle=5))
        assert res.method == "pgcrodr"
        res_b = solve(a, rng.standard_normal((120, 3)),
                      options=_opts(krylov_method="bgcrodr",
                                    gmres_restart=20, recycle=5))
        assert res_b.method == "bgcrodr"

    def test_solver_threads_pseudo_block_recycle(self, rng):
        a = laplacian_1d(400)
        s = Solver(options=_opts())
        r1 = s.solve(a, rng.standard_normal((400, 2)))
        r2 = s.solve(a, rng.standard_normal((400, 2)))
        assert isinstance(s.recycled, PseudoBlockRecycle)
        assert r2.converged.all()
        assert r2.iterations < r1.iterations

    def test_reductions_fused_across_columns(self, rng):
        """Per-iteration reduction count must not scale with p."""
        a = laplacian_1d(300)
        per_it = {}
        for p in (1, 4):
            b = rng.standard_normal((300, p))
            with ledger.install() as led:
                res = pgcrodr(a, b, options=_opts(max_it=2000))
            per_it[p] = led.reductions / max(res.iterations, 1)
        assert per_it[4] < 2.0 * per_it[1]

    def test_mismatched_recycle_type_ignored(self, rng):
        """A block-method RecycledSubspace cannot seed pseudo-block solves."""
        from repro.krylov.recycling import RecycledSubspace
        a = laplacian_1d(150, shift=0.3)
        wrong = RecycledSubspace(np.ones((150, 2)), np.ones((150, 2)))
        res = solve(a, rng.standard_normal((150, 2)), recycle=wrong,
                    options=_opts(gmres_restart=20, recycle=5))
        assert res.converged.all()   # silently starts fresh


def _variable_jacobi(a):
    """Jacobi sweep whose damping changes on every application.

    A genuinely nonlinear/variable preconditioner (cf. paper section
    III-C): the flexible variants must store Z and keep their algebra
    exact, while left/right recurrences become invalid.
    """
    dinv = 1.0 / a.diagonal()
    state = {"count": 0}

    def apply(x):
        state["count"] += 1
        scale = 1.0 + 0.3 * np.sin(state["count"])
        return (scale * dinv)[:, None] * x

    return FunctionPreconditioner(apply, is_variable=True), state


class TestFlexiblePreconditioning:
    """FGCRO-DR: variable preconditioner + recycling + same-system skip."""

    def test_variable_preconditioner_requires_flexible(self, rng):
        a = laplacian_1d(100, shift=0.3)
        m, _ = _variable_jacobi(a)
        for variant in ("left", "right"):
            with pytest.raises(ValueError, match="flexible"):
                pgcrodr(a, rng.standard_normal((100, 2)), m,
                        options=_opts(variant=variant))

    def test_flexible_variable_preconditioner_converges(self, rng):
        a = laplacian_1d(300, shift=0.2)
        b = rng.standard_normal((300, 3))
        m, state = _variable_jacobi(a)
        res = pgcrodr(a, b, m, options=_opts(variant="flexible",
                                             verify="full"))
        assert state["count"] > 0          # M really was applied...
        assert res.method == "fpgcrodr"    # ...and the flexible path ran
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-7)
        rep = res.info["verify"]
        assert rep["checks"] > 0 and not rep["violations"]

    def test_flexible_recycled_space_invariants(self, rng):
        """A U = C must hold even under a variable M: U is assembled from
        the *stored* Z columns, and A (Z y) = (A Z) y by linearity."""
        a = laplacian_1d(300, shift=0.1)
        m, _ = _variable_jacobi(a)
        res = pgcrodr(a, rng.standard_normal((300, 2)), m,
                      options=_opts(variant="flexible", verify="full"))
        for space in res.info["recycle"].spaces:
            assert space is not None and space.k > 0
            c = space.c
            assert np.linalg.norm(c.conj().T @ c - np.eye(space.k)) < 1e-8
            au = a @ space.u
            assert np.linalg.norm(au - c) / np.linalg.norm(au) < 1e-6

    def test_flexible_same_system_skips_updates(self, rng):
        """Same-system optimization composes with flexible preconditioning:
        adoption re-checks pass (A U = C is M-independent) and the skip of
        Fig. 1 lines 3-7 / 31-38 still charges zero recycle updates."""
        a = laplacian_1d(300, shift=0.1)
        m, _ = _variable_jacobi(a)
        o = _opts(variant="flexible", verify="full")
        r1 = pgcrodr(a, rng.standard_normal((300, 2)), m, options=o)
        m2, _ = _variable_jacobi(a)   # fresh state: M sequence differs
        with ledger.install() as led:
            r2 = pgcrodr(a, rng.standard_normal((300, 2)), m2, options=o,
                         recycle=r1.info["recycle"], same_system=True)
        assert r2.converged.all()
        assert led.calls["recycle_update"] == 0
        # no iteration-reduction claim here: with a *different* M sequence
        # the deflation payoff is not guaranteed, only correctness is
        assert r2.iterations <= 1.5 * r1.iterations
        assert r2.info["same_system"] is True
        assert not r2.info["verify"]["violations"]

    def test_flexible_recycle_threads_through_solver(self, rng):
        """Solver() threading works for the flexible pseudo-block path."""
        a = laplacian_1d(400)
        m, _ = _variable_jacobi(a)
        s = Solver(m=m, options=_opts(variant="flexible"))
        r1 = s.solve(a, rng.standard_normal((400, 2)))
        r2 = s.solve(a, rng.standard_normal((400, 2)))
        assert isinstance(s.recycled, PseudoBlockRecycle)
        assert r2.converged.all()
        assert r2.iterations < r1.iterations
