"""Tests for the PDE problem generators: Poisson, elasticity, mesh, Maxwell."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.problems.elasticity import (PAPER_INCLUSIONS, Inclusion,
                                       elasticity_3d, rigid_body_modes)
from repro.problems.maxwell import (MaxwellProblem, antenna_ring_rhs,
                                    assemble_maxwell, chamber_phantom,
                                    decompose_maxwell, edge_element_matrices,
                                    maxwell_chamber, _scatter_assemble)
from repro.problems.poisson import PAPER_NUS, poisson_2d
from repro.problems.tetmesh import (LOCAL_EDGES, TetMesh, box_tet_mesh,
                                    cylinder_mask)


class TestPoisson:
    def test_matrix_is_spd_m_matrix(self):
        prob = poisson_2d(10)
        a = prob.a
        assert (a != a.T).nnz == 0
        assert np.all(a.diagonal() > 0)
        off = a - sp.diags(a.diagonal())
        assert off.min() < 0 and off.max() <= 0

    def test_scaling_matches_stencil(self):
        prob = poisson_2d(4)
        h = 1.0 / 5
        assert prob.a[0, 0] == pytest.approx(4.0 / h**2)
        assert prob.a[0, 1] == pytest.approx(-1.0 / h**2)

    def test_solution_matches_analytic(self):
        # u = sin(pi x) sin(pi y) => f = 2 pi^2 u
        prob = poisson_2d(60)
        x, y = prob.points.T
        u_exact = np.sin(np.pi * x) * np.sin(np.pi * y)
        f = 2 * np.pi**2 * u_exact
        u = spla.spsolve(prob.a.tocsc(), f)
        assert np.max(np.abs(u - u_exact)) < 5e-4   # O(h^2)

    def test_rhs_family(self):
        prob = poisson_2d(8)
        seq = prob.rhs_sequence()
        assert len(seq) == 4
        block = prob.rhs_block()
        assert block.shape == (64, 4)
        assert np.allclose(block[:, 2], prob.rhs(PAPER_NUS[2]))
        # distinct parameters give genuinely different RHSs
        for i in range(3):
            c = abs(np.vdot(seq[i], seq[i + 1])) / (
                np.linalg.norm(seq[i]) * np.linalg.norm(seq[i + 1]))
            assert c < 0.999

    def test_rectangular_grid(self):
        prob = poisson_2d(6, 9)
        assert prob.n == 54
        assert prob.points.shape == (54, 2)


class TestElasticity:
    def test_spd_after_clamping(self):
        prob = elasticity_3d(5)
        assert abs(prob.a - prob.a.T).max() < 1e-12
        w = spla.eigsh(prob.a, k=1, which="SA",
                       return_eigenvectors=False, maxiter=10000)
        assert w[0] > 0

    def test_inclusion_changes_operator(self):
        p0 = elasticity_3d(5)
        p1 = elasticity_3d(5, inclusion=PAPER_INCLUSIONS[0])
        assert abs(p0.a - p1.a).max() > 0

    def test_paper_inclusions_distinct(self):
        mats = [elasticity_3d(4, inclusion=inc).a for inc in PAPER_INCLUSIONS]
        for i in range(3):
            assert abs(mats[i] - mats[i + 1]).max() > 0

    def test_rigid_body_modes_in_kernel(self):
        """The *unclamped* operator must annihilate all six RBMs."""
        ne = 3
        prob = elasticity_3d(ne)
        # rebuild without clamping by using the full stiffness directly
        from repro.problems.elasticity import _hex_reference_stiffness
        h = 1.0 / ne
        ke = _hex_reference_stiffness(h, 0.3)
        # element-level check: modes restricted to one element
        corners = np.array([[i * h, j * h, k * h]
                            for k in (0, 1) for j in (0, 1) for i in (0, 1)])
        modes = rigid_body_modes(corners)
        assert np.abs(ke @ modes).max() < 1e-12

    def test_rigid_body_modes_shape_and_rank(self, rng):
        pts = rng.random((20, 3))
        modes = rigid_body_modes(pts)
        assert modes.shape == (60, 6)
        assert np.linalg.matrix_rank(modes) == 6

    def test_inclusion_containment(self):
        inc = Inclusion(s=10, r=0.25, x=0.5, y=0.5, z=0.5)
        pts = np.array([[0.5, 0.5, 0.5], [0.9, 0.9, 0.9]])
        inside = inc.contains(pts)
        assert inside[0] and not inside[1]

    def test_gravity_deflects_downward(self):
        prob = elasticity_3d(5)
        u = spla.spsolve(prob.a.tocsc(), prob.rhs_vector)
        uz = u[2::3]
        assert uz.mean() < 0

    def test_min_size(self):
        with pytest.raises(ValueError):
            elasticity_3d(1)


class TestTetMesh:
    def test_volume_partition(self):
        m = box_tet_mesh(3)
        assert m.cell_volumes.sum() == pytest.approx(1.0)
        assert np.all(m.cell_volumes > 0)

    def test_euler_characteristic_of_ball(self):
        # V - E + F - C = 1 for a triangulated 3-ball
        m = box_tet_mesh(2)
        chi = m.n_points - m.n_edges + m.faces.shape[0] - m.n_cells
        assert chi == 1

    def test_face_sharing(self):
        m = box_tet_mesh(2)
        counts = m._face_data[2]
        assert set(np.unique(counts)) == {1, 2}

    def test_gradients_partition_of_unity(self):
        m = box_tet_mesh(2)
        assert np.abs(m.barycentric_gradients.sum(axis=1)).max() < 1e-12

    def test_gradient_duality(self):
        """grad(lambda_i) . (v_j - v_0) reproduces the barycentric pattern."""
        m = box_tet_mesh(2)
        v = m.cell_vertices
        g = m.barycentric_gradients
        for c in (0, 5, 11):
            for i in range(4):
                for j in range(4):
                    val = g[c, i] @ (v[c, j] - v[c, 0])
                    expect = (1.0 if i == j else 0.0) - (1.0 if i == 0 else 0.0)
                    assert val == pytest.approx(expect, abs=1e-12)

    def test_edge_signs_consistent(self):
        m = box_tet_mesh(2)
        raw = m.cells[:, LOCAL_EDGES]
        for c in range(m.n_cells):
            for a in range(6):
                lo, hi = sorted(raw[c, a])
                edge = m.edges[m.cell_edges[c, a]]
                assert edge[0] == lo and edge[1] == hi
                expected_sign = 1 if raw[c, a, 0] == lo else -1
                assert m.cell_edge_signs[c, a] == expected_sign

    def test_boundary_extraction(self):
        m = box_tet_mesh(2)
        # all boundary face nodes lie on the box surface
        for f in m.boundary_faces:
            pts = m.points[m.faces[f]]
            on_surface = np.any((pts == 0.0) | (pts == 1.0), axis=1)
            assert on_surface.all()

    def test_extract_cells_renumbers(self):
        m = box_tet_mesh(3)
        sub = m.extract_cells(cylinder_mask(m, radius=0.45))
        assert sub.n_cells < m.n_cells
        assert sub.cells.max() < sub.n_points
        assert np.all(sub.cell_volumes > 0)

    def test_locate_cells(self):
        m = box_tet_mesh(3)
        inside = m.locate_cells(np.array([[0.5, 0.5, 0.5]]))
        outside = m.locate_cells(np.array([[2.0, 0.0, 0.0]]))
        assert inside[0] >= 0
        assert outside[0] == -1

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            TetMesh(points=np.zeros((4, 2)), cells=np.zeros((1, 4), dtype=int))
        with pytest.raises(ValueError):
            TetMesh(points=np.zeros((4, 3)), cells=np.zeros((1, 3), dtype=int))


class TestMaxwellAssembly:
    def test_gradient_fields_in_curl_kernel(self, rng):
        mesh = box_tet_mesh(3)
        ke, _ = edge_element_matrices(mesh)
        k = _scatter_assemble(mesh, ke)
        phi = rng.standard_normal(mesh.n_points)
        u = phi[mesh.edges[:, 1]] - phi[mesh.edges[:, 0]]
        assert np.linalg.norm(k @ u) < 1e-10 * max(np.linalg.norm(u), 1)

    def test_mass_is_spd_and_integrates_constants(self):
        mesh = box_tet_mesh(3)
        _, me = edge_element_matrices(mesh)
        m = _scatter_assemble(mesh, me)
        assert abs(m - m.T).max() < 1e-14
        evec = mesh.points[mesh.edges[:, 1]] - mesh.points[mesh.edges[:, 0]]
        for axis in range(3):
            u = evec[:, axis]
            # int |E|^2 over the unit cube for E = unit vector = 1
            assert u @ (m @ u) == pytest.approx(1.0, rel=1e-10)

    def test_constant_field_in_stiffness_kernel(self):
        mesh = box_tet_mesh(3)
        ke, _ = edge_element_matrices(mesh)
        k = _scatter_assemble(mesh, ke)
        evec = mesh.points[mesh.edges[:, 1]] - mesh.points[mesh.edges[:, 0]]
        assert np.linalg.norm(k @ evec[:, 0]) < 1e-12

    def test_assembled_problem_structure(self):
        prob = maxwell_chamber(5, omega=6.0)
        assert prob.a.dtype == np.complex128
        assert abs(prob.a - prob.a.T).max() < 1e-12   # complex symmetric
        assert prob.n == len(prob.free_edges)
        assert prob.n < prob.mesh.n_edges             # PEC eliminated

    def test_sigma_gives_negative_imaginary_diag(self):
        mesh = box_tet_mesh(3)
        prob = assemble_maxwell(mesh, omega=5.0, eps=2.0, sigma=1.0)
        # A = K - w^2(eps + i sigma/w) M : imaginary part is -w sigma M
        assert np.all(prob.a.diagonal().imag < 0)

    def test_phantom_inclusion(self):
        mesh = box_tet_mesh(4)
        eps, sigma = chamber_phantom(mesh, inclusion_radius=0.2,
                                     eps_inclusion=1.0, sigma_inclusion=0.0)
        assert np.any(sigma == 0.0) and np.any(sigma == 1.0)
        assert np.any(eps == 1.0) and np.any(eps == 2.0)

    def test_antenna_rhs_columns_distinct(self):
        prob = maxwell_chamber(6, omega=8.0)
        b = antenna_ring_rhs(prob, n_antennas=8)
        assert b.shape == (prob.n, 8)
        norms = np.linalg.norm(b, axis=0)
        assert np.all(norms > 0)
        # different antennas excite different edges
        g = np.abs(b.conj().T @ b)
        off = g - np.diag(np.diag(g))
        assert off.max() < 0.99 * np.diag(g).min()

    def test_antenna_outside_mesh_raises(self):
        prob = maxwell_chamber(5, omega=6.0)
        with pytest.raises(ValueError, match="outside"):
            antenna_ring_rhs(prob, n_antennas=4, radius=2.0)


class TestMaxwellDecomposition:
    @pytest.fixture(scope="class")
    def chamber(self):
        return maxwell_chamber(6, omega=8.0)

    def test_partition_of_unity(self, chamber):
        dec = decompose_maxwell(chamber, 4, overlap=1)
        assert dec.decomposition.check_pou() < 1e-12

    def test_local_matrices_match_dof_counts(self, chamber):
        dec = decompose_maxwell(chamber, 4, overlap=1)
        for dofs, mat in zip(dec.decomposition.overlapping,
                             dec.local_matrices):
            assert mat.shape == (len(dofs), len(dofs))

    def test_impedance_breaks_symmetry_with_complex_shift(self, chamber):
        dec_imp = decompose_maxwell(chamber, 4, overlap=1, impedance=True)
        dec_neu = decompose_maxwell(chamber, 4, overlap=1, impedance=False)
        diff = abs(dec_imp.local_matrices[0] - dec_neu.local_matrices[0]).max()
        assert diff > 0

    def test_neumann_local_matrix_is_submatrix_plus_interface(self, chamber):
        """Away from interfaces the local matrix equals the global one."""
        dec = decompose_maxwell(chamber, 2, overlap=1, impedance=False)
        dofs = dec.decomposition.overlapping[0]
        sub = chamber.a[dofs][:, dofs]
        local = dec.local_matrices[0]
        # interior rows (all of whose couplings stay inside) must agree
        diff = abs(sub - local)
        # at least half the rows are interior and identical
        row_err = np.asarray(diff.max(axis=1).todense()).ravel()
        assert np.count_nonzero(row_err < 1e-12) > 0.3 * len(dofs)

    def test_oras_converges_where_ras_stalls(self, chamber, rng):
        """Fig. 4's mechanism on the real Maxwell operator."""
        from repro import Options, solve
        from repro.precond.schwarz import SchwarzPreconditioner
        b = antenna_ring_rhs(chamber, n_antennas=1)[:, 0]
        o = Options(tol=1e-6, variant="right", max_it=200, gmres_restart=50)
        dec = decompose_maxwell(chamber, 4, overlap=2, impedance=True)
        m_oras = SchwarzPreconditioner(chamber.a, variant="oras",
                                       decomposition=dec.decomposition,
                                       local_matrices=dec.local_matrices)
        r = solve(chamber.a, b, m_oras, options=o)
        assert r.converged.all()
        m_asm = SchwarzPreconditioner(chamber.a, nparts=4, overlap=1,
                                      variant="asm",
                                      points=chamber.dof_points())
        r_asm = solve(chamber.a, b, m_asm, options=o)
        assert (not r_asm.converged.all()) or \
            r.iterations < r_asm.iterations
