"""Sketched recycling (``-hpddm_recycle_space sketched``) contracts.

Five layers, from unit to end-to-end:

1. the headline complexity claim — reductions per GCRO-DR cycle in
   sketched mode are bounded by an *m-independent* constant (asserted at
   m = 10, 20, 40);
2. the plan compiler lowers the sketched-recycle hot path bit-identically
   (same :meth:`CostLedger.counts` tuple AND bitwise-equal iterates);
3. ``SketchedRecycler`` unit properties (hypothesis): whitening preserves
   ``A U = C``, orthonormalizes exactly in the distortion-free regime,
   the local-algebra path is communication-free, and rank deficiency is
   flagged — including complex128, p = 1 and degenerate candidate sets;
4. mutation tests: disabling the lazy-repair drift detector (the
   ``needs_repair`` seam) or corrupting the whitened pair must trip the
   runtime invariant verifier;
5. quality oracle: full-vs-sketched carrying costs a bounded number of
   extra iterations with identical convergence flags, and the service
   setup cache keys the two spaces apart.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options, solve
from repro.krylov.sketch_recycle import (SketchedRecycler, sketch_drift,
                                         sketch_drift_probe)
from repro.la.orthogonalization import apply_sketch
from repro.service import options_key
from repro.trace import Tracer, install
from repro.util import ledger
from repro.util.ledger import CostLedger
from repro.verify import InvariantChecker, InvariantViolation

from conftest import make_rng
from matrix import Config, assert_sketched_quality, make_problem


def _sequence_problem(n: int = 400) -> tuple[sp.csr_matrix, np.ndarray]:
    """Deterministic well-conditioned sparse system (two RHS columns)."""
    rs = np.random.RandomState(1234)
    a = sp.random(n, n, density=0.02, random_state=rs, format="csr")
    a = sp.csr_matrix(a + sp.eye(n, format="csr") * 4.0)
    b = np.random.default_rng(1234).standard_normal((n, 2))
    return a, b


# ---------------------------------------------------------------------------
# 1. O(1) reductions per cycle, asserted across m
# ---------------------------------------------------------------------------

#: per-cycle reduction overhead ceiling (reductions beyond one-per-step,
#: amortized over cycles).  The in-cycle structure is exactly steps + 1
#: (trace-gate enforced); everything else is a fixed per-solve prologue /
#: packaging cost, so the amortized overhead must stay below a small
#: m-independent constant.
_OVERHEAD_CEILING = 8.0


@pytest.mark.parametrize("m", [10, 20, 40])
def test_sketched_recycle_reduction_overhead_o1_in_m(m):
    a, b = _sequence_problem()
    opts = Options(krylov_method="gcrodr", gmres_restart=m, recycle=4,
                   orthogonalization="sketched", recycle_space="sketched",
                   tol=1e-10, max_it=150, trace="summary")
    tr = Tracer(level="summary")
    led = CostLedger()
    with install(tr), ledger.install(led):
        r1 = solve(a, b[:, 0], options=opts)
        r2 = solve(a, b[:, 1], options=opts, recycle=r1.info["recycle"],
                   same_system=False)
    assert np.asarray(r1.converged).all() and np.asarray(r2.converged).all()
    steps = led.calls.get("arnoldi_step", 0)
    cycles = sum(len(root.find("cycle")) for root in tr.roots)
    assert steps and cycles
    overhead = (led.reductions - steps) / cycles
    assert overhead <= _OVERHEAD_CEILING, (
        f"m={m}: {overhead:.2f} extra reductions/cycle beyond one-per-step "
        f"(ceiling {_OVERHEAD_CEILING}); sketched recycling lost its O(1) "
        f"reduction structure")


# ---------------------------------------------------------------------------
# 2. plan-compiler parity on the sketched-recycle hot path
# ---------------------------------------------------------------------------

PARITY_CONFIGS = [
    Config(method, p=p, ortho="sketched", recycle_space="sketched")
    for method, p in (("gcrodr", 1), ("gcrodr", 3), ("bgcrodr", 3))
]


@pytest.mark.parametrize("cfg", PARITY_CONFIGS, ids=lambda c: c.id())
def test_sketched_recycle_plan_modes_bit_identical(cfg):
    a, b, m = make_problem(cfg)
    outs = {}
    for plan in ("interpret", "compiled"):
        o = cfg.options(verify="off").replace(plan=plan)
        with ledger.install() as led:
            r1 = solve(a, b, m, options=o)
            r2 = solve(a, np.negative(b), m, options=o,
                       recycle=r1.info["recycle"], same_system=False)
        outs[plan] = (led.counts(), np.asarray(r1.x), np.asarray(r2.x),
                      r1.iterations + r2.iterations)
    ci, cc = outs["interpret"], outs["compiled"]
    assert ci[0] == cc[0], f"{cfg.id()}: ledger counts diverge"
    assert np.array_equal(ci[1], cc[1]) and np.array_equal(ci[2], cc[2]), (
        f"{cfg.id()}: iterates diverge between interpret and compiled")
    assert ci[3] == cc[3]


def test_exact_scheme_repair_path_unchanged():
    """cgs2_1r (exact basis) never routes through the drift-gated repair."""
    cfg = Config("gcrodr", p=3, ortho="cgs2_1r")
    a, b, m = make_problem(cfg)
    o = cfg.options(verify="full", tol=1e-8).replace(trace="summary")
    tr = Tracer(level="summary")
    with install(tr), ledger.install() as led:
        r1 = solve(a, b, m, options=o)
        r2 = solve(a, np.negative(b), m, options=o,
                   recycle=r1.info["recycle"], same_system=False)
    assert np.asarray(r2.converged).all()
    assert led.calls.get("recycle_repair", 0) == 0
    assert sum(len(root.find("recycle_repair")) for root in tr.roots) == 0


def test_sketched_scheme_defers_repair_to_adoption_boundary():
    """The sketched scheme's lazy gate never fires mid-solve; the one
    exact re-derivation happens at the packaging boundary."""
    cfg = Config("gcrodr", p=1, ortho="sketched", recycle_space="sketched")
    a, b, m = make_problem(cfg)
    o = cfg.options(verify="cheap", tol=1e-8).replace(trace="summary")
    tr = Tracer(level="summary")
    with install(tr), ledger.install():
        r1 = solve(a, b, m, options=o)
    repairs = [s for root in tr.roots for s in root.find("recycle_repair")]
    kinds = [s.attrs.get("kind") for s in repairs]
    assert "drift" not in kinds, "drift-gated repair fired on a healthy run"
    assert kinds.count("adoption_boundary") == 1
    assert np.asarray(r1.converged).all()


# ---------------------------------------------------------------------------
# 3. SketchedRecycler unit properties
# ---------------------------------------------------------------------------

def _model_operator(rng, n: int, dtype) -> np.ndarray:
    a = (np.diag(4.0 + 0.1 * rng.standard_normal(n))
         + 0.5 * np.eye(n, k=1) + 0.4 * np.eye(n, k=-1)).astype(dtype)
    if np.issubdtype(dtype, np.complexfloating):
        a = a + 0.3j * np.eye(n)
    return a


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(16, 32),
       k=st.integers(1, 5), cplx=st.booleans())
@settings(max_examples=25, deadline=None)
def test_whiten_exact_regime_properties(seed, n, k, cplx):
    """With s = n the SRHT is an exact isometry: whitening must
    orthonormalize to rounding, preserve ``A U = C``, and leave the
    maintained ``S C_k`` orthonormal."""
    rng = make_rng(seed, n, k, int(cplx))
    dtype = np.complex128 if cplx else np.float64
    a = _model_operator(rng, n, dtype)
    u = rng.standard_normal((n, k)).astype(dtype)
    if cplx:
        u = u + 1j * rng.standard_normal((n, k))
    c = a @ u
    rec = SketchedRecycler(n=n, max_cols=2 * k)
    assert rec.s == n  # distortion-free regime by construction
    with ledger.install():
        u2, c2, ok = rec.whiten(u, c)
    assert ok
    assert sketch_drift(c2) < 1e-8  # true orthonormality, not just sketched
    assert np.linalg.norm(a @ u2 - c2) <= 1e-8 * np.linalg.norm(c2)
    assert rec.sc is not None and sketch_drift(rec.sc) < 1e-12


@given(seed=st.integers(0, 2**31 - 1), k=st.integers(2, 6), cplx=st.booleans())
@settings(max_examples=25, deadline=None)
def test_whiten_rank_deficiency_detected(seed, k, cplx):
    """A rank-deficient candidate set must be refused (ok=False) with the
    inputs and the maintained sketches left untouched."""
    n = 128
    rng = make_rng(seed, k, 17)
    dtype = np.complex128 if cplx else np.float64
    u = rng.standard_normal((n, k)).astype(dtype)
    c = rng.standard_normal((n, k)).astype(dtype)
    c[:, -1] = c[:, 0]  # exact duplicate -> rank loss survives any sketch
    rec = SketchedRecycler(n=n, max_cols=2 * k)
    with ledger.install():
        u2, c2, ok = rec.whiten(u, c)
    assert not ok
    assert u2 is u and c2 is c
    assert rec.sc is None


def test_whiten_local_matches_resketch_and_is_free():
    """``whiten_local`` on a locally derived candidate sketch charges ZERO
    reductions and produces the same pair as the one-reduction re-sketching
    ``whiten`` (same deterministic SRHT, same seed)."""
    rng = make_rng(11)
    n, k = 96, 4
    a = _model_operator(rng, n, np.float64)
    u = rng.standard_normal((n, k)) * np.logspace(0, 2, k)
    c = a @ u
    rec_local = SketchedRecycler(n=n, max_cols=2 * k)
    with ledger.install() as led:
        # stand-in for the in-solver local algebra [S C_k | S V] @ coeffs:
        # the same deterministic sketch of the candidates, derived without
        # charging a reduction
        sc_raw = apply_sketch(c, rec_local.s, seed=rec_local.seed)
        u_loc, c_loc, ok = rec_local.whiten_local(u, c, sc_raw)
    assert ok
    assert led.reductions == 0, "whiten_local must be communication-free"

    rec_rs = SketchedRecycler(n=n, max_cols=2 * k)
    with ledger.install() as led2:
        u_rs, c_rs, ok2 = rec_rs.whiten(u, c)
    assert ok2
    assert led2.reductions == 1  # the single s x k assembly reduction
    np.testing.assert_allclose(c_loc, c_rs, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(u_loc, u_rs, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(rec_local.sc, rec_rs.sc,
                               rtol=1e-12, atol=1e-12)


def test_drift_probe_exact_when_sketch_is_square():
    """For n <= 32 the probe's sketch is an isometry, so the estimate
    equals the true drift to rounding — the gate decision is exact."""
    rng = make_rng(23)
    n, k = 24, 4
    q, _ = np.linalg.qr(rng.standard_normal((n, k)))
    bad = q.copy()
    bad[:, -1] = 0.7 * bad[:, 0] + 0.3 * bad[:, -1]
    with ledger.install():
        clean = sketch_drift_probe(q)
        dirty = sketch_drift_probe(bad)
    assert clean < 1e-12
    assert abs(dirty - sketch_drift(bad)) < 1e-12
    assert dirty > 0.1


# ---------------------------------------------------------------------------
# 4. mutation tests: the verifier must catch a disabled/corrupted repair
# ---------------------------------------------------------------------------

def test_mutation_disabled_drift_detector_trips_checker(monkeypatch):
    """Disabling ``needs_repair`` lets a near-singular whitening through.

    The sketch-whitened pair stays *sketch*-orthonormal even then (the
    subspace embedding bounds the drift), but the triangular solves
    amplify rounding by cond(t_c) ~ 1e14, destroying ``A U = C`` — so the
    checker's map invariant must reject the pair even at the widened
    sketched-space tolerances."""
    rng = make_rng(7)
    n, k = 96, 4
    u = rng.standard_normal((n, k))
    u[:, -1] = u[:, 0] + 1e-14 * u[:, 1]  # numerically dependent columns
    a = _model_operator(rng, n, np.float64)
    c = a @ u
    rec = SketchedRecycler(n=n, max_cols=2 * k)
    with ledger.install():
        _, _, ok = rec.whiten(u, c)
    assert not ok, "healthy detector must demand the exact repair"

    monkeypatch.setattr(SketchedRecycler, "needs_repair",
                        lambda self, t_c: False)
    rec2 = SketchedRecycler(n=n, max_cols=2 * k)
    with ledger.install():
        u2, c2, ok = rec2.whiten(u, c)
    assert ok, "mutated detector waves the degenerate pair through"
    chk = InvariantChecker(level="full", context="mutation")
    chk.recycle_orth_tol = 64.0   # the sketched-scheme runtime ceilings
    chk.recycle_map_tol = 1e-4
    with pytest.raises(InvariantViolation):
        with ledger.install():
            chk.check_recycle(u2, c2, op_apply=lambda x: a @ x,
                              what="mutated whiten output")


def test_mutation_corrupted_whiten_trips_runtime_verifier(monkeypatch):
    """End-to-end: a whiten that silently mis-scales C must be caught by
    the in-solve ``check_recycle`` even under the sketched tolerances."""
    cfg = Config("gcrodr", p=1, ortho="sketched", recycle_space="sketched")
    a, b, m = make_problem(cfg)
    o = cfg.options(verify="cheap", tol=1e-10)
    orig = SketchedRecycler._whiten_against

    def corrupt(self, u_new, c_new, sc_raw):
        u2, c2, ok = orig(self, u_new, c_new, sc_raw)
        return u2, 20.0 * c2, ok

    # _whiten_against is the shared core under both whiten_local (the
    # in-engine zero-reduction path) and whiten (the re-sketching path)
    monkeypatch.setattr(SketchedRecycler, "_whiten_against", corrupt)
    with pytest.raises(InvariantViolation):
        solve(a, b, m, options=o)


# ---------------------------------------------------------------------------
# 5. quality oracle + cache keying
# ---------------------------------------------------------------------------

QUALITY_CONFIGS = [
    Config(method, p=p, ortho="sketched", recycle_space="sketched")
    for method, p in (("gcrodr", 1), ("gcrodr", 3), ("bgcrodr", 3))
]


@pytest.mark.parametrize("cfg", QUALITY_CONFIGS, ids=lambda c: c.id())
def test_full_vs_sketched_quality(cfg):
    assert_sketched_quality(cfg)


def test_options_key_distinguishes_recycle_space():
    base = dict(krylov_method="gcrodr", gmres_restart=20, recycle=4,
                orthogonalization="sketched")
    o_full = Options(recycle_space="full", **base)
    o_sk = Options(recycle_space="sketched", **base)
    assert options_key(o_full) != options_key(o_sk)
