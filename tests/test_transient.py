"""Transient sequences: problems, driver, adoption carry-over, trace shape.

Covers the transient workload engine end to end at unit scale: the
:class:`HeatSequence` / :class:`MaxwellRampSequence` algebra, the
:class:`SequenceDriver` through both service front ends, the
``SetupCache.adopt_from`` carry-over contract (adopted pairs keep their
foreign fingerprint stamp and are *repaired* at the adoption boundary,
never trusted), the golden seeded-sequence replay (two runs must be
byte-identical), and the ``sequence.*`` trace-shape gate including its
failure modes on hand-built span trees.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.problems.heat import ImplicitHeat
from repro.problems.transient import HeatSequence, MaxwellRampSequence
from repro.service.cache import SetupCache
from repro.service.fingerprint import operator_fingerprint
from repro.service.scheduler import AsyncSolveService
from repro.service.sequence import SequenceDriver
from repro.service.service import SolveService
from repro.service.shard import ShardedSetupCache
from repro.trace.export import counts_signature
from repro.trace.gate import GateError, check_sequence_shape
from repro.trace.tracer import Tracer, install
from repro.util import ledger
from repro.util.ledger import CostLedger
from repro.util.options import OptionError, Options, parse_hpddm_args


def seq_options(**over) -> Options:
    base = dict(krylov_method="gcrodr", gmres_restart=30, recycle=10,
                orthogonalization="cgs2_1r", tol=1e-10, max_it=2000,
                recycle_same_system=False, service_flush="explicit")
    base.update(over)
    return Options(**base)


def drive(seq, *, service_cls=SolveService, tenants=1, **opt_over):
    opts = seq_options(**opt_over)
    svc = service_cls(options=opts)
    driver = SequenceDriver(svc)
    handles = [driver.add(seq if i == 0 else seq.__class__(
        nx=seq.problem.nx, n_steps=seq.n_steps, dt0=seq.dt0,
        epoch_length=seq.epoch_length, growth=seq.growth),
        options=opts, tenant=f"t{i}") for i in range(tenants)]
    records = driver.run()
    return driver, handles, records


# -- problem algebra ---------------------------------------------------
def test_heat_sequence_matches_implicit_heat():
    """growth=1.0 degenerates to the fixed-operator ImplicitHeat driver."""
    nx, dt, n_steps = 7, 1e-3, 5
    seq = HeatSequence(nx=nx, n_steps=n_steps, dt0=dt, epoch_length=2,
                       growth=1.0)
    heat = ImplicitHeat(nx=nx, dt=dt)
    u = seq.u0()
    for step in seq.steps():
        u = spla.spsolve(seq.operator(step).tocsc(), seq.rhs(step, u))
    heat.run(n_steps)
    # ImplicitHeat steps iteratively at tol 1e-8; the reference is direct
    assert np.linalg.norm(u - heat.u) <= 1e-8


def test_heat_sequence_epoch_schedule():
    seq = HeatSequence(nx=5, n_steps=9, dt0=1e-3, epoch_length=3,
                       growth=2.0)
    steps = seq.steps()
    assert seq.n_epochs == 3
    assert [s.epoch for s in steps] == [0, 0, 0, 1, 1, 1, 2, 2, 2]
    for s in steps:
        assert s.dt == pytest.approx(1e-3 * 2.0 ** s.epoch)
        assert s.sigma == pytest.approx(1.0 / s.dt)
    # same object (stable tag + fp) within an epoch, new operator across
    assert seq.operator(steps[0]) is seq.operator(steps[2])
    assert seq.operator(steps[2]) is not seq.operator(steps[3])
    fp0 = operator_fingerprint(seq.operator(steps[0]))
    fp1 = operator_fingerprint(seq.operator(steps[3]))
    assert fp0 == operator_fingerprint(seq.operator(steps[1]))
    assert fp0 != fp1


def test_heat_operator_is_base_plus_sigma_identity():
    seq = HeatSequence(nx=5, n_steps=4, dt0=2e-3, epoch_length=2,
                       growth=1.5, theta=0.5)
    for step in seq.steps():
        lhs = seq.operator(step)
        want = seq.base + step.sigma * np.eye(seq.problem.n)
        assert np.abs(lhs.toarray() - want).max() < 1e-12


def test_maxwell_ramp_operator_algebra():
    seq = MaxwellRampSequence(n=3, n_steps=4, omega0=6.0, epoch_length=2,
                              omega_growth=1.2, n_antennas=4)
    steps = seq.steps()
    assert steps[0].sigma == pytest.approx(-36.0)
    assert steps[2].epoch == 1
    for step in steps:
        lhs = seq.operator(step)
        want = (seq.base + step.sigma * seq.mass).toarray()
        assert np.abs(lhs.toarray() - want).max() < 1e-10
    # rhs columns walk the ring and scale with omega/omega0
    r0 = seq.rhs(steps[0], None)
    r2 = seq.rhs(steps[2], None)
    ratio = seq.omega_of_epoch(1) / seq.omega0
    assert np.allclose(r2, ratio * r0 * 0 + r2)  # well-formed
    assert np.linalg.norm(r2 - ratio * seq._ring[:, 2]) < 1e-12


# -- driver ------------------------------------------------------------
def test_sequence_driver_final_field_and_fast_path():
    seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                       growth=1.5)
    _, (handle,), records = drive(seq)
    assert handle.all_converged
    u = seq.u0()
    for step in seq.steps():
        u = spla.spsolve(seq.operator(step).tocsc(), seq.rhs(step, u))
    assert np.linalg.norm(handle.u - u) < 1e-7 * np.linalg.norm(u)
    # epoch structure shows up in the records
    assert [r["fp_changed"] for r in records] \
        == [True, False, False, True, False, False]
    assert all(r["recycle_cache_hit"] for r in records[1:3])
    boundary = records[3]
    assert boundary["recycle_adopted"] and boundary["adopted_kinds"]


def test_sequence_driver_sync_async_parity():
    its = {}
    for cls in (SolveService, AsyncSolveService):
        seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                           growth=1.5)
        _, handles, records = drive(seq, service_cls=cls, tenants=2)
        assert all(h.all_converged for h in handles)
        its[cls.__name__] = [r["iterations"] for r in records]
        assert {r["batch_width"] for r in records} == {2}  # coalesced
    assert its["SolveService"] == its["AsyncSolveService"]


def test_sequence_driver_shifted_mode_matches_operator_mode():
    fields = {}
    for mode in ("operator", "shifted"):
        seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                           growth=1.5)
        _, (handle,), records = drive(seq, sequence_mode=mode)
        assert handle.all_converged
        fields[mode] = handle.u
        if mode == "shifted":
            # the family base never changes: no adoption, one fp
            assert all(not r["adopted_kinds"] for r in records)
            assert len({r["fingerprint"] for r in records}) == 1
    diff = np.linalg.norm(fields["shifted"] - fields["operator"])
    assert diff < 1e-6 * max(np.linalg.norm(fields["operator"]), 1.0)


def test_sequence_driver_warm_start_converges_to_same_field():
    fields = {}
    for warm in (False, True):
        seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                           growth=1.5)
        _, (handle,), _ = drive(seq, sequence_warm_start=warm)
        assert handle.all_converged
        fields[warm] = handle.u
    assert np.linalg.norm(fields[True] - fields[False]) \
        < 1e-6 * max(np.linalg.norm(fields[False]), 1.0)


def test_driver_rejects_recycle_same_system_with_adopt():
    seq = HeatSequence(nx=5, n_steps=4, dt0=1e-3, epoch_length=2)
    opts = seq_options(recycle_same_system=True, sequence_adopt=True)
    driver = SequenceDriver(SolveService(options=opts))
    with pytest.raises(ValueError, match="trusted across the epoch"):
        driver.add(seq, options=opts)


def test_driver_rejects_duplicate_tenant():
    opts = seq_options()
    driver = SequenceDriver(SolveService(options=opts))
    driver.add(HeatSequence(nx=5, n_steps=2), options=opts, tenant="t")
    with pytest.raises(ValueError, match="duplicate tenant"):
        driver.add(HeatSequence(nx=5, n_steps=2), options=opts, tenant="t")


# -- adopt_from: carry-over across the epoch boundary ------------------
class _FakeSpace:
    def __init__(self, fp, tag="prev"):
        self.fingerprint = fp
        self.tag = tag
        self.copies = 0

    def copy(self):
        dup = _FakeSpace(self.fingerprint, self.tag)
        dup.copies = self.copies + 1
        return dup


def _fps(*mats):
    return tuple(operator_fingerprint(m) for m in mats)


def _two_fps():
    import scipy.sparse as sp
    a = sp.eye(4, format="csr")
    b = sp.eye(4, format="csr") * 2.0
    return _fps(a, b)


def test_adopt_from_copies_recycle_kinds_and_keeps_foreign_stamp():
    fp_prev, fp_new = _two_fps()
    cache = SetupCache()
    space = _FakeSpace(fp_prev)
    cache.put(fp_prev, "recycle:abc", space)
    cache.put(fp_prev, "precond:lu", object())  # not a recycle kind
    adopted = cache.adopt_from(fp_new, fp_prev)
    assert adopted == ["recycle:abc"]
    got = cache.get(fp_new, "recycle:abc")
    # a *copy* travelled; the stamp still names the previous operator, so
    # the solver must treat it as a stale pair and repair it
    assert got is not space and got.copies == 1
    assert got.fingerprint == fp_prev and got.fingerprint != fp_new
    assert cache.get(fp_new, "precond:lu") is None


def test_adopt_from_never_overwrites_and_respects_kind_filter():
    fp_prev, fp_new = _two_fps()
    cache = SetupCache()
    cache.put(fp_prev, "recycle:abc", _FakeSpace(fp_prev))
    cache.put(fp_prev, "family_recycle:xyz", _FakeSpace(fp_prev))
    mine = _FakeSpace(fp_new, tag="mine")
    cache.put(fp_new, "recycle:abc", mine)
    assert cache.adopt_from(fp_new, fp_prev) == ["family_recycle:xyz"]
    assert cache.get(fp_new, "recycle:abc") is mine  # not clobbered
    # explicit kinds filter wins over the default recycle:* selection
    fp_prev2, fp_new2 = _two_fps()[::-1]
    assert cache.adopt_from(fp_new2, fp_prev2, kinds=["recycle:nope"]) == []


def test_adopt_from_noop_on_self_or_missing_prev():
    fp_prev, fp_new = _two_fps()
    cache = SetupCache()
    assert cache.adopt_from(fp_new, fp_new) == []
    assert cache.adopt_from(fp_new, fp_prev) == []  # nothing cached yet


def test_sharded_adopt_from_crosses_shards():
    fp_prev, fp_new = _two_fps()
    cache = ShardedSetupCache(4)
    cache.put(fp_prev, "recycle:abc", _FakeSpace(fp_prev))
    adopted = cache.adopt_from(fp_new, fp_prev)
    assert adopted == ["recycle:abc"]
    got = cache.get(fp_new, "recycle:abc")
    assert got is not None and got.fingerprint == fp_prev


def test_stale_adopted_pair_is_repaired_not_trusted():
    """Service-level adoption boundary: solve must notice the foreign
    stamp, run with ``same_system`` falsy, flag ``recycle_adopted`` and
    still produce the right answer."""
    seq = HeatSequence(nx=7, n_steps=4, dt0=1e-3, epoch_length=2,
                       growth=2.0)
    opts = seq_options()
    svc = SolveService(options=opts)
    driver = SequenceDriver(svc)
    handle = driver.add(seq, options=opts, tenant="t0")
    records = driver.run()
    boundary = records[2]  # first step of epoch 1
    assert boundary["fp_changed"] and boundary["adopted_kinds"]
    assert boundary["recycle_adopted"] is True
    assert boundary["converged"]
    # the adopted artifact in the cache still carries the old stamp or a
    # repaired replacement stamped with the new fp — never a stale pair
    # silently stamped as fresh without repair (covered by the trace
    # shape: test_sequence_trace_shape_end_to_end)
    u = seq.u0()
    for step in seq.steps():
        u = spla.spsolve(seq.operator(step).tocsc(), seq.rhs(step, u))
    assert np.linalg.norm(handle.u - u) < 1e-7 * np.linalg.norm(u)


# -- golden replay: byte-determinism -----------------------------------
def _replay_payload() -> bytes:
    seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                       growth=1.5)
    driver, handles, records = drive(seq, tenants=2)
    rows = []
    for rec in records:
        row = {k: v for k, v in rec.items() if k != "cost"}
        row["cost_signature"] = repr(counts_signature(rec["cost"]))
        rows.append(row)
    payload = {"records": rows, "summary": driver.summary(),
               "final_fields": [h.u.tolist() for h in handles]}
    return json.dumps(payload, sort_keys=True).encode()


def test_golden_sequence_replay_byte_identical():
    assert _replay_payload() == _replay_payload()


# -- trace shape: end-to-end and hand-built failure modes --------------
def test_sequence_trace_shape_end_to_end():
    seq = HeatSequence(nx=7, n_steps=6, dt0=1e-3, epoch_length=3,
                       growth=1.5)
    opts = seq_options(trace="summary")
    svc = SolveService(options=opts)
    driver = SequenceDriver(svc)
    driver.add(seq, options=opts, tenant="t0")
    tr = Tracer(level="summary")
    with install(tr):
        driver.run()
    shape = check_sequence_shape(tr.roots[-1])
    assert shape["steps"] == 6
    assert shape["fast_path_steps"] == 4  # steps 1,2 and 4,5
    assert shape["adoptions"] == 1        # epoch boundary at step 3


def _span_tree(build):
    """Hand-build a sequence span tree; returns the sequence.run span."""
    tr = Tracer(level="summary")
    led = CostLedger()
    with ledger.install(led), install(tr):
        with tr.span("sequence.run", tenants=1, waves=1):
            with tr.span("sequence.wave", wave=0):
                build(tr)
    return tr.roots[-1]


def _step_leaf(tr, *, fp_changed, adopted=False, batch=0, step=0):
    with tr.span("sequence.step", tenant="t0", step=step, epoch=0,
                 fp_changed=fp_changed, adopted=adopted, batch=batch):
        pass


def test_shape_rejects_missing_run_span():
    tr = Tracer(level="summary")
    with install(tr):
        with tr.span("service.batch", batch=0):
            pass
    with pytest.raises(GateError, match="no sequence.run"):
        check_sequence_shape(tr.roots[-1])


def test_shape_rejects_run_without_steps():
    root = _span_tree(lambda tr: None)
    with pytest.raises(GateError, match="no sequence.step"):
        check_sequence_shape(root)


def test_shape_rejects_dangling_batch_reference():
    def build(tr):
        _step_leaf(tr, fp_changed=False, batch=99)
    with pytest.raises(GateError, match="no service.batch span"):
        check_sequence_shape(_span_tree(build))


def test_shape_rejects_setup_span_on_unchanged_fp():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("setup.lu"):
                pass
        _step_leaf(tr, fp_changed=False)
    with pytest.raises(GateError, match="setup span"):
        check_sequence_shape(_span_tree(build))


def test_shape_rejects_harvest_on_unchanged_fp():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("recycle_update", strategy="A"):
                pass
        _step_leaf(tr, fp_changed=False)
    with pytest.raises(GateError, match="recycle_update"):
        check_sequence_shape(_span_tree(build))


def test_shape_rejects_slow_path_cycle_on_unchanged_fp():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("cycle", kind="gcrodr", same_system=False):
                pass
        _step_leaf(tr, fp_changed=False)
    with pytest.raises(GateError, match="same_system"):
        check_sequence_shape(_span_tree(build))


def test_shape_rejects_unrepaired_adoption():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("cycle", kind="gcrodr", same_system=False):
                pass
        _step_leaf(tr, fp_changed=True, adopted=True)
    with pytest.raises(GateError, match="repaired, never trusted"):
        check_sequence_shape(_span_tree(build))


def test_shape_rejects_trusted_adoption():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("recycle_repair", kind="adoption_boundary"):
                pass
            with tr.span("cycle", kind="gcrodr", same_system=True):
                pass
        _step_leaf(tr, fp_changed=True, adopted=True)
    with pytest.raises(GateError, match="same_system=True"):
        check_sequence_shape(_span_tree(build))


def test_shape_accepts_well_formed_tree():
    def build(tr):
        with tr.span("service.batch", batch=0):
            with tr.span("setup.lu"):
                pass
            with tr.span("recycle_repair", kind="adoption_boundary"):
                pass
        with tr.span("service.batch", batch=1):
            with tr.span("cycle", kind="gcrodr", same_system=True):
                pass
        _step_leaf(tr, fp_changed=True, adopted=True, batch=0, step=0)
        _step_leaf(tr, fp_changed=False, batch=1, step=1)
    shape = check_sequence_shape(_span_tree(build))
    assert shape == {"steps": 2, "fast_path_steps": 1, "adoptions": 1,
                     "batches": 2}


# -- options plumbing --------------------------------------------------
def test_sequence_options_validate_and_roundtrip():
    opts = seq_options(sequence_mode="shifted", sequence_adopt=False,
                       sequence_warm_start=True)
    args = opts.hpddm_args()
    joined = " ".join(args)
    assert "-hpddm_sequence_mode shifted" in joined
    assert "-hpddm_sequence_adopt false" in joined
    assert "-hpddm_sequence_warm_start" in joined
    parsed = parse_hpddm_args(args)
    assert parsed.sequence_mode == "shifted"
    assert parsed.sequence_adopt is False
    assert parsed.sequence_warm_start is True
    with pytest.raises(OptionError):
        Options(sequence_mode="interpolated").validate()
