"""Tests for the implicit-heat driver and variable-coefficient Poisson."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import Options
from repro.problems.heat import ImplicitHeat
from repro.problems.poisson import poisson_2d, poisson_2d_variable


class TestImplicitHeat:
    def test_stepping_solves_the_implicit_system(self, rng):
        heat = ImplicitHeat(nx=16, dt=1e-2)
        u0 = heat.u.copy()
        res = heat.step()
        assert res.converged.all()
        assert heat.t == pytest.approx(1e-2)
        assert not np.allclose(heat.u, u0)

    def test_matches_direct_solve(self):
        heat = ImplicitHeat(nx=12, dt=5e-3)
        f = heat.source(heat.problem.points, heat.dt)
        expect = spla.spsolve(heat.lhs.tocsc(), f)   # u0 = 0
        heat.step()
        assert np.allclose(heat.u, expect, atol=1e-6)

    def test_unforced_diffusion_decays(self, rng):
        heat = ImplicitHeat(nx=14, dt=1e-2,
                            source=lambda pts, t: np.zeros(len(pts)))
        heat.u = rng.standard_normal(heat.problem.n)
        e0 = heat.energy()
        heat.run(5)
        assert heat.energy() < e0

    def test_recycling_reduces_iterations_over_steps(self):
        """The paper's eq.-(4) motivation, end to end."""
        heat = ImplicitHeat(nx=40, dt=50.0)  # large dt => stiff solves
        heat.run(4)
        its = heat.iterations_per_step
        assert len(its) == 4
        # recycled steps are cheaper than the first
        assert min(its[1:]) < its[0]
        # and the same-system fast path was engaged
        assert heat.results[1].info["same_system"]

    def test_crank_nicolson(self, rng):
        heat = ImplicitHeat(nx=10, dt=1e-2, theta=0.5)
        res = heat.step()
        assert res.converged.all()

    def test_custom_solver_options(self):
        heat = ImplicitHeat(nx=10, dt=1e-2,
                            solver_options=Options(krylov_method="cg",
                                                   tol=1e-10, max_it=2000))
        res = heat.step()
        assert res.converged.all()
        assert res.method == "cg"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ImplicitHeat(nx=8, dt=-1.0)
        with pytest.raises(ValueError):
            ImplicitHeat(nx=8, theta=0.0)


class TestVariableCoefficientPoisson:
    def test_constant_coefficient_matches_plain(self):
        prob = poisson_2d_variable(6, lambda x, y: 1.0)
        ref = poisson_2d(6)
        assert abs(prob.a - ref.a).max() < 1e-10

    def test_scaling_by_constant(self):
        prob = poisson_2d_variable(5, lambda x, y: 3.0)
        ref = poisson_2d(5)
        assert abs(prob.a - 3.0 * ref.a).max() < 1e-10

    def test_spd_with_contrast(self, rng):
        def c(x, y):
            return np.where((x - 0.5) ** 2 + (y - 0.5) ** 2 < 0.1, 1e4, 1.0)
        prob = poisson_2d_variable(12, c)
        assert abs(prob.a - prob.a.T).max() < 1e-9
        w = spla.eigsh(prob.a, k=1, which="SA",
                       return_eigenvectors=False, maxiter=10000)
        assert w[0] > 0

    def test_array_coefficient(self, rng):
        nx = 6
        c = 1.0 + rng.random((nx + 2, nx + 2))
        prob = poisson_2d_variable(nx, c)
        assert prob.n == 36

    def test_array_shape_checked(self):
        with pytest.raises(ValueError, match="coefficient array"):
            poisson_2d_variable(6, np.ones((5, 5)))

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            poisson_2d_variable(4, lambda x, y: -1.0)

    def test_solution_flattens_in_high_coefficient_region(self):
        """Physics check: u is nearly constant inside a 1e4 inclusion."""
        def c(x, y):
            return np.where((x - 0.5) ** 2 + (y - 0.5) ** 2 < 0.06, 1e4, 1.0)
        prob = poisson_2d_variable(24, c)
        f = np.ones(prob.n)
        u = spla.spsolve(prob.a.tocsc(), f)
        x, y = prob.points.T
        inside = (x - 0.5) ** 2 + (y - 0.5) ** 2 < 0.04
        assert inside.sum() > 5
        assert u[inside].std() < 0.05 * max(abs(u).max(), 1e-12)

    def test_rectangular(self):
        prob = poisson_2d_variable(4, lambda x, y: 1.0, ny=7)
        assert prob.a.shape == (28, 28)
