"""Tests for the solve service: coalescing, setup caching, attribution.

Covers the contract of :mod:`repro.service`:

* coalesced block solves return the same answers (to solver tolerance) as
  individual solves, and per-request cost attribution conserves the batch
  ledger exactly;
* the :class:`~repro.service.cache.SetupCache` is keyed by operator
  *value* — same-structure/different-values operators never collide, and
  in-place mutation of a cached operator's data is a miss;
* :class:`repro.Solver` never carries same-system state or a recycled
  subspace across :meth:`~repro.Solver.reset`, and detects in-place
  operator mutation via the fingerprint guard.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, Solver, solve
from repro.service import SetupCache, SolveService, operator_fingerprint
from repro.service.fingerprint import Fingerprint
from repro.util import ledger
from repro.util.ledger import CostLedger

from conftest import laplacian_2d, make_rng, relative_residuals


def poisson(nx: int = 14) -> sp.csr_matrix:
    return laplacian_2d(nx)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_equal_for_equal_matrices(self):
        a = poisson()
        b = poisson()
        assert a is not b
        assert operator_fingerprint(a) == operator_fingerprint(b)

    def test_same_structure_different_values(self):
        a = poisson()
        b = a.copy()
        b.data = b.data * 2.0
        fa, fb = operator_fingerprint(a), operator_fingerprint(b)
        assert fa != fb
        assert fa.same_structure(fb)
        assert fa.structure == fb.structure
        assert fa.values != fb.values

    def test_in_place_mutation_changes_fingerprint(self):
        a = poisson()
        before = operator_fingerprint(a)
        a.data[0] += 1e-9
        assert operator_fingerprint(a) != before

    def test_dense_and_opaque(self):
        arr = np.eye(5)
        fp = operator_fingerprint(arr)
        assert fp.kind == "dense" and not fp.opaque

        def matvec(x):
            return x

        fo = operator_fingerprint(matvec)
        assert fo.opaque
        assert fo == operator_fingerprint(matvec)  # same object, same tag

    def test_dtype_matters(self):
        a = poisson()
        b = a.astype(np.complex128)
        assert operator_fingerprint(a) != operator_fingerprint(b)


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------
class TestSetupCache:
    def _fp(self, i: int) -> Fingerprint:
        return operator_fingerprint(poisson() * float(i + 1))

    def test_hit_miss_counters(self):
        cache = SetupCache(max_entries=4)
        fp = self._fp(0)
        art, hit = cache.get_or_build(fp, "lu", lambda: "artifact")
        assert (art, hit) == ("artifact", False)
        art, hit = cache.get_or_build(fp, "lu", lambda: "other")
        assert (art, hit) == ("artifact", True)
        stats = cache.stats()
        assert stats["total_hits"] == 1 and stats["total_misses"] == 1

    def test_value_keyed_no_collision(self):
        # same sparsity pattern, different values: distinct entries
        cache = SetupCache(max_entries=4)
        a = poisson()
        b = a.copy()
        b.data = b.data * 3.0
        fa, fb = operator_fingerprint(a), operator_fingerprint(b)
        assert fa.same_structure(fb)
        cache.put(fa, "lu", "for-a")
        assert cache.get(fb, "lu") is None
        cache.put(fb, "lu", "for-b")
        assert cache.get(fa, "lu") == "for-a"
        assert cache.get(fb, "lu") == "for-b"

    def test_in_place_mutation_misses(self):
        cache = SetupCache(max_entries=4)
        a = poisson()
        cache.put(operator_fingerprint(a), "lu", "stale-after-mutation")
        a.data *= 1.5
        assert cache.get(operator_fingerprint(a), "lu") is None

    def test_lru_eviction_order(self):
        cache = SetupCache(max_entries=2)
        f0, f1, f2 = (self._fp(i) for i in range(3))
        cache.put(f0, "lu", 0)
        cache.put(f1, "lu", 1)
        cache.get(f0, "lu")          # f0 becomes most-recent
        cache.put(f2, "lu", 2)       # evicts f1, the least-recent
        assert f1 not in cache
        assert cache.get(f0, "lu") == 0 and cache.get(f2, "lu") == 2
        assert cache.evictions == 1

    def test_invalidate(self):
        cache = SetupCache(max_entries=4)
        fp = self._fp(0)
        cache.put(fp, "lu", 0)
        cache.put(fp, "precond", 1)
        cache.invalidate(fp, kind="lu")
        assert cache.get(fp, "lu") is None
        assert cache.get(fp, "precond") == 1
        cache.invalidate()
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# coalescing correctness
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_32_requests_match_individual_solves(self):
        a = poisson()
        rng = make_rng(1)
        rhs = [rng.standard_normal(a.shape[0]) for _ in range(32)]
        opts = Options(krylov_method="gmres", tol=1e-10, service_pmax=8,
                       service_flush="queue_drained")
        svc = SolveService(options=opts, preconditioner="lu")
        reqs = [svc.submit(a, b) for b in rhs]
        assert svc.pending == 32
        svc.flush()
        for b, req in zip(rhs, reqs):
            res = req.result
            assert res.converged.all()
            assert res.x.shape == b.shape  # 1-D in, 1-D out
            assert relative_residuals(a, res.x, b).max() < 1e-8
            ref = solve(a, b, options=Options(krylov_method="gmres",
                                              tol=1e-10))
            assert np.allclose(res.x, ref.x, atol=1e-7)
        widths = [rep["width"] for rep in svc.batches]
        assert widths == [8, 8, 8, 8]
        # setup built exactly once, then hit by every later batch
        hits = [rep["setup_cache_hit"] for rep in svc.batches]
        assert hits == [False, True, True, True]

    def test_pmax_chunking_respects_multicolumn_requests(self):
        a = poisson()
        rng = make_rng(2)
        opts = Options(krylov_method="bgmres", tol=1e-8, service_pmax=4,
                       service_flush="queue_drained")
        svc = SolveService(options=opts)
        svc.submit(a, rng.standard_normal((a.shape[0], 3)))
        svc.submit(a, rng.standard_normal((a.shape[0], 3)))
        svc.submit(a, rng.standard_normal(a.shape[0]))
        svc.flush()
        # 3+3+1 with p_max=4 -> chunks [3, 1] never split a request
        assert [rep["width"] for rep in svc.batches] == [3, 4]

    def test_mixed_operators_do_not_coalesce(self):
        a = poisson()
        b = poisson() * 2.0
        opts = Options(krylov_method="gmres", tol=1e-9,
                       service_flush="queue_drained")
        svc = SolveService(options=opts)
        r1 = svc.submit(a, np.ones(a.shape[0]))
        r2 = svc.submit(b, np.ones(b.shape[0]))
        svc.flush()
        assert len(svc.batches) == 2
        assert r1.result.info["service"]["coalesced_requests"] == 1
        assert not np.allclose(r1.result.x, r2.result.x)

    def test_mixed_options_do_not_coalesce(self):
        a = poisson()
        base = Options(krylov_method="gmres", tol=1e-9,
                       service_flush="queue_drained")
        svc = SolveService(options=base)
        svc.submit(a, np.ones(a.shape[0]))
        svc.submit(a, np.ones(a.shape[0]),
                   options=Options(krylov_method="gmres", tol=1e-6,
                                   service_flush="queue_drained"))
        svc.flush()
        assert len(svc.batches) == 2


# ---------------------------------------------------------------------------
# flush policies
# ---------------------------------------------------------------------------
class TestFlushPolicies:
    def test_batch_full_dispatches_eagerly(self):
        a = poisson()
        opts = Options(krylov_method="gmres", tol=1e-8, service_pmax=4,
                       service_flush="batch_full")
        svc = SolveService(options=opts)
        reqs = [svc.submit(a, np.full(a.shape[0], float(j + 1)))
                for j in range(6)]
        # first four dispatched the moment the group filled; two remain
        assert [r.done for r in reqs] == [True] * 4 + [False] * 2
        assert svc.pending == 2
        svc.flush()
        assert all(r.done for r in reqs)

    def test_queue_drained_waits_for_flush(self):
        a = poisson()
        opts = Options(krylov_method="gmres", tol=1e-8, service_pmax=2,
                       service_flush="queue_drained")
        svc = SolveService(options=opts)
        reqs = [svc.submit(a, np.ones(a.shape[0])) for _ in range(5)]
        assert not any(r.done for r in reqs)
        # result() flushes just that group
        res = svc.result(reqs[0])
        assert res is reqs[0].result
        assert all(r.done for r in reqs)

    def test_explicit_requires_flush(self):
        a = poisson()
        opts = Options(krylov_method="gmres", tol=1e-8,
                       service_flush="explicit")
        svc = SolveService(options=opts)
        req = svc.submit(a, np.ones(a.shape[0]))
        with pytest.raises(RuntimeError, match="explicit"):
            svc.result(req)
        svc.flush()
        assert svc.result(req).converged.all()


# ---------------------------------------------------------------------------
# cost attribution
# ---------------------------------------------------------------------------
class TestAttribution:
    def test_per_request_costs_conserve_batch_ledger(self):
        a = poisson()
        rng = make_rng(3)
        opts = Options(krylov_method="gcrodr", recycle=5, tol=1e-9,
                       service_pmax=6, service_flush="queue_drained")
        svc = SolveService(options=opts, preconditioner="lu")
        reqs = [svc.submit(a, rng.standard_normal(a.shape[0]))
                for _ in range(13)]
        with ledger.install() as ambient:
            svc.flush()
        # sum of per-request attributed costs == sum of batch ledgers
        total = CostLedger()
        for req in reqs:
            total.merge(req.result.info["service"]["cost"])
        batch_total = CostLedger()
        for rep in svc.batches:
            batch_total.merge(rep["ledger"])
        assert total.counts() == batch_total.counts()
        # and the ambient ledger saw exactly the batch totals
        assert ambient.counts() == batch_total.counts()

    def test_split_is_exact_for_any_ledger(self):
        led = CostLedger()
        led.reduction(nbytes=56, count=7)
        led.p2p(messages=3, nbytes=1000)
        from repro.util.ledger import Kernel
        led.flop(Kernel.SPMM, 1234567.25)
        led.flop(Kernel.BLAS3, 99.75)
        led.event("solve", 5)
        for parts in (1, 2, 3, 7):
            merged = CostLedger()
            for share in led.split(parts):
                merged.merge(share)
            assert merged.counts() == led.counts()

    def test_amortized_share_smaller_than_solo_cost(self):
        a = poisson()
        rng = make_rng(4)
        rhs = [rng.standard_normal(a.shape[0]) for _ in range(8)]
        opts = Options(krylov_method="gmres", tol=1e-9, service_pmax=8,
                       service_flush="queue_drained")
        svc = SolveService(options=opts, preconditioner="lu")
        reqs = [svc.submit(a, b) for b in rhs]
        svc.flush()
        share = reqs[0].result.info["service"]["cost"]
        with ledger.install() as solo:
            solve(a, rhs[0], options=Options(krylov_method="gmres", tol=1e-9))
        # a coalesced request is charged fewer reductions than going alone
        assert share.reductions < solo.reductions


# ---------------------------------------------------------------------------
# service + recycling + verify
# ---------------------------------------------------------------------------
class TestServiceRecycling:
    def test_recycle_state_reused_across_batches(self):
        a = poisson()
        rng = make_rng(5)
        opts = Options(krylov_method="gcrodr", recycle=6, gmres_restart=25,
                       tol=1e-9, service_pmax=4,
                       service_flush="queue_drained")
        svc = SolveService(options=opts, preconditioner="lu")
        for _ in range(2):
            reqs = [svc.submit(a, rng.standard_normal(a.shape[0]))
                    for _ in range(4)]
            svc.flush()
            assert all(r.result.converged.all() for r in reqs)
        assert svc.batches[0]["method"] == "pgcrodr"
        first = reqs[0].result.info["service"]
        assert first["recycle_cache_hit"] is True
        assert reqs[0].result.info["same_system"] is True

    def test_verify_cheap_on_service_path(self):
        a = poisson()
        opts = Options(krylov_method="gmres", tol=1e-9, verify="cheap",
                       service_flush="queue_drained")
        svc = SolveService(options=opts, preconditioner="lu")
        req = svc.submit(a, np.ones(a.shape[0]))
        svc.flush()
        report = req.result.info["verify"]
        assert report["violations"] == []
        assert report["checks"] > 0


# ---------------------------------------------------------------------------
# Solver reset / fingerprint regression (satellite c)
# ---------------------------------------------------------------------------
class TestSolverReset:
    def _options(self):
        return Options(krylov_method="gcrodr", recycle=5, gmres_restart=20,
                       tol=1e-8)

    def test_reset_clears_recycle_and_same_system(self):
        a = poisson()
        rng = make_rng(6)
        s = Solver(options=self._options())
        s.solve(a, rng.standard_normal(a.shape[0]))
        assert s.recycled is not None
        s.reset()
        assert s.recycled is None and s._last_tag is None \
            and s._last_fingerprint is None
        # next solve against the *same operator object* is a fresh sequence:
        # no same-system fast path, no adopted recycle space
        res = s.solve(a, rng.standard_normal(a.shape[0]))
        assert res.info["same_system"] is not True
        assert res.converged.all()

    def test_in_place_mutation_disables_same_system(self):
        a = poisson()
        rng = make_rng(7)
        s = Solver(options=self._options())
        s.solve(a, rng.standard_normal(a.shape[0]))
        r2 = s.solve(a, rng.standard_normal(a.shape[0]))
        assert r2.info["same_system"] is True  # unchanged operator
        a.data *= 1.5  # same object/tag, different values
        r3 = s.solve(a, rng.standard_normal(a.shape[0]))
        assert r3.info["same_system"] is not True
        assert r3.converged.all()

    def test_shared_cache_gives_cross_instance_fast_path(self):
        a = poisson()
        rng = make_rng(8)
        cache = SetupCache(max_entries=4)
        s1 = Solver(options=self._options(), setup_cache=cache)
        s1.solve(a, rng.standard_normal(a.shape[0]))
        s2 = Solver(options=self._options(), setup_cache=cache)
        res = s2.solve(a, rng.standard_normal(a.shape[0]))
        assert res.info["same_system"] is True
        assert res.converged.all()
        # ...but a reset still forces the fresh path on the same instance
        s2.reset()
        assert s2.recycled is None
