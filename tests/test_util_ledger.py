"""Tests for the cost ledger (the accounting backbone)."""

import numpy as np

from repro.util import ledger
from repro.util.ledger import CostLedger, Kernel


class TestLedgerBasics:
    def test_null_ledger_swallows_events(self):
        # no ledger installed: events must not raise and must not accumulate
        ledger.current().reduction()
        ledger.current().flop(Kernel.SPMV, 100)
        assert ledger.current().reductions == 0

    def test_install_and_count(self):
        with ledger.install() as led:
            ledger.current().reduction()
            ledger.current().reduction(nbytes=64, count=3)
        assert led.reductions == 4
        assert led.reduction_bytes == 8 + 64 * 3

    def test_nesting_inner_shadows_outer(self):
        with ledger.install() as outer:
            ledger.current().reduction()
            with ledger.install() as inner:
                ledger.current().reduction()
            ledger.current().reduction()
        assert outer.reductions == 2
        assert inner.reductions == 1

    def test_p2p_and_flops(self):
        with ledger.install() as led:
            ledger.current().p2p(messages=4, nbytes=1024)
            ledger.current().flop(Kernel.SPMM, 1e6)
            ledger.current().flop(Kernel.SPMM, 2e6)
            ledger.current().flop(Kernel.BLAS3, 5e5)
        assert led.p2p_messages == 4
        assert led.p2p_bytes == 1024
        assert led.flops[Kernel.SPMM] == 3e6
        assert led.total_flops() == 3.5e6

    def test_events(self):
        with ledger.install() as led:
            ledger.current().event("operator_apply", 3)
            ledger.current().event("operator_apply")
        assert led.calls["operator_apply"] == 4

    def test_timer_accumulates(self):
        led = CostLedger()
        with led.timer("setup"):
            pass
        with led.timer("setup"):
            pass
        assert "setup" in led.timers
        assert led.timers["setup"] >= 0.0


class TestSnapshotDiff:
    def test_diff_isolates_a_phase(self):
        with ledger.install() as led:
            ledger.current().reduction()
            ledger.current().flop(Kernel.SPMV, 10)
            before = led.snapshot()
            ledger.current().reduction(count=5)
            ledger.current().flop(Kernel.SPMV, 30)
            delta = led.diff(before)
        assert delta.reductions == 5
        assert delta.flops[Kernel.SPMV] == 30
        # original unchanged by diffing
        assert led.reductions == 6

    def test_snapshot_is_independent(self):
        with ledger.install() as led:
            snap = led.snapshot()
            ledger.current().reduction()
        assert snap.reductions == 0

    def test_summary_is_text(self):
        with ledger.install() as led:
            ledger.current().reduction()
            ledger.current().flop(Kernel.BLAS3, 1e3)
        text = led.summary()
        assert "reductions" in text
        assert "blas3" in text


class TestInstrumentedKernels:
    def test_solver_reductions_counted(self):
        import scipy.sparse as sp
        from repro import Options, solve
        n = 64
        a = sp.diags([-np.ones(n - 1), 3.0 * np.ones(n), -np.ones(n - 1)],
                     [-1, 0, 1]).tocsr()
        b = np.ones(n)
        with ledger.install() as led:
            res = solve(a, b, options=Options(tol=1e-10))
        assert res.converged.all()
        # every Arnoldi iteration costs at least a projection + a norm
        assert led.reductions >= 2 * res.iterations
        assert led.calls["operator_apply"] >= res.iterations

    def test_spmm_vs_spmv_classification(self):
        import scipy.sparse as sp
        from repro.krylov.base import as_operator
        a = as_operator(sp.eye(10).tocsr())
        with ledger.install() as led:
            a.matmat(np.ones((10, 1)))
            a.matmat(np.ones((10, 4)))
        assert led.flops[Kernel.SPMV] > 0
        assert led.flops[Kernel.SPMM] > 0
