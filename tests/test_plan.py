"""Tests for the execution-plan compiler (``repro.plan``).

Three layers of guarantees, from unit to end-to-end:

1. the optimizer passes (hoist / fuse / batch / pre-bind) conserve the
   replayed charge totals of a lowered plan exactly;
2. the compiled cycle and pseudo-block orthogonalizer are bit-identical
   twins of the interpreter — same :meth:`CostLedger.counts` tuple AND
   bitwise-equal iterates — across the conformance subset (5 solvers x
   both exec modes x low-sync schemes);
3. a mis-charged plan node is *caught*: tampering with a bound cost trips
   the ledger-conservation invariant checker (mutation test).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Options, solve
from repro.krylov.cycle import block_arnoldi_cycle, complete_block
from repro.plan import (AugmentedTensorArena, BasisArena, SketchArena,
                        TransposedBasisArena, lower_cycle,
                        make_pseudo_block_orthogonalizer, optimize)
from repro.plan.ir import ZERO_COST, flop_cost, reduction_cost, run_nodes
from repro.util import ledger
from repro.util.ledger import Kernel
from repro.util.options import parse_hpddm_args
from repro.verify import (InvariantChecker, InvariantViolation,
                          cross_check_plan_modes)

from matrix import Config, make_problem


# ---------------------------------------------------------------------------
# end-to-end: counts() and iterates bit-identical across the matrix subset
# ---------------------------------------------------------------------------

PARITY_CONFIGS = [
    Config(method, exec_mode=mode, p=(3 if method != "gmresdr" else 1),
           ortho=scheme)
    for method in ("gmres", "bgmres", "gcrodr", "bgcrodr", "gmresdr")
    for mode in ("fused", "per_rank")
    for scheme in ("cgs2_1r", "sketched")
]


@pytest.mark.parametrize("cfg", PARITY_CONFIGS, ids=lambda c: c.id())
def test_plan_modes_bit_identical(cfg):
    a, b, m = make_problem(cfg)
    base = cfg.options(verify="off")

    def run(plan):
        return solve(a, b, m, options=base.replace(plan=plan))

    # the default checker raises InvariantViolation on any counts() or
    # bitwise iterate mismatch, so reaching the asserts means parity held
    ri, rc = cross_check_plan_modes(run, extract=lambda r: np.asarray(r.x),
                                    what=cfg.id())
    assert ri.iterations == rc.iterations
    assert np.array_equal(np.asarray(ri.converged), np.asarray(rc.converged))
    assert np.array_equal(ri.history.matrix(), rc.history.matrix())


def test_cycle_level_parity_with_recycle_block():
    """Direct cycle parity with a C_k projector (the GCRO-DR hot path)."""
    rng = np.random.default_rng(11)
    n, p, k = 90, 3, 4
    a = np.diag(4.0 + 0.1 * rng.standard_normal(n)) \
        + 0.5 * np.eye(n, k=1) + 0.4 * np.eye(n, k=-1)
    ck, _ = np.linalg.qr(rng.standard_normal((n, k)))
    v1, s1 = np.linalg.qr(rng.standard_normal((n, p)))
    for ortho in ("cgs2_1r", "cholqr2", "sketched"):
        outs = {}
        for plan in ("interpret", "compiled"):
            with ledger.install() as led:
                st = block_arnoldi_cycle(
                    lambda z: a @ z, lambda v: v, v1.copy(), s1.copy(),
                    max_steps=8, ck=ck, ortho=ortho, identity_m=True,
                    plan=plan)
            outs[plan] = (led.counts(), st)
        ci, cc = outs["interpret"], outs["compiled"]
        assert ci[0] == cc[0], f"{ortho}: counts diverge"
        assert ci[1].steps == cc[1].steps
        assert np.array_equal(ci[1].v_stack(), cc[1].v_stack()), ortho
        assert np.array_equal(ci[1].hqr.g, cc[1].hqr.g), ortho
        assert np.array_equal(ci[1].ek_matrix(), cc[1].ek_matrix()), ortho
        assert cc[1].plan_stats and cc[1].plan_stats["fused"] > 0


def test_single_column_parity():
    """p == 1 exercises the GEMV dispatch regime (trans vs notrans)."""
    rng = np.random.default_rng(5)
    n = 70
    a = np.diag(3.0 + rng.random(n)) + 0.3 * np.eye(n, k=1)
    v1, s1 = np.linalg.qr(rng.standard_normal((n, 1)))
    for ortho in ("cgs2_1r", "cholqr2", "sketched"):
        outs = {}
        for plan in ("interpret", "compiled"):
            with ledger.install() as led:
                st = block_arnoldi_cycle(
                    lambda z: a @ z, lambda v: v, v1.copy(), s1.copy(),
                    max_steps=6, ortho=ortho, identity_m=True, plan=plan)
            outs[plan] = (led.counts(), st.v_stack())
        assert outs["interpret"][0] == outs["compiled"][0], ortho
        assert np.array_equal(outs["interpret"][1],
                              outs["compiled"][1]), ortho


# ---------------------------------------------------------------------------
# optimizer passes: charge conservation + effectiveness
# ---------------------------------------------------------------------------

LOWERINGS = [("cgs2_1r", 0), ("cgs2_1r", 4), ("cholqr2", 0),
             ("sketched", 0), ("sketched", 4)]


@pytest.mark.parametrize("ortho,k", LOWERINGS,
                         ids=[f"{o}-k{k}" for o, k in LOWERINGS])
def test_optimize_conserves_total_cost(ortho, k):
    raw = lower_cycle(ortho=ortho, n=200, p=3, k=k, steps=6, max_steps=6,
                      dtype=np.float64)
    before = raw.total_cost().counts()
    opt = optimize(raw)
    assert opt.total_cost().counts() == before
    assert opt.stats["prebound"] >= 0
    assert all(n.cost_thunk is None for n in opt.all_nodes())


def test_optimize_hoists_and_fuses():
    plan = optimize(lower_cycle(ortho="cgs2_1r", n=100, p=2, k=0, steps=5,
                                max_steps=5, dtype=np.float64))
    # one scaffold per step hoisted (the prologue copy satisfies the key)
    assert plan.stats["hoisted"] == 5
    assert plan.stats["fused"] > 0
    # hoisting is idempotent-safe: exactly one scaffold node survives
    scaffolds = [n for n in plan.prologue if "scaffold" in n.label]
    assert len(scaffolds) == 1
    for step in plan.steps:
        assert not any("scaffold" in n.label for n in step)


def test_optimize_batches_sketch_setup():
    plan = optimize(lower_cycle(ortho="sketched", n=100, p=2, k=3, steps=4,
                                max_steps=4, dtype=np.float64))
    assert plan.stats["batched"] >= 1
    assert any(n.kind == "batched" for n in plan.prologue)


def test_fusion_preserves_execution_order():
    """A fused node runs its constituent bodies in original order."""
    from repro.plan.ir import Plan, PlanNode

    calls = []
    mk = lambda i: PlanNode(kind="t", label=f"n{i}", phase="ortho",
                            run=lambda ctx, i=i: calls.append(i),
                            cost=flop_cost(Kernel.BLAS3, float(i + 1)),
                            fusable=True)
    plan = Plan(steps=[[mk(0), mk(1), mk(2)]])
    before = plan.total_cost().counts()
    opt = optimize(plan)
    assert len(opt.steps[0]) == 1
    assert opt.total_cost().counts() == before
    led = ledger.CostLedger()
    run_nodes(opt.steps[0], None, led)
    assert calls == [0, 1, 2]
    assert led.counts() == before


def test_branch_nodes_never_fuse():
    plan = lower_cycle(ortho="cgs2_1r", n=50, p=2, k=0, steps=3,
                       max_steps=3, dtype=np.float64)
    opt = optimize(plan)
    for node in opt.all_nodes():
        if node.branches:
            assert "+" not in node.label, \
                f"branch node {node.label} was fused"


# ---------------------------------------------------------------------------
# mutation: a mis-charged plan node must trip the conservation checker
# ---------------------------------------------------------------------------

def test_mischarged_node_trips_checker(monkeypatch):
    from repro.plan import block_cycle

    real_lower = block_cycle.lower_cycle

    def tampered_lower(**kw):
        plan = real_lower(**kw)
        for node in plan.steps[0]:
            if node.cost_thunk is not None or not node.cost.is_zero:
                node.cost_thunk = None
                node.cost = ZERO_COST       # drop one node's charge
                return plan
        raise AssertionError("no charged node found to tamper")

    monkeypatch.setattr(block_cycle, "lower_cycle", tampered_lower)
    cfg = Config("bgmres", p=3, ortho="cgs2_1r")
    a, b, m = make_problem(cfg)
    base = cfg.options(verify="off")
    with pytest.raises(InvariantViolation, match="ledger_conservation"):
        cross_check_plan_modes(
            lambda plan: solve(a, b, m, options=base.replace(plan=plan)),
            extract=lambda r: np.asarray(r.x))


def test_checker_collects_when_not_raising():
    chk = InvariantChecker("full", context="t", raise_on_violation=False)
    led_a, led_b = ledger.CostLedger(), ledger.CostLedger()
    led_a.flop(Kernel.BLAS3, 100.0)
    chk.check_ledger_conservation(led_a, led_b, what="tampered")
    assert chk.violations and \
        chk.violations[0]["name"] == "ledger_conservation"


# ---------------------------------------------------------------------------
# pseudo-block factory + arenas
# ---------------------------------------------------------------------------

def test_pseudo_block_factory_dispatch():
    from repro.la.orthogonalization import PseudoBlockOrthogonalizer
    from repro.plan.pseudoblock import CompiledPseudoBlockOrthogonalizer

    interp = make_pseudo_block_orthogonalizer(
        "cgs2_1r", plan="interpret", n=50, p=2, dtype=np.float64,
        max_cols=10)
    comp = make_pseudo_block_orthogonalizer(
        "cgs2_1r", plan="compiled", n=50, p=2, dtype=np.float64,
        max_cols=10)
    assert type(interp) is PseudoBlockOrthogonalizer
    assert isinstance(comp, CompiledPseudoBlockOrthogonalizer)


@pytest.mark.parametrize("scheme", ["mgs", "cgs", "imgs", "cgs2_1r",
                                    "cholqr2", "sketched"])
def test_pseudo_block_step_parity(scheme):
    """Compiled pre-bound step charges == interpreter's, bitwise results."""
    rng = np.random.default_rng(9)
    n, p, steps = 80, 2, 5
    a = np.diag(3.0 + rng.random(n)) + 0.2 * np.eye(n, k=1)
    q0, _ = np.linalg.qr(rng.standard_normal((n, p)))
    outs = {}
    for plan in ("interpret", "compiled"):
        orth = make_pseudo_block_orthogonalizer(
            scheme, plan=plan, n=n, p=p, dtype=np.float64,
            max_cols=steps + 1)
        v = np.zeros((steps + 1, n, p))
        v[0] = q0
        with ledger.install() as led:
            orth.begin(v[:1])
            for j in range(steps):
                w = a @ v[j]
                w2, dots, nrms = orth.step(v[: j + 1], w, j)
                v[j + 1] = w2 / np.where(nrms > 0, nrms, 1.0)
                orth.commit(np.ones(p, dtype=bool))
        outs[plan] = (led.counts(), v.copy())
    assert outs["interpret"][0] == outs["compiled"][0]
    assert np.array_equal(outs["interpret"][1], outs["compiled"][1])


def test_basis_arena_layout():
    arena = BasisArena(10, 2, 3, 4, np.float64)
    rng = np.random.default_rng(0)
    ck = rng.standard_normal((10, 3))
    v1 = rng.standard_normal((10, 2))
    arena.bind(v1, ck)
    assert arena.cols == 5
    assert np.array_equal(arena.basis()[:, :3], ck)
    assert np.array_equal(arena.block(0), v1)
    slot = arena.slot()
    slot[:] = 7.0
    assert arena.stacked().shape == (10, 7)
    arena.advance()
    assert np.all(arena.block(1) == 7.0)
    # views alias the slab: no copies
    assert arena.basis().base is arena.slab


def test_augmented_tensor_arena_is_contiguous_prefix():
    arena = AugmentedTensorArena(2, 3, 8, 2, np.float64)
    arena.ck[:] = 1.0
    arena.v[0] = 2.0
    st = arena.stacked(0)
    assert st.shape == (3, 8, 2)
    assert st.flags["C_CONTIGUOUS"]      # layout-identical to concatenate
    assert np.all(st[:2] == 1.0) and np.all(st[2] == 2.0)


def test_transposed_basis_arena_matches_retranspose():
    rng = np.random.default_rng(1)
    v = rng.standard_normal((12, 5))
    arena = TransposedBasisArena(5, 12, np.float64)
    arena.seed(v, 2)
    arena.append(v[:, 2])
    ref = np.ascontiguousarray(v[:, :3].T)[:, :, np.newaxis]
    assert np.array_equal(arena.prefix(2), ref)


def test_sketch_arena_append():
    arena = SketchArena(6, 4, np.float64)
    arena.seed(np.ones((6, 2)))
    arena.append(2.0 * np.ones((6, 1)))
    assert arena.view().shape == (6, 3)
    assert np.all(arena.view()[:, 2] == 2.0)


# ---------------------------------------------------------------------------
# options plumbing + complete_block fix
# ---------------------------------------------------------------------------

def test_plan_option_round_trip():
    o = Options(plan="compiled")
    assert "-hpddm_plan" in o.hpddm_args()
    o2 = parse_hpddm_args(o.hpddm_args())
    assert o2.plan == "compiled"
    assert parse_hpddm_args([]).plan == "interpret"


def test_plan_option_rejects_unknown():
    from repro.util.options import OptionError
    with pytest.raises(OptionError, match="plan"):
        Options(plan="jit")


def test_complete_block_skips_requr_when_no_against():
    """With no extra blocks the leading columns are used directly — the
    fill must still be orthonormal and orthogonal to them."""
    rng = np.random.default_rng(3)
    q = np.zeros((20, 4))
    q[:, :2], _ = np.linalg.qr(rng.standard_normal((20, 2)))
    out = complete_block(q, 2)
    g = out.conj().T @ out
    assert np.allclose(g, np.eye(4), atol=1e-10)
    assert np.array_equal(out[:, :2], q[:, :2])


def test_complete_block_rank_full_short_circuit():
    """rank == p returns the input unchanged without touching the RNG."""
    rng = np.random.default_rng(4)
    q, _ = np.linalg.qr(rng.standard_normal((15, 3)))
    out = complete_block(q, 3)
    assert out is q


def test_complete_block_with_against_blocks():
    rng = np.random.default_rng(6)
    q = np.zeros((25, 3))
    q[:, :1], _ = np.linalg.qr(rng.standard_normal((25, 1)))
    extra, _ = np.linalg.qr(rng.standard_normal((25, 2)))
    out = complete_block(q, 1, against=[extra])
    assert np.allclose(out.conj().T @ out, np.eye(3), atol=1e-10)
    assert np.max(np.abs(extra.conj().T @ out[:, 1:])) < 1e-10


def test_complete_block_empty_against_entries():
    """Zero-width against blocks must not force the re-QR path."""
    rng = np.random.default_rng(8)
    q = np.zeros((18, 3))
    q[:, :2], _ = np.linalg.qr(rng.standard_normal((18, 2)))
    ref = complete_block(q, 2)
    out = complete_block(q, 2, against=[np.zeros((18, 0))])
    assert np.array_equal(out, ref)


# ---------------------------------------------------------------------------
# trace spans close at the interpreter's boundaries
# ---------------------------------------------------------------------------

def test_compiled_trace_spans_match_interpreter():
    from repro.trace import Tracer
    from repro.trace import install as trace_install

    rng = np.random.default_rng(12)
    n, p = 60, 2
    a = np.diag(4.0 + rng.random(n)) + 0.3 * np.eye(n, k=1)
    v1, s1 = np.linalg.qr(rng.standard_normal((n, p)))
    shapes = {}
    for plan in ("interpret", "compiled"):
        with trace_install(Tracer("summary")) as tr, ledger.install():
            block_arnoldi_cycle(lambda z: a @ z, lambda v: v,
                                v1.copy(), s1.copy(), max_steps=4,
                                ortho="cgs2_1r", identity_m=True, plan=plan)
        shapes[plan] = [(s.name, s.attrs.get("j", s.attrs.get("scheme")))
                        for root in tr.roots for s in root.walk()]
    assert shapes["interpret"] == shapes["compiled"]
    assert ("ortho", "cgs2_1r") in shapes["compiled"]


# ---------------------------------------------------------------------------
# lint rule: plan-node bodies charge only through pre-bound NodeCost specs
# ---------------------------------------------------------------------------

def _lint_plan_source(src: str, rel_parts=("src", "repro", "plan", "fake.py")):
    import ast as _ast
    import importlib.util
    import os as _os

    spec = importlib.util.spec_from_file_location(
        "lint_repro", _os.path.join(_os.path.dirname(__file__), _os.pardir,
                                    "scripts", "lint_repro.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    visitor = mod._Visitor(_os.path.join(*rel_parts), src.splitlines())
    visitor.visit(_ast.parse(src))
    return [rule for rule, _, _ in visitor.findings]


def test_lint_flags_direct_ledger_call_in_plan_body():
    src = 'def body(ctx):\n    ctx.led.flop("gemm", 12)\n'
    assert "plan-ledger" in _lint_plan_source(src)


def test_lint_accepts_prebound_charge_and_waiver():
    prebound = "def body(ctx, cost):\n    cost.charge(ctx.led, 3)\n"
    assert "plan-ledger" not in _lint_plan_source(prebound)
    waived = ('def body(ctx):\n'
              '    ctx.led.event("x")  # lint: allow(plan-ledger)\n')
    assert "plan-ledger" not in _lint_plan_source(waived)
    # ir.py hosts ChargeSpec.charge itself and stays exempt
    direct = 'def charge(self, led):\n    led.flop("gemm", 1)\n'
    assert "plan-ledger" not in _lint_plan_source(
        direct, rel_parts=("src", "repro", "plan", "ir.py"))


def test_lint_plan_tree_is_clean():
    import importlib.util
    import os as _os

    root = _os.path.join(_os.path.dirname(__file__), _os.pardir)
    spec = importlib.util.spec_from_file_location(
        "lint_repro", _os.path.join(root, "scripts", "lint_repro.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    plan_dir = _os.path.join(root, "src", "repro", "plan")
    findings = []
    for name in sorted(_os.listdir(plan_dir)):
        if name.endswith(".py"):
            findings += [(name, f) for f in
                         mod.lint_file(_os.path.join(plan_dir, name))]
    assert findings == []
