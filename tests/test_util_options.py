"""Tests for the HPDDM-style option registry."""

import pytest

from repro.util.options import OptionError, Options, parse_hpddm_args


class TestOptionsValidation:
    def test_defaults_are_valid(self):
        opt = Options()
        assert opt.krylov_method == "gmres"
        assert opt.gmres_restart == 30
        assert opt.tol == 1.0e-8

    def test_unknown_method_rejected(self):
        with pytest.raises(OptionError, match="krylov_method"):
            Options(krylov_method="supergmres")

    def test_unknown_variant_rejected(self):
        with pytest.raises(OptionError, match="variant"):
            Options(variant="middle")

    def test_unknown_ortho_rejected(self):
        with pytest.raises(OptionError, match="orthogonalization"):
            Options(orthogonalization="qr")

    def test_unknown_qr_rejected(self):
        with pytest.raises(OptionError, match="qr"):
            Options(qr="lu")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptionError, match="recycle_strategy"):
            Options(recycle_strategy="C")

    def test_recycle_bounds_for_gcrodr(self):
        # k must satisfy 0 < k < m
        with pytest.raises(OptionError, match="recycle"):
            Options(krylov_method="gcrodr", gmres_restart=30, recycle=0)
        with pytest.raises(OptionError, match="recycle"):
            Options(krylov_method="gcrodr", gmres_restart=30, recycle=30)
        opt = Options(krylov_method="gcrodr", gmres_restart=30, recycle=29)
        assert opt.recycle == 29

    def test_recycle_ignored_bound_for_gmres(self):
        # plain GMRES may carry recycle (used by lgmres augment default)
        opt = Options(krylov_method="lgmres", recycle=10)
        assert opt.recycle == 10

    def test_negative_recycle_rejected(self):
        with pytest.raises(OptionError):
            Options(recycle=-1)

    def test_tol_bounds(self):
        with pytest.raises(OptionError):
            Options(tol=0.0)
        with pytest.raises(OptionError):
            Options(tol=1.5)

    def test_restart_bound(self):
        with pytest.raises(OptionError):
            Options(gmres_restart=0)

    def test_max_it_bound(self):
        with pytest.raises(OptionError):
            Options(max_it=0)


class TestOptionsProperties:
    def test_is_block(self):
        assert Options(krylov_method="bgmres").is_block
        assert Options(krylov_method="bgcrodr", recycle=5).is_block
        assert not Options(krylov_method="gmres").is_block

    def test_is_recycling(self):
        assert Options(krylov_method="gcrodr", recycle=5).is_recycling
        assert not Options(krylov_method="bgmres").is_recycling

    def test_is_flexible(self):
        assert Options(variant="flexible").is_flexible
        assert not Options(variant="right").is_flexible

    def test_replace_revalidates(self):
        opt = Options()
        with pytest.raises(OptionError):
            opt.replace(krylov_method="gcrodr", recycle=0)
        opt2 = opt.replace(krylov_method="gcrodr", recycle=10)
        assert opt2.recycle == 10
        assert opt.recycle == 0  # original untouched

    def test_as_dict_roundtrip(self):
        opt = Options(krylov_method="bgcrodr", recycle=7, tol=1e-6)
        d = opt.as_dict()
        opt2 = Options(**d)
        assert opt2 == opt


class TestHpddmArgs:
    def test_parse_artifact_command_line(self):
        # the exact flags from the paper's artifact description, section E
        args = ("-hpddm_recycle_same_system -ksp_pc_side right "
                "-ksp_rtol 1.0e-6 -hpddm_recycle 10 -hpddm_krylov_method "
                "gcrodr -hpddm_gmres_restart 30").split()
        opt = parse_hpddm_args(args)
        assert opt.krylov_method == "gcrodr"
        assert opt.recycle == 10
        assert opt.gmres_restart == 30
        assert opt.recycle_same_system

    def test_parse_flexible_strategy(self):
        args = ("-hpddm_krylov_method gcrodr -hpddm_recycle 10 "
                "-hpddm_gmres_restart 30 -hpddm_tol 1.0e-8 "
                "-hpddm_variant flexible -hpddm_recycle_strategy B").split()
        opt = parse_hpddm_args(args)
        assert opt.variant == "flexible"
        assert opt.recycle_strategy == "B"
        assert opt.tol == 1.0e-8

    def test_foreign_options_are_ignored(self):
        opt = parse_hpddm_args(["-pc_type", "gamg", "-hpddm_recycle", "3",
                                "-hpddm_krylov_method", "gcrodr"])
        assert opt.recycle == 3

    def test_unknown_hpddm_option_lands_in_extra(self):
        opt = parse_hpddm_args(["-hpddm_schwarz_method", "oras"])
        assert opt.extra["schwarz_method"] == "oras"

    def test_missing_value_raises(self):
        with pytest.raises(OptionError, match="expects a value"):
            parse_hpddm_args(["-hpddm_recycle"])

    def test_bool_flag_with_explicit_value(self):
        opt = parse_hpddm_args(["-hpddm_recycle_same_system", "false"])
        assert not opt.recycle_same_system

    def test_render_roundtrip(self):
        opt = Options(krylov_method="gcrodr", recycle=10, gmres_restart=40,
                      recycle_same_system=True, variant="flexible")
        opt2 = parse_hpddm_args(opt.hpddm_args())
        assert opt2.krylov_method == opt.krylov_method
        assert opt2.recycle == opt.recycle
        assert opt2.gmres_restart == opt.gmres_restart
        assert opt2.recycle_same_system == opt.recycle_same_system
        assert opt2.variant == opt.variant

    def test_defaults_mapping(self):
        opt = parse_hpddm_args([], defaults={"tol": 1e-4})
        assert opt.tol == 1e-4
