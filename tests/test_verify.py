"""Tests for the runtime invariant checker (:mod:`repro.verify`)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, solve
from repro.distla.distqr import distributed_cholqr, distributed_tsqr
from repro.distla.distvec import DistributedBlockVector
from repro.simmpi.grid import VirtualGrid
from repro.util import ledger
from repro.util.execmode import exec_mode
from repro.util.options import parse_hpddm_args
from repro.verify import (NULL_CHECKER, InvariantChecker, InvariantViolation,
                          activate, checker_for, cross_check_exec_modes,
                          current)

from conftest import laplacian_1d, make_rng


def _arnoldi(a, v0, steps):
    """Reference MGS Arnoldi: returns (V_{m+1}, Hbar_m)."""
    n = v0.shape[0]
    v = np.zeros((n, steps + 1))
    hbar = np.zeros((steps + 1, steps))
    v[:, 0] = v0 / np.linalg.norm(v0)
    for j in range(steps):
        w = a @ v[:, j]
        for i in range(j + 1):
            hbar[i, j] = v[:, i] @ w
            w = w - hbar[i, j] * v[:, i]
        hbar[j + 1, j] = np.linalg.norm(w)
        v[:, j + 1] = w / hbar[j + 1, j]
    return v, hbar


class TestCheckerCore:

    def test_rejects_off_level(self):
        with pytest.raises(ValueError):
            InvariantChecker("off")
        with pytest.raises(ValueError):
            InvariantChecker("sometimes")

    def test_violation_is_floating_point_error(self):
        err = InvariantViolation("orthonormality", 1.0, 1e-6, "basis")
        assert isinstance(err, FloatingPointError)
        assert "orthonormality" in str(err) and "basis" in str(err)

    def test_orthonormality_pass_and_fire(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 6)))
        chk = InvariantChecker("full")
        chk.check_orthonormality(q)
        assert chk.drifts["orthonormality"] < 1e-12
        q[:, 2] += 1e-3 * q[:, 0]
        with pytest.raises(InvariantViolation):
            chk.check_orthonormality(q)

    def test_orthonormality_trims_breakdown_columns(self, rng):
        # pseudo-block solvers leave v_{j+1} zero after a lucky breakdown
        q, _ = np.linalg.qr(rng.standard_normal((40, 6)))
        padded = np.concatenate([q, np.zeros((40, 2))], axis=1)
        InvariantChecker("full").check_orthonormality(padded)

    def test_cheap_level_skips_full_checks(self, rng):
        chk = InvariantChecker("cheap")
        assert not chk.wants_full
        chk.check_orthonormality(rng.standard_normal((10, 3)))  # no-op
        assert chk.n_checks == 0

    def test_arnoldi_relation_pass_and_fire(self, rng):
        a = laplacian_1d(60).toarray()
        v, hbar = _arnoldi(a, rng.standard_normal(60), 8)
        chk = InvariantChecker("full")
        chk.check_arnoldi(lambda z: a @ z, v[:, :8], v, hbar)
        assert chk.drifts["arnoldi_residual"] < 1e-12
        bad = hbar.copy()
        bad[0, 0] += 1e-2
        with pytest.raises(InvariantViolation):
            chk.check_arnoldi(lambda z: a @ z, v[:, :8], v, bad)

    def test_projected_arnoldi_with_ck(self, rng):
        # A Z = C E + V Hbar: run Arnoldi on the projected operator
        a = laplacian_1d(60).toarray()
        c, _ = np.linalg.qr(rng.standard_normal((60, 3)))
        steps = 6
        v = np.zeros((60, steps + 1))
        hbar = np.zeros((steps + 1, steps))
        e = np.zeros((3, steps))
        r0 = rng.standard_normal(60)
        r0 -= c @ (c.T @ r0)
        v[:, 0] = r0 / np.linalg.norm(r0)
        for j in range(steps):
            az = a @ v[:, j]
            e[:, j] = c.T @ az
            w = az - c @ e[:, j]
            for i in range(j + 1):
                hbar[i, j] = v[:, i] @ w
                w = w - hbar[i, j] * v[:, i]
            hbar[j + 1, j] = np.linalg.norm(w)
            v[:, j + 1] = w / hbar[j + 1, j]
        chk = InvariantChecker("full")
        chk.check_arnoldi(lambda z: a @ z, v[:, :steps], v, hbar, ck=c, ek=e)
        assert chk.drifts["arnoldi_residual"] < 1e-12

    def test_recycle_pass_and_fire(self, rng):
        a = laplacian_1d(50).toarray()
        c, _ = np.linalg.qr(a @ rng.standard_normal((50, 4)))
        u = np.linalg.solve(a, c)  # exact A U = C
        chk = InvariantChecker("full")
        chk.check_recycle(u, c, op_apply=lambda z: a @ z)
        assert chk.drifts["recycle_map"] < 1e-10
        with pytest.raises(InvariantViolation):
            chk.check_recycle(rng.standard_normal((50, 4)), c + 0.01,
                              op_apply=lambda z: a @ z)

    def test_recycle_empty_is_noop(self):
        chk = InvariantChecker("full")
        chk.check_recycle(None, None)
        chk.check_recycle(np.zeros((10, 0)), np.zeros((10, 0)))
        assert chk.n_checks == 0

    def test_cheap_recycle_checks_orthonormality_only(self, rng):
        c, _ = np.linalg.qr(rng.standard_normal((30, 3)))
        chk = InvariantChecker("cheap")
        calls = []
        chk.check_recycle(rng.standard_normal((30, 3)), c,
                          op_apply=lambda z: calls.append(1) or z)
        assert "recycle_orthonormality" in chk.drifts
        assert "recycle_map" not in chk.drifts and not calls

    def test_residual_gap_and_false_convergence(self):
        rhs = np.array([2.0, 2.0])
        chk = InvariantChecker("cheap")
        chk.check_residual_gap(np.array([1e-9, 1e-8]),
                               np.array([1.00001e-9, 1e-8]), rhs)
        with pytest.raises(InvariantViolation):
            chk.check_residual_gap(np.array([1e-9, 1.0]),
                                   np.array([1e-9, 1.5]), rhs)
        # false convergence: reported below target, true far above
        chk2 = InvariantChecker("cheap")
        with pytest.raises(InvariantViolation) as exc:
            chk2.check_residual_gap(np.array([1e-12]), np.array([1e-4]),
                                    np.array([1.0]),
                                    targets=np.array([1e-10]))
        assert exc.value.name in ("residual_gap", "false_convergence")

    def test_record_without_raise(self, rng):
        chk = InvariantChecker("full", raise_on_violation=False)
        chk.check_orthonormality(rng.standard_normal((20, 4)))
        rep = chk.report()
        assert rep["violations"] and rep["level"] == "full"
        assert rep["max_drift"]["orthonormality"] > 1e-6

    def test_ledger_conservation(self):
        a, b = ledger.CostLedger(), ledger.CostLedger()
        a.reduction(); b.reduction()
        chk = InvariantChecker("full")
        chk.check_ledger_conservation(a, b)
        b.flop("spmv", 1.0)
        with pytest.raises(InvariantViolation):
            chk.check_ledger_conservation(a, b)

    def test_checks_do_not_pollute_ledger(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 6)))
        with ledger.install() as led:
            InvariantChecker("full").check_orthonormality(q)
        assert led.reductions == 0 and led.total_flops() == 0


class TestCheckerResolution:

    def test_checker_for_off_returns_null(self):
        chk = checker_for(Options())
        assert chk is NULL_CHECKER and chk.is_off
        # every hook is a silent no-op
        chk.check_orthonormality(np.ones((3, 3)))
        chk.check_recycle(np.ones((3, 3)), np.ones((3, 3)))
        assert chk.report()["checks"] == 0

    def test_checker_for_builds_from_options(self):
        chk = checker_for(Options(verify="cheap"), context="t")
        assert chk.level == "cheap" and chk.context == "t"

    def test_ambient_checker_takes_precedence(self):
        amb = InvariantChecker("full", context="ambient")
        with activate(amb):
            assert current() is amb
            assert checker_for(Options(verify="cheap")) is amb
            assert checker_for(Options()) is amb
        assert current() is NULL_CHECKER
        assert checker_for(Options(verify="full")) is not amb


class TestOptionsIntegration:

    def test_verify_option_validation(self):
        from repro.util.options import OptionError
        assert Options(verify="cheap").verify == "cheap"
        with pytest.raises(OptionError):
            Options(verify="loud")

    def test_hpddm_args_roundtrip(self):
        o = parse_hpddm_args(["-hpddm_verify", "full"])
        assert o.verify == "full"
        assert "-hpddm_verify" in o.hpddm_args()
        assert "-hpddm_verify" not in Options().hpddm_args()


class TestSolveIntegration:

    def _problem(self, p=2):
        a = laplacian_1d(100, shift=0.2)
        b = make_rng(7).standard_normal((100, p))
        return a, b

    @pytest.mark.parametrize("level", ["cheap", "full"])
    def test_solve_attaches_report(self, level):
        a, b = self._problem()
        res = solve(a, b, options=Options(krylov_method="gmres", tol=1e-8,
                                          verify=level))
        rep = res.info["verify"]
        assert rep["level"] == level and rep["checks"] > 0
        assert rep["violations"] == []
        assert "residual_gap" in rep["max_drift"]

    def test_solve_off_has_no_report(self):
        a, b = self._problem()
        res = solve(a, b, options=Options(krylov_method="gmres", tol=1e-8))
        assert "verify" not in res.info

    def test_verify_does_not_change_ledger(self):
        a, b = self._problem()
        counts = []
        for level in ("off", "full"):
            with ledger.install() as led:
                solve(a, b, options=Options(krylov_method="gmres", tol=1e-8,
                                            verify=level))
            counts.append(led.counts())
        assert counts[0] == counts[1]

    def test_distqr_reports_to_ambient_checker(self, rng):
        grid = VirtualGrid(40, 4)
        x = DistributedBlockVector.from_global(grid, rng.standard_normal((40, 3)))
        chk = InvariantChecker("full")
        with activate(chk):
            distributed_cholqr(x)
            distributed_tsqr(x)
        assert chk.n_checks >= 4
        assert chk.drifts["qr_orthonormality"] < 1e-10
        assert chk.drifts["qr_reconstruction"] < 1e-10

    def test_check_final_residual_detects_wrong_solution(self, rng):
        a, b = self._problem(p=1)
        chk = InvariantChecker("cheap")
        with pytest.raises(InvariantViolation):
            chk.check_final_residual(a, rng.standard_normal((100, 1)), b,
                                     np.array([1e-10]), 1e-8,
                                     converged=np.array([True]))


class TestCrossCheck:

    def test_solve_conserved_across_exec_modes(self):
        a = laplacian_1d(80, shift=0.3)
        b = make_rng(3).standard_normal((80, 2))
        o = Options(krylov_method="gmres", tol=1e-8)
        chk = InvariantChecker("full", raise_on_violation=False)
        rf, rp = cross_check_exec_modes(
            lambda: solve(a, b, options=o), checker=chk,
            extract=lambda r: np.asarray(r.x), what="gmres solve")
        assert not chk.report()["violations"]
        assert np.allclose(np.asarray(rf.x), np.asarray(rp.x))

    def test_detects_mode_dependent_results(self):
        chk = InvariantChecker("full", raise_on_violation=False)
        cross_check_exec_modes(
            lambda: np.ones(3) if exec_mode() == "fused" else np.zeros(3),
            checker=chk, what="divergent workload")
        names = [v["name"] for v in chk.report()["violations"]]
        assert "exec_mode_numerics" in names
