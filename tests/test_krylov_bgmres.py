"""Tests for true Block GMRES."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options
from repro.krylov.base import FunctionPreconditioner
from repro.krylov.bgmres import bgmres
from repro.krylov.gmres import gmres
from repro.util import ledger

from conftest import (complex_shifted, convection_diffusion_1d,
                      laplacian_1d, laplacian_2d, make_rng,
                      relative_residuals)


def _opts(**kw):
    kw.setdefault("krylov_method", "bgmres")
    return Options(**kw)


class TestBlockConvergence:
    def test_multiple_rhs(self, rng):
        a = convection_diffusion_1d(300)
        b = rng.standard_normal((300, 5))
        res = bgmres(a, b, options=_opts(tol=1e-10))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-9)
        assert res.method == "bgmres"

    def test_single_rhs_degenerates_to_gmres(self, rng):
        a = convection_diffusion_1d(200)
        b = rng.standard_normal(200)
        rb = bgmres(a, b, options=_opts(tol=1e-9))
        rg = gmres(a, b, options=Options(tol=1e-9))
        assert rb.converged.all()
        # identical mathematics: same iteration count within round-off slack
        assert abs(rb.iterations - rg.iterations) <= 2

    def test_block_beats_pseudo_block_in_iterations(self, rng):
        """The core promise of block methods (paper section V-B)."""
        a = laplacian_2d(18)
        n = a.shape[0]
        b = rng.standard_normal((n, 8))
        o = dict(gmres_restart=30, tol=1e-8, max_it=4000)
        rb = bgmres(a, b, options=_opts(**o))
        rg = gmres(a, b, options=Options(**o))
        assert rb.converged.all()
        # block iterations advance all columns at once and converge in far
        # fewer of them
        assert rb.iterations < rg.iterations

    def test_complex_block(self, rng):
        a = complex_shifted(200)
        b = rng.standard_normal((200, 4)) + 1j * rng.standard_normal((200, 4))
        res = bgmres(a, b, options=_opts(tol=1e-9))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_exact_solution_small_system(self, rng):
        n, p = 36, 3
        a = laplacian_1d(n, shift=1.0)
        b = rng.standard_normal((n, p))
        res = bgmres(a, b, options=_opts(gmres_restart=n, tol=1e-12, max_it=n))
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(res.x, x_ref, atol=1e-7)

    def test_max_it(self, rng):
        a = laplacian_1d(400)
        b = rng.standard_normal((400, 2))
        res = bgmres(a, b, options=_opts(gmres_restart=10, max_it=23, tol=1e-14))
        assert res.iterations <= 23


class TestBreakdown:
    def test_colinear_rhs_detected(self, rng):
        a = convection_diffusion_1d(150)
        v = rng.standard_normal(150)
        b = np.column_stack([v, 2 * v, rng.standard_normal(150)])
        res = bgmres(a, b, options=_opts(tol=1e-9, max_it=2000))
        assert res.breakdown
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_duplicated_rhs_all_converge(self, rng):
        a = laplacian_1d(100, shift=0.5)
        v = rng.standard_normal(100)
        b = np.column_stack([v, v])
        res = bgmres(a, b, options=_opts(tol=1e-10, max_it=1000))
        assert res.converged.all()
        assert np.allclose(res.x[:, 0], res.x[:, 1], atol=1e-7)

    def test_one_zero_column(self, rng):
        a = laplacian_1d(80, shift=1.0)
        b = rng.standard_normal((80, 3))
        b[:, 0] = 0.0
        res = bgmres(a, b, options=_opts(tol=1e-10))
        assert res.converged.all()
        assert np.linalg.norm(res.x[:, 0]) < 1e-8


class TestBlockPreconditioning:
    @pytest.mark.parametrize("variant", ["left", "right", "flexible"])
    def test_variants(self, rng, variant):
        a = convection_diffusion_1d(200)
        ilu = spla.spilu(a.tocsc(), drop_tol=1e-3)
        m = FunctionPreconditioner(lambda x: np.column_stack(
            [ilu.solve(x[:, j]) for j in range(x.shape[1])]))
        b = rng.standard_normal((200, 4))
        res = bgmres(a, b, m, options=_opts(variant=variant, tol=1e-9))
        assert res.converged.all()
        assert np.all(relative_residuals(a, res.x, b) < 1e-8)

    def test_variable_needs_flexible(self):
        a = laplacian_1d(30, shift=1.0)
        m = FunctionPreconditioner(lambda x: x, is_variable=True)
        with pytest.raises(ValueError, match="flexible"):
            bgmres(a, np.ones((30, 2)), m, options=_opts(variant="right"))


class TestBlockCommunication:
    def test_one_spmm_per_block_iteration(self, rng):
        a = convection_diffusion_1d(200)
        b = rng.standard_normal((200, 6))
        with ledger.install() as led:
            res = bgmres(a, b, options=_opts(tol=1e-8))
        # one fused operator application (p columns) per block iteration
        # plus one explicit residual per restart and the initial residual
        expected_max = (res.iterations + res.restarts + 1) * 6
        assert led.calls["operator_apply"] <= expected_max

    def test_reductions_constant_per_iteration(self, rng):
        a = convection_diffusion_1d(250)
        per_it = {}
        for p in (2, 6):
            b = rng.standard_normal((250, p))
            with ledger.install() as led:
                res = bgmres(a, b, options=_opts(tol=1e-8))
            per_it[p] = led.reductions / max(res.iterations, 1)
        # block methods exchange more data, not more messages
        assert per_it[6] < 2.0 * per_it[2]


@settings(max_examples=10, deadline=None)
@given(n=st.integers(20, 70), p=st.integers(1, 4), seed=st.integers(0, 2**31 - 1))
def test_property_bgmres_solves_spd(n, p, seed):
    rng = make_rng(seed)
    a = laplacian_1d(n, shift=1.0)
    b = rng.standard_normal((n, p))
    res = bgmres(a, b, options=_opts(gmres_restart=min(25, max(n // p, 2)),
                                     tol=1e-9, max_it=60 * n))
    assert res.converged.all()
    assert np.all(relative_residuals(a, res.x, b) < 1e-8)
