"""Property-based and unit tests for the async scheduler and sharding.

The hypothesis tests drive :class:`repro.AsyncSolveService` with random
interleavings of submissions and clock advances, then shadow-replay the
recorded batches against the submission log to check the scheduler's
load-bearing invariants (ISSUE 7):

* every admitted request receives exactly one result;
* coalesced batches never mix operator fingerprints or options digests;
* dispatch is earliest-deadline-first within a shard among equal
  priorities (no deadline inversion at batch granularity);
* summed per-request cost shares equal the batch ledgers **bit-for-bit**
  under any interleaving, sharded and pipelined or not — plus a mutation
  test proving the conservation check fails when a share is dropped.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AsyncSolveService, Options, make_service
from repro.service import (ConsistentHashRouter, SetupCache,
                           ShardedSetupCache, SolveService,
                           operator_fingerprint)
from repro.util.ledger import CostLedger

from conftest import laplacian_1d, make_rng

N = 25  #: tiny operators — the properties are about scheduling, not solving


def _operators(count: int = 4) -> list[sp.csr_matrix]:
    return [laplacian_1d(N, shift=0.3 * (i + 1)) for i in range(count)]


def _service(**opts) -> AsyncSolveService:
    options = Options(krylov_method="gmres", service_mode="async", **opts)
    svc = make_service(options=options, preconditioner="lu")
    assert isinstance(svc, AsyncSolveService)
    return svc


# -- the property harness --------------------------------------------------

#: one driver step: either submit request #i against operator (op % len)
#: with a drawn deadline/priority, or advance the clock by `dt`
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 3),
                  st.sampled_from([0.0, 1e-4, 1e-3]),  # relative deadline
                  st.integers(0, 2)),                  # priority
        st.tuples(st.just("advance"),
                  st.sampled_from([1e-5, 1e-4, 1e-3]))),
    min_size=1, max_size=24)


class _Shadow:
    """Replays the scheduler's decisions against its own submission log."""

    def __init__(self, svc: AsyncSolveService):
        self.svc = svc
        self.pending: dict[int, object] = {}   # admitted, not yet dispatched
        self.seen_batches = 0
        self.dispatched: set[int] = set()

    def note_submit(self, req) -> None:
        if req.rejected is None:
            self.pending[req.index] = req

    def check_new_batches(self) -> None:
        for rec in self.svc.batches[self.seen_batches:]:
            self._check_batch(rec)
        self.seen_batches = len(self.svc.batches)

    def _check_batch(self, rec) -> None:
        members = [self.pending.pop(i) for i in rec["request_indices"]]
        # -- no mixing: one fingerprint, one options digest per batch
        fps = {r.fingerprint.short() for r in members}
        assert fps == {rec["fingerprint"]}, \
            f"batch {rec['batch']} mixed fingerprints {fps}"
        # options compatibility is keyed by the digest recorded on the
        # batch; every member must map to it
        from repro.service import options_digest, options_key
        digests = {options_digest(options_key(r.options)) for r in members}
        assert digests == {rec["okey_digest"]}, \
            f"batch {rec['batch']} mixed options digests"
        # -- exactly-one-result: indices never dispatch twice
        indices = set(rec["request_indices"])
        assert not (indices & self.dispatched)
        self.dispatched |= indices
        # -- EDF at batch granularity: the batch's most urgent member is
        # no less urgent than anything left waiting on the same shard at
        # dispatch time (requests that arrived later are exempt)
        t = rec["dispatch_time"]
        best = min(r.urgency() for r in members)
        for other in self.pending.values():
            if other.shard != rec["shard"] or other.arrival > t:
                continue
            assert best <= other.urgency(), (
                f"batch {rec['batch']} dispatched {best} while more urgent "
                f"{other.urgency()} waited on shard {rec['shard']}")
        # -- within the chunk, members are urgency-sorted (deadline order
        # among equal priorities)
        urgencies = [r.urgency() for r in
                     sorted(members, key=lambda r: rec["request_indices"]
                            .index(r.index))]
        assert urgencies == sorted(urgencies), \
            "chunk not dispatched in urgency order"

    def check_final(self, admitted) -> None:
        assert not self.pending, "drain left admitted requests unsolved"
        for req in admitted:
            assert req.done
            assert req.result is not None
        assert {r.index for r in admitted} == self.dispatched
        # -- bit-exact conservation: per-request shares sum to the batch
        # ledgers, batch by batch and in aggregate
        total_shares = CostLedger()
        for req in admitted:
            total_shares.merge(req.result.info["service"]["cost"])
        total_batches = CostLedger()
        for rec in self.svc.batches:
            total_batches.merge(rec["ledger"])
        assert total_shares.counts() == total_batches.counts(), \
            "summed per-request shares != summed batch ledgers (bit-exact)"


@settings(max_examples=20, deadline=None)
@given(steps=_steps, data=st.data())
def test_scheduler_invariants(steps, data):
    """The four ISSUE-7 properties under random interleavings."""
    svc = _service(service_shards=2, service_pmax=4,
                   service_cache_entries=8)
    ops = _operators()
    rng = make_rng(len(steps))
    shadow = _Shadow(svc)
    admitted = []
    for step in steps:
        if step[0] == "submit":
            _, op, rel, priority = step
            req = svc.submit(ops[op], rng.standard_normal(N),
                             deadline=rel if rel > 0 else None,
                             priority=priority)
            shadow.note_submit(req)
            if req.rejected is None:
                admitted.append(req)
        else:
            svc.advance_to(svc.now + step[1])
        shadow.check_new_batches()
    svc.drain()
    shadow.check_new_batches()
    shadow.check_final(admitted)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dropped_share_breaks_conservation(seed):
    """Mutation test: dropping one cost share must fail the bit-exact
    conservation property (the property test is not vacuously true)."""
    svc = _service(service_shards=2, service_pmax=4)
    ops = _operators()
    rng = make_rng(seed)
    original_split = CostLedger.split

    def lossy_split(self, parts):
        shares = original_split(self, parts)
        shares[0] = CostLedger()  # drop the first column's share
        return shares

    CostLedger.split = lossy_split
    try:
        reqs = [svc.submit(ops[i % 2], rng.standard_normal(N))
                for i in range(6)]
        svc.drain()
    finally:
        CostLedger.split = original_split
    total_shares = CostLedger()
    for req in reqs:
        total_shares.merge(req.result.info["service"]["cost"])
    total_batches = CostLedger()
    for rec in svc.batches:
        total_batches.merge(rec["ledger"])
    assert total_shares.counts() != total_batches.counts(), \
        "conservation check failed to detect a dropped share"


# -- unit tests: router and sharded cache ----------------------------------

class TestConsistentHashRouter:
    def test_deterministic_and_in_range(self):
        ops = _operators(16)
        router = ConsistentHashRouter(4)
        shards = [router.route(operator_fingerprint(a)) for a in ops]
        assert shards == [ConsistentHashRouter(4).route(
            operator_fingerprint(a)) for a in ops]
        assert set(shards) <= set(range(4))
        assert len(set(shards)) > 1  # spreads across shards

    def test_removing_a_shard_only_remaps_its_keys(self):
        """The consistent-hashing stability property."""
        ops = _operators(32)
        fps = [operator_fingerprint(a) for a in ops]
        big, small = ConsistentHashRouter(5), ConsistentHashRouter(4)
        moved = 0
        for fp in fps:
            before, after = big.route(fp), small.route(fp)
            if before <= 3:
                assert after == before, \
                    "key moved although its shard survived the resize"
            else:
                moved += 1
        assert moved < len(fps)  # only shard 4's keys remapped

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter(0)
        with pytest.raises(ValueError):
            ConsistentHashRouter(2, replicas=0)


class TestShardedSetupCache:
    def test_routes_consistently_and_aggregates_stats(self):
        cache = ShardedSetupCache(3, max_entries=4)
        ops = _operators(6)
        for a in ops:
            fp = operator_fingerprint(a)
            assert cache.get(fp, "lu") is None          # miss
            cache.put(fp, "lu", object())
            assert cache.get(fp, "lu") is not None      # hit, same shard
            assert fp in cache
            assert cache.shard_of(fp) == cache.router.route(fp)
        stats = cache.stats()
        assert stats["total_hits"] == len(ops)
        assert stats["total_misses"] == len(ops)
        assert stats["entries"] == len(cache) == len(ops)
        assert len(stats["shards"]) == 3
        assert sum(s["entries"] for s in stats["shards"]) == len(ops)

    def test_eviction_pressure_is_per_shard(self):
        """Satellite 3: eviction accounting under sharding — flooding the
        shard that owns one fingerprint never evicts other shards."""
        cache = ShardedSetupCache(2, max_entries=2)
        ops = _operators(12)
        fps = [operator_fingerprint(a) for a in ops]
        by_shard = {0: [], 1: []}
        for fp in fps:
            by_shard[cache.shard_of(fp)].append(fp)
        assert by_shard[0] and by_shard[1]
        victim = by_shard[0][0]
        cache.put(victim, "lu", "keep-me")
        # flood the *other* shard far past its capacity
        for fp in by_shard[1]:
            cache.put(fp, "lu", "flood")
        assert victim in cache, "cross-shard eviction leaked"
        assert cache.shards[0].evictions == 0
        expected = max(0, len(by_shard[1]) - 2)
        assert cache.shards[1].evictions == expected
        assert cache.evictions == expected
        assert cache.stats()["evictions"] == expected

    def test_invalidate_all_and_one(self):
        cache = ShardedSetupCache(2, max_entries=4)
        fps = [operator_fingerprint(a) for a in _operators(4)]
        for fp in fps:
            cache.put(fp, "lu", 1)
        cache.invalidate(fps[0])
        assert fps[0] not in cache
        cache.invalidate()
        assert len(cache) == 0


# -- unit tests: scheduler behaviours --------------------------------------

class TestAdmissionControl:
    def test_queue_full_rejects_when_shard_busy(self):
        svc = _service(service_shards=1, service_pmax=4,
                       service_queue_depth=2)
        ops = _operators(1)
        rng = make_rng(1)
        # a full queue on an *idle* shard dispatches (backpressure, not
        # deadlock): the second submit flushes a width-2 batch
        first = [svc.submit(ops[0], rng.standard_normal(N))
                 for _ in range(2)]
        assert all(r.done for r in first)
        # shard now busy; the bound admits two more, then rejects
        held = [svc.submit(ops[0], rng.standard_normal(N)) for _ in range(3)]
        reasons = [r.rejected for r in held]
        assert reasons == [None, None, "queue_full"]
        rejected = held[-1]
        assert svc.rejections == [rejected]
        with pytest.raises(RuntimeError, match="rejected"):
            svc.result(rejected)
        svc.drain()
        assert all(r.done for r in held[:2])
        assert not rejected.done

    def test_expired_deadline_rejected(self):
        svc = _service(service_shards=1)
        svc.advance_to(1.0)
        req = svc.submit(_operators(1)[0], make_rng(2).standard_normal(N),
                         deadline=-0.5)
        assert req.rejected == "deadline_unmeetable"

    def test_default_deadline_from_options(self):
        svc = _service(service_shards=1, service_deadline=1e-3)
        req = svc.submit(_operators(1)[0], make_rng(3).standard_normal(N))
        assert req.deadline == pytest.approx(1e-3)
        svc.drain()
        assert req.result.info["service"]["deadline"] == pytest.approx(1e-3)


class TestDeadlineDispatch:
    def test_due_deadline_forces_partial_dispatch(self):
        """A queued group whose deadline arrives goes out under-full."""
        svc = _service(service_shards=1, service_pmax=8)
        req = svc.submit(_operators(1)[0], make_rng(4).standard_normal(N),
                         deadline=1e-4)
        assert not req.done  # under-full, waiting
        svc.advance_to(1e-4)
        assert req.done, "deadline timer did not dispatch the batch"
        assert req.result.info["service"]["batch_width"] == 1
        assert req.dispatch_time == pytest.approx(1e-4)

    def test_priority_preempts_earlier_deadline_of_lower_priority(self):
        svc = _service(service_shards=1, service_pmax=2)
        ops = _operators(2)
        rng = make_rng(5)
        low = svc.submit(ops[0], rng.standard_normal(N), deadline=1e-3,
                         priority=0)
        high = svc.submit(ops[1], rng.standard_normal(N), deadline=5e-3,
                          priority=1)
        svc.drain()
        assert high.dispatch_time <= low.dispatch_time

    def test_deadline_miss_is_recorded(self):
        svc = _service(service_shards=1, service_pmax=1)
        # an extremely tight deadline: the batch completes after it
        req = svc.submit(_operators(1)[0], make_rng(6).standard_normal(N),
                         deadline=1e-12)
        svc.drain()
        assert req.result.info["service"]["deadline_missed"] is True
        assert svc.deadline_misses == 1


class TestPipelining:
    def test_arrivals_during_batch_form_the_next_batch(self):
        """Cross-batch pipelining: requests accumulating while a shard is
        busy are dispatched as one block at the completion event."""
        svc = _service(service_shards=1, service_pmax=4)
        ops = _operators(1)
        rng = make_rng(7)
        first = [svc.submit(ops[0], rng.standard_normal(N))
                 for _ in range(4)]  # fills pmax -> dispatches, shard busy
        assert all(r.done for r in first)
        late = [svc.submit(ops[0], rng.standard_normal(N))
                for _ in range(3)]   # accumulate behind the running batch
        assert not any(r.done for r in late)
        svc.advance_to(svc.makespan)  # completion event pipelines them out
        assert all(r.done for r in late)
        assert len(svc.batches) == 2
        assert svc.batches[1]["width"] == 3
        assert svc.batches[1]["dispatch_time"] == pytest.approx(
            svc.batches[0]["completion_time"])

    def test_sync_async_equal_solutions(self):
        """The sync oracle and the async scheduler agree numerically."""
        ops = _operators(3)
        rng = make_rng(8)
        rhs = [rng.standard_normal(N) for _ in range(9)]
        results = {}
        for mode in ("sync", "async"):
            svc = make_service(
                options=Options(krylov_method="gmres", service_mode=mode,
                                service_pmax=4, service_shards=2),
                preconditioner="lu")
            reqs = [svc.submit(ops[i % 3], b) for i, b in enumerate(rhs)]
            svc.flush()
            results[mode] = [np.asarray(svc.result(r).x) for r in reqs]
            assert all(r.result.converged.all() for r in reqs)
        for xs, xa in zip(results["sync"], results["async"]):
            np.testing.assert_allclose(xs, xa, rtol=1e-10, atol=1e-12)

    def test_make_service_dispatches_on_mode(self):
        sync = make_service(options=Options(service_mode="sync"))
        assert type(sync) is SolveService
        async_ = make_service(options=Options(service_mode="async"))
        assert isinstance(async_, AsyncSolveService)
        assert isinstance(async_.cache, ShardedSetupCache)

    def test_explicit_policy_defers_to_drain(self):
        svc = _service(service_shards=1, service_pmax=2,
                       service_flush="explicit")
        rng = make_rng(9)
        reqs = [svc.submit(_operators(1)[0], rng.standard_normal(N))
                for _ in range(4)]
        assert not any(r.done for r in reqs)  # no eager dispatch
        svc.drain()
        assert all(r.done for r in reqs)


# -- unit tests: per-(fingerprint, kind) cache counters --------------------

class TestCacheCounterRegression:
    def test_two_digests_one_fingerprint_distinct_counters(self):
        """Satellite 3 regression: one fingerprint probed under two
        different options digests in the same flush wave must hit two
        distinct counters, not double-count one."""
        cache = SetupCache(max_entries=4)
        a = _operators(1)[0]
        fp = operator_fingerprint(a)
        # two options digests -> two recycle kinds against one fingerprint
        cache.get(fp, "recycle:aaaaaaaaaaaa")  # miss
        cache.get(fp, "recycle:bbbbbbbbbbbb")  # miss (distinct counter)
        cache.put(fp, "recycle:aaaaaaaaaaaa", object())
        cache.get(fp, "recycle:aaaaaaaaaaaa")  # hit
        cache.get(fp, "recycle:bbbbbbbbbbbb")  # still a miss
        per_key = cache.key_stats(fp)
        assert per_key["recycle:aaaaaaaaaaaa"] == {"hits": 1, "misses": 1}
        assert per_key["recycle:bbbbbbbbbbbb"] == {"hits": 0, "misses": 2}
        # the aggregate view stays consistent with the per-key counters
        stats = cache.stats()
        assert stats["total_hits"] == 1
        assert stats["total_misses"] == 3
        assert stats["misses"]["recycle:bbbbbbbbbbbb"] == 2

    def test_same_kind_two_fingerprints_do_not_merge(self):
        cache = SetupCache(max_entries=4)
        a, b = _operators(2)
        fa, fb = operator_fingerprint(a), operator_fingerprint(b)
        cache.get(fa, "lu")
        cache.get(fb, "lu")
        cache.put(fa, "lu", 1)
        cache.get(fa, "lu")
        assert cache.key_stats(fa)["lu"] == {"hits": 1, "misses": 1}
        assert cache.key_stats(fb)["lu"] == {"hits": 0, "misses": 1}
        assert cache.stats()["misses"]["lu"] == 2  # aggregate per kind

    def test_service_flush_wave_counts_per_digest(self):
        """End to end through the service: same operator, two recycling
        option sets in one flush wave — the recycle probes must not
        double-count under one counter key."""
        a = _operators(1)[0]
        fp = operator_fingerprint(a)
        opts1 = Options(krylov_method="gcrodr", recycle=3, gmres_restart=10,
                        service_flush="queue_drained")
        opts2 = Options(krylov_method="gcrodr", recycle=4, gmres_restart=10,
                        service_flush="queue_drained")
        svc = SolveService(options=opts1, preconditioner="lu")
        rng = make_rng(10)
        for opts in (opts1, opts2):
            for _ in range(2):
                svc.submit(a, rng.standard_normal(N), options=opts)
        svc.flush()
        per_key = svc.cache.key_stats(fp)
        recycle_kinds = [k for k in per_key if k.startswith("recycle:")]
        assert len(recycle_kinds) == 2, \
            "two options digests must probe two distinct recycle counters"
        for kind in recycle_kinds:
            assert per_key[kind]["misses"] == 1  # one cold probe each
