"""Tests for the orthogonalization kernels, incl. property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.la.orthogonalization import (arnoldi_orthogonalize,
                                        classical_gram_schmidt_qr, cholqr,
                                        cholqr_rr, householder_qr,
                                        modified_gram_schmidt_qr, project_out,
                                        qr_factorization, shifted_cholqr, tsqr)
from repro.util import ledger
from conftest import make_rng


def _random_block(rng, n, p, complex_=False, cond=None):
    x = rng.standard_normal((n, p))
    if complex_:
        x = x + 1j * rng.standard_normal((n, p))
    if cond is not None:
        u, _, vt = np.linalg.svd(x, full_matrices=False)
        s = np.logspace(0, -np.log10(cond), p)
        x = (u * s) @ vt
    return x


def _check_qr(x, q, r, atol=1e-10):
    p = x.shape[1]
    assert np.allclose(q @ r, x, atol=atol * max(np.linalg.norm(x), 1.0))
    assert np.allclose(q.conj().T @ q, np.eye(p), atol=atol)
    assert np.allclose(np.tril(r, -1), 0, atol=atol)


QR_FUNS = {
    "cholqr": cholqr,
    "shifted_cholqr": shifted_cholqr,
    "tsqr": tsqr,
    "householder": householder_qr,
    "cgs": classical_gram_schmidt_qr,
    "mgs": modified_gram_schmidt_qr,
}


class TestQRVariants:
    @pytest.mark.parametrize("name", list(QR_FUNS))
    @pytest.mark.parametrize("complex_", [False, True])
    def test_factorization_identity(self, rng, name, complex_):
        x = _random_block(rng, 200, 6, complex_=complex_)
        q, r = QR_FUNS[name](x)
        _check_qr(x, q, r)

    @pytest.mark.parametrize("name", ["shifted_cholqr", "householder", "mgs"])
    def test_ill_conditioned_block(self, rng, name):
        x = _random_block(rng, 300, 5, cond=1e8)
        q, r = QR_FUNS[name](x)
        assert np.linalg.norm(q.conj().T @ q - np.eye(5)) < 1e-6

    def test_plain_cholqr_raises_on_rank_deficient(self, rng):
        x = _random_block(rng, 100, 3)
        x[:, 2] = x[:, 0]  # exactly dependent
        with pytest.raises(np.linalg.LinAlgError):
            cholqr(x)

    def test_single_column_matches_norm(self, rng):
        x = _random_block(rng, 50, 1)
        q, r = cholqr(x)
        assert np.isclose(r[0, 0], np.linalg.norm(x))
        assert np.allclose(q * r[0, 0], x)


class TestRankRevealing:
    def test_detects_colinear_columns(self, rng):
        x = _random_block(rng, 150, 4)
        x[:, 3] = 2.0 * x[:, 1]
        q, r, rank = cholqr_rr(x, tol=1e-10)
        assert rank == 3
        assert np.allclose(q @ r, x, atol=1e-8)
        # leading columns orthonormal, trailing zero
        assert np.allclose(q[:, :3].conj().T @ q[:, :3], np.eye(3), atol=1e-8)
        assert np.allclose(q[:, 3], 0)

    def test_zero_block(self):
        q, r, rank = cholqr_rr(np.zeros((20, 3)))
        assert rank == 0
        assert np.allclose(q, 0) and np.allclose(r, 0)

    def test_full_rank_reported(self, rng):
        x = _random_block(rng, 80, 5)
        _, _, rank = cholqr_rr(x)
        assert rank == 5

    def test_complex_rank_deficiency(self, rng):
        x = _random_block(rng, 90, 3, complex_=True)
        x[:, 2] = (1 + 2j) * x[:, 0]
        _, _, rank = cholqr_rr(x)
        assert rank == 2


class TestReductionCounting:
    """Section III-D of the paper: CholQR/TSQR = 1 reduction, CGS = p."""

    def test_cholqr_single_reduction(self, rng):
        x = _random_block(rng, 100, 8)
        with ledger.install() as led:
            cholqr(x)
        assert led.reductions == 1

    def test_tsqr_single_reduction(self, rng):
        x = _random_block(rng, 100, 8)
        with ledger.install() as led:
            tsqr(x)
        assert led.reductions == 1

    def test_cgs_p_like_reductions(self, rng):
        p = 8
        x = _random_block(rng, 100, p)
        with ledger.install() as led:
            classical_gram_schmidt_qr(x)
        # one batched projection + one norm per column, minus the projection
        # of the first column
        assert led.reductions == 2 * p - 1

    def test_mgs_quadratic_reductions(self, rng):
        p = 6
        x = _random_block(rng, 100, p)
        with ledger.install() as led:
            modified_gram_schmidt_qr(x)
        assert led.reductions == p * (p + 1) // 2

    def test_project_out_cgs_one_reduction(self, rng):
        basis, _ = np.linalg.qr(_random_block(rng, 100, 10))
        w = _random_block(rng, 100, 4)
        with ledger.install() as led:
            project_out(basis, w, scheme="cgs")
        assert led.reductions == 1

    def test_project_out_mgs_k_reductions(self, rng):
        basis, _ = np.linalg.qr(_random_block(rng, 100, 10))
        w = _random_block(rng, 100, 4)
        with ledger.install() as led:
            project_out(basis, w, scheme="mgs")
        assert led.reductions == 10


class TestProjectOut:
    @pytest.mark.parametrize("scheme", ["cgs", "imgs", "mgs"])
    def test_result_is_orthogonal_to_basis(self, rng, scheme):
        basis, _ = np.linalg.qr(_random_block(rng, 200, 12))
        w = _random_block(rng, 200, 3)
        w2, coeffs = project_out(basis, w, scheme=scheme)
        assert np.linalg.norm(basis.conj().T @ w2) < 1e-10
        assert np.allclose(basis @ coeffs + w2, w, atol=1e-10)

    def test_empty_basis_is_noop(self, rng):
        w = _random_block(rng, 50, 2)
        w2, coeffs = project_out(np.zeros((50, 0)), w)
        assert np.allclose(w2, w)
        assert coeffs.shape == (0, 2)

    def test_unknown_scheme_raises(self, rng):
        with pytest.raises(ValueError):
            project_out(np.eye(4), np.ones((4, 1)), scheme="banana")


class TestArnoldiStep:
    def test_full_relation(self, rng):
        basis, _ = np.linalg.qr(_random_block(rng, 120, 6))
        w = _random_block(rng, 120, 3)
        q, h, s, rank = arnoldi_orthogonalize(basis, w)
        assert rank == 3
        assert np.allclose(basis @ h + q @ s, w, atol=1e-9)
        assert np.linalg.norm(basis.conj().T @ q) < 1e-9

    def test_breakdown_detection(self, rng):
        basis, _ = np.linalg.qr(_random_block(rng, 120, 6))
        # w entirely inside the basis: remainder is numerically zero
        w = basis @ rng.standard_normal((6, 2))
        _, _, _, rank = arnoldi_orthogonalize(basis, w, qr_scheme="cholqr_rr")
        assert rank == 0


class TestDispatch:
    def test_unknown_scheme(self, rng):
        with pytest.raises(ValueError):
            qr_factorization(np.ones((4, 2)), "banana")

    def test_cholqr_fallback_on_dependent_columns(self, rng):
        x = _random_block(rng, 60, 3)
        x[:, 2] = x[:, 0]
        q, r, rank = qr_factorization(x, "cholqr")
        # fell back to a rank-aware path without raising
        assert rank <= 3
        assert np.allclose(q @ r, x, atol=1e-7)


# ---------------------------------------------------------------------------
# property-based checks
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(n=st.integers(10, 120), p=st.integers(1, 6),
       seed=st.integers(0, 2**31 - 1), complex_=st.booleans())
def test_property_cholqr_reconstructs(n, p, seed, complex_):
    rng = make_rng(seed)
    p = min(p, n)
    x = _random_block(rng, n, p, complex_=complex_)
    q, r, rank = qr_factorization(x, "cholqr")
    assert rank == p
    assert np.allclose(q @ r, x, atol=1e-8 * max(np.linalg.norm(x), 1.0))
    assert np.allclose(q.conj().T @ q, np.eye(p), atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(20, 100), k=st.integers(1, 8), p=st.integers(1, 4),
       seed=st.integers(0, 2**31 - 1))
def test_property_projection_idempotent(n, k, p, seed):
    rng = make_rng(seed)
    k = min(k, n - p)
    basis, _ = np.linalg.qr(rng.standard_normal((n, k)))
    w = rng.standard_normal((n, p))
    w1, _ = project_out(basis, w, scheme="imgs")
    w2, c2 = project_out(basis, w1, scheme="cgs")
    # projecting twice changes nothing
    assert np.linalg.norm(w2 - w1) <= 1e-10 * max(np.linalg.norm(w), 1.0)
    assert np.linalg.norm(c2) <= 1e-10 * max(np.linalg.norm(w), 1.0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(12, 100), p=st.integers(2, 6), defect=st.integers(1, 3),
       seed=st.integers(0, 2**31 - 1), complex_=st.booleans())
def test_property_cholqr_rr_rank_deficient(n, p, defect, seed, complex_):
    """Exactly dependent columns: rank detected, Q R still reconstructs."""
    rng = make_rng(seed)
    p = min(p, n // 2)
    defect = min(defect, p - 1)
    rank_true = p - defect
    x = _random_block(rng, n, rank_true, complex_=complex_)
    coeffs = rng.standard_normal((rank_true, defect))
    if complex_:
        coeffs = coeffs + 1j * rng.standard_normal(coeffs.shape)
    full = np.concatenate([x, x @ coeffs], axis=1)
    # tol must sit above the sqrt(eps_machine) floor that forming the Gram
    # matrix imposes (squared conditioning) — the solver's deflation_tol
    # contract, not a quirk of this test
    q, r, rank = cholqr_rr(full, tol=1e-6)
    assert rank == rank_true
    assert np.allclose(q @ r, full, atol=1e-8 * max(np.linalg.norm(full), 1.0))
    qa = q[:, :rank]
    assert np.allclose(qa.conj().T @ qa, np.eye(rank), atol=1e-8)
    assert np.allclose(q[:, rank:], 0.0)  # trailing columns zeroed, not junk


@settings(max_examples=25, deadline=None)
@given(n=st.integers(20, 100),
       eps=st.sampled_from([1e-14, 1e-12, 1e-10, 1e-3, 1e-2]),
       seed=st.integers(0, 2**31 - 1), complex_=st.booleans())
def test_property_cholqr_rr_near_dependence_threshold(n, eps, seed, complex_):
    """Nearly dependent columns land on the right side of the rank cutoff."""
    rng = make_rng(seed)
    basis, _ = np.linalg.qr(_random_block(rng, n, 4, complex_=complex_))
    # third column leaves span{q0, q1} by exactly eps along q2
    x = np.concatenate([basis[:, :2], basis[:, 1:2] + eps * basis[:, 2:3]],
                       axis=1)
    q, r, rank = cholqr_rr(x, tol=1e-6)
    assert rank == (2 if eps < 1e-6 else 3)
    assert np.allclose(q @ r, x, atol=1e-7)
    qa = q[:, :rank]
    assert np.allclose(qa.conj().T @ qa, np.eye(rank), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(5, 100), seed=st.integers(0, 2**31 - 1),
       complex_=st.booleans(),
       scheme=st.sampled_from(["cholqr", "cholqr_rr", "tsqr", "householder",
                               "cgs", "mgs"]))
def test_property_p1_single_column_all_schemes(n, seed, complex_, scheme):
    """The degenerate p=1 block: every scheme reduces to normalization."""
    rng = make_rng(seed)
    x = _random_block(rng, n, 1, complex_=complex_)
    q, r, rank = qr_factorization(x, scheme)
    assert rank == 1 and r.shape == (1, 1)
    nrm = np.linalg.norm(x)
    assert abs(abs(r[0, 0]) - nrm) <= 1e-10 * nrm
    assert abs(np.linalg.norm(q) - 1.0) <= 1e-10
    assert np.allclose(q @ r, x, atol=1e-10 * max(nrm, 1.0))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(10, 80), p=st.integers(1, 4),
       seed=st.integers(0, 2**31 - 1), complex_=st.booleans())
def test_property_project_out_empty_and_complex(n, p, seed, complex_):
    """k=0 basis is the identity; complex projections annihilate the basis."""
    rng = make_rng(seed)
    w = _random_block(rng, n, p, complex_=complex_)
    w0, c0 = project_out(np.zeros((n, 0), dtype=w.dtype), w)
    assert np.array_equal(w0, w) and c0.shape == (0, p)
    k = min(4, n - p)
    basis, _ = np.linalg.qr(_random_block(rng, n, k, complex_=complex_))
    w2, _ = project_out(basis, w, scheme="imgs")
    assert np.linalg.norm(basis.conj().T @ w2) <= \
        1e-10 * max(np.linalg.norm(w), 1.0)
