"""Unit tests for Krylov-layer internals: cycle, deflation, dense helpers."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.krylov.base import (IdentityPreconditioner, as_operator,
                               eps_all_below, residual_targets)
from repro.krylov.cycle import block_arnoldi_cycle, complete_block
from repro.krylov.deflation import select_real_subspace
from repro.la.dense import (hessenberg_harmonic_lhs, solve_upper_triangular,
                            sorted_eig, sorted_generalized_eig)
from repro.util.misc import as_block, column_norms, relative_residual_norms

from conftest import make_rng, laplacian_1d


class TestCompleteBlock:
    def test_fills_zero_columns(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((50, 4)))
        q[:, 2:] = 0.0
        out = complete_block(q, 2)
        g = out.conj().T @ out
        assert np.allclose(g, np.eye(4), atol=1e-10)

    def test_respects_against_basis(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((60, 3)))
        q[:, 1:] = 0.0
        against, _ = np.linalg.qr(rng.standard_normal((60, 5)))
        out = complete_block(q, 1, against=[against])
        assert np.linalg.norm(against.conj().T @ out[:, 1:]) < 1e-10

    def test_full_rank_untouched(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((30, 3)))
        out = complete_block(q, 3)
        assert out is q

    def test_complex(self, rng):
        x = rng.standard_normal((40, 3)) + 1j * rng.standard_normal((40, 3))
        q, _ = np.linalg.qr(x)
        q[:, 2] = 0.0
        out = complete_block(q, 2)
        assert np.allclose(out.conj().T @ out, np.eye(3), atol=1e-10)


class TestBlockArnoldiCycle:
    def test_arnoldi_relation(self, rng):
        """A V_j = V_{j+1} Hbar must hold exactly."""
        a = as_operator(laplacian_1d(80, shift=0.3))
        r0 = rng.standard_normal((80, 2))
        q, s = np.linalg.qr(r0)
        state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                    max_steps=5, identity_m=True)
        v_all = state.v_stack()
        hbar = state.hqr.hessenberg()
        av = a.matmat(state.v_stack(state.steps))
        assert np.allclose(av, v_all @ hbar, atol=1e-10)

    def test_projected_relation_with_ck(self, rng):
        """(I - C C^H) A V = V Hbar and E_k = C^H A V."""
        a = as_operator(laplacian_1d(70, shift=0.3))
        ck, _ = np.linalg.qr(rng.standard_normal((70, 4)))
        r0 = rng.standard_normal((70, 1))
        r0 = r0 - ck @ (ck.T @ r0)
        q, s = np.linalg.qr(r0)
        state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                    max_steps=6, ck=ck, identity_m=True)
        v_all = state.v_stack()
        z = state.v_stack(state.steps)
        av = a.matmat(z)
        hbar = state.hqr.hessenberg()
        ek = state.ek_matrix()
        assert np.allclose(av, ck @ ek + v_all @ hbar, atol=1e-9)
        assert np.allclose(ek, ck.conj().T @ av, atol=1e-9)

    def test_basis_orthonormal(self, rng):
        a = as_operator(laplacian_1d(60))
        q, s = np.linalg.qr(rng.standard_normal((60, 3)))
        state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                    max_steps=4, identity_m=True)
        v = state.v_stack()
        assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-9)

    def test_iteration_budget(self, rng):
        a = as_operator(laplacian_1d(60))
        q, s = np.linalg.qr(rng.standard_normal((60, 1)))
        state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                    max_steps=10, identity_m=True,
                                    iteration_budget=3)
        assert state.steps == 3

    def test_early_convergence(self, rng):
        a = as_operator(sp.eye(40).tocsr())
        b = rng.standard_normal((40, 1))
        q, s = np.linalg.qr(b)
        state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                    max_steps=10, identity_m=True,
                                    targets=np.array([1e-8]))
        assert state.converged_early
        assert state.steps <= 2


class TestDeflationHelpers:
    def test_real_matrix_complex_pairs_stay_real(self, rng):
        # rotation-like matrix: complex conjugate eigenpairs
        blocks = [np.array([[0.0, -w], [w, 0.0]]) for w in (1.0, 2.0)]
        a = np.zeros((5, 5))
        a[:2, :2] = blocks[0]
        a[2:4, 2:4] = blocks[1]
        a[4, 4] = 3.0
        vals, vecs = np.linalg.eig(a)
        order = np.argsort(np.abs(vals))
        p = select_real_subspace(vals[order], vecs[:, order], 2, np.dtype(float))
        assert p.dtype == np.float64
        assert p.shape[1] <= 2
        # spans the invariant plane of the smallest pair
        res = a @ p - p @ (p.T @ a @ p)
        assert np.linalg.norm(res) < 1e-10

    def test_complex_dtype_passthrough(self, rng):
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        vals, vecs = np.linalg.eig(a)
        p = select_real_subspace(vals, vecs, 3, np.dtype(complex))
        assert p.shape == (6, 3)
        assert np.iscomplexobj(p)

    def test_orthonormal_output(self, rng):
        a = rng.standard_normal((8, 8))
        vals, vecs = np.linalg.eig(a)
        p = select_real_subspace(vals, vecs, 4, np.dtype(float))
        assert np.allclose(p.T @ p, np.eye(p.shape[1]), atol=1e-10)


class TestDenseHelpers:
    def test_sorted_eig_targets(self, rng):
        d = np.array([5.0, -0.1, 3.0, 0.01, -2.0])
        a = np.diag(d)
        vals, _ = sorted_eig(a, 2, target="smallest")
        assert np.allclose(sorted(np.abs(vals)), [0.01, 0.1])
        vals, _ = sorted_eig(a, 1, target="largest")
        assert np.isclose(abs(vals[0]), 5.0)
        vals, _ = sorted_eig(a, 1, target="smallest_real")
        assert np.isclose(vals[0].real, -2.0)
        vals, _ = sorted_eig(a, 1, target="largest_real")
        assert np.isclose(vals[0].real, 5.0)

    def test_sorted_eig_unknown_target(self):
        with pytest.raises(ValueError):
            sorted_eig(np.eye(3), 1, target="median")

    def test_generalized_eig(self, rng):
        t = np.diag([1.0, 4.0, 9.0])
        w = np.eye(3)
        vals, vecs = sorted_generalized_eig(t, w, 2, target="smallest")
        assert np.allclose(sorted(vals.real), [1.0, 4.0])

    def test_generalized_eig_singular_w_deprioritized(self):
        t = np.diag([1.0, 2.0])
        w = np.diag([1.0, 0.0])       # second eigenvalue infinite
        vals, _ = sorted_generalized_eig(t, w, 1, target="smallest")
        assert np.isfinite(vals[0])

    def test_solve_upper_triangular_fallback(self, rng):
        r = np.triu(rng.standard_normal((4, 4)))
        r[2, 2] = 0.0                 # singular
        b = rng.standard_normal((4, 1))
        y = solve_upper_triangular(r, b)  # least-squares fallback, no raise
        assert y.shape == (4, 1)

    def test_harmonic_lhs_matches_direct_formula(self, rng):
        """eq. (2) equals the textbook H + H^{-H} e h^H h e^H correction."""
        m, p = 5, 1
        hbar = np.zeros((m + 1, m))
        for j in range(m):
            hbar[: j + 2, j] = rng.standard_normal(j + 2)
        hm = hbar[:m]
        h_last = hbar[m:, m - 1:].copy()
        corr = np.zeros((m, m))
        corr[-1, -1] = (h_last.conj().T @ h_last)[0, 0]
        expect = hm + np.linalg.solve(hm.conj().T, corr)
        got = hessenberg_harmonic_lhs(hbar, None, h_last, p)
        assert np.allclose(got, expect, atol=1e-10)


class TestBaseHelpers:
    def test_eps_function(self):
        assert eps_all_below(np.array([1e-9, 1e-10]), np.array([1e-8, 1e-8]))
        assert not eps_all_below(np.array([1e-7, 1e-10]), np.array([1e-8, 1e-8]))

    def test_residual_targets_zero_column(self):
        b = np.zeros((10, 2))
        b[:, 0] = 1.0
        t = residual_targets(b, 1e-8)
        assert t[1] == 1e-8  # zero column gets an absolute floor

    def test_as_block_shapes(self):
        assert as_block(np.ones(5)).shape == (5, 1)
        assert as_block(np.ones((5, 2))).shape == (5, 2)
        with pytest.raises(ValueError):
            as_block(np.ones((2, 2, 2)))

    def test_column_norms_complex(self, rng):
        x = rng.standard_normal((20, 3)) + 1j * rng.standard_normal((20, 3))
        assert np.allclose(column_norms(x), np.linalg.norm(x, axis=0))

    def test_relative_residual_norms_zero_safe(self):
        r = np.ones((4, 2))
        b = np.zeros((4, 2))
        b[:, 0] = 2.0
        rel = relative_residual_norms(r, b)
        assert np.isfinite(rel).all()


@settings(max_examples=20, deadline=None)
@given(n=st.integers(8, 60), steps=st.integers(1, 6),
       p=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
def test_property_arnoldi_relation(n, steps, p, seed):
    rng = make_rng(seed)
    steps = min(steps, max((n - p) // p, 1))
    a = as_operator(laplacian_1d(n, shift=0.5))
    r0 = rng.standard_normal((n, p))
    q, s = np.linalg.qr(r0)
    state = block_arnoldi_cycle(a.matmat, IdentityPreconditioner(), q, s,
                                max_steps=steps, identity_m=True)
    if state.breakdown:
        return
    av = a.matmat(state.v_stack(state.steps))
    assert np.allclose(av, state.v_stack() @ state.hqr.hessenberg(),
                       atol=1e-8)


class TestSolveResultReport:
    def test_report_contains_chart(self, rng):
        from repro import Options, solve
        a = laplacian_1d(100, shift=0.2)
        res = solve(a, rng.standard_normal(100),
                    options=Options(tol=1e-8, max_it=2000))
        text = res.report()
        assert "SolveResult" in text
        assert "*" in text
        assert "max rel. residual" in text

    def test_report_empty_history_safe(self):
        from repro.krylov.base import ConvergenceHistory, SolveResult
        import numpy as np
        res = SolveResult(x=np.zeros(3), converged=np.array([True]),
                          iterations=0, history=ConvergenceHistory(),
                          method="gmres")
        assert "SolveResult" in res.report()
