"""Shared generator for the solver conformance matrix.

One place defines the axes (solver x preconditioning variant x execution
mode x dtype x block size x recycle strategy), how a configuration maps to
``Options``, and the derived-property oracles every configuration must
satisfy.  ``test_conformance_matrix.py`` sweeps the matrix; other tests can
import :func:`make_problem` / :func:`assert_conforms` for single configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import Options, solve
from repro.krylov.base import true_residual_norms

from conftest import make_rng

#: solvers under test and whether they recycle / accept blocks
SOLVERS = {
    "gmres":   {"recycles": False, "block": True},
    "bgmres":  {"recycles": False, "block": True},
    "gcrodr":  {"recycles": True, "block": True},   # dispatches pgcrodr for p>1
    "bgcrodr": {"recycles": True, "block": True},
    "gmresdr": {"recycles": True, "block": False},
}

VARIANTS = ("left", "right", "flexible")
EXEC_MODES = ("fused", "per_rank")
DTYPES = (np.float64, np.complex128)
BLOCK_SIZES = (1, 3)
STRATEGIES = ("A", "B")


@dataclass(frozen=True)
class Config:
    """One cell of the conformance matrix."""

    method: str
    variant: str = "right"
    exec_mode: str = "fused"
    dtype: type = np.float64
    p: int = 1
    strategy: str = "A"
    precond: bool = True
    seed: int = 0
    ortho: str = "cgs"
    #: how the recycled pair travels: "full" (exact re-derivation) or
    #: "sketched" (sketch-whitened carrying, lazy repair)
    recycle_space: str = "full"
    #: execution plan for the low-sync Arnoldi cycle
    plan: str = "interpret"
    #: route the solve through the service front end: None = direct
    #: ``repro.solve``, "sync"/"async" = the matching ``make_service``
    service_mode: str | None = None
    #: number of shifts for a shifted-family solve (0 = scalar solve);
    #: family configs are unpreconditioned (the engine rejects ``m``)
    shifts: int = 0
    #: steps of an adaptive-dt heat sequence driven through the service
    #: (0 = not a sequence config); with ``shifts`` the sequence runs in
    #: ``sequence_mode="shifted"`` (one-shift family per step)
    sequence: int = 0

    def id(self) -> str:
        dt = "c128" if self.dtype is np.complex128 else "f64"
        pc = self.variant if self.precond else "none"
        base = (f"{self.method}-{pc}-{self.exec_mode}-{dt}-p{self.p}"
                f"-{self.strategy}")
        if self.ortho != "cgs":
            base += f"-{self.ortho}"
        if self.recycle_space != "full":
            base += f"-rs_{self.recycle_space}"
        if self.plan != "interpret":
            base += f"-{self.plan}"
        if self.service_mode is not None:
            base += f"-svc_{self.service_mode}"
        if self.shifts:
            base += f"-sh{self.shifts}"
        if self.sequence:
            base += f"-seq{self.sequence}"
        return base

    def options(self, *, verify: str = "full", tol: float = 1e-8) -> Options:
        kw = {}
        if SOLVERS[self.method]["recycles"]:
            kw["recycle"] = 5
            kw["recycle_strategy"] = self.strategy
            kw["recycle_space"] = self.recycle_space
        if self.plan != "interpret":
            kw["plan"] = self.plan
        if self.service_mode is not None:
            kw["service_mode"] = self.service_mode
            if self.service_mode == "async":
                kw["service_shards"] = 2  # exercise the sharded cache
        return Options(krylov_method=self.method, gmres_restart=20, tol=tol,
                       max_it=2000, variant=self.variant if self.precond
                       else "right", exec_mode=self.exec_mode, verify=verify,
                       orthogonalization=self.ortho, **kw)


def conformance_matrix(full: bool = False) -> list[Config]:
    """Enumerate the matrix; ``full=False`` yields the fast tier-1 subset.

    The full matrix is the cross product restricted to valid combinations
    (GMRES-DR rejects flexible preconditioning and p > 1; strategy only
    matters for recyclers), deduplicated by config id.
    """
    configs: list[Config] = []
    seen: set[str] = set()

    def add(cfg: Config) -> None:
        if cfg.id() not in seen:
            seen.add(cfg.id())
            configs.append(cfg)

    if not full:
        # tier-1 subset: every solver, both exec modes, one nontrivial
        # variant and dtype apiece
        for method in SOLVERS:
            p = 3 if SOLVERS[method]["block"] else 1
            add(Config(method, variant="right", p=p))
            add(Config(method, variant="right", p=p, exec_mode="per_rank"))
            add(Config(method, variant="left", p=1))
            if method != "gmresdr":
                add(Config(method, variant="flexible", p=p))
        add(Config("gcrodr", p=3, strategy="B"))
        add(Config("bgmres", p=3, dtype=np.complex128))
        # low-synchronization orthogonalization engine: the block engine
        # (bgmres/bgcrodr), the pseudo-block per-column path (gcrodr) and
        # GMRES-DR each route the schemes differently — cover all three
        for scheme in ("cgs2_1r", "cholqr2", "sketched"):
            add(Config("bgmres", p=3, ortho=scheme))
            add(Config("gcrodr", p=3, ortho=scheme))
            add(Config("gmresdr", p=1, ortho=scheme))
        # sketched recycle carrying: block engine (gcrodr p=1 / bgcrodr)
        # and the pseudo-block per-column path (gcrodr p=3)
        add(Config("gcrodr", p=1, ortho="sketched",
                   recycle_space="sketched"))
        add(Config("gcrodr", p=3, ortho="sketched",
                   recycle_space="sketched"))
        add(Config("bgcrodr", p=3, ortho="sketched",
                   recycle_space="sketched"))
        # service_mode axis (verify=cheap on this subset — see
        # assert_conforms): both front ends over a plain and a recycling
        # solver, block width 3
        for mode in ("sync", "async"):
            add(Config("gmres", p=3, service_mode=mode))
            add(Config("gcrodr", p=3, service_mode=mode))
        # shifted-family axis: shared-basis and unprojected-recycled
        # engines, interpret and compiled plans (families reject m)
        add(Config("bgmres", p=1, ortho="cgs2_1r", shifts=4, precond=False))
        add(Config("bgcrodr", p=1, ortho="cgs2_1r", shifts=4, precond=False))
        add(Config("bgcrodr", p=1, ortho="cgs2_1r", shifts=4, precond=False,
                   plan="compiled"))
        # sequence axis: an adaptive-dt heat sequence through both
        # service front ends (unchanged-fp steps must show zero setup
        # spans — see _assert_sequence_conforms)
        add(Config("gcrodr", p=1, service_mode="sync", sequence=6))
        add(Config("gcrodr", p=1, service_mode="async", sequence=6,
                   exec_mode="per_rank"))
        return configs

    for method, caps in SOLVERS.items():
        for variant in VARIANTS:
            if variant == "flexible" and method == "gmresdr":
                continue
            for mode in EXEC_MODES:
                for dtype in DTYPES:
                    for p in BLOCK_SIZES:
                        if p > 1 and not caps["block"]:
                            continue
                        strategies = STRATEGIES if caps["recycles"] else ("A",)
                        for strat in strategies:
                            add(Config(method, variant=variant,
                                       exec_mode=mode, dtype=dtype, p=p,
                                       strategy=strat))
    # unpreconditioned spot checks (variant is then irrelevant)
    for method in SOLVERS:
        p = 3 if SOLVERS[method]["block"] else 1
        add(Config(method, p=p, precond=False))
    # service_mode axis: every solver through both front ends
    for method in SOLVERS:
        p = 3 if SOLVERS[method]["block"] else 1
        for mode in ("sync", "async"):
            add(Config(method, p=p, service_mode=mode))
    # orthogonalization-scheme sweep: every solver x every non-default
    # scheme, both exec modes, default axes elsewhere
    for method in SOLVERS:
        p = 3 if SOLVERS[method]["block"] else 1
        for scheme in ("mgs", "imgs", "cgs2_1r", "cholqr2", "sketched"):
            add(Config(method, p=p, ortho=scheme))
            add(Config(method, p=p, ortho=scheme, exec_mode="per_rank"))
    # recycle_space axis: both recyclers that carry (U_k, C_k) pairs, every
    # exec mode x plan combination, both strategies on the block engine
    for method, p in (("gcrodr", 1), ("gcrodr", 3), ("bgcrodr", 3)):
        for mode in EXEC_MODES:
            for plan in ("interpret", "compiled"):
                add(Config(method, p=p, ortho="sketched",
                           recycle_space="sketched", exec_mode=mode,
                           plan=plan))
    add(Config("gcrodr", p=1, ortho="sketched", recycle_space="sketched",
               strategy="B"))
    add(Config("bgcrodr", p=3, ortho="sketched", recycle_space="sketched",
               strategy="B"))
    add(Config("gcrodr", p=1, ortho="sketched", recycle_space="sketched",
               dtype=np.complex128))
    # shifted-family axis: both engines x exec mode x plan, plus a
    # complex-shift spot check
    for method in ("bgmres", "bgcrodr"):
        for mode in EXEC_MODES:
            for plan in ("interpret", "compiled"):
                add(Config(method, p=1, ortho="cgs2_1r", shifts=4,
                           precond=False, exec_mode=mode, plan=plan))
    add(Config("bgmres", p=1, ortho="cgs2_1r", shifts=4, precond=False,
               dtype=np.complex128))
    add(Config("bgcrodr", p=1, ortho="cholqr2", shifts=8, precond=False))
    # sequence axis: a recycler and a non-recycler through both front
    # ends x exec modes, plus the shifted-sequence mode (dt ramp as a
    # one-shift family per step against the constant base)
    for method in ("gmres", "gcrodr"):
        for mode in EXEC_MODES:
            for svc in ("sync", "async"):
                add(Config(method, p=1, service_mode=svc, sequence=6,
                           exec_mode=mode))
    add(Config("gcrodr", p=1, service_mode="sync", sequence=6, shifts=1,
               precond=False))
    add(Config("gcrodr", p=1, service_mode="sync", sequence=6, shifts=1,
               precond=False, exec_mode="per_rank"))
    return configs


def make_problem(cfg: Config, n: int = 120):
    """Well-conditioned model system + preconditioner for a config.

    Nonsymmetric real (convection-diffusion) or complex (shifted Laplacian)
    tridiagonal operator; the preconditioner is a Jacobi-like scaled inverse
    diagonal — constant, hence valid for every variant, and made *variable*
    (iteration-dependent) by the caller for flexible-only tests.
    """
    rng = make_rng(cfg.seed, cfg.p, 0 if cfg.dtype is np.float64 else 1)
    if cfg.dtype is np.complex128:
        a = (sp.diags([-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)],
                      [-1, 0, 1]).astype(np.complex128)
             + 0.3j * sp.eye(n, dtype=np.complex128))
        b = (rng.standard_normal((n, cfg.p))
             + 1j * rng.standard_normal((n, cfg.p))).astype(np.complex128)
    else:
        lo = -1.4 * np.ones(n - 1)
        hi = -0.6 * np.ones(n - 1)
        a = sp.diags([lo, 4.0 * np.ones(n), hi], [-1, 0, 1])
        b = rng.standard_normal((n, cfg.p))
    a = a.tocsr()
    m = None
    if cfg.precond:
        dinv = 1.0 / a.diagonal()
        m = sp.diags(dinv).astype(a.dtype).tocsr()
    return a, b, m


def _service_solve(cfg: Config, a, b, m, o: Options):
    """Drive one config's block solve through ``make_service``."""
    from repro import as_preconditioner
    from repro.service import make_service

    svc = make_service(
        options=o,
        preconditioner=as_preconditioner(m) if m is not None else None)
    req = svc.submit(a, b)
    assert getattr(req, "rejected", None) is None
    svc.flush()
    res = svc.result(req)
    assert res.info["service"]["batch_width"] == cfg.p
    if cfg.service_mode == "async":
        assert res.info["service"]["mode"] == "async"
    return res


@dataclass
class Outcome:
    """Result of driving one config through its oracles."""

    cfg: Config
    result: object
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def assert_conforms(cfg: Config, *, verify: str = "full",
                    tol: float = 1e-8) -> Outcome:
    """Solve the config's problem and check every derived-property oracle.

    Oracles (beyond the runtime invariant checker, which raises on its own):

    1. every column converges within the iteration budget;
    2. the *true* relative residual meets the tolerance (honest reporting);
    3. the recorded convergence history is finite and its final entry agrees
       with the returned ``converged`` flags;
    4. recyclers return a recycled space whose basis is orthonormal;
    5. the verify report is attached and clean.
    """
    if cfg.sequence:
        return _assert_sequence_conforms(cfg, tol=tol)
    if cfg.shifts:
        return _assert_family_conforms(cfg, verify=verify, tol=tol)
    if cfg.service_mode is not None:
        # the service path runs verify at "cheap": the full Arnoldi
        # re-verification belongs to the direct-solve axis, the service
        # axis checks the front ends preserve the solve contract
        verify = "cheap" if verify != "off" else verify
    a, b, m = make_problem(cfg)
    o = cfg.options(verify=verify, tol=tol)
    if cfg.service_mode is None:
        res = solve(a, b, m, options=o)
    else:
        res = _service_solve(cfg, a, b, m, o)
    out = Outcome(cfg, res)

    if not np.all(res.converged):
        out.failures.append(f"not converged after {res.iterations} its")
    rel = true_residual_norms(a, np.atleast_2d(np.asarray(res.x).T).T, b)
    rhs = np.linalg.norm(b, axis=0)
    rel = rel / np.where(rhs > 0, rhs, 1.0)
    # left preconditioning converges in the preconditioned norm; allow the
    # unpreconditioned residual the conditioning slack of M (small here)
    slack = 100.0 if (cfg.precond and cfg.variant == "left") else 10.0
    if np.any(rel > slack * tol):
        out.failures.append(f"true residual {rel.max():.2e} > {slack}*tol")
    hist = res.history.matrix()
    if not np.all(np.isfinite(hist)):
        out.failures.append("non-finite history entries")
    if verify != "off":
        rep = res.info.get("verify")
        if rep is None:
            out.failures.append("missing verify report")
        elif rep["violations"]:
            out.failures.append(f"verify violations: {rep['violations']}")
        elif rep["checks"] == 0:
            out.failures.append("verify report recorded zero checks")
    space = res.info.get("recycle")
    if space is not None:
        spaces = getattr(space, "spaces", [space])
        for s in spaces:
            if s is None or s.c is None or s.c.shape[1] == 0:
                continue
            g = s.c.conj().T @ s.c
            drift = np.linalg.norm(g - np.eye(g.shape[0], dtype=g.dtype))
            if drift > 1e-6 * np.sqrt(g.shape[0]):
                out.failures.append(f"recycled basis drift {drift:.2e}")
    return out


def _assert_family_conforms(cfg: Config, *, verify: str,
                            tol: float) -> Outcome:
    """Family-config oracles: the shifted analogue of the scalar list.

    1. every shift converges; 2. each shift's *true* residual against the
    explicitly shifted operator meets tolerance; 3. per-shift histories
    are finite and end consistently; 4. the verify report is attached and
    clean; 5. a recycled family returns an orthonormal ``C_k``.
    """
    from repro.krylov.shifted import shifted_matrix

    a, b, _ = make_problem(cfg)
    o = cfg.options(verify=verify, tol=tol)
    shifts = [0.05 * (i + 1) for i in range(cfg.shifts)]
    fam = solve(a, b, options=o, shifts=shifts)
    out = Outcome(cfg, fam)

    if not np.all(fam.converged):
        out.failures.append(f"not converged after {fam.iterations} its")
    rhs = np.linalg.norm(b, axis=0)
    rhs = np.where(rhs > 0, rhs, 1.0)
    for sigma, res in zip(fam.shifts, fam.results):
        x = np.atleast_2d(np.asarray(res.x).T).T
        rel = true_residual_norms(shifted_matrix(a, sigma), x, b) / rhs
        if np.any(rel > 10.0 * tol):
            out.failures.append(
                f"shift {sigma}: true residual {rel.max():.2e} > 10*tol")
        hist = res.history.matrix()
        if not np.all(np.isfinite(hist)):
            out.failures.append(f"shift {sigma}: non-finite history")
    if verify != "off":
        rep = fam.info.get("verify")
        if rep is None:
            out.failures.append("missing verify report")
        elif rep["violations"]:
            out.failures.append(f"verify violations: {rep['violations']}")
        elif rep["checks"] == 0:
            out.failures.append("verify report recorded zero checks")
    space = fam.info.get("recycle")
    if space is not None and space.c is not None and space.c.shape[1]:
        g = space.c.conj().T @ space.c
        drift = np.linalg.norm(g - np.eye(g.shape[0], dtype=g.dtype))
        if drift > 1e-6 * np.sqrt(g.shape[0]):
            out.failures.append(f"recycled basis drift {drift:.2e}")
    return out


def _assert_sequence_conforms(cfg: Config, *, tol: float) -> Outcome:
    """Sequence-config oracles: the transient analogue of the scalar list.

    1. every step converges; 2. the final field matches per-step direct
    sparse solves; 3. the ``sequence.*`` trace shape holds — in
    particular the *unchanged-fp oracle*: step solves after the first of
    an epoch (fingerprint unchanged) must show **zero setup spans** and
    no recycle-space rebuild in their batch; 4. the driver actually took
    the fast path on those steps.
    """
    import scipy.sparse.linalg as spla

    from repro.problems.transient import HeatSequence
    from repro.service.scheduler import AsyncSolveService
    from repro.service.sequence import SequenceDriver
    from repro.service.service import SolveService
    from repro.trace.gate import GateError, check_sequence_shape
    from repro.trace.tracer import Tracer, install

    o = cfg.options(verify="cheap", tol=tol).replace(
        service_flush="explicit", trace="summary",
        sequence_mode="shifted" if cfg.shifts else "operator")
    seq = HeatSequence(nx=8, n_steps=cfg.sequence, dt0=1e-3,
                       epoch_length=max(1, cfg.sequence // 2), growth=1.5)
    kwargs = {}
    if cfg.precond and not cfg.shifts:  # families reject preconditioning
        kwargs = {"preconditioner": "schwarz", "precond_opts": {"nparts": 2}}
    cls = AsyncSolveService if cfg.service_mode == "async" else SolveService
    svc = cls(options=o, **kwargs)
    driver = SequenceDriver(svc)
    handle = driver.add(seq, options=o, tenant="t0")
    tr = Tracer(level="summary")
    with install(tr):
        records = driver.run(strict=False)
    out = Outcome(cfg, records)

    if not handle.all_converged:
        out.failures.append("not every sequence step converged")
    try:
        shape = check_sequence_shape(tr.roots[-1])
    except GateError as exc:
        out.failures.append(f"sequence trace shape: {exc}")
    else:
        if shape["steps"] != cfg.sequence:
            out.failures.append(f"trace saw {shape['steps']} steps, "
                                f"expected {cfg.sequence}")
        # unchanged-fp steps exist (epoch_length > 1) and took the fast
        # path with zero setup spans (checked inside the shape gate)
        unchanged = sum(1 for r in records if not r["fp_changed"])
        if shape["fast_path_steps"] != unchanged:
            out.failures.append(
                f"{unchanged} unchanged-fp steps but "
                f"{shape['fast_path_steps']} passed the zero-setup oracle")
        if unchanged == 0:
            out.failures.append("sequence produced no unchanged-fp steps")
    # final-field oracle: per-step direct sparse solves
    u = seq.u0()
    for step in seq.steps():
        u = spla.spsolve(seq.operator(step).tocsc(), seq.rhs(step, u))
    err = np.linalg.norm(handle.u - u) / max(np.linalg.norm(u), 1.0)
    if err > 1e-6:
        out.failures.append(f"final field off by {err:.2e} vs direct solves")
    return out


def assert_sketched_quality(cfg: Config, *, rtol: float = 0.75,
                            tol: float = 1e-8) -> None:
    """Full-vs-sketched recycle-space quality oracle.

    Solves the same two-solve recycling sequence (the second solve is
    where the carried pair actually matters) under both
    ``recycle_space`` settings and requires *identical* convergence flags
    and iteration counts within ``rtol`` relative slack — the sketched
    carrying trades the per-cycle exact re-derivation for sketch-level
    pair quality, so a bounded iteration regression is the contract, an
    unbounded one is a bug.
    """
    assert cfg.recycle_space == "sketched", "pass the sketched config"
    a, b, m = make_problem(cfg)
    results = {}
    for space in ("full", "sketched"):
        o = Config(**{**cfg.__dict__, "recycle_space": space}).options(
            verify="cheap", tol=tol)
        r1 = solve(a, b, m, options=o)
        r2 = solve(a, b[:, ::-1] if b.ndim > 1 else -b, m, options=o,
                   recycle=r1.info["recycle"], same_system=False)
        results[space] = (np.asarray(r1.converged).tolist()
                          + np.asarray(r2.converged).tolist(),
                          r1.iterations + r2.iterations)
    full_flags, full_it = results["full"]
    sk_flags, sk_it = results["sketched"]
    assert sk_flags == full_flags, (
        f"{cfg.id()}: convergence flags differ full={full_flags} "
        f"sketched={sk_flags}")
    assert sk_it <= (1.0 + rtol) * full_it + 5, (
        f"{cfg.id()}: sketched carrying costs too many iterations "
        f"({sk_it} vs {full_it} full)")
