"""Smoke tests: every shipped example runs end-to-end at reduced size."""

import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES))


def test_quickstart_runs(capsys):
    import quickstart
    quickstart.run(24)
    out = capsys.readouterr().out
    assert "GCRO-DR(30,10)" in out
    assert "sum" in out


def test_poisson_heat_sequence_runs(capsys):
    import poisson_heat_sequence
    poisson_heat_sequence.run(32)
    out = capsys.readouterr().out
    assert "recycling gain" in out
    assert "FGCRO-DR" in out


def test_elasticity_inclusions_runs(capsys):
    import elasticity_inclusions
    elasticity_inclusions.run(5)
    out = capsys.readouterr().out
    assert "GCRO-DR vs LGMRES" in out
    assert "rejected" in out     # the variable-preconditioner guard fired


def test_service_batching_runs(capsys):
    import service_batching
    service_batching.run(16)
    out = capsys.readouterr().out
    assert "32 requests" in out
    assert "setup built 2x for 2 operators" in out
    assert "solo" in out
    assert "async replay (mode=async, shards=2" in out
    assert "deadline misses 0/32" in out
    assert "makespan" in out


@pytest.mark.slow
def test_maxwell_imaging_runs(capsys):
    import maxwell_imaging
    maxwell_imaging.run(5, 4)
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "BGMRES" in out


def test_ex32_cli_runs(capsys):
    import ex32_cli
    ex32_cli.main("-hpddm_krylov_method gcrodr -hpddm_recycle 5 "
                  "-hpddm_gmres_restart 20 -hpddm_recycle_same_system "
                  "-ksp_rtol 1.0e-6 -da_grid_x 24".split())
    out = capsys.readouterr().out
    assert "Reference (GMRES)" in out
    assert "HPDDM-style (GCRODR)" in out


def test_ex32_cli_pc_types(capsys):
    import ex32_cli
    for pc in ("jacobi", "none"):
        ex32_cli.main(f"-hpddm_krylov_method gcrodr -hpddm_recycle 5 "
                      f"-ksp_rtol 1.0e-5 -da_grid_x 16 -pc_type {pc}".split())
    out = capsys.readouterr().out
    assert out.count("HPDDM-style") == 2


def test_ex32_cli_rejects_unknown_pc():
    import ex32_cli
    with pytest.raises(SystemExit):
        ex32_cli.main(["-pc_type", "ilu"])


def test_frequency_sweep_runs(capsys):
    import frequency_sweep
    frequency_sweep.run(4, 4)
    out = capsys.readouterr().out
    assert "Maxwell frequency sweep" in out
    assert "speedup (family vs sequential)" in out
    assert "converged True" in out
    assert "converged False" not in out


def test_cost_model_scaling_runs(capsys):
    import cost_model_scaling
    cost_model_scaling.run(300)
    out = capsys.readouterr().out
    assert "reductions" in out
    assert "modeled time" in out
