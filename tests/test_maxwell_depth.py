"""Deeper Maxwell verification: manufactured physics, impedance terms,
antenna variants, and decomposition edge cases."""

import numpy as np
import pytest

from repro import Options, solve
from repro.precond.schwarz import SchwarzPreconditioner
from repro.problems.maxwell import (_face_trace_mass, antenna_ring_rhs,
                                    assemble_maxwell, decompose_maxwell,
                                    edge_element_matrices, maxwell_chamber,
                                    _scatter_assemble)
from repro.problems.tetmesh import box_tet_mesh


class TestEigenvaluePhysics:
    def test_cavity_resonance_converges_with_mesh(self):
        """The first cavity eigenvalue of the unit cube is 2 pi^2.

        The discrete generalized eigenproblem ``K u = lambda M u`` (PEC
        boundary) must approach it from above as the mesh refines — the
        canonical edge-element validation.
        """
        import scipy.sparse.linalg as spla
        import scipy.sparse as sp
        exact = 2 * np.pi ** 2
        approx = []
        for n in (3, 5):
            mesh = box_tet_mesh(n)
            ke, me = edge_element_matrices(mesh)
            k = _scatter_assemble(mesh, ke)
            m = _scatter_assemble(mesh, me)
            free = np.setdiff1d(np.arange(mesh.n_edges), mesh.boundary_edges)
            kf = sp.csr_matrix(k[free][:, free])
            mf = sp.csr_matrix(m[free][:, free])
            # smallest nonzero eigenvalue: shift-invert near the physical
            # target so the gradient kernel (lambda = 0) is skipped
            vals = spla.eigsh(kf, k=6, M=mf, sigma=exact,
                              return_eigenvectors=False)
            vals = np.sort(vals[vals > 1.0])
            approx.append(vals[0])
        err = [abs(a - exact) / exact for a in approx]
        assert err[1] < err[0]          # converging with refinement
        assert err[1] < 0.2

    def test_gradient_kernel_dimension(self):
        """dim ker(K) on free edges = number of interior nodes."""
        mesh = box_tet_mesh(3)
        ke, _ = edge_element_matrices(mesh)
        k = _scatter_assemble(mesh, ke)
        free = np.setdiff1d(np.arange(mesh.n_edges), mesh.boundary_edges)
        kf = k[free][:, free].toarray()
        n_zero = int(np.sum(np.abs(np.linalg.eigvalsh(kf)) < 1e-8))
        on_boundary = np.any((mesh.points == 0) | (mesh.points == 1), axis=1)
        n_interior = int(np.count_nonzero(~on_boundary))
        assert n_zero == n_interior


class TestFaceTraceMass:
    def test_spd_on_random_triangle(self, rng):
        pts = rng.standard_normal((3, 3))
        m = _face_trace_mass(pts, np.array([0, 1, 2]))
        assert np.allclose(m, m.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_constant_tangential_field_integral(self):
        """For E = const in the face plane, u^T M u = |F| |E|^2."""
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        tri = np.array([0, 1, 2])
        m = _face_trace_mass(pts, tri)
        e_field = np.array([1.0, 0.0, 0.0])
        # edge coefficients of a constant field: u_e = (p_hi - p_lo) . E
        local_edges = [(0, 1), (0, 2), (1, 2)]
        u = np.array([(pts[b] - pts[a]) @ e_field for a, b in local_edges])
        area = 0.5
        assert u @ m @ u == pytest.approx(area * 1.0, rel=1e-12)

    def test_scaling_with_area(self, rng):
        pts = rng.standard_normal((3, 3))
        tri = np.array([0, 1, 2])
        m1 = _face_trace_mass(pts, tri)
        # scaling the triangle by 2 scales the mass matrix by... area x4,
        # gradients /2, products of two basis functions: lambda O(1),
        # grad O(1/2) => integrand O(1/4), total O(1): M invariant? No:
        # M = area/12 * (g.g terms) ~ 4 * (1/4) = 1 — scale-invariant.
        m2 = _face_trace_mass(2.0 * pts, tri)
        assert np.allclose(m2, m1, atol=1e-10)


class TestAntennas:
    @pytest.fixture(scope="class")
    def chamber(self):
        return maxwell_chamber(6, omega=8.0)

    def test_tangential_direction(self, chamber):
        b = antenna_ring_rhs(chamber, n_antennas=4, direction="tangential")
        assert b.shape[1] == 4
        assert np.all(np.linalg.norm(b, axis=0) > 0)

    def test_unknown_direction(self, chamber):
        with pytest.raises(ValueError, match="direction"):
            antenna_ring_rhs(chamber, n_antennas=2, direction="radial")

    def test_amplitude_linearity(self, chamber):
        b1 = antenna_ring_rhs(chamber, n_antennas=2, amplitude=1.0)
        b3 = antenna_ring_rhs(chamber, n_antennas=2, amplitude=3.0)
        assert np.allclose(b3, 3.0 * b1, atol=1e-14)

    def test_rotational_symmetry_of_norms(self, chamber):
        """Antennas on a symmetric ring excite comparably strong RHSs."""
        b = antenna_ring_rhs(chamber, n_antennas=8)
        norms = np.linalg.norm(b, axis=0)
        assert norms.max() / norms.min() < 25  # mesh breaks exact symmetry

    def test_rhs_scales_with_omega(self):
        p1 = maxwell_chamber(5, omega=4.0)
        p2 = maxwell_chamber(5, omega=8.0)
        b1 = antenna_ring_rhs(p1, n_antennas=1)
        b2 = antenna_ring_rhs(p2, n_antennas=1)
        # i*omega*J source: same dipole, double omega => double magnitude
        assert np.linalg.norm(b2) == pytest.approx(2 * np.linalg.norm(b1),
                                                   rel=1e-10)


class TestDecompositionDepth:
    @pytest.fixture(scope="class")
    def chamber(self):
        return maxwell_chamber(6, omega=8.0)

    def test_eta_controls_impedance_strength(self, chamber):
        d1 = decompose_maxwell(chamber, 2, overlap=1, eta=0.5)
        d2 = decompose_maxwell(chamber, 2, overlap=1, eta=2.0)
        diff = abs(d1.local_matrices[0] - d2.local_matrices[0]).max()
        assert diff > 0
        # the impedance term is anti-Hermitian: only the imaginary part moves
        h1 = (d1.local_matrices[0] - d1.local_matrices[0].conj().T)
        h2 = (d2.local_matrices[0] - d2.local_matrices[0].conj().T)
        assert abs(h2).max() > abs(h1).max()

    def test_overlap_grows_subdomain_dofs(self, chamber):
        d1 = decompose_maxwell(chamber, 4, overlap=1)
        d2 = decompose_maxwell(chamber, 4, overlap=2)
        s1 = sum(len(s) for s in d1.decomposition.overlapping)
        s2 = sum(len(s) for s in d2.decomposition.overlapping)
        assert s2 > s1

    def test_every_free_dof_is_owned_once(self, chamber):
        dec = decompose_maxwell(chamber, 4, overlap=1)
        owned = np.concatenate(dec.decomposition.owned)
        assert len(owned) == chamber.n
        assert len(np.unique(owned)) == chamber.n

    def test_more_subdomains_more_iterations(self, chamber):
        """One-level ORAS: iteration count grows mildly with N (Fig. 7)."""
        b = antenna_ring_rhs(chamber, n_antennas=1)[:, 0]
        o = Options(tol=1e-6, variant="right", max_it=400, gmres_restart=50)
        its = {}
        for nparts in (2, 8):
            dec = decompose_maxwell(chamber, nparts, overlap=2)
            m = SchwarzPreconditioner(chamber.a, variant="oras",
                                      decomposition=dec.decomposition,
                                      local_matrices=dec.local_matrices)
            res = solve(chamber.a, b, m, options=o)
            assert res.converged.all()
            its[nparts] = res.iterations
        assert its[8] >= its[2]
        assert its[8] <= 4 * its[2]
