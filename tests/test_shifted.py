"""Tests for the shifted-system family engine.

Covers the contract of :mod:`repro.krylov.shifted` end-to-end:

* per-shift sequential solves are the convergence oracle — shared-basis
  solutions match them to solver tolerance, shared and recycled engines,
  with and without a mass matrix;
* ledger-counted reduction independence: a family at k in {1, 4, 8}
  shifts pays a per-shift-count-independent number of global reductions
  (the k=8 family costs <= 1.25x the k=1 solve, vs ~8x sequential);
* interpret/compiled bit-identity: same ``CostLedger.counts()``, same
  solution bits;
* recycling across families: a pair harvested from one family
  accelerates the next, across shifts, without per-shift projection;
* mutation test: a per-shift extra reduction smuggled into the
  least-squares core trips :func:`repro.trace.gate.check_shifted_shape`;
* the service front ends coalesce families keyed on
  ``(fp(A), fp(M), rhs-digest)`` into one dispatch.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, solve
from repro.krylov import shifted as shifted_mod
from repro.krylov.shifted import (ShiftedFamilyResult, shifted_matrix,
                                  sequential_shifted_solves,
                                  solve_shifted_family)
from repro.service import SolveService
from repro.service.scheduler import AsyncSolveService
from repro.trace.gate import GateError, check_shifted_shape
from repro.trace.tracer import Tracer, install as install_tracer
from repro.util import ledger
from repro.util.ledger import CostLedger
from repro.util.options import OptionError

from conftest import laplacian_2d, make_rng, relative_residuals

N_GRID = 16
SHIFTS8 = [0.05 * (i + 1) for i in range(8)]


def family_problem(p: int = 1, complex_: bool = False):
    a = laplacian_2d(N_GRID)
    n = a.shape[0]
    rng = make_rng(31, p, int(complex_))
    b = rng.standard_normal((n, p) if p > 1 else n)
    if complex_:
        a = (a.astype(np.complex128) + 0.1j * sp.eye(n)).tocsr()
        b = b + 1j * rng.standard_normal(b.shape)
    return a, b


def shared_opts(**kw) -> Options:
    base = dict(krylov_method="bgmres", gmres_restart=25, tol=1e-9,
                orthogonalization="cgs2_1r")
    base.update(kw)
    return Options(**base)


def recycled_opts(**kw) -> Options:
    base = dict(krylov_method="bgcrodr", gmres_restart=25, recycle=8,
                tol=1e-9, orthogonalization="cgs2_1r")
    base.update(kw)
    return Options(**base)


# ---------------------------------------------------------------------------
# oracle parity: shared basis vs per-shift sequential solves
# ---------------------------------------------------------------------------
class TestOracleParity:
    @pytest.mark.parametrize("opts_fn", [shared_opts, recycled_opts],
                             ids=["shared", "recycled"])
    def test_matches_sequential_oracle(self, opts_fn):
        a, b = family_problem()
        opts = opts_fn()
        fam = solve(a, b, options=opts, shifts=SHIFTS8[:4])
        seq = sequential_shifted_solves(a, b, SHIFTS8[:4], options=opts)
        assert fam.converged.all() and seq.converged.all()
        for s, rf, rs in zip(fam.shifts, fam.results, seq.results):
            asig = shifted_matrix(a, s)
            assert relative_residuals(asig, np.asarray(rf.x), b).max() < 1e-8
            # both land inside tolerance of the same true solution
            gap = np.linalg.norm(np.ravel(rf.x) - np.ravel(rs.x))
            gap /= np.linalg.norm(np.ravel(rs.x))
            assert gap < 1e-6, f"shift {s}: shared/sequential gap {gap:.2e}"

    def test_complex_shifts(self):
        a, b = family_problem(complex_=True)
        shifts = [0.1 + 0.05j, 0.2 - 0.02j, 0.3]
        fam = solve(a, b, options=shared_opts(), shifts=shifts)
        assert fam.converged.all()
        for s, res in zip(fam.shifts, fam.results):
            rel = relative_residuals(shifted_matrix(a, s),
                                     np.asarray(res.x), b)
            assert rel.max() < 1e-8

    def test_mass_matrix(self):
        a, b = family_problem()
        rng = make_rng(77)
        mass = sp.diags(1.0 + rng.random(a.shape[0])).tocsr()
        fam = solve(a, b, options=shared_opts(), shifts=SHIFTS8[:4],
                    mass=mass)
        assert fam.converged.all()
        for s, res in zip(fam.shifts, fam.results):
            rel = relative_residuals(shifted_matrix(a, s, mass),
                                     np.asarray(res.x), b)
            assert rel.max() < 1e-7

    def test_per_shift_rhs_block(self):
        a, _ = family_problem()
        rng = make_rng(5)
        b = rng.standard_normal((a.shape[0], 4))
        fam = solve(a, b, options=shared_opts(), shifts=SHIFTS8[:4])
        assert fam.converged.all()
        for i, (s, res) in enumerate(zip(fam.shifts, fam.results)):
            rel = relative_residuals(shifted_matrix(a, s),
                                     np.asarray(res.x), b[:, i])
            assert rel.max() < 1e-8

    def test_projected_variant_is_sequential_contrast(self):
        a, b = family_problem()
        opts = recycled_opts(shifted_variant="projected")
        fam = solve(a, b, options=opts, shifts=SHIFTS8[:4])
        assert fam.method == "shifted_projected"
        assert fam.converged.all()
        assert fam.info["variant"] == "projected"

    def test_preconditioner_rejected(self):
        a, b = family_problem()
        m = sp.diags(1.0 / a.diagonal()).tocsr()
        with pytest.raises(OptionError, match="shift invariance"):
            solve(a, b, m, options=shared_opts(), shifts=SHIFTS8[:2])

    def test_mass_without_shifts_rejected(self):
        a, b = family_problem()
        with pytest.raises(OptionError, match="mass"):
            solve(a, b, options=shared_opts(),
                  mass=sp.eye(a.shape[0]).tocsr())

    def test_bad_variant_rejected(self):
        with pytest.raises(OptionError, match="shifted_variant"):
            Options(shifted_variant="sideways")


# ---------------------------------------------------------------------------
# the headline: reductions independent of the number of shifts
# ---------------------------------------------------------------------------
def _count_reductions(a, b, opts, shifts):
    led = CostLedger()
    with ledger.install(led):
        fam = solve(a, b, options=opts, shifts=shifts)
    assert fam.converged.all()
    return led.counts()[0], fam


class TestReductionIndependence:
    @pytest.mark.parametrize("opts_fn", [shared_opts, recycled_opts],
                             ids=["shared", "recycled"])
    def test_family_reductions_independent_of_k(self, opts_fn):
        a, _ = family_problem()
        rng = make_rng(13)
        b = rng.standard_normal((a.shape[0], 8))
        # full-rank per-shift RHS: identical cycle structure at any width
        counts = {k: _count_reductions(a, b[:, :k], opts_fn(),
                                       SHIFTS8[:k])[0]
                  for k in (1, 4, 8)}
        assert counts[8] <= 1.25 * counts[1], counts
        assert counts[4] <= 1.25 * counts[1], counts

    def test_family_beats_sequential_by_construction(self):
        a, b = family_problem()
        opts = shared_opts()
        fam_reds, _ = _count_reductions(a, b, opts, SHIFTS8)
        led = CostLedger()
        with ledger.install(led):
            seq = sequential_shifted_solves(a, b, SHIFTS8, options=opts)
        assert seq.converged.all()
        seq_reds = led.counts()[0]
        # k=8 family ~1x one solve; sequential ~8x. demand >= 3x headroom
        assert seq_reds >= 3 * fam_reds, (seq_reds, fam_reds)


# ---------------------------------------------------------------------------
# interpret / compiled bit-identity
# ---------------------------------------------------------------------------
class TestPlanBitIdentity:
    @pytest.mark.parametrize("opts_fn", [shared_opts, recycled_opts],
                             ids=["shared", "recycled"])
    def test_counts_and_solutions_identical(self, opts_fn):
        a, b = family_problem()
        outs = {}
        for plan in ("interpret", "compiled"):
            led = CostLedger()
            with ledger.install(led):
                fam = solve(a, b, options=opts_fn(plan=plan),
                            shifts=SHIFTS8[:4])
            outs[plan] = (led.counts(), fam)
        ci, fi = outs["interpret"]
        cc, fc = outs["compiled"]
        assert ci == cc
        for ri, rc in zip(fi.results, fc.results):
            assert np.array_equal(np.asarray(ri.x), np.asarray(rc.x))


# ---------------------------------------------------------------------------
# recycling across families
# ---------------------------------------------------------------------------
class TestRecycleAcrossShifts:
    def test_family_recycle_accelerates_next_family(self):
        # large enough that the harvested pair pays for the inner steps
        # it displaces (on tiny problems the cold solve converges in two
        # cycles and adoption cannot win)
        a = laplacian_2d(20)
        rng = make_rng(99)
        b = rng.standard_normal(a.shape[0])
        b2 = rng.standard_normal(a.shape[0])
        opts = recycled_opts()
        fam1 = solve(a, b, options=opts, shifts=SHIFTS8[:4])
        space = fam1.info["recycle"]
        assert space is not None and space.meta.get("family")
        warm = solve(a, b2, options=opts, shifts=SHIFTS8[:4], recycle=space)
        cold = solve(a, b2, options=opts, shifts=SHIFTS8[:4])
        assert warm.converged.all() and cold.converged.all()
        assert warm.iterations <= cold.iterations
        for s, res in zip(warm.shifts, warm.results):
            rel = relative_residuals(shifted_matrix(a, s),
                                     np.asarray(res.x), b2)
            assert rel.max() < 1e-8

    def test_unprojected_beats_projected_on_reductions(self):
        a, b = family_problem()
        led_u, led_p = CostLedger(), CostLedger()
        with ledger.install(led_u):
            fam_u = solve(a, b, options=recycled_opts(), shifts=SHIFTS8[:4])
        with ledger.install(led_p):
            fam_p = solve(a, b, options=recycled_opts(
                shifted_variant="projected"), shifts=SHIFTS8[:4])
        assert fam_u.converged.all() and fam_p.converged.all()
        assert led_u.counts()[0] < led_p.counts()[0]


# ---------------------------------------------------------------------------
# the gate, and the mutation that must trip it
# ---------------------------------------------------------------------------
def _traced_family_roots(opts_fn, widths=(1, 4, 8)):
    a, _ = family_problem()
    rng = make_rng(13)
    b = rng.standard_normal((a.shape[0], max(widths)))
    roots = {}
    for k in widths:
        tr = Tracer(level="summary")
        led = CostLedger()
        with install_tracer(tr), ledger.install(led):
            fam = solve(a, b[:, :k],
                        options=opts_fn(trace="summary"),
                        shifts=SHIFTS8[:k])
        assert fam.converged.all()
        roots[k] = tr.roots[-1]
    return roots


class TestShiftedGate:
    @pytest.mark.parametrize("opts_fn", [shared_opts, recycled_opts],
                             ids=["shared", "recycled"])
    def test_gate_passes_from_spans(self, opts_fn):
        rep = check_shifted_shape(_traced_family_roots(opts_fn))
        assert rep["headline_ratio"] <= 1.25
        assert rep["widths"] == [1, 4, 8]

    def test_mutation_extra_per_shift_reduction_trips_gate(self,
                                                           monkeypatch):
        """A per-shift reduction smuggled into the LS core must be caught.

        The mutant charges one global reduction per shift inside the
        per-shift Hessenberg solve — exactly the cost the shared basis
        exists to avoid.  ``check_shifted_shape`` must refuse the trace.
        """
        real = shifted_mod._per_shift_ls

        def leaky(*args, **kwargs):
            ledger.current().reduction(nbytes=8)
            return real(*args, **kwargs)

        monkeypatch.setattr(shifted_mod, "_per_shift_ls", leaky)
        with pytest.raises(GateError, match="least_squares|depend"):
            check_shifted_shape(_traced_family_roots(shared_opts))


# ---------------------------------------------------------------------------
# service integration: one family, one dispatch
# ---------------------------------------------------------------------------
class TestFamilyService:
    def test_shift_sets_coalesce_to_one_dispatch(self):
        a, b = family_problem()
        svc = SolveService(options=shared_opts())
        r1 = svc.submit_family(a, b, SHIFTS8[:4])
        r2 = svc.submit_family(a, b, SHIFTS8[2:7])
        svc.flush()
        assert len(svc.batches) == 1
        rec = svc.batches[0]
        assert rec["family"] and rec["width"] == 7  # union of the two sets
        for req in (r1, r2):
            fam = req.result
            assert isinstance(fam, ShiftedFamilyResult)
            assert tuple(fam.shifts) == req.shifts
            assert fam.converged.all()
            assert fam.info["service"]["coalesced_requests"] == 2

    def test_distinct_rhs_do_not_coalesce(self):
        a, b = family_problem()
        rng = make_rng(3)
        svc = SolveService(options=shared_opts())
        svc.submit_family(a, b, SHIFTS8[:2])
        svc.submit_family(a, rng.standard_normal(a.shape[0]), SHIFTS8[:2])
        svc.flush()
        assert len(svc.batches) == 2

    def test_mass_lu_is_one_setup_cache_entry(self):
        a, b = family_problem()
        rng = make_rng(21)
        mass = sp.diags(1.0 + rng.random(a.shape[0])).tocsr()
        svc = SolveService(options=shared_opts())
        f1 = svc.submit_family(a, b, SHIFTS8[:3], mass=mass)
        svc.flush()
        f2 = svc.submit_family(a, rng.standard_normal(a.shape[0]),
                               SHIFTS8[:3], mass=mass)
        svc.flush()
        assert f1.result.info["service"]["setup_cache_hit"] is False
        assert f2.result.info["service"]["setup_cache_hit"] is True
        assert f1.result.converged.all() and f2.result.converged.all()

    def test_family_recycle_cached_across_dispatches(self):
        a, b = family_problem()
        rng = make_rng(23)
        svc = SolveService(options=recycled_opts())
        f1 = svc.submit_family(a, b, SHIFTS8[:4])
        svc.flush()
        f2 = svc.submit_family(a, rng.standard_normal(a.shape[0]),
                               SHIFTS8[:4])
        svc.flush()
        assert f1.result.info["service"]["recycle_cache_hit"] is False
        assert f2.result.info["service"]["recycle_cache_hit"] is True
        assert f2.result.iterations <= f1.result.iterations

    def test_async_family_request(self):
        a, b = family_problem()
        opts = shared_opts(service_mode="async", service_shards=2)
        svc = AsyncSolveService(options=opts)
        req = svc.submit_family(a, b, SHIFTS8[:4], deadline=60.0,
                                tenant="sweep")
        assert req.rejected is None
        svc.drain()
        fam = req.result
        assert fam.converged.all()
        info = fam.info["service"]
        assert info["family"] and info["mode"] == "async"
        assert info["latency"] > 0.0

    def test_empty_shifts_rejected(self):
        a, b = family_problem()
        svc = SolveService(options=shared_opts())
        with pytest.raises(ValueError, match="at least one shift"):
            svc.submit_family(a, b, [])

    def test_scatter_cost_covers_own_shifts(self):
        a, b = family_problem()
        svc = SolveService(options=shared_opts())
        r1 = svc.submit_family(a, b, SHIFTS8[:4])
        r2 = svc.submit_family(a, b, SHIFTS8[4:8])
        svc.flush()
        batch = svc.batches[0]["ledger"].counts()
        c1 = r1.result.info["service"]["cost"].counts()
        c2 = r2.result.info["service"]["cost"].counts()
        # disjoint shift sets: per-request shares conserve the batch
        assert c1[0] + c2[0] == batch[0]
