"""Integration tests: solvers x preconditioners x problems, end to end."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, Solver, install_ledger, solve
from repro.distla.distcsr import DistributedCSR
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.schwarz import SchwarzPreconditioner
from repro.precond.simple import JacobiPreconditioner, SSORPreconditioner
from repro.problems.elasticity import PAPER_INCLUSIONS, elasticity_3d
from repro.problems.maxwell import (antenna_ring_rhs, decompose_maxwell,
                                    maxwell_chamber)
from repro.problems.poisson import poisson_2d

from conftest import relative_residuals


@pytest.fixture(scope="module")
def poisson():
    return poisson_2d(24)


@pytest.fixture(scope="module")
def elasticity():
    return elasticity_3d(5, inclusion=PAPER_INCLUSIONS[0])


@pytest.fixture(scope="module")
def chamber():
    return maxwell_chamber(5, omega=6.0)


class TestSolverPreconditionerMatrix:
    """Every Krylov method against every preconditioner family."""

    METHODS = [
        ("gmres", {}),
        ("bgmres", {}),
        ("gcrodr", {"recycle": 5}),
        ("bgcrodr", {"recycle": 5}),
    ]
    PRECONDITIONERS = {
        "none": lambda a: None,
        "jacobi": lambda a: JacobiPreconditioner(a),
        "ssor": lambda a: SSORPreconditioner(a),
        "amg": lambda a: SmoothedAggregationAMG(a, coarse_size=60),
        "schwarz": lambda a: SchwarzPreconditioner(a, nparts=3, overlap=1),
    }

    @pytest.mark.parametrize("method,extra", METHODS)
    @pytest.mark.parametrize("prec", list(PRECONDITIONERS))
    def test_poisson_grid(self, poisson, rng, method, extra, prec):
        b = rng.standard_normal((poisson.n, 2))
        m = self.PRECONDITIONERS[prec](poisson.a)
        opts = Options(krylov_method=method, gmres_restart=25, tol=1e-8,
                       variant="right", max_it=4000, **extra)
        res = solve(poisson.a, b, m, options=opts)
        assert res.converged.all(), (method, prec)
        assert np.all(relative_residuals(poisson.a, res.x, b) < 1e-7)


class TestElasticityEndToEnd:
    def test_sequence_with_recycling_and_amg(self, rng):
        opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=8,
                       tol=1e-8, variant="flexible", max_it=3000)
        s = Solver(options=opts)
        for inc in PAPER_INCLUSIONS[:2]:
            prob = elasticity_3d(5, inclusion=inc)
            m = SmoothedAggregationAMG(prob.a, nullspace=prob.nullspace,
                                       block_size=3, smoother="cg",
                                       smoother_iterations=3)
            res = s.solve(prob.a, prob.rhs_vector, m=m)
            assert res.converged.all()
            assert not res.info["same_system"]

    def test_block_solve_multiple_loads(self, elasticity, rng):
        loads = np.column_stack([elasticity.rhs_vector,
                                 rng.standard_normal(elasticity.n)])
        m = SSORPreconditioner(elasticity.a)
        res = solve(elasticity.a, loads, m,
                    options=Options(krylov_method="bgmres", tol=1e-8,
                                    variant="right", max_it=4000))
        assert res.converged.all()


class TestMaxwellEndToEnd:
    def test_oras_multi_antenna_block(self, chamber, rng):
        b = antenna_ring_rhs(chamber, n_antennas=4)
        dec = decompose_maxwell(chamber, 4, overlap=1, impedance=True)
        m = SchwarzPreconditioner(chamber.a, variant="oras",
                                  decomposition=dec.decomposition,
                                  local_matrices=dec.local_matrices)
        res = solve(chamber.a, b, m,
                    options=Options(krylov_method="bgmres", gmres_restart=40,
                                    tol=1e-6, variant="right", max_it=1500))
        assert res.converged.all()
        assert np.all(relative_residuals(chamber.a, res.x, b) < 1e-5)

    def test_bgcrodr_on_maxwell(self, chamber):
        b = antenna_ring_rhs(chamber, n_antennas=4)
        dec = decompose_maxwell(chamber, 4, overlap=1, impedance=True)
        m = SchwarzPreconditioner(chamber.a, variant="oras",
                                  decomposition=dec.decomposition,
                                  local_matrices=dec.local_matrices)
        s = Solver(m, options=Options(krylov_method="bgcrodr",
                                      gmres_restart=40, recycle=8, tol=1e-6,
                                      variant="right", max_it=1500,
                                      recycle_same_system=True))
        r1 = s.solve(chamber.a, b[:, :2])
        r2 = s.solve(chamber.a, b[:, 2:])
        assert r1.converged.all() and r2.converged.all()
        assert r2.info["same_system"]


class TestDistributedIntegration:
    def test_distributed_operator_through_full_stack(self, poisson, rng):
        """DistributedCSR + Schwarz + GCRO-DR, with ledger accounting."""
        dist = DistributedCSR(poisson.a, nranks=4)
        m = SchwarzPreconditioner(poisson.a, nparts=4, overlap=1)
        b = rng.standard_normal(poisson.n)
        with install_ledger() as led:
            res = solve(dist, b, m,
                        options=Options(krylov_method="gcrodr",
                                        gmres_restart=20, recycle=5,
                                        tol=1e-8, variant="right",
                                        max_it=2000))
        assert res.converged.all()
        assert led.p2p_messages > 0            # halo traffic happened
        assert led.reductions > res.iterations  # dots + norms counted

    def test_distributed_matches_serial_solution(self, poisson, rng):
        b = rng.standard_normal(poisson.n)
        opts = Options(tol=1e-10, max_it=4000)
        x_serial = solve(poisson.a, b, options=opts).x
        x_dist = solve(DistributedCSR(poisson.a, nranks=3), b,
                       options=opts).x
        assert np.allclose(x_serial, x_dist, atol=1e-6)


class TestLedgerDrivenModeling:
    def test_whole_solve_modelable(self, poisson, rng):
        from repro.perfmodel.estimate import modeled_time
        b = rng.standard_normal(poisson.n)
        dist = DistributedCSR(poisson.a, nranks=4)
        with install_ledger() as led:
            res = solve(dist, b, options=Options(tol=1e-8, max_it=4000))
        assert res.converged.all()
        t = modeled_time(led, 4)
        assert t.total > 0
        assert t.compute > 0 and t.reduction > 0 and t.p2p > 0

    def test_reductions_scale_with_method(self, poisson, rng):
        """GCRO-DR's extra projection costs ~1 reduction per iteration."""
        b = rng.standard_normal(poisson.n)
        counts = {}
        for method, extra in [("gmres", {}), ("gcrodr", {"recycle": 5})]:
            with install_ledger() as led:
                res = solve(poisson.a, b,
                            options=Options(krylov_method=method,
                                            gmres_restart=20, tol=1e-8,
                                            max_it=4000, **extra))
            counts[method] = led.reductions / max(res.iterations, 1)
        assert counts["gcrodr"] < 2.5 * counts["gmres"]
