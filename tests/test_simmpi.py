"""Tests for the simulated-MPI substrate and the performance model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distla.distcsr import DistributedCSR
from repro.perfmodel.directmodel import (PAPER_FIG6B, DirectSolveModel,
                                         efficiency_table)
from repro.perfmodel.estimate import modeled_time, strong_scaling_projection
from repro.perfmodel.machine import CURIE, MachineModel
from repro.simmpi.collectives import (allgather_rows, allreduce_sum,
                                      dot_columns, norm_columns)
from repro.simmpi.grid import VirtualGrid
from repro.simmpi.halo import build_halo_plans
from repro.util import ledger
from repro.util.ledger import CostLedger, Kernel

from conftest import laplacian_1d, laplacian_2d


class TestVirtualGrid:
    def test_balanced_partition(self):
        g = VirtualGrid(100, 4)
        assert np.array_equal(g.offsets, [0, 25, 50, 75, 100])
        assert g.local_size(2) == 25
        assert g.rows(1) == slice(25, 50)

    def test_uneven_partition(self):
        g = VirtualGrid(10, 3)
        assert g.offsets[0] == 0 and g.offsets[-1] == 10
        assert sum(g.local_sizes()) == 10

    def test_owner(self):
        g = VirtualGrid(100, 4)
        assert g.owner(0) == 0
        assert g.owner(99) == 3
        assert np.array_equal(g.owner(np.array([10, 30, 80])), [0, 1, 3])

    def test_explicit_offsets(self):
        g = VirtualGrid(10, 2, offsets=np.array([0, 3, 10]))
        assert g.local_size(0) == 3
        assert g.owner(5) == 1

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            VirtualGrid(10, 2, offsets=np.array([0, 0, 10]))
        with pytest.raises(ValueError):
            VirtualGrid(10, 2, offsets=np.array([1, 5, 10]))

    def test_too_many_ranks(self):
        with pytest.raises(ValueError):
            VirtualGrid(3, 5)

    def test_reduction_hops(self):
        assert VirtualGrid(10, 1).reduction_hops() == 0
        assert VirtualGrid(10, 2).reduction_hops() == 2
        assert VirtualGrid(64, 8).reduction_hops() == 6

    def test_rank_bounds(self):
        g = VirtualGrid(10, 2)
        with pytest.raises(ValueError):
            g.rows(2)


class TestCollectives:
    def test_allreduce_matches_serial(self, rng):
        g = VirtualGrid(40, 4)
        x = rng.standard_normal((40, 3))
        parts = [x[g.rows(r)].sum(axis=0) for r in range(4)]
        with ledger.install() as led:
            total = allreduce_sum(g, parts)
        assert np.allclose(total, x.sum(axis=0))
        assert led.reductions == 1

    def test_dot_columns(self, rng):
        g = VirtualGrid(50, 5)
        x = rng.standard_normal((50, 2))
        y = rng.standard_normal((50, 2))
        with ledger.install() as led:
            d = dot_columns(g, x, y)
        assert np.allclose(d, np.einsum("ij,ij->j", x, y))
        assert led.reductions == 1

    def test_norm_columns(self, rng):
        g = VirtualGrid(30, 3)
        x = rng.standard_normal((30, 4))
        assert np.allclose(norm_columns(g, x), np.linalg.norm(x, axis=0))

    def test_allgather_counts_traffic(self, rng):
        g = VirtualGrid(40, 4)
        x = rng.standard_normal((40, 1))
        blocks = [x[g.rows(r)] for r in range(4)]
        with ledger.install() as led:
            out = allgather_rows(g, blocks)
        assert np.allclose(out, x)
        assert led.p2p_messages == 4 * 3

    def test_wrong_contribution_count(self):
        g = VirtualGrid(10, 2)
        with pytest.raises(ValueError):
            allreduce_sum(g, [np.zeros(2)])


class TestHaloAndDistributedCSR:
    def test_matmat_matches_serial(self, rng):
        a = laplacian_2d(12)
        dist = DistributedCSR(a, nranks=4)
        x = rng.standard_normal((a.shape[0], 3))
        assert np.allclose(dist.matmat(x), a @ x, atol=1e-12)

    def test_single_rank_no_traffic(self, rng):
        a = laplacian_1d(50)
        dist = DistributedCSR(a, nranks=1)
        with ledger.install() as led:
            dist.matmat(rng.standard_normal((50, 1)))
        assert led.p2p_messages == 0

    def test_halo_pattern_1d(self):
        # 1-D Laplacian split into contiguous chunks: each interior rank
        # needs exactly one ghost value from each side
        a = laplacian_1d(40)
        plans = build_halo_plans(a, VirtualGrid(40, 4))
        assert plans[0].n_neighbours == 1 and plans[0].n_ghost == 1
        assert plans[1].n_neighbours == 2 and plans[1].n_ghost == 2
        assert plans[3].n_neighbours == 1

    def test_spmm_bytes_scale_with_block_width(self, rng):
        a = laplacian_2d(10)
        dist = DistributedCSR(a, nranks=4)
        traffic = {}
        for p in (1, 4):
            with ledger.install() as led:
                dist.matmat(rng.standard_normal((a.shape[0], p)))
            traffic[p] = (led.p2p_messages, led.p2p_bytes)
        # message COUNT identical, byte volume p times larger (paper V-B2)
        assert traffic[1][0] == traffic[4][0]
        assert traffic[4][1] == 4 * traffic[1][1]

    def test_communication_volume_helper(self):
        a = laplacian_1d(30)
        dist = DistributedCSR(a, nranks=3)
        msgs, vol = dist.communication_volume(p=2)
        assert msgs == 4          # 2 boundaries, both directions
        assert vol == 4 * 8 * 2   # 4 ghost values, float64, p=2

    def test_usable_as_solver_operator(self, rng):
        from repro import Options, solve
        a = laplacian_1d(80, shift=0.5)
        dist = DistributedCSR(a, nranks=4)
        b = rng.standard_normal(80)
        res = solve(dist, b, options=Options(tol=1e-9))
        assert res.converged.all()
        assert np.allclose(a @ res.x, b, atol=1e-7)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            DistributedCSR(sp.random(4, 6, density=0.5))


class TestMachineModel:
    def test_rates_ordering(self):
        m = MachineModel()
        assert m.rate(Kernel.BLAS3) > m.rate(Kernel.SPMV)
        assert m.rate(Kernel.SPMM, block_width=32) > m.rate(Kernel.SPMM,
                                                            block_width=1)
        assert m.rate(Kernel.SPMM, block_width=10_000) <= m.rate(Kernel.BLAS3)

    def test_reduction_time_log_scaling(self):
        m = MachineModel()
        t2 = m.reduction_time(2)
        t1024 = m.reduction_time(1024)
        assert t1024 == pytest.approx(10 * t2)
        assert m.reduction_time(1) == 0.0

    def test_memory_bandwidth_saturates(self):
        m = MachineModel()
        assert m.memory_bandwidth(16) <= m.stream_bw_node
        assert m.memory_bandwidth(2) == pytest.approx(2 * m.stream_bw_core)


class TestEstimate:
    def _sample_events(self):
        led = CostLedger()
        led.reduction(count=100)
        led.p2p(messages=400, nbytes=4_000_000)
        led.flop(Kernel.SPMV, 1e9)
        led.flop(Kernel.BLAS3, 1e9)
        return led

    def test_components_positive(self):
        t = modeled_time(self._sample_events(), 64)
        assert t.reduction > 0 and t.p2p > 0 and t.compute > 0
        assert t.total == pytest.approx(t.reduction + t.p2p + t.compute)

    def test_compute_scales_inversely(self):
        ev = self._sample_events()
        t64 = modeled_time(ev, 64)
        t128 = modeled_time(ev, 128)
        assert t128.compute == pytest.approx(t64.compute / 2)
        # reductions get MORE expensive with more ranks
        assert t128.reduction > t64.reduction

    def test_strong_scaling_has_sweet_spot(self):
        ev = self._sample_events()
        proj = strong_scaling_projection(ev, [1, 64, 4096, 1 << 20])
        totals = [proj[p].total for p in (1, 64, 4096, 1 << 20)]
        assert totals[1] < totals[0]          # parallelism helps ...
        assert totals[3] > min(totals)        # ... until latency dominates

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            modeled_time(CostLedger(), 0)


class TestDirectModel:
    def test_matches_paper_within_tolerance(self):
        model = DirectSolveModel()
        tab = efficiency_table(model)
        ratio = tab["times"] / PAPER_FIG6B["times"]
        assert ratio.max() < 1.5 and ratio.min() > 0.6

    def test_headline_numbers(self):
        m = DirectSolveModel()
        assert m.solve_time(1, 1) == pytest.approx(1.58, rel=0.05)
        # "abysmal efficiency of 10%" at P=16, p=2
        assert m.efficiency(16, 2) == pytest.approx(0.10, abs=0.03)
        # superlinear by p=64 on 16 threads (the tipping point)
        assert m.efficiency(16, 64) > 1.0
        assert m.efficiency(16, 32) < 1.0
        # single-thread superlinear efficiency, saturating ~2.4
        assert 2.2 < m.efficiency(1, 128) < 2.6

    def test_efficiency_monotone_in_p_single_thread(self):
        m = DirectSolveModel()
        effs = [m.efficiency(1, p) for p in (1, 4, 16, 64, 128)]
        assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_from_factor_constructor(self):
        m = DirectSolveModel.from_factor(3e7, 300_000)
        assert m.solve_time(1, 1) > 0
        assert m.efficiency(1, 64) > 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DirectSolveModel().solve_time(0, 1)
