"""The CI pipeline itself: stage lists, path mapping, retry, reasons.

``scripts/ci.py`` is the single source of truth for what CI runs; the
GitHub workflow mirrors its stage lists in env vars.  These tests pin
the two in sync and unit-test the pure pieces of the runner (the
path->stage map, the bench-gate retry, the failure reason codes)
without shelling out to any real stage.
"""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
WORKFLOW = ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def ci():
    spec = importlib.util.spec_from_file_location(
        "repro_ci_script", ROOT / "scripts" / "ci.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


# -- stage registry ----------------------------------------------------
def test_stage_registry_matches_declared_order(ci):
    assert tuple(ci.STAGES) == ci.ALL_STAGES
    # fast stages are a subsequence of all stages, in the same order
    assert [s for s in ci.ALL_STAGES if s in ci.FAST_STAGES] \
        == list(ci.FAST_STAGES)
    assert set(ci.BENCH_GATE_STAGES) <= set(ci.FAST_STAGES)
    assert "macro-gates" in ci.FAST_STAGES


def _workflow_env(name: str) -> list[str]:
    text = WORKFLOW.read_text(encoding="utf-8")
    match = re.search(rf'^\s*{name}:\s*"([^"]+)"', text, re.MULTILINE)
    assert match, f"{name} not found in {WORKFLOW}"
    return match.group(1).split()


def test_workflow_stage_lists_in_sync(ci):
    """ci.py and .github/workflows/ci.yml must agree on the stages."""
    assert _workflow_env("CI_FAST_STAGES") == list(ci.FAST_STAGES)
    assert _workflow_env("CI_ALL_STAGES") == list(ci.ALL_STAGES)


def test_workflow_invokes_ci_runner_and_uploads_artifacts():
    text = WORKFLOW.read_text(encoding="utf-8")
    assert "python scripts/ci.py --fast" in text
    assert re.search(r"python scripts/ci\.py --json\s*$", text,
                     re.MULTILINE), "full run must invoke ci.py unfiltered"
    assert "ci_summary.json" in text
    assert "BENCH_trajectory.json" in text
    assert "schedule:" in text  # the nightly full run


# -- path -> stage mapping ---------------------------------------------
def test_docs_only_diff_maps_to_lint(ci):
    assert ci.stages_for_paths(["docs/TRANSIENT.md"]) == {"lint"}
    assert ci.stages_for_paths(["README.md", "docs/TESTING.md",
                                ".github/workflows/ci.yml"]) == {"lint"}


def test_tests_only_diff_maps_to_lint_tier1(ci):
    assert ci.stages_for_paths(["tests/test_transient.py"]) \
        == {"lint", "tier1"}


def test_bench_diff_maps_to_bench_gates(ci):
    stages = ci.stages_for_paths(["benchmarks/bench_transient.py"])
    assert stages == {"lint", "tier1", "perf-gates", "traffic",
                      "macro-gates"}
    assert ci.stages_for_paths(["scripts/bench_compare.py"]) == stages


def test_src_or_unknown_diff_maps_to_full_fast_set(ci):
    full = set(ci.FAST_STAGES)
    assert ci.stages_for_paths(["src/repro/service/sequence.py"]) == full
    assert ci.stages_for_paths(["scripts/ci.py"]) == full
    assert ci.stages_for_paths(["pyproject.toml"]) == full
    # one src file taints an otherwise docs-only diff
    assert ci.stages_for_paths(["docs/TRANSIENT.md",
                                "src/repro/api.py"]) == full
    # empty diff: nothing to narrow on, run everything
    assert ci.stages_for_paths([]) == full


# -- retry-once for the bench-gate stages ------------------------------
def test_bench_gate_stage_retried_once_and_both_attempts_recorded(
        ci, monkeypatch):
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) == 1:
            return {"ok": False, "reason": "gate-failed"}
        return {"ok": True}

    monkeypatch.setitem(ci.STAGES, "macro-gates", flaky)
    entry = ci.run_stage("macro-gates")
    assert len(calls) == 2
    assert entry["ok"] and entry["retried"]
    assert len(entry["attempts"]) == 2
    assert entry["attempts"][0]["ok"] is False
    assert entry["attempts"][0]["reason"] == "gate-failed"
    assert entry["attempts"][1]["ok"] is True


def test_bench_gate_stage_not_retried_on_success(ci, monkeypatch):
    calls = []
    monkeypatch.setitem(ci.STAGES, "perf-gates",
                        lambda: calls.append(1) or {"ok": True})
    entry = ci.run_stage("perf-gates")
    assert len(calls) == 1
    assert entry["ok"] and "attempts" not in entry


def test_non_bench_stage_fails_without_retry(ci, monkeypatch):
    calls = []
    monkeypatch.setitem(
        ci.STAGES, "lint",
        lambda: calls.append(1) or {"ok": False, "reason": "gate-failed"})
    entry = ci.run_stage("lint")
    assert len(calls) == 1
    assert not entry["ok"] and "attempts" not in entry


# -- failure reason codes ----------------------------------------------
def test_stage_exception_reason_code(ci, monkeypatch):
    def boom():
        raise RuntimeError("kaput")

    monkeypatch.setitem(ci.STAGES, "lint", boom)
    entry = ci.run_stage("lint")
    assert entry["ok"] is False
    assert entry["reason"] == "stage-exception"
    assert "kaput" in entry["error"]


def test_stage_failure_default_reason_code(ci, monkeypatch):
    monkeypatch.setitem(ci.STAGES, "lint", lambda: {"ok": False})
    entry = ci.run_stage("lint")
    assert entry["reason"] == "stage-failed"


def test_successful_stage_has_no_reason(ci, monkeypatch):
    monkeypatch.setitem(ci.STAGES, "lint", lambda: {"ok": True})
    entry = ci.run_stage("lint")
    assert entry["ok"] is True and "reason" not in entry
