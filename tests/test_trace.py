"""Observability layer: span tracer, metrics, exports, and the trace gate.

Locks down the tentpole invariants:

* span nesting mirrors the solver's phase structure;
* per-span exclusive costs sum back to the outer ledger window
  (bit-for-bit on every discrete counter) in both execution modes;
* the default null tracer changes nothing — ledger ``counts()`` and
  solver ``info`` are identical with tracing off;
* the trace gate re-derives the paper's reduction shapes (GMRES ``m``,
  GCRO-DR ``2(m-k)``, cgs2_1r <= 2/step) from exported spans.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import laplacian_1d, laplacian_2d
from repro import api
from repro.service import SolveService
from repro.trace import (GateError, MetricsRegistry, NullTracer, Tracer,
                         chrome_trace_json, counts_signature, current,
                         install, modeled_span_seconds, run_gate, tracer_for)
from repro.trace.gate import (check_conservation, check_gcrodr_shape,
                              check_gmres_shape, check_step_reduction_bound)
from repro.util import ledger
from repro.util.ledger import CostLedger
from repro.util.options import OptionError, Options


def _merge_exclusives(root):
    total = CostLedger()
    for span in root.walk():
        if span.cost is not None:
            total.merge(span.exclusive())
    return total


# ---------------------------------------------------------------------------
class TestSpanMechanics:
    def test_nesting_and_attrs(self):
        tr = Tracer()
        with install(tr):
            with tr.span("solve", method="gmres") as root:
                with tr.span("cycle", index=0):
                    with tr.span("arnoldi_step", j=0):
                        pass
                with tr.span("cycle", index=1):
                    pass
        assert [c.name for c in root.children] == ["cycle", "cycle"]
        assert root.attrs == {"method": "gmres"}
        assert root.children[0].children[0].name == "arnoldi_step"
        assert len(root.find("cycle")) == 2
        assert [s.name for s in root.walk()] == [
            "solve", "cycle", "arnoldi_step", "cycle"]

    def test_exclusive_subtracts_children(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("outer") as outer:
                led.reduction(count=1)
                with tr.span("inner") as inner:
                    led.reduction(count=2, nbytes=16)
                led.reduction(count=4)
        assert outer.cost.reductions == 7
        assert inner.cost.reductions == 2
        assert outer.exclusive().reductions == 5
        assert inner.exclusive().reductions == 2

    def test_exclusive_skips_other_ledger_children(self):
        """A child recorded under a nested ledger.install must not be
        subtracted — its charges reached the parent only via merge."""
        tr = Tracer()
        outer_led = CostLedger()
        with ledger.install(outer_led), install(tr):
            with tr.span("batch") as batch:
                inner_led = CostLedger()
                with ledger.install(inner_led):
                    with tr.span("solve"):
                        inner_led.reduction(count=3)
                outer_led.merge(inner_led)
        assert batch.cost.reductions == 3
        assert batch.exclusive().reductions == 3  # child not double-counted

    def test_exclusive_zeroes_timers(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("outer") as outer:
                with led.timer("wall"):
                    led.reduction()
        assert outer.exclusive().timers == {}

    def test_open_span_raises(self):
        tr = Tracer()
        cm = tr.span("solve")
        span = cm.__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            span.exclusive()
        cm.__exit__(None, None, None)

    def test_to_dict_roundtrips_through_json(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                led.flop("spmv", 10.0)
        d = json.loads(json.dumps(root.to_dict()))
        assert d["name"] == "solve"
        assert d["flops"] == {"spmv": 10.0}
        assert d["children"] == []

    def test_exception_unwinds_stack(self):
        tr = Tracer()
        with install(tr):
            with pytest.raises(ValueError):
                with tr.span("solve"):
                    with tr.span("cycle"):
                        raise ValueError("boom")
            with tr.span("after"):
                pass
        assert [r.name for r in tr.roots] == ["solve", "after"]
        assert tr.roots[0].cost is not None  # closed despite the exception


class TestNullTracer:
    def test_default_is_null(self):
        assert isinstance(current(), NullTracer)
        assert not current().enabled

    def test_null_span_is_noop_singleton(self):
        null = current()
        cm1, cm2 = null.span("x"), null.detail_span("y", a=1)
        assert cm1 is cm2
        with cm1 as got:
            assert got is None

    def test_tracer_for_resolution(self):
        assert not tracer_for(Options()).enabled
        tr = tracer_for(Options(trace="summary"))
        assert tr.enabled and tr.level == "summary"
        ambient = Tracer("full")
        with install(ambient):
            assert tracer_for(Options(trace="off")) is ambient

    def test_invalid_tracer_level(self):
        with pytest.raises(ValueError):
            Tracer("off")
        with pytest.raises(ValueError):
            Tracer("verbose")


# ---------------------------------------------------------------------------
class TestSolverTraces:
    def _solve(self, method, mode, rng, **kw):
        a = laplacian_1d(240, shift=0.5)   # well-conditioned: converges fast
        b = rng.standard_normal(240)
        opts = Options(krylov_method=method, tol=1e-10, exec_mode=mode,
                       trace="summary", **kw)
        tr = Tracer()
        led = CostLedger()
        with install(tr), ledger.install(led):
            res = api.solve(a, b, options=opts)
        return res, tr.roots[-1], led

    @pytest.mark.parametrize("mode", ["fused", "per_rank"])
    @pytest.mark.parametrize("method,kw", [
        ("gmres", {}), ("gcrodr", {"recycle": 5}), ("bgmres", {}),
    ])
    def test_conservation_both_exec_modes(self, rng, method, kw, mode):
        res, root, led = self._solve(method, mode, rng, **kw)
        assert res.converged.all()
        check_conservation(root)  # raises GateError on violation
        # the root window is the whole outer ledger (solve is all that ran)
        assert counts_signature(root.cost) == counts_signature(led)

    def test_cycle_structure_gmres(self, rng):
        res, root, _ = self._solve("gmres", "fused", rng)
        cycles = root.find("cycle")
        assert cycles, "gmres must trace cycles"
        for cyc in cycles:
            steps = cyc.find("arnoldi_step")
            assert steps
            for step in steps:
                orthos = step.find("ortho")
                assert len(orthos) == 1
                # op_apply never charges reductions: the step's reductions
                # are exactly the orthogonalization's
                assert step.cost.reductions == orthos[0].cost.reductions

    def test_info_trace_summary(self, rng):
        res, root, _ = self._solve("gmres", "fused", rng)
        trace_info = res.info["trace"]
        assert trace_info["level"] == "summary"
        assert trace_info["span"]["name"] == "solve"
        assert "cycle" in trace_info["summary"]["by_name"]

    def test_off_is_byte_identical(self, rng):
        a = laplacian_1d(240)
        b = rng.standard_normal(240)
        led_off, led_on = CostLedger(), CostLedger()
        with ledger.install(led_off):
            r_off = api.solve(a, b, options=Options(krylov_method="gmres"))
        with ledger.install(led_on):
            r_on = api.solve(a, b,
                             options=Options(krylov_method="gmres",
                                             trace="summary"))
        assert led_off.counts() == led_on.counts()
        assert "trace" not in r_off.info
        info_on = {k: v for k, v in r_on.info.items() if k != "trace"}
        assert repr(r_off.info) == repr(info_on)
        np.testing.assert_array_equal(r_off.x, r_on.x)

    def test_full_level_records_collectives(self, rng):
        """The simmpi collectives only open spans at the "full" level."""
        from repro.simmpi import VirtualGrid, dot_columns, norm_columns
        from repro.util.execmode import use_exec_mode
        grid = VirtualGrid(64, 4)
        x = rng.standard_normal((64, 3))
        for level, expected in (("summary", 0), ("full", 2)):
            tr = Tracer(level)
            led = CostLedger()
            with install(tr), ledger.install(led), use_exec_mode("per_rank"):
                with tr.span("solve") as root:
                    dot_columns(grid, x, x)
                    norm_columns(grid, x)
            found = (root.find("simmpi.dot_columns")
                     + root.find("simmpi.norm_columns"))
            assert len(found) == expected
            if level == "full":
                # the per-rank path nests allreduce_sum inside each
                assert len(root.find("simmpi.allreduce_sum")) == 2
                check_conservation(root)
                assert root.cost.reductions == 2

    def test_setup_spans(self, rng):
        from repro.precond.schwarz import SchwarzPreconditioner
        a = laplacian_2d(14)
        tr = Tracer()
        with install(tr), ledger.install():
            m = SchwarzPreconditioner(a, nparts=4)
        setup = tr.roots[0]
        assert setup.name == "setup.schwarz"
        assert [c.name for c in setup.children] == ["setup.lu"] * 4
        # the span window matches what the private setup ledger recorded
        assert setup.cost.counts() == m.setup_cost.counts()


# ---------------------------------------------------------------------------
class TestServiceTracing:
    def test_batch_span_and_metrics(self, rng):
        a = laplacian_1d(200)
        svc = SolveService(options=Options(krylov_method="gmres", tol=1e-8))
        tr = Tracer()
        with install(tr), ledger.install() as led:
            handles = [svc.submit(a, rng.standard_normal(200))
                       for _ in range(4)]
            svc.flush()
            for h in handles:
                h.result
        batches = [r for r in tr.roots if r.name == "service.batch"]
        assert len(batches) == 1
        batch = batches[0]
        assert batch.attrs["width"] == 4
        # the batch window equals the merged batch ledger: conservation at
        # this level means the whole outer ledger is the batch window
        assert counts_signature(batch.cost) == counts_signature(led)
        assert tr.metrics.counter("service_requests_total").value() == 4
        assert tr.metrics.counter("service_batches_total").value() == 1
        occ = tr.metrics.histogram("service_batch_occupancy")
        assert occ.count() == 1 and occ.sum() == 4

    def test_setup_cache_metrics(self, rng):
        a = laplacian_1d(200)
        svc = SolveService(options=Options(krylov_method="gmres", tol=1e-8),
                           preconditioner="lu")
        tr = Tracer()
        with install(tr), ledger.install():
            svc.submit(a, rng.standard_normal(200))
            svc.flush()
            svc.submit(a, rng.standard_normal(200))
            svc.flush()
        cache = tr.metrics.counter("service_setup_cache_total")
        assert cache.value(outcome="miss") == 1
        assert cache.value(outcome="hit") == 1


# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2, method="gmres")
        reg.gauge("depth").set(7)
        assert reg.counter("hits").value() == 1
        assert reg.counter("hits").value(method="gmres") == 2
        assert reg.gauge("depth").value() == 7
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_type_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_histogram_buckets_and_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("iters", buckets=(1, 10, 100))
        for v in (0, 1, 5, 50, 500):
            h.observe(v)
        assert h.count() == 5 and h.sum() == 556
        snap = reg.snapshot()
        assert 'iters_bucket{le="1"} 2' in snap
        assert 'iters_bucket{le="10"} 3' in snap
        assert 'iters_bucket{le="100"} 4' in snap
        assert 'iters_bucket{le="+Inf"} 5' in snap
        assert "iters_count 5" in snap
        assert reg.snapshot() == reg.snapshot()  # deterministic
        assert reg.as_dict()["iters_count"] == 5

    def test_null_registry_absorbs(self):
        null = NullTracer().metrics
        null.counter("x").inc()
        null.histogram("y").observe(3)
        null.gauge("z").set(1)
        assert null.snapshot() == ""


# ---------------------------------------------------------------------------
class TestExports:
    def _traced(self, rng):
        a = laplacian_1d(240)
        b = rng.standard_normal(240)
        tr = Tracer()
        with install(tr), ledger.install():
            api.solve(a, b, options=Options(krylov_method="gmres",
                                            trace="summary"))
        return tr

    def test_chrome_trace_shape(self, rng):
        tr = self._traced(rng)
        doc = json.loads(chrome_trace_json(tr))
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        solve = next(e for e in events if e["name"] == "solve")
        for e in events:
            assert e["ts"] >= solve["ts"]
            assert e["ts"] + e["dur"] <= solve["ts"] + solve["dur"] + 1e-6
        assert "reductions" in solve["args"]

    def test_chrome_trace_deterministic(self, rng):
        tr = self._traced(rng)
        assert chrome_trace_json(tr) == chrome_trace_json(tr)

    def test_modeled_time_children_fit(self, rng):
        tr = self._traced(rng)
        root = tr.roots[-1]
        total = modeled_span_seconds(root)
        assert total > 0
        assert sum(modeled_span_seconds(c) for c in root.children) <= total

    def test_counts_signature_drops_zeros(self):
        led = CostLedger()
        led.flop("spmv", 5.0)
        other = led.snapshot()
        diff = led.diff(CostLedger())
        diff.flops["blas3"] = 0.0  # what Counter.subtract leaves behind
        assert counts_signature(diff) == counts_signature(other)


# ---------------------------------------------------------------------------
class TestTraceGate:
    @pytest.mark.slow
    def test_run_gate_passes(self):
        report = run_gate()
        assert report["reductions_per_cycle"] == {
            "gmres": 10, "gcrodr": 12,
            "gcrodr_sketched_recycle": "steps + 1"}
        for mode in ("fused", "per_rank"):
            assert report[mode]["gmres"]["full_cycles"] >= 1
            assert report[mode]["gcrodr"]["full_cycles"] >= 1
            assert report[mode]["cgs2_1r_bound"]["max_reductions_per_step"] <= 2
            for shape in report[mode]["sketched_recycle"].values():
                assert shape["overhead_per_cycle"] <= 1

    def test_gate_shapes_single_mode(self, rng):
        """The fast (tier-1) version: one exec mode, real solves."""
        report = run_gate(exec_modes=("fused",))
        assert report["fused"]["gmres"]["reductions_per_full_cycle"] == 10
        assert report["fused"]["gcrodr"]["reductions_per_full_cycle"] == 12

    def _fake_cycle(self, tr, led, nsteps, reds_per_step, name="cycle",
                    **attrs):
        with tr.span(name, **attrs):
            for j in range(nsteps):
                with tr.span("arnoldi_step", j=j):
                    led.reduction(count=reds_per_step)

    def test_gmres_shape_rejects_extra_reduction(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                self._fake_cycle(tr, led, nsteps=4, reds_per_step=2)
        with pytest.raises(GateError, match="expected one per step"):
            check_gmres_shape(root, m=4)

    def test_gmres_shape_requires_full_cycle(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                self._fake_cycle(tr, led, nsteps=3, reds_per_step=1)
        with pytest.raises(GateError, match="no full m=4 cycle"):
            check_gmres_shape(root, m=4)

    def test_gcrodr_shape_rejects_recycle_update(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                self._fake_cycle(tr, led, nsteps=6, reds_per_step=2,
                                 kind="gcrodr")
                with tr.span("recycle_update"):
                    led.reduction()
        with pytest.raises(GateError, match="recycle_update"):
            check_gcrodr_shape(root, m=10, k=4)

    def test_gcrodr_shape_rejects_variable_count(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                self._fake_cycle(tr, led, nsteps=6, reds_per_step=2,
                                 kind="gcrodr")
                self._fake_cycle(tr, led, nsteps=6, reds_per_step=3,
                                 kind="gcrodr")
        with pytest.raises(GateError, match="2 per step"):
            check_gcrodr_shape(root, m=10, k=4)

    def test_step_bound(self):
        tr = Tracer()
        led = CostLedger()
        with ledger.install(led), install(tr):
            with tr.span("solve") as root:
                self._fake_cycle(tr, led, nsteps=2, reds_per_step=3)
        with pytest.raises(GateError, match="low-synchronization bound"):
            check_step_reduction_bound(root)
        assert check_step_reduction_bound(root, bound=3)[
            "max_reductions_per_step"] == 3


# ---------------------------------------------------------------------------
class TestOptionsTrace:
    def test_validation(self):
        assert Options().trace == "off"
        assert Options(trace="full").trace == "full"
        with pytest.raises(OptionError, match="trace"):
            Options(trace="loud")

    def test_hpddm_args_roundtrip(self):
        from repro.util.options import parse_hpddm_args
        args = Options(trace="summary").hpddm_args()
        assert "-hpddm_trace" in args
        assert parse_hpddm_args(args).trace == "summary"
        assert "-hpddm_trace" not in Options().hpddm_args()
