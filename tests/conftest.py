"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp


def laplacian_1d(n: int, shift: float = 0.0) -> sp.csr_matrix:
    """1-D Dirichlet Laplacian (SPD, smallest eigenvalues cluster at 0)."""
    a = sp.diags([-np.ones(n - 1), (2.0 + shift) * np.ones(n), -np.ones(n - 1)],
                 [-1, 0, 1])
    return a.tocsr()


def laplacian_2d(nx: int, ny: int | None = None) -> sp.csr_matrix:
    """2-D five-point Laplacian on an nx x ny grid."""
    ny = ny or nx
    ix = sp.eye(nx)
    iy = sp.eye(ny)
    tx = laplacian_1d(nx)
    ty = laplacian_1d(ny)
    return (sp.kron(iy, tx) + sp.kron(ty, ix)).tocsr()


def convection_diffusion_1d(n: int, wind: float = 0.4) -> sp.csr_matrix:
    """Nonsymmetric tridiagonal model problem (diagonally dominant)."""
    lo = (-1.0 - wind) * np.ones(n - 1)
    hi = (-1.0 + wind) * np.ones(n - 1)
    return sp.diags([lo, 4.0 * np.ones(n), hi], [-1, 0, 1]).tocsr()


def complex_shifted(n: int, sigma: complex = 0.4j) -> sp.csr_matrix:
    """Complex-symmetric shifted Laplacian (mini Helmholtz/Maxwell stand-in)."""
    return (laplacian_1d(n) + sigma * sp.eye(n)).astype(np.complex128).tocsr()


def relative_residuals(a, x, b) -> np.ndarray:
    x = np.atleast_2d(x.T).T
    b = np.atleast_2d(b.T).T
    return np.linalg.norm(b - a @ x, axis=0) / np.linalg.norm(b, axis=0)


#: single base seed for every generator in the suite — changing it reseeds
#: all randomized tests at once, and no test constructs its own entropy
BASE_SEED = 20260705


def make_rng(*entropy: int) -> np.random.Generator:
    """Deterministic generator derived from :data:`BASE_SEED`.

    Property-based tests fold their hypothesis-drawn ``seed`` into the base
    seed (``make_rng(seed)``) so shrinking stays reproducible while the
    whole suite still keys off one number.
    """
    return np.random.default_rng([BASE_SEED, *entropy])


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng()
