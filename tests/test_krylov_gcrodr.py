"""Tests for (Block/Flexible) GCRO-DR — the paper's core method."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import Options, RecycledSubspace, Solver
from repro.krylov.base import FunctionPreconditioner
from repro.krylov.gcrodr import gcrodr
from repro.krylov.gmres import gmres
from repro.util import ledger

from conftest import (complex_shifted, convection_diffusion_1d, laplacian_1d,
                      laplacian_2d, relative_residuals)


def _opts(**kw):
    kw.setdefault("krylov_method", "gcrodr")
    kw.setdefault("gmres_restart", 30)
    kw.setdefault("recycle", 10)
    kw.setdefault("tol", 1e-8)
    kw.setdefault("max_it", 6000)
    return Options(**kw)


class TestSingleSolve:
    def test_converges_where_restarted_gmres_stalls(self, rng):
        """Deflated restarting rescues GMRES(m) on the 1-D Laplacian."""
        a = laplacian_1d(600)
        b = rng.standard_normal(600)
        rg = gmres(a, b, options=Options(gmres_restart=30, tol=1e-8, max_it=3000))
        rr = gcrodr(a, b, options=_opts(max_it=3000))
        assert rr.converged.all()
        assert not rg.converged.all() or rr.iterations < rg.iterations

    def test_invariants_of_returned_space(self, rng):
        a = convection_diffusion_1d(200)
        b = rng.standard_normal(200)
        res = gcrodr(a, b, options=_opts())
        rec = res.info["recycle"]
        assert isinstance(rec, RecycledSubspace)
        u, c = rec.u, rec.c
        assert u.shape[1] == c.shape[1] <= 10
        # C orthonormal
        assert np.linalg.norm(c.conj().T @ c - np.eye(c.shape[1])) < 1e-8
        # A U = C (the defining invariant)
        au = a @ u
        assert np.linalg.norm(au - c) / np.linalg.norm(au) < 1e-8

    def test_k_must_be_positive(self):
        a = laplacian_1d(20)
        with pytest.raises(ValueError, match="recycle"):
            gcrodr(a, np.ones(20), options=Options(krylov_method="gmres",
                                                   recycle=0))

    def test_zero_rhs(self):
        a = laplacian_1d(40, shift=1.0)
        res = gcrodr(a, np.zeros(40), options=_opts())
        assert res.converged.all()
        assert np.allclose(res.x, 0.0)

    def test_complex_system(self, rng):
        a = complex_shifted(250)
        b = rng.standard_normal(250) + 1j * rng.standard_normal(250)
        res = gcrodr(a, b, options=_opts())
        assert res.converged.all()
        assert relative_residuals(a, res.x, b)[0] < 1e-7


class TestSequencesSameSystem:
    def test_recycling_reduces_iterations(self, rng):
        a = laplacian_1d(500)
        rec = None
        its = []
        for _ in range(3):
            b = rng.standard_normal(500)
            res = gcrodr(a, b, options=_opts(max_it=4000), recycle=rec,
                         same_system=rec is not None)
            rec = res.info["recycle"]
            its.append(res.iterations)
            assert res.converged.all()
        assert its[1] < 0.8 * its[0]
        assert its[2] < 0.8 * its[0]

    def test_same_system_flag_skips_eig_updates(self, rng):
        """The non-variable fast path must not solve eigenproblems."""
        a = laplacian_1d(300)
        b1 = rng.standard_normal(300)
        res1 = gcrodr(a, b1, options=_opts())
        rec = res1.info["recycle"]
        with ledger.install() as led:
            res2 = gcrodr(a, rng.standard_normal(300), options=_opts(),
                          recycle=rec, same_system=True)
        assert res2.converged.all()
        assert led.calls["recycle_update"] == 0
        assert res2.info["same_system"]
        # while the general path performs one update per restart cycle
        with ledger.install() as led_gen:
            res3 = gcrodr(a, rng.standard_normal(300), options=_opts(),
                          recycle=rec, same_system=False)
        assert led_gen.calls["recycle_update"] >= 1
        assert res3.converged.all()

    def test_same_system_preserves_recycled_space(self, rng):
        a = laplacian_1d(300)
        res1 = gcrodr(a, rng.standard_normal(300), options=_opts())
        rec1 = res1.info["recycle"]
        res2 = gcrodr(a, rng.standard_normal(300), options=_opts(),
                      recycle=rec1, same_system=True)
        rec2 = res2.info["recycle"]
        assert np.allclose(rec1.u, rec2.u)
        assert np.allclose(rec1.c, rec2.c)

    def test_recycle_projection_exact_on_recycled_directions(self, rng):
        """If b lies in span(C), the init step alone solves the system."""
        a = convection_diffusion_1d(150)
        res = gcrodr(a, rng.standard_normal(150), options=_opts())
        rec = res.info["recycle"]
        b = rec.c @ rng.standard_normal(rec.k)
        res2 = gcrodr(a, b, options=_opts(), recycle=rec, same_system=True)
        assert res2.converged.all()
        assert res2.iterations == 0


class TestSequencesVaryingSystem:
    def _sequence(self, rng, n=400, count=4):
        base = laplacian_1d(n)
        mats, rhss = [], []
        for i in range(count):
            mats.append((base + 0.02 * i * sp.eye(n)).tocsr())
            rhss.append(rng.standard_normal(n))
        return mats, rhss

    @pytest.mark.parametrize("strategy", ["A", "B"])
    def test_strategies_converge(self, rng, strategy):
        mats, rhss = self._sequence(rng)
        rec = None
        its = []
        for a, b in zip(mats, rhss):
            res = gcrodr(a, b, options=_opts(recycle_strategy=strategy),
                         recycle=rec, same_system=False)
            rec = res.info["recycle"]
            its.append(res.iterations)
            assert res.converged.all()
            assert relative_residuals(a, res.x, b)[0] < 1e-7
        # recycling across slowly varying systems must help
        assert its[-1] <= its[0]

    def test_strategy_a_extra_reduction(self, rng):
        """Strategy A pays one extra reduction per restart; B is free."""
        a = laplacian_1d(400)
        b = rng.standard_normal(400)
        reds = {}
        for strat in ("A", "B"):
            with ledger.install() as led:
                res = gcrodr(a, b, options=_opts(recycle_strategy=strat),
                             same_system=False)
            reds[strat] = (led.reductions, res.restarts, res.iterations)
        ra, ka, ia = reds["A"]
        rb, kb, ib = reds["B"]
        if ia == ib and ka == kb:  # identical trajectories: exact bookkeeping
            assert ra == rb + (ka - 1)  # first cycle solves eq.(2), no W needed

    def test_operator_change_reorthonormalizes(self, rng):
        n = 200
        a1 = laplacian_1d(n, shift=0.2)
        a2 = laplacian_1d(n, shift=0.8)
        res1 = gcrodr(a1, rng.standard_normal(n), options=_opts())
        rec = res1.info["recycle"]
        res2 = gcrodr(a2, rng.standard_normal(n), options=_opts(),
                      recycle=rec, same_system=False)
        rec2 = res2.info["recycle"]
        assert res2.converged.all()
        # invariant must hold for the *new* operator
        au = a2 @ rec2.u
        assert np.linalg.norm(au - rec2.c) / np.linalg.norm(au) < 1e-7

    def test_degenerate_recycled_space_survives(self, rng):
        """A rank-deficient U must be trimmed, not crash the solve."""
        n = 150
        a = convection_diffusion_1d(n)
        u = rng.standard_normal((n, 4))
        u[:, 3] = u[:, 0]          # dependent column
        c, _ = np.linalg.qr(a @ u)
        rec = RecycledSubspace(u, c, op_tag=None)
        res = gcrodr(a, rng.standard_normal(n), options=_opts(recycle=4),
                     recycle=rec, same_system=False)
        assert res.converged.all()


class TestBlockGcrodr:
    def test_block_multi_rhs(self, rng):
        a = laplacian_2d(16)
        n = a.shape[0]
        b = rng.standard_normal((n, 4))
        res = gcrodr(a, b, options=_opts(krylov_method="bgcrodr"))
        assert res.converged.all()
        assert res.method == "bgcrodr"
        assert np.all(relative_residuals(a, res.x, b) < 1e-7)

    def test_block_recycling_sequence(self, rng):
        a = laplacian_2d(14)
        n = a.shape[0]
        rec = None
        its = []
        for _ in range(3):
            b = rng.standard_normal((n, 4))
            res = gcrodr(a, b, options=_opts(krylov_method="bgcrodr"),
                         recycle=rec, same_system=rec is not None)
            rec = res.info["recycle"]
            its.append(res.iterations)
            assert res.converged.all()
        assert its[1] <= its[0]

    def test_recycle_dimension_independent_of_p(self, rng):
        """U_k is k *vectors*, however wide the RHS block (paper §III-A)."""
        a = laplacian_2d(12)
        n = a.shape[0]
        b = rng.standard_normal((n, 5))
        res = gcrodr(a, b, options=_opts(krylov_method="bgcrodr", recycle=6))
        rec = res.info["recycle"]
        assert rec.k <= 6

    def test_block_breakdown_in_sequence(self, rng):
        a = laplacian_1d(120, shift=0.3)
        v = rng.standard_normal(120)
        b = np.column_stack([v, 3 * v])
        res = gcrodr(a, b, options=_opts(krylov_method="bgcrodr", recycle=4))
        assert res.converged.all()


class TestFlexibleGcrodr:
    def _variable_prec(self, a):
        d = a.diagonal()
        calls = [0]
        def apply(x):
            calls[0] += 1
            return x / (d[:, None] * (1.0 + 0.1 * np.sin(calls[0])))
        return FunctionPreconditioner(apply, is_variable=True)

    def test_fgcrodr_with_variable_preconditioner(self, rng):
        a = laplacian_1d(300)
        m = self._variable_prec(a)
        res = gcrodr(a, rng.standard_normal(300), m,
                     options=_opts(variant="flexible", max_it=4000))
        assert res.converged.all()
        assert res.method == "fgcrodr"

    def test_variable_prec_rejected_without_flexible(self):
        a = laplacian_1d(50, shift=1.0)
        m = FunctionPreconditioner(lambda x: x, is_variable=True)
        with pytest.raises(ValueError, match="flexible"):
            gcrodr(a, np.ones(50), m, options=_opts(variant="right"))

    def test_flexible_recycling_sequence(self, rng):
        a = laplacian_1d(400)
        m = self._variable_prec(a)
        rec = None
        its = []
        for _ in range(3):
            res = gcrodr(a, rng.standard_normal(400), m,
                         options=_opts(variant="flexible", max_it=5000),
                         recycle=rec, same_system=rec is not None)
            rec = res.info["recycle"]
            its.append(res.iterations)
            assert res.converged.all()
        assert its[1] <= its[0]

    def test_right_equals_flexible_for_constant_prec(self, rng):
        """For constant M, right preconditioning == flexible storage."""
        a = convection_diffusion_1d(150)
        dinv = 1.0 / a.diagonal()
        m = FunctionPreconditioner(lambda x: dinv[:, None] * x)
        b = rng.standard_normal(150)
        r1 = gcrodr(a, b, m, options=_opts(variant="right"))
        r2 = gcrodr(a, b, m, options=_opts(variant="flexible"))
        assert r1.iterations == r2.iterations
        assert np.allclose(r1.x, r2.x, atol=1e-8)


class TestReductionAccounting:
    def test_cycle_reduction_structure(self, rng):
        """Per §III-D: once a subspace is recycled, each inner iteration
        costs one extra reduction (the C_k projection)."""
        n = 500
        a = laplacian_1d(n)
        b1 = rng.standard_normal(n)
        res1 = gcrodr(a, b1, options=_opts())
        rec = res1.info["recycle"]
        with ledger.install() as led_r:
            res_r = gcrodr(a, rng.standard_normal(n), options=_opts(),
                           recycle=rec, same_system=True)
        with ledger.install() as led_g:
            res_g = gmres(a, rng.standard_normal(n),
                          options=Options(gmres_restart=30, tol=1e-8,
                                          max_it=6000))
        per_it_r = led_r.reductions / max(res_r.iterations, 1)
        per_it_g = led_g.reductions / max(res_g.iterations, 1)
        # GCRO-DR pays ~1 extra reduction per iteration, not more
        assert per_it_r <= per_it_g + 1.5

    def test_solver_wrapper_tracks_sequence(self, rng):
        a = laplacian_1d(300)
        s = Solver(options=_opts())
        for _ in range(3):
            res = s.solve(a, rng.standard_normal(300))
            assert res.converged.all()
        assert s.results[0].info["same_system"] in (False, None)
        assert s.results[1].info["same_system"]
        assert s.total_iterations == sum(r.iterations for r in s.results)


class TestInvariantChecking:
    def test_check_invariants_passes_on_healthy_solve(self, rng):
        a = laplacian_1d(300)
        res = gcrodr(a, rng.standard_normal(300),
                     options=_opts(check_invariants=True, max_it=4000))
        assert res.converged.all()

    def test_check_invariants_detects_corruption(self, rng):
        from repro.krylov.gcrodr import check_recycle_invariants
        from repro.krylov.base import as_operator
        a = as_operator(laplacian_1d(100, shift=0.5))
        u = rng.standard_normal((100, 3))
        c = rng.standard_normal((100, 3))   # not orthonormal, not A U
        with pytest.raises(FloatingPointError):
            check_recycle_invariants(a.matmat, u, c)

    def test_check_invariants_empty_space_noop(self):
        from repro.krylov.gcrodr import check_recycle_invariants
        check_recycle_invariants(lambda x: x, None, None)
