"""Tests for distributed block vectors and distributed QR kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distla.distqr import (distributed_cgs_qr, distributed_cholqr,
                                 distributed_tsqr)
from repro.distla.distvec import DistributedBlockVector
from repro.simmpi.grid import VirtualGrid
from repro.util import ledger
from conftest import make_rng


def _dist(rng, n=60, p=3, nranks=4, complex_=False):
    x = rng.standard_normal((n, p))
    if complex_:
        x = x + 1j * rng.standard_normal((n, p))
    grid = VirtualGrid(n, nranks)
    return x, DistributedBlockVector.from_global(grid, x)


class TestDistributedBlockVector:
    def test_scatter_gather_roundtrip(self, rng):
        x, dv = _dist(rng)
        assert np.allclose(dv.to_global(), x)
        assert dv.shape == x.shape

    def test_dot_matches_serial(self, rng):
        x, dx = _dist(rng)
        y, dy = _dist(rng)
        with ledger.install() as led:
            d = dx.dot(dy)
        assert np.allclose(d, x.conj().T @ y)
        assert led.reductions == 1

    def test_col_dots_and_norms(self, rng):
        x, dx = _dist(rng, complex_=True)
        y, dy = _dist(rng, complex_=True)
        assert np.allclose(dx.col_dots(dy),
                           np.einsum("ij,ij->j", x.conj(), y))
        assert np.allclose(dx.norms(), np.linalg.norm(x, axis=0))

    def test_axpy_scale_combine_local(self, rng):
        x, dx = _dist(rng)
        y, dy = _dist(rng)
        c = rng.standard_normal((3, 2))
        with ledger.install() as led:
            z = dx.axpy(2.5, dy)
            w = dx.scale(-1.0)
            v = dx.combine(c)
        assert led.reductions == 0          # all communication-free
        assert np.allclose(z.to_global(), x + 2.5 * y)
        assert np.allclose(w.to_global(), -x)
        assert np.allclose(v.to_global(), x @ c)

    def test_copy_independent(self, rng):
        _, dx = _dist(rng)
        c = dx.copy()
        c.locals[0][:] = 0
        assert not np.allclose(dx.locals[0], 0)

    def test_mismatched_grids_rejected(self, rng):
        _, dx = _dist(rng, nranks=2)
        _, dy = _dist(rng, nranks=3)
        with pytest.raises(ValueError, match="grids"):
            dx.dot(dy)

    def test_local_shape_validated(self, rng):
        grid = VirtualGrid(10, 2)
        with pytest.raises(ValueError):
            DistributedBlockVector(grid, [np.ones((5, 1)), np.ones((4, 1))])

    def test_global_size_validated(self, rng):
        grid = VirtualGrid(10, 2)
        with pytest.raises(ValueError):
            DistributedBlockVector.from_global(grid, np.ones(11))


class TestDistributedQR:
    @pytest.mark.parametrize("fn,n_reds", [
        (distributed_cholqr, 1),
        (distributed_tsqr, 1),
        (distributed_cgs_qr, 2 * 3 - 1),
    ])
    def test_factorization_and_reduction_count(self, rng, fn, n_reds):
        x, dx = _dist(rng, n=80, p=3)
        with ledger.install() as led:
            q, r = fn(dx)
        qg = q.to_global()
        assert np.allclose(qg @ r, x, atol=1e-9)
        assert np.allclose(qg.conj().T @ qg, np.eye(3), atol=1e-9)
        assert led.reductions == n_reds

    @pytest.mark.parametrize("fn", [distributed_cholqr, distributed_tsqr])
    def test_complex(self, rng, fn):
        x, dx = _dist(rng, complex_=True)
        q, r = fn(dx)
        assert np.allclose(q.to_global() @ r, x, atol=1e-9)

    def test_matches_serial_cholqr(self, rng):
        from repro.la.orthogonalization import cholqr
        x, dx = _dist(rng, n=100, p=4)
        qd, rd = distributed_cholqr(dx)
        qs, rs = cholqr(x)
        assert np.allclose(np.abs(rd), np.abs(rs), atol=1e-10)
        assert np.allclose(np.abs(qd.to_global()), np.abs(qs), atol=1e-9)

    def test_tsqr_stable_on_ill_conditioned(self, rng):
        x = rng.standard_normal((120, 4))
        u, _, vt = np.linalg.svd(x, full_matrices=False)
        x = (u * np.logspace(0, -7, 4)) @ vt
        dx = DistributedBlockVector.from_global(VirtualGrid(120, 4), x)
        q, r = distributed_tsqr(dx)
        qg = q.to_global()
        assert np.linalg.norm(qg @ r - x) < 1e-9 * np.linalg.norm(x)

    def test_single_rank_degenerates(self, rng):
        x, _ = _dist(rng)
        dx = DistributedBlockVector.from_global(VirtualGrid(60, 1), x)
        q, r = distributed_tsqr(dx)
        assert np.allclose(q.to_global() @ r, x, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(12, 80), p=st.integers(1, 4),
       nranks=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
def test_property_distributed_cholqr(n, p, nranks, seed):
    rng = make_rng(seed)
    nranks = min(nranks, n // max(p, 1), n)
    nranks = max(nranks, 1)
    x = rng.standard_normal((n, p))
    dx = DistributedBlockVector.from_global(VirtualGrid(n, nranks), x)
    q, r = distributed_cholqr(dx)
    assert np.allclose(q.to_global() @ r, x,
                       atol=1e-8 * max(np.linalg.norm(x), 1.0))
