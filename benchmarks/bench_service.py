"""Benchmark of the solve service: coalescing + setup caching vs sequential.

Submits ``n_requests`` independent Poisson solves (distinct random RHS,
one shared operator) two ways and compares the *amortized per-request
cost*:

* **sequential** — one :func:`repro.solve` call per request, each
  rebuilding the Schwarz-style LU setup from scratch (what a caller
  without the service does);
* **coalesced** — the same requests through a
  :class:`~repro.service.SolveService` with an LRU
  :class:`~repro.service.cache.SetupCache`: RHS sharing the operator
  fingerprint are batched into ``n x p`` block solves (``service_pmax``
  columns) and setup is charged once, on the first batch.

Cost is deterministic: ledgers record reductions / messages / flops, and
:func:`repro.perfmodel.estimate.modeled_time` converts them to modeled
seconds on the reference machine at ``nranks`` — wall time is reported
for information only.  The per-request attribution is taken from
``result.info["service"]["cost"]`` (sum over requests equals the batch
totals exactly; see ``tests/test_service.py``).

Every solve runs with ``verify="cheap"`` (the PR-2 invariant checker) and
the script asserts zero violations on the service path, plus equal final
residual quality between the two strategies.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_service.py --quick --check

``--check`` exits nonzero unless the coalesced amortized cost is at least
``GATE_SPEEDUP`` times cheaper than sequential (the repo's perf gate for
this subsystem).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro import Options, solve
from repro.perfmodel.estimate import modeled_time
from repro.service import SolveService
from repro.util import ledger
from repro.util.ledger import CostLedger

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_service.json"

#: the acceptance gate: coalesced amortized modeled cost must beat
#: sequential by at least this factor at the full configuration
GATE_SPEEDUP = 2.0

FULL = {"grid": 40, "n_requests": 16, "pmax": 16, "nranks": 64,
        "tol": 1e-8}
QUICK = {"grid": 24, "n_requests": 16, "pmax": 16, "nranks": 64,
         "tol": 1e-8}


def laplacian_2d(nx: int) -> sp.csr_matrix:
    e = np.ones(nx)
    t = sp.diags([-e[:-1], 2.0 * e, -e[:-1]], [-1, 0, 1])
    eye = sp.eye(nx)
    return (sp.kron(eye, t) + sp.kron(t, eye)).tocsr()


def _solver_options(cfg: dict, **extra) -> Options:
    return Options(krylov_method="gmres", tol=cfg["tol"], gmres_restart=40,
                   verify="cheap", **extra)


def _counts_json(led: CostLedger) -> dict:
    """The ledger's exactly-comparable counts, as JSON-friendly scalars."""
    return {
        "reductions": int(led.reductions),
        "reduction_bytes": int(led.reduction_bytes),
        "p2p_messages": int(led.p2p_messages),
        "p2p_bytes": int(led.p2p_bytes),
        "flops": {str(getattr(k, "name", k)).lower(): float(v)
                  for k, v in led.flops.items()},
    }


def _residuals(a, xs, rhs) -> list[float]:
    return [float(np.linalg.norm(b - a @ x) / np.linalg.norm(b))
            for x, b in zip(xs, rhs)]


def run_sequential(cfg: dict, a, rhs) -> dict:
    """One solve per request, setup rebuilt every time (no cache)."""
    from repro.direct.solver import SparseLU

    opts = _solver_options(cfg)
    t0 = time.perf_counter()
    xs, per_request, setup_costs = [], [], []
    total = CostLedger()
    for b in rhs:
        led = CostLedger()
        with ledger.install(led):
            lu = SparseLU(a)             # rebuilt per request
            res = solve(a, b, lu.as_preconditioner(), options=opts)
        assert res.converged.all()
        assert res.info["verify"]["violations"] == []
        xs.append(np.asarray(res.x))
        setup_costs.append(lu.setup_cost)
        per_request.append(led)
        total.merge(led)
    seconds = time.perf_counter() - t0
    modeled = [modeled_time(led, cfg["nranks"]).total for led in per_request]
    return {
        "strategy": "sequential",
        "wall_seconds": seconds,
        "residuals": _residuals(a, xs, rhs),
        "modeled_cost_per_request": modeled,
        "amortized_modeled_cost": float(np.mean(modeled)),
        "setup_builds": len(setup_costs),
        "setup_modeled_cost": float(sum(
            modeled_time(c, cfg["nranks"]).total for c in setup_costs)),
        "total_counts": _counts_json(total),
        "xs": xs,
    }


def run_coalesced(cfg: dict, a, rhs) -> dict:
    """All requests through the service: block solves + cached setup."""
    opts = _solver_options(cfg, service_pmax=cfg["pmax"],
                           service_flush="queue_drained")
    svc = SolveService(options=opts, preconditioner="lu")
    t0 = time.perf_counter()
    with ledger.install() as ambient:
        reqs = [svc.submit(a, b) for b in rhs]
        svc.flush()
    seconds = time.perf_counter() - t0
    xs, modeled = [], []
    for req in reqs:
        res = req.result
        assert res.converged.all()
        assert res.info["verify"]["violations"] == []
        xs.append(np.asarray(res.x))
        modeled.append(
            modeled_time(res.info["service"]["cost"], cfg["nranks"],
                         block_width=res.info["service"]["batch_width"]).total)
    # attribution conservation: per-request shares sum to the ambient total
    attributed = CostLedger()
    for req in reqs:
        attributed.merge(req.result.info["service"]["cost"])
    assert attributed.counts() == ambient.counts(), \
        "per-request attribution does not conserve the batch ledger"
    # repeat traffic against the same operator: every batch must hit the
    # cached factorization — setup stays charged exactly once overall
    repeat = [svc.submit(a, b) for b in rhs]
    svc.flush()
    repeat_modeled = [
        modeled_time(r.result.info["service"]["cost"], cfg["nranks"],
                     block_width=r.result.info["service"]["batch_width"]).total
        for r in repeat]
    stats = svc.cache.stats()
    setup_hits = [rep["setup_cache_hit"] for rep in svc.batches]
    assert setup_hits.count(False) == 1, \
        f"setup should build exactly once, got {setup_hits}"
    assert all(setup_hits[len(setup_hits) // 2:]), \
        "repeat batches must hit the setup cache"
    assert stats["total_hits"] > 0
    return {
        "strategy": "coalesced",
        "wall_seconds": seconds,
        "residuals": _residuals(a, xs, rhs),
        "modeled_cost_per_request": modeled,
        "amortized_modeled_cost": float(np.mean(modeled)),
        "batches": [{k: rep[k] for k in
                     ("batch", "requests", "width", "method", "iterations",
                      "setup_cache_hit")} for rep in svc.batches],
        "setup_builds": setup_hits.count(False),
        "repeat_amortized_modeled_cost": float(np.mean(repeat_modeled)),
        "cache": {k: stats[k] for k in
                  ("entries", "total_hits", "total_misses", "evictions")},
        "total_counts": _counts_json(ambient),
        "xs": xs,
    }


def run(cfg: dict, out_path: Path | None) -> dict:
    a = laplacian_2d(cfg["grid"])
    rng = np.random.default_rng(20260705)
    rhs = [rng.standard_normal(a.shape[0]) for _ in range(cfg["n_requests"])]
    seq = run_sequential(cfg, a, rhs)
    coa = run_coalesced(cfg, a, rhs)
    # equal final residual quality: both strategies meet the same tolerance
    worst = {s["strategy"]: max(s["residuals"]) for s in (seq, coa)}
    assert all(r < cfg["tol"] * 10 for r in worst.values()), worst
    for s in (seq, coa):
        s.pop("xs")
    speedup = seq["amortized_modeled_cost"] / coa["amortized_modeled_cost"]
    report = {
        "description": "amortized per-request cost: coalesced block solves "
                       "with cached setup vs one-at-a-time solves; costs "
                       "are modeled seconds from ledger counts "
                       f"(nranks={cfg['nranks']}), wall time informational",
        "problem": {"matrix": f"2-D Laplacian {cfg['grid']}x{cfg['grid']}",
                    "n": cfg["grid"] ** 2, "n_requests": cfg["n_requests"],
                    "pmax": cfg["pmax"], "tol": cfg["tol"],
                    "nranks_model": cfg["nranks"], "verify": "cheap"},
        "sequential": seq,
        "coalesced": coa,
        "amortized_speedup": speedup,
        "gate": {"required_speedup": GATE_SPEEDUP,
                 "passed": speedup >= GATE_SPEEDUP},
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def print_report(report: dict) -> None:
    prob = report["problem"]
    print(f"# {prob['matrix']}, {prob['n_requests']} requests, "
          f"pmax={prob['pmax']}, modeled at nranks={prob['nranks_model']}")
    for strategy in ("sequential", "coalesced"):
        s = report[strategy]
        print(f"{strategy:>11}: amortized {s['amortized_modeled_cost']:.3e} "
              f"modeled s/request, setup builds {s['setup_builds']}, "
              f"worst residual {max(s['residuals']):.2e}, "
              f"wall {s['wall_seconds']:.2f}s")
    coa = report["coalesced"]
    print(f"   batches: {[(b['width'], b['setup_cache_hit']) for b in coa['batches']]}")
    print(f"   cache:   {coa['cache']}")
    print(f"   repeat round (warm cache): "
          f"{coa['repeat_amortized_modeled_cost']:.3e} modeled s/request")
    print(f"   amortized speedup: {report['amortized_speedup']:.2f}x "
          f"(gate {report['gate']['required_speedup']:.1f}x: "
          f"{'PASS' if report['gate']['passed'] else 'FAIL'})")


def test_service_amortized_speedup():
    """Pytest entry: the quick gate, runnable as part of the bench suite."""
    report = run(QUICK, out_path=None)
    assert report["gate"]["passed"], report["amortized_speedup"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller operator (CI-sized)")
    ap.add_argument("--check", action="store_true",
                    help=f"exit 1 unless amortized speedup >= {GATE_SPEEDUP}x")
    ap.add_argument("--out", type=Path, default=None,
                    help=f"JSON output path (default {RESULTS_PATH}; "
                         "--quick runs do not write unless --out is given)")
    args = ap.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    out_path = args.out if args.out is not None else (
        None if args.quick else RESULTS_PATH)
    report = run(cfg, out_path)
    print_report(report)
    if out_path is not None:
        print(f"\nwrote {out_path}")
    if args.check and not report["gate"]["passed"]:
        print(f"PERF GATE FAILED: amortized speedup "
              f"{report['amortized_speedup']:.2f}x < {GATE_SPEEDUP}x")
        return 1
    if args.check:
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
