"""Macro-benchmark: transient PDE sequences through the reuse ladder.

Drives a four-tenant *ensemble* of adaptive-``dt`` heat sequences
(:class:`repro.problems.transient.HeatSequence`; identical operator
schedule, phase-shifted sources, operator fingerprint changes every
``epoch_length`` steps) end to end through the solve service, one rung
of the reuse ladder at a time:

* **no_reuse** — the oracle: every tenant-step is an independent cold
  solve through a fresh service + fresh setup cache, so each pays a
  width-1 batch and a full recycle harvest from scratch.  This is what
  ``tenants`` independent single-tenant runs would cost.
* **cache_only** — one shared service: repeat operators hit the setup
  cache and the ensemble's step-``t`` solves coalesce into one
  width-``tenants`` batch (the batch's reductions are shared, so each
  tenant's ledger share shrinks by the width), but recycle artifacts
  are never reused — every step harvests fresh.
* **cache_recycle** — the end-to-end engine: coalescing plus
  setup-cache hits, the same-system fast path on unchanged
  fingerprints, and recycle-space carry-over across epoch boundaries
  via ``SetupCache.adopt_from`` (adopted pairs are repaired, never
  trusted).  **The headline gate compares this rung to the oracle.**
* **cache_recycle_shifted** — the ``dt`` ramp re-expressed as a
  shifted family ``theta A + (1/dt) I`` per step against the constant
  base ``theta A``: the fingerprint never changes and family recycling
  carries over with no adoption repair at all.  Family requests key on
  their RHS digest, so this rung cannot coalesce across tenants — it
  is reported to show exactly that trade-off (a sequence feeds the
  family engine one shift per solve, so the k-shifts-for-the-price-of-
  one amortization is structurally absent).

Every number is *modeled* seconds — ledger counts through the perfmodel
at ``nranks=64``, where reduction latency dominates — so the whole
report is byte-deterministic.  The headline is the **end-to-end reuse
multiple**: modeled time of the no-reuse oracle over the
``cache_recycle`` engine rung, ledger-verified (per-step cost shares
merge bit-for-bit back to the batch ledger totals).

Also measured: a two-tenant sync-vs-async parity leg (identical
iteration counts through both front ends while the async scheduler
coalesces across tenants), and a small time-harmonic Maxwell frequency
ramp (operator+adoption vs mass-matrix shifted family).

Gates (``--check``):

* end-to-end reuse multiple >= ``GATE_REUSE_MULTIPLE`` (3x);
* every step of every rung converged;
* every rung ledger-verified;
* the engine rung actually exercised carry-over (>= 1 adoption repair)
  and the fast path (>= half its steps on unchanged fingerprints);
* async parity: same per-step iteration counts as the sync front end;
* the shifted rung must not pay a single adoption repair.

Usage::

    PYTHONPATH=src python benchmarks/bench_transient.py           # 200 steps
    PYTHONPATH=src python benchmarks/bench_transient.py --quick   # CI-sized
    PYTHONPATH=src python benchmarks/bench_transient.py --quick --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro.problems.poisson import PAPER_NUS
from repro.problems.transient import HeatSequence, MaxwellRampSequence
from repro.service.sequence import SequenceDriver
from repro.service.service import SolveService
from repro.service.scheduler import AsyncSolveService
from repro.trace.export import counts_signature
from repro.util.ledger import CostLedger
from repro.util.options import Options

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_transient.json"

GATE_REUSE_MULTIPLE = 3.0  #: no-reuse oracle over the cache_recycle rung
NRANKS = 64


@dataclasses.dataclass(frozen=True)
class TransientConfig:
    """One deterministic transient scenario (no RNG anywhere)."""

    nx: int = 20             #: heat grid (n = nx^2 unknowns)
    n_steps: int = 200       #: heat time steps (one solve each)
    dt0: float = 5e-4        #: initial time step
    epoch_length: int = 25   #: steps per dt epoch (fp changes at each)
    growth: float = 1.25     #: per-epoch dt growth
    theta: float = 1.0       #: 1.0 = backward Euler
    tenants: int = 4         #: ensemble width (phase-shifted sources)
    m: int = 30              #: GMRES restart
    k: int = 10              #: recycle dimension
    tol: float = 1e-8
    parity_steps: int = 20   #: two-tenant sync/async parity leg
    maxwell_n: int = 3       #: Maxwell mesh resolution
    maxwell_steps: int = 6
    maxwell_epoch: int = 3
    nranks: int = NRANKS

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


FULL = TransientConfig()
QUICK = dataclasses.replace(FULL, nx=10, n_steps=60, epoch_length=15,
                            parity_steps=10)


def _heat_options(cfg: TransientConfig, **over) -> Options:
    base = dict(krylov_method="gcrodr", gmres_restart=cfg.m, recycle=cfg.k,
                orthogonalization="cgs2_1r", tol=cfg.tol, max_it=20000,
                recycle_same_system=False, service_flush="explicit")
    base.update(over)
    return Options(**base)


def _phase_source(phase: int, dt0: float):
    """The paper's nu-family pulse, phase-shifted per ensemble member.

    Identical operators across tenants (they coalesce into one batch per
    wave); distinct right-hand sides (the block solve is not degenerate).
    """

    def source(points: np.ndarray, t: float) -> np.ndarray:
        nu = PAPER_NUS[(int(round(t / dt0)) + phase) % len(PAPER_NUS)]
        x, y = points[:, 0], points[:, 1]
        return (np.exp(-(1 - x) ** 2 / nu) * np.exp(-(1 - y) ** 2 / nu)) / nu

    return source


def _heat_sequence(cfg: TransientConfig, phase: int = 0, *,
                   n_steps: int | None = None) -> HeatSequence:
    return HeatSequence(nx=cfg.nx, n_steps=n_steps or cfg.n_steps,
                        dt0=cfg.dt0, epoch_length=cfg.epoch_length,
                        growth=cfg.growth, theta=cfg.theta,
                        source=_phase_source(phase, cfg.dt0))


class _NoRecycleReuseService(SolveService):
    """cache_only rung: setup cache + coalescing on, recycle reuse off.

    Every recycle probe misses, so each solve harvests its space from
    scratch — isolating coalescing + setup cache from recycling.
    """

    def _cached_recycle(self, fp, okey, p):
        return None, False


def _ledger_verified(records: list[dict], batches: list[dict]) -> bool:
    """Per-step cost shares must merge bit-for-bit to the batch totals."""
    shares = CostLedger()
    for rec in records:
        shares.merge(rec["cost"])
    totals = CostLedger()
    for batch in batches:
        totals.merge(batch["ledger"])
    return counts_signature(shares) == counts_signature(totals)


def _rung_report(records: list[dict], batches: list[dict],
                 simulated: float) -> dict:
    modeled = sum(r["modeled_seconds"] for r in records)
    return {
        "steps": len(records),
        "iterations": sum(r["iterations"] for r in records),
        "all_converged": all(r["converged"] for r in records),
        "modeled_seconds": modeled,
        "simulated_seconds": simulated,
        "time_per_simulated_second": modeled / simulated,
        "mean_batch_width": (sum(r["batch_width"] for r in records)
                             / len(records)),
        "setup_cache_hits": sum(1 for r in records
                                if r.get("setup_cache_hit")),
        "recycle_fast_path_steps": sum(1 for r in records
                                       if r.get("recycle_cache_hit")),
        "adoptions": sum(1 for r in records if r.get("recycle_adopted")),
        "adoption_repairs": sum(1 for r in records
                                if r.get("adopted_kinds")),
        "ledger_verified": _ledger_verified(records, batches),
    }


def _run_driver_rung(cfg: TransientConfig, *, service_cls=SolveService,
                     shifted: bool = False, adopt: bool = True) -> dict:
    opts = _heat_options(
        cfg, sequence_mode="shifted" if shifted else "operator",
        sequence_adopt=adopt)
    svc = service_cls(options=opts)
    driver = SequenceDriver(svc, nranks=cfg.nranks)
    for phase in range(cfg.tenants):
        driver.add(_heat_sequence(cfg, phase), options=opts,
                   tenant=f"t{phase}")
    records = driver.run()
    simulated = sum(h.sequence.total_time for h in driver.handles)
    return _rung_report(records, svc.batches, simulated)


def _run_no_reuse_rung(cfg: TransientConfig) -> dict:
    """The oracle: every tenant-step is its own fresh service + cache."""
    opts = _heat_options(cfg)
    seqs = [_heat_sequence(cfg, phase) for phase in range(cfg.tenants)]
    fields = [seq.u0() for seq in seqs]
    records: list[dict] = []
    batches: list[dict] = []
    for wave in range(cfg.n_steps):
        for i, seq in enumerate(seqs):
            svc = SolveService(options=opts)
            driver = SequenceDriver(svc, nranks=cfg.nranks)
            # one-step sub-sequence sharing the parent's state: reuse
            # the driver's submit/complete plumbing so cost attribution
            # and span shapes are identical to the reusing rungs
            handle = driver.add(_OneStep(seq, seq.steps()[wave], fields[i]),
                                options=opts, tenant=f"t{i}")
            driver.run()
            fields[i] = handle.u
            records.append(handle.records[0])
            batches.extend(svc.batches)
    simulated = sum(seq.total_time for seq in seqs)
    return _rung_report(records, batches, simulated)


class _OneStep:
    """A single step of a parent sequence, as a sequence of its own."""

    depends_on_previous = True

    def __init__(self, parent: HeatSequence, step, u_prev):
        self._parent = parent
        self._step = dataclasses.replace(step, index=0)
        self._orig = step
        self._u = u_prev
        self.base = parent.base
        self.mass = parent.mass
        self.n_epochs = 1
        self.total_time = step.dt

    def steps(self):
        return [self._step]

    def u0(self):
        return self._u

    def operator(self, step):
        return self._parent.operator(self._orig)

    def rhs(self, step, u_prev):
        return self._parent.rhs(self._orig, u_prev)


def _run_parity(cfg: TransientConfig) -> dict:
    """Two tenants, sync vs async: same solves, same iteration counts."""
    out = {}
    for label, service_cls in (("sync", SolveService),
                               ("async", AsyncSolveService)):
        opts = _heat_options(cfg)
        svc = service_cls(options=opts)
        driver = SequenceDriver(svc, nranks=cfg.nranks)
        for phase, tenant in enumerate(("t0", "t1")):
            driver.add(_heat_sequence(cfg, phase,
                                      n_steps=cfg.parity_steps),
                       options=opts, tenant=tenant)
        records = driver.run()
        out[label] = {
            "steps": len(records),
            "iterations_per_step": [r["iterations"] for r in records],
            "all_converged": all(r["converged"] for r in records),
            "coalesced_batches": len(svc.batches),
            "mean_batch_width": (sum(b["width"] for b in svc.batches)
                                 / len(svc.batches)),
            "modeled_seconds": sum(r["modeled_seconds"] for r in records),
        }
        if label == "async":
            out[label]["makespan"] = svc.makespan
    out["iterations_identical"] = (out["sync"]["iterations_per_step"]
                                   == out["async"]["iterations_per_step"])
    return out


def _run_maxwell(cfg: TransientConfig) -> dict:
    """Frequency ramp: operator mode with adoption vs shifted family."""
    out = {}
    for label, over in (("operator", {}),
                        ("shifted", {"sequence_mode": "shifted"})):
        opts = _heat_options(cfg, gmres_restart=60, recycle=10,
                             tol=1e-7, **over)
        svc = SolveService(options=opts)
        driver = SequenceDriver(svc, nranks=cfg.nranks)
        seq = MaxwellRampSequence(n=cfg.maxwell_n,
                                  n_steps=cfg.maxwell_steps,
                                  omega0=6.0,
                                  epoch_length=cfg.maxwell_epoch,
                                  omega_growth=1.1, n_antennas=4)
        driver.add(seq, options=opts, tenant="mx")
        records = driver.run()
        out[label] = _rung_report(records, svc.batches, seq.total_time)
    return out


def run(cfg: TransientConfig, out_path: Path | None) -> dict:
    wall0 = time.perf_counter()
    ladder = {
        "no_reuse": _run_no_reuse_rung(cfg),
        "cache_only": _run_driver_rung(cfg,
                                       service_cls=_NoRecycleReuseService),
        "cache_recycle": _run_driver_rung(cfg),
        "cache_recycle_shifted": _run_driver_rung(cfg, shifted=True),
    }
    parity = _run_parity(cfg)
    maxwell = _run_maxwell(cfg)
    wall = time.perf_counter() - wall0

    engine = ladder["cache_recycle"]
    reuse_multiple = (ladder["no_reuse"]["modeled_seconds"]
                      / engine["modeled_seconds"])
    reuse_rungs = ("cache_only", "cache_recycle", "cache_recycle_shifted")
    best = min(reuse_rungs, key=lambda r: ladder[r]["modeled_seconds"])
    all_converged = (all(r["all_converged"] for r in ladder.values())
                     and parity["sync"]["all_converged"]
                     and parity["async"]["all_converged"]
                     and all(m["all_converged"] for m in maxwell.values()))
    ledger_verified = all(r["ledger_verified"] for r in ladder.values())
    engine_exercised = (engine["adoption_repairs"] >= 1
                        and engine["recycle_fast_path_steps"]
                        >= engine["steps"] // 2)
    gate = {
        "required_reuse_multiple": GATE_REUSE_MULTIPLE,
        "reuse_multiple": reuse_multiple,
        "engine_rung": "cache_recycle",
        "best_rung": best,
        "all_converged": all_converged,
        "ledger_verified": ledger_verified,
        "engine_exercised_carry_over_and_fast_path": engine_exercised,
        "parity_iterations_identical": parity["iterations_identical"],
        "shifted_zero_adoption_repairs":
            ladder["cache_recycle_shifted"]["adoption_repairs"] == 0,
        "passed": (reuse_multiple >= GATE_REUSE_MULTIPLE
                   and all_converged
                   and ledger_verified
                   and engine_exercised
                   and parity["iterations_identical"]
                   and ladder["cache_recycle_shifted"]["adoption_repairs"]
                   == 0),
    }
    report = {
        "description": "four-tenant ensemble of adaptive-dt heat "
                       "sequences (fp changes every epoch) through the "
                       "reuse ladder {no_reuse, cache_only, "
                       "cache_recycle, cache_recycle_shifted}; modeled "
                       "seconds per simulated second from ledger counts "
                       f"at nranks={cfg.nranks}",
        "wall_seconds_informational": wall,
        "config": cfg.as_dict(),
        "heat_ladder": ladder,
        "reuse_multiple": reuse_multiple,
        "parity": parity,
        "maxwell_ramp": maxwell,
        "gate": gate,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        payload = dict(report)
        payload.pop("wall_seconds_informational")  # keep the file diffable
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
    return report


def print_report(report: dict) -> None:
    cfg = report["config"]
    print(f"# heat {cfg['nx']}x{cfg['nx']} grid, {cfg['tenants']} tenants, "
          f"{cfg['n_steps']} steps, dt epoch every {cfg['epoch_length']} "
          f"(x{cfg['growth']}), GCRO-DR({cfg['m']},{cfg['k']}), "
          f"nranks={cfg['nranks']}")
    for rung, r in report["heat_ladder"].items():
        print(f"{rung:>22}: {r['time_per_simulated_second']:>10.4g} "
              f"modeled s/sim-s  ({r['iterations']:>5} its, "
              f"width {r['mean_batch_width']:.1f}, "
              f"{r['recycle_fast_path_steps']:>3} fast-path, "
              f"{r['adoptions']} adoptions, "
              f"conv {r['all_converged']}, "
              f"ledger {'OK' if r['ledger_verified'] else 'BAD'})")
    par = report["parity"]
    print(f"parity: sync {par['sync']['modeled_seconds']:.4g}s vs async "
          f"{par['async']['modeled_seconds']:.4g}s "
          f"(mean width {par['async']['mean_batch_width']:.1f}, "
          f"iterations identical: {par['iterations_identical']})")
    for label, m in report["maxwell_ramp"].items():
        print(f"maxwell {label:>9}: {m['modeled_seconds']:.4g}s modeled, "
              f"{m['iterations']} its, conv {m['all_converged']}")
    g = report["gate"]
    print(f"reuse multiple: {g['reuse_multiple']:.2f}x over no-reuse "
          f"(gate {g['required_reuse_multiple']:.1f}x on "
          f"{g['engine_rung']}; best rung {g['best_rung']}) | "
          f"{'PASS' if g['passed'] else 'FAIL'}")


def test_transient_gates():
    """Pytest entry: the quick gate, runnable as part of the bench suite."""
    report = run(QUICK, out_path=None)
    assert report["gate"]["passed"], report["gate"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="60-step CI-sized sequence instead of 200 steps")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless all gates pass")
    ap.add_argument("--out", type=Path, default=None,
                    help=f"JSON output path (default {RESULTS_PATH}; "
                         "--quick runs do not write unless --out is given)")
    args = ap.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    out_path = args.out if args.out is not None else (
        None if args.quick else RESULTS_PATH)
    report = run(cfg, out_path)
    print_report(report)
    if out_path is not None:
        print(f"\nwrote {out_path}")
    if args.check and not report["gate"]["passed"]:
        print("MACRO GATE FAILED:", json.dumps(report["gate"], indent=2))
        return 1
    if args.check:
        print("macro gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
