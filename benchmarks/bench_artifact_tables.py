"""Artifact-description sanity tables (paper appendix E).

The paper's artifact ships two modified PETSc examples and prints, for a
small run "(from laptops to supercomputers)", a table per method:
(system index, iterations, solve seconds).  The expected outputs show
GCRO-DR beating GMRES by ~2x on ex32 (288 -> 147 total iterations) and by
~1.7x on ex56 (409 -> 247):

    PETSc (GMRES)            HPDDM (GCRO-DR)
    1  81 0.005241           1  64 0.005964
    2  65 0.003395           2  28 0.001851
    ...                      ...

This bench reproduces both tables with the Python analogues of ex32
(2-D Poisson, fixed operator, 4 RHSs, same-system recycling) and ex56
(3-D elasticity, 4 varying operators).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Options, Solver, parse_hpddm_args
from repro.precond.simple import SSORPreconditioner
from repro.problems.elasticity import PAPER_INCLUSIONS, elasticity_3d
from repro.problems.poisson import poisson_2d

from common import format_table, write_result

#: the artifact's exact sanity-check flags (appendix E)
EX32_ARGS = ("-hpddm_recycle_same_system -ksp_pc_side right -ksp_rtol 1.0e-6 "
             "-hpddm_recycle 10 -hpddm_krylov_method gcrodr "
             "-hpddm_gmres_restart 30").split()
EX56_ARGS = ("-ne 9 -ksp_pc_side right -ksp_rtol 1.0e-6 "
             "-hpddm_gmres_restart 30 -hpddm_krylov_method gcrodr "
             "-hpddm_recycle 10").split()


def _table_rows(solves):
    rows = [(i + 1, it, round(t, 6)) for i, (it, t) in enumerate(solves)]
    rows.append(("sum", sum(i for i, _ in solves),
                 round(sum(t for _, t in solves), 6)))
    return rows


def _run(systems_and_rhs, m_factory, options):
    s = Solver(options=options)
    out = []
    for a, b in systems_and_rhs:
        t0 = time.perf_counter()
        res = s.solve(a, b, m=m_factory(a))
        assert res.converged.all()
        out.append((res.iterations, time.perf_counter() - t0))
    return out


def test_artifact_ex32(benchmark, rng=np.random.default_rng(1)):
    """ex32: fixed Poisson operator, 4 RHSs, same-system fast path."""
    prob = poisson_2d(48)
    seq = [(prob.a, b) for b in prob.rhs_sequence()]
    ssor = SSORPreconditioner(prob.a)
    benchmark(ssor.apply, prob.rhs_block())

    hpddm = parse_hpddm_args(EX32_ARGS).replace(tol=1e-6, max_it=50000)
    gmres_opts = Options(krylov_method="gmres", gmres_restart=30, tol=1e-6,
                         variant="right", max_it=50000)
    petsc = _run(seq, lambda a: ssor, gmres_opts)
    ours = _run(seq, lambda a: ssor, hpddm)

    tot_g = sum(i for i, _ in petsc)
    tot_r = sum(i for i, _ in ours)
    assert tot_r < tot_g, (tot_g, tot_r)

    text = (format_table(["system", "iterations", "time (s)"],
                         _table_rows(petsc), title="PETSc-analogue (GMRES)")
            + "\n"
            + format_table(["system", "iterations", "time (s)"],
                           _table_rows(ours), title="HPDDM-analogue (GCRO-DR)",
                           note=f"paper's expected sample: GMRES 288 total "
                                f"vs GCRO-DR 147 total iterations.\n"
                                f"measured here: {tot_g} vs {tot_r}."))
    write_result("artifact_ex32", text)


def test_artifact_ex56(benchmark):
    """ex56: four varying elasticity operators."""
    systems = []
    for inc in PAPER_INCLUSIONS:
        p = elasticity_3d(7, inclusion=inc)
        systems.append((p.a, p.rhs_vector))
    benchmark(lambda: systems[0][0] @ systems[0][1])

    hpddm = parse_hpddm_args(EX56_ARGS).replace(tol=1e-6, max_it=50000)
    gmres_opts = Options(krylov_method="gmres", gmres_restart=30, tol=1e-6,
                         variant="right", max_it=50000)
    petsc = _run(systems, lambda a: SSORPreconditioner(a), gmres_opts)
    ours = _run(systems, lambda a: SSORPreconditioner(a), hpddm)

    tot_g = sum(i for i, _ in petsc)
    tot_r = sum(i for i, _ in ours)
    assert tot_r < tot_g, (tot_g, tot_r)

    text = (format_table(["system", "iterations", "time (s)"],
                         _table_rows(petsc), title="PETSc-analogue (GMRES)")
            + "\n"
            + format_table(["system", "iterations", "time (s)"],
                           _table_rows(ours), title="HPDDM-analogue (GCRO-DR)",
                           note=f"paper's expected sample: GMRES 409 total "
                                f"vs GCRO-DR 247 total iterations.\n"
                                f"measured here: {tot_g} vs {tot_r}."))
    write_result("artifact_ex56", text)
