"""Ablation studies for the design choices DESIGN.md calls out.

Not figures of the paper, but quantifications of its engineering claims:

* **recycle strategy A vs B** (eq. 3a vs 3b): B is communication-free,
  A pays one extra fused reduction per recycle update; iteration counts
  are problem-dependent (paper section III-C / artifact note G);
* **orthogonalization schemes** (section III-D): CholQR/TSQR cost one
  reduction per distributed QR where CGS costs p and MGS p(p+1)/2;
* **recycle dimension k**: the paper picks k = 10 of m = 30 "after some
  preliminary experiments, but it can be set between 1 and m-1";
* **same-system fast path** (section III-B): skipping lines 3-7/31-38
  eliminates all eigenproblem work on fixed-operator sequences.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro import Options, Solver, install_ledger
from repro.la.orthogonalization import (cholqr, classical_gram_schmidt_qr,
                                        modified_gram_schmidt_qr, tsqr)
from repro.util.ledger import Kernel

from common import format_table, write_result


def _laplacian(n):
    return sp.diags([-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
                    [-1, 0, 1]).tocsr()


@pytest.fixture(scope="module")
def sequence_problem():
    rng = np.random.default_rng(11)
    n = 600
    # mild shift keeps the sequence solvable by every strategy: the paper
    # notes the A-vs-B choice is problem-dependent, and on nearly singular
    # operators strategy B's communication-free eigenproblem can stall
    base = _laplacian(n) + 0.02 * sp.eye(n)
    mats = [(base + 0.02 * i * sp.eye(n)).tocsr() for i in range(4)]
    rhss = [rng.standard_normal(n) for _ in range(4)]
    return mats, rhss


def test_ablation_strategy_a_vs_b(benchmark, sequence_problem):
    """Strategy B saves the extra reduction of eq. (3a) at equal quality."""
    mats, rhss = sequence_problem
    benchmark(lambda: mats[0] @ rhss[0])

    results = {}
    for strat in ("A", "B"):
        opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=10,
                       tol=1e-8, max_it=6000, recycle_strategy=strat)
        s = Solver(options=opts)
        with install_ledger() as led:
            its = []
            for a, b in zip(mats, rhss):
                res = s.solve(a, b, same_system=False)
                assert res.converged.all()
                its.append(res.iterations)
        results[strat] = (its, led.reductions, led.calls["recycle_update"])
    its_a, red_a, upd_a = results["A"]
    its_b, red_b, upd_b = results["B"]
    # both converge with comparable iteration counts ("problem-dependent",
    # paper section III-C)
    assert abs(sum(its_a) - sum(its_b)) <= 0.5 * sum(its_a)
    # strategy A performs one extra fused reduction per recycle update
    if upd_a == upd_b and its_a == its_b:
        assert red_a == red_b + upd_a
    else:
        assert red_a / max(upd_a, 1) >= red_b / max(upd_b, 1) - 5

    table = format_table(
        ["strategy", "sys1", "sys2", "sys3", "sys4", "total its",
         "reductions", "recycle updates"],
        [("A (eq. 3a)",) + tuple(its_a) + (sum(its_a), red_a, upd_a),
         ("B (eq. 3b)",) + tuple(its_b) + (sum(its_b), red_b, upd_b)],
        title="Ablation - generalized-eigenproblem RHS strategy (GCRO-DR, "
              "4 varying systems)",
        note="Strategy B builds W = G_m^H [I; 0] locally; strategy A "
             "requires the fused reduction for [C V]^H U~ (paper §III-C).")
    write_result("ablation_strategy", table)


def test_ablation_orthogonalization(benchmark):
    """Reduction counts of the distributed QR schemes (paper §III-D)."""
    rng = np.random.default_rng(3)
    x = rng.standard_normal((4000, 16))
    benchmark(cholqr, x)

    rows = []
    for label, fn in [("CholQR", cholqr), ("TSQR", tsqr),
                      ("CGS", classical_gram_schmidt_qr),
                      ("MGS", modified_gram_schmidt_qr)]:
        with install_ledger() as led:
            t0 = time.perf_counter()
            q, r = fn(x)
            dt = time.perf_counter() - t0
        orth = float(np.linalg.norm(q.T @ q - np.eye(16)))
        rows.append((label, led.reductions, round(dt * 1e3, 2),
                     f"{orth:.1e}"))
    # the paper's claim: CholQR/TSQR need one reduction; CGS p-ish; MGS p^2/2
    reds = {r[0]: r[1] for r in rows}
    assert reds["CholQR"] == 1 and reds["TSQR"] == 1
    assert reds["CGS"] == 2 * 16 - 1
    assert reds["MGS"] == 16 * 17 // 2

    table = format_table(
        ["scheme", "reductions", "time (ms)", "orthogonality error"],
        rows,
        title="Ablation - distributed QR of a 4000 x 16 block "
              "(paper lines 11/24)",
        note="One reduction per QR is why HPDDM uses CholQR; MGS trades "
             "communication for robustness.")
    write_result("ablation_orthogonalization", table)


def test_ablation_recycle_dimension(benchmark):
    """Sweep k in GCRO-DR(30, k) on a fixed-operator sequence."""
    rng = np.random.default_rng(5)
    n = 600
    a = _laplacian(n)
    rhss = [rng.standard_normal(n) for _ in range(3)]
    benchmark(lambda: a @ rhss[0])

    gmres_its = None
    rows = []
    s0 = Solver(options=Options(krylov_method="gmres", gmres_restart=30,
                                tol=1e-8, max_it=8000))
    gmres_its = sum(s0.solve(a, b).iterations for b in rhss)
    totals = {}
    for k in (2, 5, 10, 15, 20):
        opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=k,
                       tol=1e-8, max_it=8000, recycle_same_system=True)
        s = Solver(options=opts)
        its = [s.solve(a, b).iterations for b in rhss]
        assert all(r.converged.all() for r in s.results)
        totals[k] = sum(its)
        rows.append((k,) + tuple(its) + (sum(its),))
    # recycling helps for every k on this restart-limited SPD problem
    assert all(t < gmres_its for t in totals.values()), (totals, gmres_its)

    table = format_table(
        ["k", "sys1", "sys2", "sys3", "total"],
        rows,
        title=f"Ablation - recycle dimension k in GCRO-DR(30, k), 1-D "
              f"Laplacian (n={n}); GMRES(30) reference total: {gmres_its}",
        note="The paper: \"this dimension was chosen after some preliminary "
             "experiments, but it can be set between 1 and m-1\"; k = m/3 "
             "is the usual sweet spot.")
    write_result("ablation_recycle_k", table)


def test_ablation_two_level_schwarz(benchmark):
    """One-level ORAS's iteration growth (Fig. 7: 54 -> 94 over 8x ranks)
    and the classic two-level (Nicolaides) cure — an extension the paper
    leaves open."""
    from repro import solve
    from repro.precond.schwarz import SchwarzPreconditioner
    from repro.problems.poisson import poisson_2d
    rng = np.random.default_rng(31)
    prob = poisson_2d(48)
    b = rng.standard_normal(prob.n)
    benchmark(lambda: prob.a @ b)

    o = Options(tol=1e-8, variant="right", max_it=600)
    rows = []
    growth = {}
    for coarse in (False, True):
        its = []
        for nparts in (4, 8, 16, 32):
            m = SchwarzPreconditioner(prob.a, nparts=nparts, overlap=2,
                                      coarse=coarse)
            res = solve(prob.a, b, m, options=o)
            assert res.converged.all()
            its.append(res.iterations)
        label = "two-level (Nicolaides)" if coarse else "one-level (paper)"
        growth[coarse] = its[-1] / its[0]
        rows.append((label,) + tuple(its) + (f"{growth[coarse]:.1f}x",))
    # the coarse space tames the growth
    assert growth[True] < growth[False]

    table = format_table(
        ["preconditioner", "N=4", "N=8", "N=16", "N=32", "growth 4->32"],
        rows,
        title="Ablation - one- vs two-level Schwarz iteration growth "
              "(2-D Poisson, RAS, GMRES(30))",
        note="The paper's one-level ORAS shows the same mild growth in "
             "Fig. 7 (54 -> 94 over 512 -> 4096\nsubdomains); a Nicolaides "
             "coarse space is the textbook remedy, provided here as an "
             "extension.")
    write_result("ablation_two_level", table)


def test_ablation_recycling_vs_deflated_restarting(benchmark):
    """Section II's core claim: GMRES-DR equals GCRO-DR on one system but
    cannot carry its deflation space to the next solve — GCRO-DR can."""
    from repro.krylov.gcrodr import gcrodr
    from repro.krylov.gmresdr import gmresdr
    rng = np.random.default_rng(17)
    n = 600
    a = _laplacian(n)
    rhss = [rng.standard_normal(n) for _ in range(3)]
    benchmark(lambda: a @ rhss[0])

    opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=10,
                   tol=1e-8, max_it=8000)
    # GMRES-DR: every solve starts from scratch
    dr_its = []
    for b in rhss:
        res = gmresdr(a, b, options=opts.replace(krylov_method="gmresdr"))
        assert res.converged.all()
        dr_its.append(res.iterations)
    # GCRO-DR: recycles between solves
    rec = None
    gc_its = []
    for b in rhss:
        res = gcrodr(a, b, options=opts, recycle=rec,
                     same_system=rec is not None)
        assert res.converged.all()
        rec = res.info["recycle"]
        gc_its.append(res.iterations)

    # equivalent on the first system (Parks et al.), recycling wins after
    assert abs(dr_its[0] - gc_its[0]) <= 0.05 * dr_its[0] + 3
    assert sum(gc_its[1:]) < 0.8 * sum(dr_its[1:])

    table = format_table(
        ["method", "sys1", "sys2", "sys3", "total"],
        [("GMRES-DR(30,10)",) + tuple(dr_its) + (sum(dr_its),),
         ("GCRO-DR(30,10)",) + tuple(gc_its) + (sum(gc_its),)],
        title="Ablation - deflated restarting vs recycling on a 3-RHS "
              "sequence (fixed operator)",
        note="Identical on system 1 (the Parks et al. equivalence); from "
             "system 2 on, GCRO-DR starts\nfrom its recycled space while "
             "GMRES-DR must rediscover the slow modes — the paper's "
             "section II\nargument against PETSc's DGMRES/LGMRES for "
             "sequences.")
    write_result("ablation_recycling_vs_dr", table)


def test_ablation_block_reduction(benchmark):
    """Block-size reduction vs plain rank-revealing restarts (paper §V-C).

    The paper detects breakdowns with rank-revealing CholQR but does not
    reduce the block size ("residuals appear to be far from being colinear
    in our application").  On a contrived nearly-colinear RHS block the
    reduction pays: same convergence, fewer operator columns.
    """
    rng = np.random.default_rng(21)
    n = 400
    a = _laplacian(n) + 0.4 * sp.eye(n)
    v = rng.standard_normal(n)
    b = np.column_stack([v, 2 * v + 1e-9 * rng.standard_normal(n),
                         2.5 * v + 1e-9 * rng.standard_normal(n),
                         rng.standard_normal(n)])
    benchmark(lambda: a @ b)

    from repro.krylov.bgmres import bgmres
    rows = []
    apps = {}
    for red in (False, True):
        o = Options(krylov_method="bgmres", gmres_restart=30, tol=1e-9,
                    max_it=3000, block_reduction=red, deflation_tol=1e-7)
        with install_ledger() as led:
            t0 = time.perf_counter()
            res = bgmres(a, b, options=o)
            dt = time.perf_counter() - t0
        assert res.converged.all()
        apps[red] = led.calls["operator_apply"]
        rows.append(("on" if red else "off", res.iterations,
                     led.calls["operator_apply"],
                     led.calls["block_reduction"], round(dt, 3)))
    assert apps[True] <= apps[False]

    table = format_table(
        ["block reduction", "block iterations", "operator columns",
         "reductions applied", "time (s)"],
        rows,
        title="Ablation - BGMRES block-size reduction on a nearly-colinear "
              "4-RHS block",
        note="The paper leaves this off for its application (residuals far "
             "from colinear) — here the\nrestart-level reduction variant "
             "shows what it buys when RHSs are (nearly) dependent.")
    write_result("ablation_block_reduction", table)


def test_ablation_same_system(benchmark):
    """The non-variable fast path removes all recycle-update eigenwork."""
    rng = np.random.default_rng(9)
    n = 600
    a = _laplacian(n)
    rhss = [rng.standard_normal(n) for _ in range(4)]
    benchmark(lambda: a @ rhss[0])

    rows = []
    stats = {}
    for fast in (True, False):
        opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=10,
                       tol=1e-8, max_it=8000)
        s = Solver(options=opts)
        with install_ledger() as led:
            t0 = time.perf_counter()
            its = []
            for i, b in enumerate(rhss):
                res = s.solve(a, b, same_system=(fast and i > 0) or
                              (None if fast else False))
                assert res.converged.all()
                its.append(res.iterations)
            dt = time.perf_counter() - t0
        label = "same-system fast path" if fast else "general (updates on)"
        stats[fast] = (sum(its), led.calls["recycle_update"], led.reductions)
        rows.append((label,) + tuple(its)
                    + (sum(its), led.calls["recycle_update"],
                       round(dt, 3)))
    # after the first solve the fast path performs no recycle updates;
    # the general path keeps paying for them
    assert stats[False][1] > stats[True][1]

    table = format_table(
        ["mode", "sys1", "sys2", "sys3", "sys4", "total its",
         "recycle updates", "time (s)"],
        rows,
        title="Ablation - -hpddm_recycle_same_system on a fixed-operator "
              "sequence (paper §III-B)",
        note="The fast path skips qr(A U_k) on lines 3-7 and the whole "
             "eigen-update block (lines 31-38)\nafter the first solve; "
             "updates continue during solve 1 to refine the space.")
    write_result("ablation_same_system", table)


def test_ablation_sketched_recycle(benchmark):
    """Randomized subspace selection: recycle space x k x Ritz target.

    Sweeps ``-hpddm_recycle_space {full,sketched}`` against the recycle
    dimension k and the harmonic-Ritz selection target on the 4-system
    varying-operator sequence, all under the sketched Arnoldi engine.
    The claims quantified:

    * the sketch-whitened carrying costs a *bounded* number of extra
      iterations over the bit-exact full-space oracle at every (k,
      target) — the quality oracle of ``tests/matrix.py`` at ablation
      scale;
    * its ledger-counted reductions per recycle update are strictly
      lower (the full-space path pays the drift probe every tidy; the
      sketched path whitens by local algebra);
    * the selection target matters independently of the carrying
      representation (smallest harmonic Ritz wins on this spectrum).
    """
    # well-conditioned varying-operator sequence (the sketched scheme is
    # quasi-optimal, not an oracle: on the near-singular Laplacian
    # sequence its 2-3x iteration premium turns into a stall, which is a
    # scheme-choice question — docs/ORTHOGONALIZATION.md — not a
    # subspace-selection one)
    rng = np.random.default_rng(29)
    n = 600
    rs = np.random.RandomState(1234)
    base = sp.random(n, n, density=0.02, random_state=rs, format="csr")
    base = sp.csr_matrix(base + sp.eye(n, format="csr") * 4.0)
    mats = [(base + 0.05 * i * sp.eye(n)).tocsr() for i in range(4)]
    rhss = [rng.standard_normal(n) for _ in range(4)]
    benchmark(lambda: mats[0] @ rhss[0])

    rows = []
    totals: dict[tuple, int] = {}
    reds_per_update: dict[tuple, float] = {}
    for space in ("full", "sketched"):
        for k in (4, 8, 16):
            for target in ("smallest", "largest"):
                opts = Options(krylov_method="gcrodr", gmres_restart=30,
                               recycle=k, orthogonalization="sketched",
                               recycle_space=space, recycle_target=target,
                               tol=1e-8, max_it=6000)
                s = Solver(options=opts)
                with install_ledger() as led:
                    its, flags = [], []
                    for a, b in zip(mats, rhss):
                        res = s.solve(a, b, same_system=False)
                        its.append(res.iterations)
                        flags.append(bool(res.converged.all()))
                upd = led.calls.get("recycle_update", 0)
                # maintenance overhead: reductions beyond one-per-step,
                # amortized over recycle updates (step reductions scale
                # with the iteration count and would swamp the metric)
                steps = led.calls.get("arnoldi_step", 0)
                rpu = (led.reductions - steps) / max(upd, 1)
                totals[(space, k, target)] = sum(its)
                reds_per_update[(space, k, target)] = rpu
                rows.append((space, k, target) + tuple(its)
                            + (sum(its), upd, round(rpu, 1),
                               all(flags)))

    for k in (4, 8, 16):
        for target in ("smallest", "largest"):
            full_t = totals[("full", k, target)]
            sk_t = totals[("sketched", k, target)]
            # quality oracle: bounded carrying cost at every selection
            assert sk_t <= 1.75 * full_t + 5, (k, target, full_t, sk_t)
            # communication: fewer reductions per update, every config
            assert (reds_per_update[("sketched", k, target)]
                    < reds_per_update[("full", k, target)]), (k, target)

    table = format_table(
        ["space", "k", "target", "sys1", "sys2", "sys3", "sys4",
         "total its", "updates", "overhead/update", "converged"],
        rows,
        title="Ablation - randomized subspace selection: recycle_space x "
              "k x Ritz target\n(GCRO-DR(30, k), sketched Arnoldi, 4 "
              "varying systems)",
        note="The sketch-whitened carrying (recycle_space=sketched) pays "
             "no per-update reductions for\npair maintenance beyond a "
             "bounded periodic re-sketch (the full-space path pays the\n"
             "drift probe at every harvest/update), at a bounded "
             "iteration premium; the harmonic-\nRitz selection target "
             "acts independently of the carrying representation.")
    write_result("ablation_sketched_recycle", table)
