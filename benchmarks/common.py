"""Shared infrastructure for the figure/table reproduction benchmarks.

Every ``bench_*`` module reproduces one figure or table of the paper.  The
pattern: a session-cached ``run_*`` experiment producing the figure's data,
a ``test_*`` entry that asserts the *shape* claims (who wins, by roughly
what factor) and writes a human-readable table under
``benchmarks/results/``, plus a pytest-benchmark measurement of the
experiment's core kernel so ``pytest benchmarks/ --benchmark-only``
produces timing rows.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a reproduction table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n===== {name} =====\n{text}")
    return path


def format_table(headers: list[str], rows: list[tuple], *,
                 title: str = "", note: str = "") -> str:
    """Fixed-width table renderer."""
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    out.write("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rows:
        out.write("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)) + "\n")
    if note:
        out.write("\n" + note + "\n")
    return out.getvalue()


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0 or 1e-3 <= abs(v) < 1e5:
            return f"{v:.3f}".rstrip("0").rstrip(".") if abs(v) >= 1 else f"{v:.4f}"
        return f"{v:.3e}"
    return str(v)


def downsample_history(rel: np.ndarray, n_points: int = 25) -> list[tuple]:
    """(iteration, relative residual) pairs, downsampled for the results file."""
    n = len(rel)
    idx = np.unique(np.linspace(0, n - 1, min(n_points, n)).astype(int))
    return [(int(i), float(rel[i])) for i in idx]
