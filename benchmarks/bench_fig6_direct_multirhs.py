"""Fig. 6 — scalability of a sparse direct solver with multiple RHSs.

The paper factorizes a 300k-unknown complex Maxwell system once (PARDISO)
and measures the solve phase for 1..128 RHSs on 1..16 threads:
single-thread efficiency is *superlinear* in the RHS count (BLAS-2 ->
BLAS-3), and at 16 threads the efficiency collapses to 10% for p = 2 but
recovers past p = 64.

Reproduction in two halves:

* **measured** (this host has one core = the P = 1 row): our own
  level-scheduled blocked triangular solves on a complex Maxwell
  factorization — per-RHS time must drop superlinearly with p;
* **modeled** (the P > 1 rows): the calibrated mechanistic model of
  :mod:`repro.perfmodel.directmodel`, checked entry-by-entry against the
  paper's own Fig. 6b table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.direct.solver import SparseLU
from repro.perfmodel.directmodel import (PAPER_FIG6B, DirectSolveModel,
                                         efficiency_table)
from repro.problems.maxwell import maxwell_chamber

from common import format_table, write_result

RHS_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def factorization():
    prob = maxwell_chamber(7, omega=8.0, cylinder=False)
    lu = SparseLU(prob.a, engine="scipy")
    rng = np.random.default_rng(42)
    n = prob.n
    rhs = {p: (rng.standard_normal((n, p))
               + 1j * rng.standard_normal((n, p))) for p in RHS_COUNTS}
    return prob, lu, rhs


def _measure(lu, b, repeats=3):
    lu.solve(b)  # warm-up
    t0 = time.perf_counter()
    for _ in range(repeats):
        lu.solve(b)
    return (time.perf_counter() - t0) / repeats


def test_fig6_measured_superlinear_efficiency(benchmark, factorization):
    """Measured single-thread half: E(1, p) grows superlinearly with p."""
    prob, lu, rhs = factorization
    benchmark(lu.solve, rhs[8])  # kernel: one blocked 8-RHS solve

    times = {p: _measure(lu, rhs[p]) for p in RHS_COUNTS}
    t11 = times[1]
    eff = {p: p * t11 / times[p] for p in RHS_COUNTS}
    # superlinear on this host exactly as on Curie's P = 1 row
    assert eff[8] > 2.0, eff
    assert eff[64] > 4.0, eff
    # monotone-ish growth (allow small timing noise)
    assert eff[64] >= eff[4] >= 0.9 * eff[1]

    rows = [(p, round(times[p] * 1e3, 3), round(times[p] / p * 1e3, 3),
             round(eff[p], 2)) for p in RHS_COUNTS]
    table = format_table(
        ["p (RHSs)", "solve (ms)", "per-RHS (ms)", "efficiency E(1,p)"],
        rows,
        title=f"Fig. 6 (measured, P=1) - blocked triangular solves on a "
              f"complex Maxwell factorization\n(n={prob.n}, factor nnz="
              f"{lu.factor_nnz}, level schedules {lu.n_levels})",
        note="Paper P=1 row: E grows 1.0 -> 2.43 by p=128 (superlinear: "
             "the factor is streamed once per block,\nBLAS-2 becomes "
             "BLAS-3).  Same mechanism, measured on this library's own "
             "level-scheduled kernels.")
    write_result("fig6_measured", table)


def test_fig6_model_matches_paper_table(benchmark, factorization):
    """Modeled threaded half: calibrated model vs the paper's Fig. 6b."""
    model = DirectSolveModel()
    benchmark(efficiency_table, model)

    tab = efficiency_table(model)
    ratio = tab["times"] / PAPER_FIG6B["times"]
    assert ratio.max() < 1.5 and ratio.min() > 0.6, \
        f"model drifted from the paper table: [{ratio.min()}, {ratio.max()}]"
    assert model.efficiency(16, 2) == pytest.approx(0.10, abs=0.03)
    assert model.efficiency(16, 64) > 1.0 > model.efficiency(16, 32)
    assert 2.2 < model.efficiency(1, 128) < 2.6

    lines = ["Fig. 6b (modeled) - solve times in seconds, threads x RHSs",
             "", "model:"]
    hdr = "P\\p " + "".join(f"{p:>8}" for p in tab["rhs"])
    lines.append(hdr)
    for ti, tp in enumerate(tab["threads"]):
        lines.append(f"{tp:>3} " + "".join(f"{tab['times'][ti, pi]:>8.2f}"
                                           for pi in range(len(tab["rhs"]))))
    lines += ["", "paper:"]
    lines.append(hdr)
    for ti, tp in enumerate(PAPER_FIG6B["threads"]):
        lines.append(f"{tp:>3} " + "".join(
            f"{PAPER_FIG6B['times'][ti, pi]:>8.2f}"
            for pi in range(len(PAPER_FIG6B["rhs"]))))
    lines += ["", "Fig. 6a (modeled) - efficiency E(P,p):", hdr]
    for ti, tp in enumerate(tab["threads"]):
        lines.append(f"{tp:>3} " + "".join(
            f"{tab['efficiency'][ti, pi]:>8.2f}"
            for pi in range(len(tab["rhs"]))))
    lines.append("")
    lines.append(f"max model/paper time ratio: {ratio.max():.2f}, "
                 f"min: {ratio.min():.2f}")
    write_result("fig6_model", "\n".join(lines) + "\n")
