"""Benchmark-suite configuration: make `import common` work from anywhere."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
