"""Fig. 7 — strong scaling of the Maxwell/ORAS solver.

The paper: one 119M-complex-unknown chamber system solved on 512 -> 4096
subdomains (one per MPI process); speedup 6.9 out of the ideal 8, with the
iteration count creeping from 54 to 94 (one-level optimized transmission
conditions) so the solve fraction grows from 17% to 30%.

Reproduction: a fixed laptop-scale chamber decomposed into 2 -> 16
subdomains.  Wall-clock on one core cannot scale, so the per-process cost
is *modeled* from the ledger events (flops by kernel, reductions, halo
traffic) on a Curie-like machine — the algorithmic inputs (iteration
growth, per-subdomain factor sizes, communication counts) are all
measured, only the rates come from the machine model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Options, install_ledger, solve
from repro.perfmodel.estimate import modeled_time
from repro.perfmodel.machine import CURIE
from repro.precond.schwarz import SchwarzPreconditioner
from repro.problems.maxwell import (antenna_ring_rhs, decompose_maxwell,
                                    maxwell_chamber)

from common import format_table, write_result

N = 12
OMEGA = 8.0
SUBDOMAIN_COUNTS = (2, 4, 8, 16)
PROJECTED_RANKS = (512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def fig7_data():
    prob = maxwell_chamber(N, omega=OMEGA)
    b = antenna_ring_rhs(prob, n_antennas=1)[:, 0]
    opts = Options(tol=1e-8, variant="right", max_it=600, gmres_restart=50)

    rows = []
    last_solve_events = None
    for nparts in SUBDOMAIN_COUNTS:
        with install_ledger() as led_setup:
            dec = decompose_maxwell(prob, nparts, overlap=2, impedance=True)
            m = SchwarzPreconditioner(prob.a, variant="oras",
                                      decomposition=dec.decomposition,
                                      local_matrices=dec.local_matrices)
        with install_ledger() as led_solve:
            res = solve(prob.a, b, m, options=opts)
        assert res.converged.all(), f"ORAS failed at N={nparts}"
        t_setup = modeled_time(led_setup, nparts, machine=CURIE)
        t_solve = modeled_time(led_solve, nparts, machine=CURIE)
        rows.append({"nparts": nparts, "iterations": res.iterations,
                     "setup": t_setup.total, "solve": t_solve.total,
                     "setup_events": led_setup, "comm": t_solve.communication})
        last_solve_events = led_solve
    return {"prob": prob, "rows": rows, "b": b,
            "solve_events": last_solve_events}


def test_fig7_strong_scaling(benchmark, fig7_data):
    prob, rows = fig7_data["prob"], fig7_data["rows"]
    benchmark(lambda: prob.a @ fig7_data["b"].reshape(-1, 1))

    first, last = rows[0], rows[-1]
    totals = [r["setup"] + r["solve"] for r in rows]
    speedups = [totals[0] / t for t in totals]

    # the paper's claims, in shape:
    # 1. clear strong scaling across the measured sweep (the paper's 6.9/8
    #    was setup- i.e. factorization-dominated at 119M unknowns; at
    #    laptop scale the iteration-bound solve phase dominates, so the
    #    attainable speedup is bounded by the 52 -> ~95 iteration growth)
    assert speedups[-1] > 2.0, speedups
    # 2. monotone improvement over the sweep
    assert all(b <= a * 1.1 for a, b in zip(totals, totals[1:])), totals
    # 3. iteration count grows mildly with the number of subdomains
    #    (one-level method, optimized interface conditions)
    assert last["iterations"] >= first["iterations"]
    assert last["iterations"] <= 3 * first["iterations"]
    # 4. per-subdomain factorization work drops superlinearly: total setup
    #    time divided by N falls much faster than 1/N
    assert last["setup"] < first["setup"] / 4

    out_rows = []
    for r, sp_ in zip(rows, speedups):
        tot = r["setup"] + r["solve"]
        out_rows.append((r["nparts"], round(r["setup"], 3),
                         round(r["solve"], 3), r["iterations"],
                         f"{100 * r['solve'] / tot:.0f}%",
                         round(sp_, 2)))
    table = format_table(
        ["N", "setup (s)", "solve (s)", "iterations", "solve frac", "speedup"],
        out_rows,
        title=f"Fig. 7 reproduction - Maxwell strong scaling "
              f"({prob.n} complex unknowns, modeled on a Curie-like "
              f"machine from measured ledger events)",
        note="Paper (512->4096 subdomains): speedup 6.9/8, iterations "
             "54->94, solve fraction 17%->30%.\nTimes are modeled "
             "per-process costs; iteration counts, factor sizes, and "
             "communication events are measured.")
    write_result("fig7_strong_scaling", table)


def test_fig7_rank_projection(benchmark, fig7_data):
    """Paper-scale projection: the measured solve workload on 512-4096 ranks.

    Takes the measured event stream of the largest decomposition, scales
    the volume terms (flops, message bytes) to the paper's 119M-unknown
    problem — they are proportional to n, while the *number* of reductions
    per iteration is size-independent — and asks the machine model what
    that costs at the paper's process counts.  This isolates the
    communication (log P reductions) versus computation (1/P) trade-off
    of section III-D.
    """
    events = fig7_data["solve_events"]
    benchmark(modeled_time, events, 512)

    scale = 119e6 / fig7_data["prob"].n      # paper n / our n
    scaled = events.snapshot()
    for k in scaled.flops:
        scaled.flops[k] *= scale
    scaled.p2p_bytes = int(scaled.p2p_bytes * scale)
    scaled.p2p_messages = int(scaled.p2p_messages * scale ** (2 / 3))
    scaled.reduction_bytes = scaled.reduction_bytes  # payloads stay small

    proj = {p: modeled_time(scaled, p, machine=CURIE)
            for p in PROJECTED_RANKS}
    t512 = proj[512].total
    speedup = {p: t512 / proj[p].total for p in PROJECTED_RANKS}
    # compute shrinks 8x; reductions grow with log P, so the overall
    # speedup lands between 4x and the ideal 8x (the paper measured 3.9x
    # for its solve phase, iteration growth included)
    assert 2.0 < speedup[4096] <= 8.0, speedup

    rows = [(p, f"{proj[p].total:.3f}",
             f"{proj[p].compute:.3f}",
             f"{proj[p].communication:.3f}",
             round(speedup[p], 2)) for p in PROJECTED_RANKS]
    table = format_table(
        ["ranks", "total (s)", "compute (s)", "comm (s)", "speedup"],
        rows,
        title="Fig. 7 projection - measured solve events scaled to the "
              "paper's 119M unknowns,\nmodeled at the paper's process "
              "counts (fixed workload)",
        note="Communication grows as log2(P) tree reductions while compute "
             "shrinks as 1/P — the\nscalability envelope the paper's "
             "iterative-method engineering (fewer reductions per cycle)\n"
             "is designed to extend.")
    write_result("fig7_rank_projection", table)
