"""Fig. 3 — four varying 3-D elasticity systems: recycling vs baselines.

The paper (section IV-C): four 283M-unknown elasticity operators differing
by a moving spherical inclusion; (a/b) FGMRES(30) vs FGCRO-DR(30,10) under
a CG(4)-smoothed (variable) GAMG — 235 vs 189 iterations; (c/d)
LGMRES(30,10) vs GCRO-DR(30,10) under a Chebyshev-smoothed (linear) GAMG —
269 vs 173 iterations ("the better numerical properties of GCRO-DR over
LGMRES play a huge role here").

Reproduction at laptop scale: the paper's exact inclusion parameter sets;
the linear-preconditioner regime uses SSOR so per-system iteration counts
land in the paper's range (see EXPERIMENTS.md for why the Chebyshev-AMG
pairing leaves nothing to recycle at a few thousand unknowns — it is also
run and reported).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Options, Solver
from repro.krylov.lgmres import lgmres
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.simple import SSORPreconditioner
from repro.problems.elasticity import PAPER_INCLUSIONS, elasticity_3d

from common import format_table, write_result

NE = 8
TOL = 1e-8


@pytest.fixture(scope="module")
def fig3_data():
    systems = [elasticity_3d(NE, inclusion=inc) for inc in PAPER_INCLUSIONS]
    data = {"systems": systems, "n": systems[0].n}

    # --- 3c/3d regime: linear preconditioner, right side ------------------
    base = Options(krylov_method="gmres", gmres_restart=30, tol=TOL,
                   variant="right", max_it=10000)
    methods = {
        "GMRES(30)": base,
        "LGMRES(30,10)": base.replace(krylov_method="lgmres", recycle=10),
        "GCRO-DR(30,10)": base.replace(krylov_method="gcrodr", recycle=10),
    }
    lin = {}
    for label, opts in methods.items():
        s = Solver(options=opts)
        runs = []
        for prob in systems:
            m = SSORPreconditioner(prob.a)
            t0 = time.perf_counter()
            if opts.krylov_method == "lgmres":
                res = lgmres(prob.a, prob.rhs_vector, m, options=opts)
            else:
                res = s.solve(prob.a, prob.rhs_vector, m=m)
            runs.append((res.iterations, time.perf_counter() - t0))
            assert res.converged.all(), label
        lin[label] = runs
    data["linear"] = lin

    # --- 3a/3b pairing: variable CG(4)-smoothed AMG, flexible -------------
    flex = Options(krylov_method="gmres", gmres_restart=30, tol=TOL,
                   variant="flexible", max_it=4000)
    var = {}
    for label, opts in [("FGMRES(30)", flex),
                        ("FGCRO-DR(30,10)",
                         flex.replace(krylov_method="gcrodr", recycle=10))]:
        s = Solver(options=opts)
        runs = []
        for prob in systems:
            m = SmoothedAggregationAMG(prob.a, nullspace=prob.nullspace,
                                       block_size=3, smoother="cg",
                                       smoother_iterations=4)
            t0 = time.perf_counter()
            res = s.solve(prob.a, prob.rhs_vector, m=m)
            runs.append((res.iterations, time.perf_counter() - t0))
            assert res.converged.all(), label
        var[label] = runs
    data["variable"] = var
    return data


def test_fig3_gcrodr_beats_lgmres(benchmark, fig3_data):
    """Fig. 3c/d headline: GCRO-DR converges in far fewer iterations."""
    prob = fig3_data["systems"][0]
    benchmark(lambda: prob.a @ np.column_stack([prob.rhs_vector] * 4))

    lin = fig3_data["linear"]
    tot = {k: sum(r[0] for r in v) for k, v in lin.items()}
    assert tot["GCRO-DR(30,10)"] < 0.8 * tot["LGMRES(30,10)"], tot
    assert tot["GCRO-DR(30,10)"] < 0.8 * tot["GMRES(30)"], tot
    # recycling improves across the varying sequence: later systems cheaper
    gc = [r[0] for r in lin["GCRO-DR(30,10)"]]
    assert min(gc[1:]) < gc[0]

    var = fig3_data["variable"]
    vtot = {k: sum(r[0] for r in v) for k, v in var.items()}
    assert vtot["FGCRO-DR(30,10)"] <= vtot["FGMRES(30)"] + 6

    rows = []
    for regime, res in [("SSOR/right (Fig.3c/d)", lin),
                        ("AMG[CG(4)]/flex (Fig.3a/b)", var)]:
        for label, runs in res.items():
            rows.append((regime, label) + tuple(r[0] for r in runs)
                        + (sum(r[0] for r in runs),
                           round(sum(r[1] for r in runs), 2)))
    table = format_table(
        ["regime", "method", "sys1", "sys2", "sys3", "sys4", "total", "time(s)"],
        rows,
        title=f"Fig. 3 reproduction - elasticity ({fig3_data['n']} unknowns), "
              f"4 varying operators (paper inclusion sets), tol={TOL:g}",
        note=(f"GCRO-DR vs LGMRES: {tot['GCRO-DR(30,10)']} vs "
              f"{tot['LGMRES(30,10)']} iterations "
              f"(paper: 173 vs 269).\nOperator changes between solves: "
              "GCRO-DR re-orthonormalizes A_i U_k (lines 3-7) and refreshes "
              "the space via eq. (3)."))
    write_result("fig3_elasticity", table)
