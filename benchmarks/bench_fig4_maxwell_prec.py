"""Fig. 4 — preconditioner shoot-out on the Maxwell system.

The paper: on a 50M-complex-unknown chamber discretization, GMRES
preconditioned by ``M^-1_ORAS`` (eq. 6) converges, while the Additive
Schwarz Method (overlaps 1 and 2) and GAMG "cannot solve the linear
system ... as rapidly" — their residual curves flatline.

Reproduction: the same four preconditioners on the laptop-scale chamber;
the assertion is the ranking — ORAS reaches 1e-8 well inside the
iteration budget, ASM/GAMG do not get anywhere near.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Options, solve
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.schwarz import SchwarzPreconditioner
from repro.problems.maxwell import (antenna_ring_rhs, decompose_maxwell,
                                    maxwell_chamber)

from common import downsample_history, format_table, write_result

N = 8
OMEGA = 10.0
MAX_IT = 200
TOL = 1e-8


@pytest.fixture(scope="module")
def fig4_data():
    prob = maxwell_chamber(N, omega=OMEGA)
    b = antenna_ring_rhs(prob, n_antennas=1)[:, 0]
    opts = Options(tol=TOL, variant="right", max_it=MAX_IT, gmres_restart=50)

    runs = {}
    # ORAS with impedance transmission conditions
    dec = decompose_maxwell(prob, 8, overlap=2, impedance=True)
    m = SchwarzPreconditioner(prob.a, variant="oras",
                              decomposition=dec.decomposition,
                              local_matrices=dec.local_matrices)
    runs["ORAS (eq. 6)"] = solve(prob.a, b, m, options=opts)
    # plain ASM, two overlaps
    for ov in (1, 2):
        m = SchwarzPreconditioner(prob.a, nparts=8, overlap=ov,
                                  variant="asm", points=prob.dof_points())
        runs[f"ASM overlap {ov}"] = solve(prob.a, b, m, options=opts)
    # GAMG (nodal AMG cannot handle the curl-curl near-nullspace)
    m = SmoothedAggregationAMG(prob.a)
    runs["GAMG"] = solve(prob.a, b, m, options=opts)
    return {"prob": prob, "b": b, "runs": runs,
            "oras_dec": dec}


def test_fig4_only_oras_converges(benchmark, fig4_data):
    prob, b = fig4_data["prob"], fig4_data["b"]
    dec = fig4_data["oras_dec"]
    m = SchwarzPreconditioner(prob.a, variant="oras",
                              decomposition=dec.decomposition,
                              local_matrices=dec.local_matrices)
    benchmark(m.apply, b.reshape(-1, 1))  # kernel: one ORAS application

    runs = fig4_data["runs"]
    oras = runs["ORAS (eq. 6)"]
    assert oras.converged.all()
    assert oras.iterations < MAX_IT
    for label in ("ASM overlap 1", "ASM overlap 2", "GAMG"):
        other = runs[label]
        # the standard preconditioners stall: not converged, or far slower
        assert (not other.converged.all()) or \
            other.iterations > 2 * oras.iterations, label

    rows = []
    for label, res in runs.items():
        final = float(res.residual_norms[0])
        rows.append((label, res.iterations,
                     "yes" if res.converged.all() else "no", f"{final:.2e}"))
    table = format_table(
        ["preconditioner", "iterations", "converged", "final rel. residual"],
        rows,
        title=f"Fig. 4 reproduction - Maxwell chamber ({prob.n} complex "
              f"unknowns, omega={OMEGA}), GMRES(50), tol={TOL:g}, "
              f"cap {MAX_IT} iterations",
        note="Paper: only the optimized Schwarz preconditioner (impedance "
             "transmission conditions)\nsolves the indefinite complex "
             "system; ASM and nodal AMG flatline.")
    write_result("fig4_maxwell_preconditioners", table)


def test_fig4_convergence_curves(benchmark, fig4_data):
    prob = fig4_data["prob"]
    benchmark(lambda: prob.a @ fig4_data["b"].reshape(-1, 1))

    lines = ["Fig. 4 analogue - GMRES convergence histories "
             "(iteration, relative residual)", ""]
    for label, res in fig4_data["runs"].items():
        lines.append(label)
        for it, v in downsample_history(res.history.matrix()[:, 0], 15):
            lines.append(f"  {it:>5} {v:.3e}")
        lines.append("")
    write_result("fig4_convergence", "\n".join(lines))
