"""Fig. 8 — eight alternatives for solving the 32-RHS Maxwell system.

The paper's headline table (section V-C): a chamber with an immersed
plastic cylinder, 32 antenna RHSs, ORAS preconditioning, and eight ways to
organize the solves — consecutive GMRES(50) (the reference, 3078s),
consecutive GCRO-DR, pseudo-block and true block GMRES, and
pseudo-block/block GCRO-DR on the full block or sub-blocks of 8.  Every
alternative beats the reference by at least ~2x; the wall-clock winner is
BGCRO-DR on sub-blocks (4.5x), and BGMRES/BGCRO-DR on the full block
divide the iteration count by two orders of magnitude.

Reproduction at laptop scale: 16 antennas on the inclusion phantom,
sub-blocks of 4.  Wall-clock speedups of the block alternatives reproduce
directly (they come from SpMM fusion and blocked subdomain solves, both
measured here); the *recycling* increments are muted because per-antenna
iteration counts are ~60 instead of the paper's 627 (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Options, Solver, solve
from repro.precond.schwarz import SchwarzPreconditioner
from repro.problems.maxwell import (antenna_ring_rhs, decompose_maxwell,
                                    maxwell_chamber)

from common import format_table, write_result

N = 8
OMEGA = 8.0
N_ANTENNAS = 16
SUB = 4
TOL = 1e-8


@pytest.fixture(scope="module")
def fig8_setup():
    prob = maxwell_chamber(N, omega=OMEGA, inclusion_radius=0.15)
    b = antenna_ring_rhs(prob, n_antennas=N_ANTENNAS)
    t0 = time.perf_counter()
    dec = decompose_maxwell(prob, 8, overlap=2, impedance=True)
    m = SchwarzPreconditioner(prob.a, variant="oras",
                              decomposition=dec.decomposition,
                              local_matrices=dec.local_matrices)
    t_setup = time.perf_counter() - t0
    return prob, b, m, t_setup


def _run_alternatives(prob, b, m):
    base = Options(krylov_method="gmres", gmres_restart=50, tol=TOL,
                   variant="right", max_it=4000)
    alts = []

    def consecutive(label, options, width):
        t0 = time.perf_counter()
        s = Solver(m, options=options)
        tot = 0
        for j in range(0, N_ANTENNAS, width):
            res = s.solve(prob.a, b[:, j: j + width])
            assert res.converged.all(), label
            tot += res.iterations
        alts.append((label, width, time.perf_counter() - t0, tot))

    def single(label, options):
        t0 = time.perf_counter()
        res = solve(prob.a, b, m, options=options)
        assert res.converged.all(), label
        alts.append((label, N_ANTENNAS, time.perf_counter() - t0,
                     res.iterations))

    gcro = base.replace(krylov_method="gcrodr", recycle=10,
                        recycle_same_system=True)
    bgcro = gcro.replace(krylov_method="bgcrodr")
    consecutive("1) consecutive GMRES(50)", base, 1)
    consecutive("2) consecutive GCRO-DR(50,10)", gcro, 1)
    single("3) pseudo-BGMRES(50)", base)
    single("4) BGMRES(50)", base.replace(krylov_method="bgmres"))
    consecutive(f"5) pseudo-BGCRO-DR(50,10) x{N_ANTENNAS // SUB}, p={SUB}",
                gcro, SUB)
    single("6) pseudo-BGCRO-DR(50,10), full block", gcro)
    consecutive(f"7) BGCRO-DR(50,10) x{N_ANTENNAS // SUB}, p={SUB}",
                bgcro, SUB)
    single("8) BGCRO-DR(50,10), full block", bgcro)
    return alts


def test_fig8_alternatives(benchmark, fig8_setup):
    prob, b, m, t_setup = fig8_setup
    benchmark(m.apply, b[:, :SUB])   # kernel: one blocked ORAS application

    alts = _run_alternatives(prob, b, m)
    t_ref = alts[0][2]
    speedups = {label: t_ref / dt for label, _, dt, _ in alts}

    # --- shape assertions (who wins, by roughly what factor) --------------
    # every (pseudo-)block alternative is at least ~2x faster than the
    # reference (paper: >= 2.0x for all of 3-8)
    for label, _, dt, _ in alts[2:]:
        assert t_ref / dt > 1.8, (label, t_ref, dt)
    # a true-block alternative is the wall-clock winner (paper: alt 7)
    best = max(speedups, key=speedups.get)
    assert "BGMRES" in best or "BGCRO" in best, best
    assert speedups[best] > 3.5, speedups
    # the full-block methods crush the iteration count (paper: 20068 -> 127)
    its = {label: it for label, _, _, it in alts}
    assert its["4) BGMRES(50)"] < 0.1 * its["1) consecutive GMRES(50)"]
    assert its["8) BGCRO-DR(50,10), full block"] <= its["4) BGMRES(50)"] + 20

    rows = [(label, p, round(dt, 1), it, f"{t_ref / dt:.1f}x")
            for label, p, dt, it in alts]
    table = format_table(
        ["alternative", "p", "solve (s)", "iterations", "speedup"],
        rows,
        title=f"Fig. 8 reproduction - Maxwell chamber with plastic-cylinder "
              f"inclusion\n({prob.n} complex unknowns, {N_ANTENNAS} antenna "
              f"RHSs, ORAS on 8 subdomains; setup {t_setup:.1f}s, paid once)",
        note="Paper (32 RHSs, 89M unknowns): every alternative beats the "
             "reference; block iterations advance all\ncolumns at once "
             "(iteration counts of p>1 rows are block iterations, not "
             "per-RHS).\nPaper speedups: 1.7 / 2.0 / 4.2 / 2.3 / 2.2 / 4.5 "
             "/ 3.1 for alternatives 2-8.")
    write_result("fig8_alternatives", table)
