"""Microbenchmarks of the simulated-MPI substrate: fused vs per-rank.

Times the three distributed primitives that dominate every solver run —
SpMM (:meth:`DistributedCSR.matmat`), column dot products
(:meth:`DistributedBlockVector.col_dots`) and block orthogonalization
(:func:`distributed_cholqr`) — at ``nranks`` in {1, 16, 64, 256} in both
execution modes, and writes ``benchmarks/results/BENCH_kernels.json``.

The per-rank mode loops over virtual ranks in Python, so its wall time
grows with ``nranks`` even though the *simulated* communication cost is
what the ledger records; the fused engine runs one vectorized kernel on
the global array and charges the ledger in O(1) from the precomputed
:class:`~repro.util.ledger.CostTable`.  Both modes charge bit-identical
ledger counts (see ``tests/test_exec_modes.py``), so the fused speedup is
pure overhead removal.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_micro_kernels.py --quick   # CI
    PYTHONPATH=src python benchmarks/bench_micro_kernels.py --quick --check

``--check`` exits nonzero unless fused is at least as fast as per-rank at
nranks=64 for SpMM and column dots, AND the low-synchronization
orthogonalization engine meets its budget (CGS2-1r: <= 2 reductions per
Arnoldi step and >= 1.5x MGS wall-clock on the 40-block p=8 basis at
equal final orthogonality), AND the execution-plan compiler honors its
oracle contract (bit-identical counts and iterates vs the interpreter,
>= 1.5x wall-clock on the full-size 40-step cycle), AND sketch-whitened
recycled-pair maintenance beats the full-space re-derivation by >= 1.5x
modeled time with zero maintenance reductions per cycle and equal solve
convergence — the repo's perf regression gates.

Also collectable by pytest (``pytest benchmarks/bench_micro_kernels.py``)
via :func:`test_fused_not_slower_at_64_ranks`, following the suite's
pattern of shipping each benchmark with a shape-assertion test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.direct.triangular import _levels_by_row_reference, _levels_frontier
from repro.distla.distcsr import DistributedCSR
from repro.distla.distqr import distributed_cholqr
from repro.distla.distvec import DistributedBlockVector
from repro.simmpi.grid import VirtualGrid
from repro.util.execmode import use_exec_mode

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"

# grid 96 -> n = 9216, the size regime of the repo's simulated scaling
# studies (benchmarks/bench_fig7_strong_scaling.py and friends)
FULL = {"grid": 96, "p": 8, "nranks": (1, 16, 64, 256), "repeats": 11,
        "ortho_blocks": 40}
QUICK = {"grid": 64, "p": 8, "nranks": (1, 64), "repeats": 3,
         "ortho_blocks": 40}


def laplacian_2d(nx: int) -> sp.csr_matrix:
    e = np.ones(nx)
    t = sp.diags([-e[:-1], 2.0 * e, -e[:-1]], [-1, 0, 1])
    eye = sp.eye(nx)
    return (sp.kron(eye, t) + sp.kron(t, eye)).tocsr()


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (min is robust to scheduler noise)."""
    fn()  # warm up caches / lazy builds
    fn()
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernels(cfg: dict) -> list[dict]:
    a = laplacian_2d(cfg["grid"])
    n, p = a.shape[0], cfg["p"]
    rng = np.random.default_rng(20260705)
    x = rng.standard_normal((n, p))
    y = rng.standard_normal((n, p))
    for _ in range(50):  # spin up CPU clocks so config #1 is not penalized
        a @ x
    rows = []
    for nranks in cfg["nranks"]:
        grid = VirtualGrid(n, nranks)
        dcsr = DistributedCSR(a, grid)
        vecs = {}
        for mode in ("per_rank", "fused"):
            with use_exec_mode(mode):
                vecs[mode] = (DistributedBlockVector.from_global(grid, x),
                              DistributedBlockVector.from_global(grid, y))
        kernels = {
            "spmm": lambda dx, dy: dcsr.matmat(x),
            "col_dots": lambda dx, dy: dx.col_dots(dy),
            "cholqr": lambda dx, dy: distributed_cholqr(dx),
        }
        # time the two modes back-to-back per kernel so they face the same
        # heap / clock state and the ratio is meaningful
        for kernel, fn in kernels.items():
            for mode in ("per_rank", "fused"):
                dx, dy = vecs[mode]
                with use_exec_mode(mode):
                    seconds = _time(lambda: fn(dx, dy), cfg["repeats"])
                rows.append({"kernel": kernel, "nranks": nranks, "mode": mode,
                             "seconds": seconds})
    return rows


def bench_level_schedule(cfg: dict) -> list[dict]:
    """Level-schedule construction: frontier-batched vs per-row reference.

    Two DAG shapes, matching where :class:`~repro.direct.triangular.
    LevelSchedule` is built in practice:

    * ``global_lu`` — the L factor of the benchmark Laplacian's LU: deep
      and skinny (the adaptive fallback handles the narrow tail);
    * ``block_diag`` — 64 subdomain factors concatenated block-diagonally,
      the shape :func:`~repro.direct.triangular.concat_factors` analyzes
      for the Schwarz preconditioner: wide frontiers, where the batched
      propagation wins by an order of magnitude.
    """
    import scipy.sparse.linalg as spla

    a = laplacian_2d(cfg["grid"]).tocsc()
    sub = laplacian_2d(max(cfg["grid"] // 4, 4)).tocsc()
    workloads = {
        "global_lu": sp.tril(sp.csr_matrix(spla.splu(a).L), k=-1).tocsr(),
        "block_diag": sp.block_diag(
            [sp.tril(sp.csr_matrix(spla.splu(sub).L), k=-1)] * 64,
            format="csr"),
    }
    impls = {"reference": _levels_by_row_reference,
             "frontier": _levels_frontier}
    rows = []
    for workload, strict in workloads.items():
        n = strict.shape[0]
        ref = impls["reference"](n, strict.indptr, strict.indices)
        assert np.array_equal(ref, impls["frontier"](
            n, strict.indptr, strict.indices))
        for mode, fn in impls.items():
            seconds = _time(lambda: fn(n, strict.indptr, strict.indices),
                            cfg["repeats"])
            rows.append({"kernel": "level_schedule", "workload": workload,
                         "nnz": int(strict.nnz), "n": n, "mode": mode,
                         "seconds": seconds})
    return rows


def bench_orthogonalization(cfg: dict) -> dict:
    """Low-synchronization block Arnoldi engines vs the MGS oracle.

    Builds a ``cfg["ortho_blocks"]``-block, width-``p`` orthonormal basis
    (the 40-block p=8 configuration of the headline claim) with each engine
    and with column-wise MGS, measuring wall time, ledger-counted
    reductions per step, and the final loss of orthogonality
    ``|I - Q^H Q|_F``.  CGS2-1r must deliver MGS-quality orthogonality at
    <= 2 reductions per step and >= 1.5x the wall-clock speed — the gate
    in :func:`check_gate`.
    """
    from repro.la.orthogonalization import (LOW_SYNC_SCHEMES, householder_qr,
                                            make_arnoldi_engine, project_out)
    from repro.util import ledger as ledger_mod
    from repro.util.ledger import CostLedger

    n, p = cfg["grid"] ** 2, cfg["p"]
    blocks = cfg["ortho_blocks"]
    rng = np.random.default_rng(20260705)
    v1, _ = householder_qr(rng.standard_normal((n, p)))
    ws = [rng.standard_normal((n, p)) for _ in range(blocks)]

    def build(scheme):
        led = CostLedger()
        per_step = []
        with ledger_mod.install(led):
            if scheme == "mgs":
                q_mat = v1
                for w in ws:
                    before = led.counts()[0]
                    w2, _ = project_out(q_mat, w, scheme="mgs")
                    q, _ = householder_qr(w2)
                    per_step.append(led.counts()[0] - before)
                    q_mat = np.concatenate([q_mat, q], axis=1)
                qfull = q_mat
            else:
                eng = make_arnoldi_engine(scheme, max_cols=(blocks + 1) * p)
                eng.begin(v1)
                basis = [v1]
                for w in ws:
                    before = led.counts()[0]
                    q, _h, _r, _rank, _e = eng.step(basis, w)
                    per_step.append(led.counts()[0] - before)
                    basis.append(q)
                qfull = np.concatenate(basis, axis=1)
        g = qfull.T @ qfull
        loo = float(np.linalg.norm(g - np.eye(g.shape[0])))
        return per_step, loo

    out = {}
    for scheme in ("mgs",) + tuple(LOW_SYNC_SCHEMES):
        per_step, loo = build(scheme)
        seconds = _time(lambda: build(scheme), cfg["repeats"])
        out[scheme] = {
            "seconds": seconds, "loss_of_orthogonality": loo,
            "reductions_total": int(sum(per_step)),
            "reductions_per_step_max": int(max(per_step)),
            "reductions_last_step": int(per_step[-1]),
        }
    for scheme, row in out.items():
        row["speedup_over_mgs"] = out["mgs"]["seconds"] / row["seconds"]
    return out


def bench_plan(cfg: dict) -> dict:
    """Execution-plan compiler vs the interpreted cycle (the PR-6 gate).

    Runs the full 40-step p=8 block-Arnoldi cycle — the Krylov hot path —
    with the operator as a fused-mode :class:`DistributedCSR` SpMM at
    nranks=64, in both ``-hpddm_plan`` modes.  The compiled mode must charge
    a bit-identical ledger and produce bitwise-equal iterates (the oracle
    contract); its wall-clock win is pure interpreter overhead removal:
    per-step ``np.concatenate`` re-stacking of the basis (the arena hands
    out slab views instead) and per-call ledger charge re-derivation
    (pre-bound :class:`~repro.plan.ir.NodeCost` tables instead).
    """
    from repro.krylov.cycle import block_arnoldi_cycle
    from repro.la.orthogonalization import householder_qr
    from repro.util import ledger as ledger_mod

    a = laplacian_2d(cfg["grid"])
    n, p = a.shape[0], cfg["p"]
    steps = cfg["ortho_blocks"]
    grid = VirtualGrid(n, 64)
    dcsr = DistributedCSR(a, grid)
    rng = np.random.default_rng(20260705)
    v1, s1 = householder_qr(rng.standard_normal((n, p)))

    def cycle(plan):
        with use_exec_mode("fused"), ledger_mod.install() as led:
            st = block_arnoldi_cycle(
                dcsr.matmat, lambda v: v, v1.copy(), s1.copy(),
                max_steps=steps, ortho="cgs2_1r", identity_m=True, plan=plan)
        return st, led

    st_i, led_i = cycle("interpret")
    st_c, led_c = cycle("compiled")
    out = {
        "problem": {"n": n, "p": p, "steps": steps, "nranks": 64,
                    "ortho": "cgs2_1r"},
        "counts_identical": led_i.counts() == led_c.counts(),
        "iterates_identical": bool(
            np.array_equal(st_i.v_stack(), st_c.v_stack())
            and np.array_equal(st_i.hqr.g, st_c.hqr.g)),
        "optimizer": dict(st_c.plan_stats or {}),
    }
    for plan in ("interpret", "compiled"):
        out[f"seconds_{plan}"] = _time(lambda: cycle(plan), cfg["repeats"])
    out["speedup_compiled"] = out["seconds_interpret"] / out["seconds_compiled"]
    return out


def bench_recycling(cfg: dict) -> dict:
    """Full-space vs sketch-whitened recycled-pair maintenance (ISSUE-8).

    Two measurements at m=40, k=16, nranks=64:

    * kernel level — one cycle's maintenance of ``(U_k, C_k)``: the full
      path re-derives the pair from the operator (a k-column SpMM plus a
      distributed Householder QR — global reductions, halo p2p and
      O(nnz k + n k^2) flops); the sketched path assembles the candidate
      sketch by LOCAL algebra on sketches already held (``S C_k`` from
      the recycler, ``S V`` from the engine's fused step reductions) and
      whitens against it — ZERO communication per cycle.  Costs common to
      both spaces (column norms, the strategy Gram, the eigenproblem)
      cancel and are excluded.  Gate: >= 1.5x modeled speedup.
    * solve level — a two-solve ``bgcrodr(m, k)`` recycling sequence
      under both ``-hpddm_recycle_space`` settings must converge with
      identical flags and boundedly more iterations, while the sketched
      run keeps its per-cycle reduction overhead O(1).
    """
    from repro import Options
    from repro import solve as api_solve
    from repro.krylov.gcrodr import _exact_pair
    from repro.krylov.sketch_recycle import SketchedRecycler
    from repro.la.orthogonalization import apply_sketch
    from repro.perfmodel.estimate import modeled_time
    from repro.util import ledger as ledger_mod
    from repro.util.ledger import CostLedger, Kernel

    n, p = cfg["grid"] ** 2, cfg["p"]
    m_restart, k, nranks, cycles = 40, 16, 64, 8
    a = (laplacian_2d(cfg["grid"]) + 4.0 * sp.eye(n)).tocsr()
    dcsr = DistributedCSR(a, VirtualGrid(n, nranks))
    rng = np.random.default_rng(20260705)
    u0 = rng.standard_normal((n, k))

    def maintain(space):
        with use_exec_mode("fused"):
            with ledger_mod.install():   # setup: common, not measured
                u, c = _exact_pair(u0, np.empty((n, k)), dcsr.matmat)
                rec = None
                if space == "sketched":
                    # adoption-boundary sketch: amortized once per solve
                    rec = SketchedRecycler(n=n, max_cols=m_restart + 1)
                    rec.adopt(u, c)
            led = CostLedger()
            with ledger_mod.install(led):
                for _ in range(cycles):
                    if rec is None:
                        u, c = _exact_pair(u, c, dcsr.matmat)
                    else:
                        # in-solver the candidate sketch is
                        # [S C_k | S V] @ qf — local algebra on sketches
                        # already held; stand in with the deterministic
                        # sketch and charge the same BLAS3 assembly cost
                        # (mixing width ~ m basis columns)
                        sc_raw = apply_sketch(c, rec.s, seed=rec.seed)
                        led.flop(Kernel.BLAS3, 4.0 * rec.s * m_restart * k)
                        u, c, ok = rec.whiten_local(u, c, sc_raw)
                        assert ok
        return led, led.reductions

    out = {"problem": {"n": n, "p": p, "m": m_restart, "k": k,
                       "nranks": nranks, "cycles": cycles}}
    for space in ("full", "sketched"):
        led, reds = maintain(space)
        out[space] = {
            "seconds": _time(lambda: maintain(space), cfg["repeats"]),
            "modeled_seconds": modeled_time(led, nranks,
                                            block_width=p).total,
            "reductions_per_cycle": reds / cycles,
        }
    out["modeled_speedup_sketched"] = (
        out["full"]["modeled_seconds"] / out["sketched"]["modeled_seconds"])

    solves = {}
    for space in ("full", "sketched"):
        opts = Options(krylov_method="bgcrodr", gmres_restart=m_restart,
                       recycle=k, orthogonalization="sketched",
                       recycle_space=space, tol=1e-8, max_it=400)
        b = np.random.default_rng(7).standard_normal((n, p))
        with ledger_mod.install() as led:
            r1 = api_solve(a, b, options=opts)
            r2 = api_solve(a, np.negative(b), options=opts,
                           recycle=r1.info["recycle"], same_system=False)
        steps = led.calls.get("arnoldi_step", 0)
        n_cycles = sum(getattr(r, "restarts", 0) + 1 for r in (r1, r2))
        solves[space] = {
            "iterations": r1.iterations + r2.iterations,
            "converged": bool(np.asarray(r1.converged).all()
                              and np.asarray(r2.converged).all()),
            "reductions": led.reductions,
            "overhead_per_cycle": (led.reductions - steps) / n_cycles,
        }
    out["solve"] = solves
    return out


def speedups(rows: list[dict]) -> dict[str, dict[str, float]]:
    """speedups[kernel][nranks] = per_rank time / fused time."""
    t = {(r["kernel"], r["nranks"], r["mode"]): r["seconds"] for r in rows}
    out: dict[str, dict[str, float]] = {}
    for kernel, nranks, mode in t:
        if mode != "fused":
            continue
        out.setdefault(kernel, {})[str(nranks)] = (
            t[(kernel, nranks, "per_rank")] / t[(kernel, nranks, "fused")])
    return out


def run(cfg: dict, out_path: Path | None) -> dict:
    rows = bench_kernels(cfg)
    ortho = bench_orthogonalization(cfg)
    plan = bench_plan(cfg)
    recycling = bench_recycling(cfg)
    sched_rows = bench_level_schedule(cfg)
    sched_t = {(r["workload"], r["mode"]): r["seconds"] for r in sched_rows}
    report = {
        "description": "fused vs per-rank execution of the simulated-MPI "
                       "substrate; seconds are best-of-N wall times",
        "problem": {"matrix": f"2-D Laplacian {cfg['grid']}x{cfg['grid']}",
                    "n": cfg["grid"] ** 2, "block_width_p": cfg["p"],
                    "repeats": cfg["repeats"]},
        "results": rows,
        "speedup_fused_over_per_rank": speedups(rows),
        "orthogonalization": {
            "problem": {"n": cfg["grid"] ** 2, "p": cfg["p"],
                        "blocks": cfg["ortho_blocks"]},
            "schemes": ortho,
        },
        "plan": plan,
        "recycling": recycling,
        "level_schedule": {
            "results": sched_rows,
            "speedup_frontier_over_reference": {
                w: sched_t[(w, "reference")] / sched_t[(w, "frontier")]
                for w in {r["workload"] for r in sched_rows}},
        },
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def print_report(report: dict) -> None:
    print(f"# {report['problem']['matrix']}, p={report['problem']['block_width_p']}")
    print(f"{'kernel':>10} {'nranks':>7} {'per_rank':>12} {'fused':>12} {'speedup':>8}")
    t = {(r["kernel"], r["nranks"], r["mode"]): r["seconds"]
         for r in report["results"]}
    for kernel in ("spmm", "col_dots", "cholqr"):
        for key in sorted({k[1] for k in t if k[0] == kernel}):
            pr, fu = t[(kernel, key, "per_rank")], t[(kernel, key, "fused")]
            print(f"{kernel:>10} {key:>7} {pr:>12.3e} {fu:>12.3e} {pr / fu:>7.1f}x")
    ortho = report.get("orthogonalization")
    if ortho:
        prob = ortho["problem"]
        print(f"\n# orthogonalization: {prob['blocks']}-block p={prob['p']} "
              f"basis, n={prob['n']}")
        print(f"{'scheme':>10} {'seconds':>12} {'vs mgs':>8} "
              f"{'reds/step':>10} {'loo':>10}")
        for scheme, row in ortho["schemes"].items():
            print(f"{scheme:>10} {row['seconds']:>12.3e} "
                  f"{row['speedup_over_mgs']:>7.1f}x "
                  f"{row['reductions_per_step_max']:>10d} "
                  f"{row['loss_of_orthogonality']:>10.1e}")
    plan = report.get("plan")
    if plan:
        prob = plan["problem"]
        stats = plan.get("optimizer", {})
        print(f"\n# execution plan: {prob['steps']}-step p={prob['p']} "
              f"{prob['ortho']} cycle, n={prob['n']}, nranks={prob['nranks']}")
        print(f"{'mode':>10} {'seconds':>12}   counts_identical="
              f"{plan['counts_identical']} iterates_identical="
              f"{plan['iterates_identical']}")
        print(f"{'interpret':>10} {plan['seconds_interpret']:>12.3e}")
        print(f"{'compiled':>10} {plan['seconds_compiled']:>12.3e} "
              f"{plan['speedup_compiled']:>7.2f}x  "
              f"(hoisted={stats.get('hoisted', 0)} "
              f"fused={stats.get('fused', 0)} "
              f"batched={stats.get('batched', 0)} "
              f"prebound={stats.get('prebound', 0)})")
    rec = report.get("recycling")
    if rec:
        prob = rec["problem"]
        print(f"\n# recycling: pair maintenance, m={prob['m']} k={prob['k']} "
              f"n={prob['n']}, nranks={prob['nranks']}")
        print(f"{'space':>10} {'seconds':>12} {'modeled':>12} {'reds/cyc':>9}")
        for space in ("full", "sketched"):
            row = rec[space]
            print(f"{space:>10} {row['seconds']:>12.3e} "
                  f"{row['modeled_seconds']:>12.3e} "
                  f"{row['reductions_per_cycle']:>9.1f}")
        print(f"{'':>10} modeled speedup "
              f"{rec['modeled_speedup_sketched']:.2f}x; solve iterations "
              f"full={rec['solve']['full']['iterations']} "
              f"sketched={rec['solve']['sketched']['iterations']} "
              f"(overhead/cycle "
              f"{rec['solve']['sketched']['overhead_per_cycle']:.2f})")
    sched = report.get("level_schedule")
    if sched:
        st = {(r["workload"], r["mode"]): r for r in sched["results"]}
        print(f"\n{'level_schedule':>14} {'workload':>11} {'reference':>12} "
              f"{'frontier':>12} {'speedup':>8}")
        for w, ratio in sorted(sched["speedup_frontier_over_reference"].items()):
            rr, fr = st[(w, "reference")], st[(w, "frontier")]
            print(f"{'nnz=' + str(rr['nnz']):>14} {w:>11} "
                  f"{rr['seconds']:>12.3e} {fr['seconds']:>12.3e} "
                  f"{ratio:>7.1f}x")


def check_gate(report: dict) -> list[str]:
    """Regression gates.

    1. fused must not lose to per-rank at nranks=64 (the exec-mode gate);
    2. the low-sync orthogonalization headline: CGS2-1r builds the
       40-block p=8 basis in <= 2 reductions per step at every depth,
       >= 1.5x faster than MGS, at equivalent final orthogonality;
    3. the plan compiler's oracle contract and wall-clock win;
    4. sketched recycling: pair maintenance >= 1.5x modeled speedup with
       at most one (in practice zero) maintenance reduction per cycle,
       equal solve convergence, O(1) per-cycle solve overhead.
    """
    failures = []
    for kernel in ("spmm", "col_dots"):
        ratio = report["speedup_fused_over_per_rank"].get(kernel, {}).get("64")
        if ratio is None:
            failures.append(f"{kernel}: no nranks=64 measurement")
        elif ratio < 1.0:
            failures.append(f"{kernel}: fused {1 / ratio:.2f}x SLOWER than "
                            "per_rank at nranks=64")
    ortho = report.get("orthogonalization", {}).get("schemes")
    if not ortho:
        failures.append("orthogonalization: no measurements")
        return failures
    mgs, low = ortho["mgs"], ortho["cgs2_1r"]
    if low["reductions_per_step_max"] > 2:
        failures.append(f"cgs2_1r: {low['reductions_per_step_max']} "
                        "reductions in a step (budget: 2)")
    if low["speedup_over_mgs"] < 1.5:
        failures.append(f"cgs2_1r: only {low['speedup_over_mgs']:.2f}x over "
                        "mgs (gate: 1.5x)")
    loo_cap = max(10.0 * mgs["loss_of_orthogonality"], 1e-12)
    if low["loss_of_orthogonality"] > loo_cap:
        failures.append(f"cgs2_1r: LOO {low['loss_of_orthogonality']:.1e} > "
                        f"{loo_cap:.1e} (10x the MGS oracle)")
    if ortho["cholqr2"]["reductions_per_step_max"] > 2:
        failures.append("cholqr2: reduction budget exceeded")
    if ortho["sketched"]["reductions_per_step_max"] > 1:
        failures.append("sketched: reduction budget exceeded")
    plan = report.get("plan")
    if not plan:
        failures.append("plan: no measurements")
        return failures
    if not plan["counts_identical"]:
        failures.append("plan: compiled ledger counts diverge from the "
                        "interpreter (oracle contract broken)")
    if not plan["iterates_identical"]:
        failures.append("plan: compiled iterates diverge bitwise from the "
                        "interpreter (oracle contract broken)")
    # the >= 1.5x headline holds at the full benchmark size (n = 96^2, the
    # regime of the scaling studies); the quick CI size (n = 64^2) has a
    # thinner GEMM-to-copy ratio and noisy small kernels, so it gates on
    # "compiled must not lose" only
    target = 1.5 if plan["problem"]["n"] >= 96 ** 2 else 1.0
    if plan["speedup_compiled"] < target:
        failures.append(f"plan: compiled only "
                        f"{plan['speedup_compiled']:.2f}x over interpret "
                        f"(gate: {target}x)")
    rec = report.get("recycling")
    if not rec:
        failures.append("recycling: no measurements")
        return failures
    if rec["modeled_speedup_sketched"] < 1.5:
        failures.append(f"recycling: sketched maintenance only "
                        f"{rec['modeled_speedup_sketched']:.2f}x over the "
                        "full-space re-derivation (gate: 1.5x modeled)")
    if rec["sketched"]["reductions_per_cycle"] > 1:
        failures.append(f"recycling: sketched maintenance pays "
                        f"{rec['sketched']['reductions_per_cycle']:.1f} "
                        "reductions/cycle (budget: 1)")
    sv_full, sv_sk = rec["solve"]["full"], rec["solve"]["sketched"]
    if sv_full["converged"] != sv_sk["converged"]:
        failures.append("recycling: full and sketched solves disagree on "
                        "convergence")
    if sv_sk["iterations"] > 1.75 * sv_full["iterations"] + 5:
        failures.append(f"recycling: sketched carrying costs "
                        f"{sv_sk['iterations']} iterations vs "
                        f"{sv_full['iterations']} full (quality bound)")
    if sv_sk["overhead_per_cycle"] > 8.0:
        failures.append(f"recycling: sketched solve overhead "
                        f"{sv_sk['overhead_per_cycle']:.2f} reductions/cycle "
                        "beyond one-per-step (O(1) budget: 8)")
    return failures


def test_fused_not_slower_at_64_ranks():
    """Pytest entry: the quick gate, runnable as part of the bench suite."""
    report = run(QUICK, out_path=None)
    assert not check_gate(report)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small problem, nranks {1, 64} only (CI-sized)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 if fused is slower than per_rank at nranks=64")
    ap.add_argument("--out", type=Path, default=None,
                    help=f"JSON output path (default {RESULTS_PATH}; "
                         "--quick runs do not write unless --out is given)")
    args = ap.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    out_path = args.out if args.out is not None else (
        None if args.quick else RESULTS_PATH)
    report = run(cfg, out_path)
    print_report(report)
    if out_path is not None:
        print(f"\nwrote {out_path}")
    if args.check:
        failures = check_gate(report)
        if failures:
            print("PERF GATE FAILED:\n  " + "\n  ".join(failures))
            return 1
        print("perf gate passed: fused >= per_rank at nranks=64")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
