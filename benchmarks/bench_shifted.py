"""Benchmark of the shifted-system family engine on sweep workloads.

Two paper-shaped sweeps, each solved twice — once as a *family* on one
shared block-Arnoldi basis (``api.solve(..., shifts=[...])``) and once as
per-shift sequential solves (the universal baseline practice and the
bit-exact convergence oracle):

* **Maxwell frequency sweep** — edge-element stiffness/mass pair
  ``(K, M)`` on a tetrahedral box (PEC walls eliminated), solved at
  ``k`` damped frequencies ``sigma_i = -omega_i^2 (eps + i sigma/omega)``
  with uniform chamber materials: one ``SparseLU(M)`` and one Arnoldi
  sweep answer the whole frequency response;
* **Tikhonov lambda-sweep** — regularized normal equations
  ``(A^T A + lambda_i I) w_i = z_i`` across a log-spaced regularization
  path, one random GCV probe ``z_i`` per ``lambda_i`` (the randomized
  generalized-cross-validation workload).  The sweep is sized in the
  enlarged-basis regime (``restart * k`` on the order of ``n``) where one
  shared 8-wide cycle captures the whole path; outside it the family
  still pays far fewer reductions, but the width-8 flop term can eat the
  modeled win on this very ill-conditioned Gram operator.

Every number is ledger-derived: reductions per family, and modeled
seconds from :func:`repro.perfmodel.modeled_time` at ``nranks=64`` (the
paper's Curie configuration) — no wall clock, so the checked-in JSON is
byte-deterministic.

Gates (``--check``):

* modeled-time speedup of shared-basis over sequential >= ``GATE_SPEEDUP``
  (3x) at ``k = 8`` shifts, nranks=64, on **both** workloads;
* the reduction headline: the k=8 family pays <= ``GATE_FAMILY_RATIO``
  (1.25x) the global reductions of a single (k=1) solve;
* every shift of every workload converges, family and sequential alike.

Usage::

    PYTHONPATH=src python benchmarks/bench_shifted.py            # full
    PYTHONPATH=src python benchmarks/bench_shifted.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/bench_shifted.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np
import scipy.sparse as sp

from repro import api
from repro.krylov.shifted import sequential_shifted_solves, shifted_matrix
from repro.perfmodel import modeled_time
from repro.util import ledger
from repro.util.ledger import CostLedger
from repro.util.options import Options

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_shifted.json"

NRANKS = 64               #: rank count for modeled time (paper's Curie runs)
GATE_SPEEDUP = 3.0        #: shared-basis over sequential, modeled, k=8
GATE_FAMILY_RATIO = 1.25  #: k=8 family reductions over a single solve

#: mesh resolution, Tikhonov operator size and restart, family width
FULL = {"mesh_n": 6, "tikhonov_n": 700, "tikhonov_restart": 90, "k": 8}
QUICK = {"mesh_n": 4, "tikhonov_n": 400, "tikhonov_restart": 60, "k": 8}


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
def maxwell_sweep(mesh_n: int, k: int):
    """Edge-element ``(K, M)`` pair + ``k`` damped frequency shifts."""
    from repro.problems.maxwell import (box_tet_mesh, _scatter_assemble,
                                        edge_element_matrices)

    mesh = box_tet_mesh(mesh_n)
    ke, me = edge_element_matrices(mesh)
    k_full = _scatter_assemble(mesh, ke)
    m_full = _scatter_assemble(mesh, me)
    free = np.setdiff1d(np.arange(mesh.n_edges), mesh.boundary_edges)
    stiff = sp.csr_matrix(k_full[free][:, free])
    mass = sp.csr_matrix(m_full[free][:, free])
    omegas = np.linspace(1.0, 2.0, k)
    eps_bg, sigma_bg = 2.0, 1.0  # uniform chamber materials
    shifts = [-(w ** 2) * (eps_bg + 1j * sigma_bg / w) for w in omegas]
    b = np.random.default_rng(42).standard_normal(stiff.shape[0])
    opts = Options(krylov_method="bgmres", gmres_restart=40, tol=1e-8,
                   max_it=6000, orthogonalization="cgs2_1r")
    return {"a": stiff, "mass": mass, "b": b, "shifts": shifts,
            "options": opts, "omegas": [float(w) for w in omegas]}


def tikhonov_sweep(n: int, k: int, restart: int):
    """Regularized normal equations across a log-spaced lambda path."""
    rng = np.random.default_rng(7)
    # mildly ill-posed second-difference-smoothed operator
    d = sp.diags([-np.ones(n - 1), np.ones(n)], [-1, 0], format="csr")
    a_op = (d.T @ d + 0.01 * sp.eye(n)).tocsr()
    gram = (a_op.T @ a_op).tocsr()
    b = rng.standard_normal((n, k))  # one GCV probe per lambda
    shifts = [float(s) for s in np.logspace(-3, -2, k)]
    opts = Options(krylov_method="bgcrodr", gmres_restart=restart,
                   recycle=10, tol=1e-8, max_it=6000,
                   orthogonalization="cgs2_1r")
    return {"a": gram, "mass": None, "b": b, "shifts": shifts,
            "options": opts}


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------
def _ledgered(fn):
    led = CostLedger()
    with ledger.install(led):
        out = fn()
    return out, led


def measure(workload: dict, name: str) -> dict:
    a, mass, b = workload["a"], workload["mass"], workload["b"]
    shifts, opts = workload["shifts"], workload["options"]
    k = len(shifts)

    b_one = b[:, :1] if b.ndim == 2 else b  # single solve, single probe
    fam, led_fam = _ledgered(lambda: api.solve(
        a, b, options=opts, shifts=shifts, mass=mass))
    one, led_one = _ledgered(lambda: api.solve(
        a, b_one, options=opts, shifts=shifts[:1], mass=mass))
    seq, led_seq = _ledgered(lambda: sequential_shifted_solves(
        a, b, shifts, mass=mass, options=opts))

    # oracle parity: family and sequential land on the same solutions
    max_gap = 0.0
    for i, (sigma, rf) in enumerate(zip(fam.shifts, fam.results)):
        b_i = b[:, i] if b.ndim == 2 else b
        rel = (np.linalg.norm(b_i - shifted_matrix(a, sigma, mass)
                              @ np.ravel(rf.x))
               / np.linalg.norm(b_i))
        max_gap = max(max_gap, float(rel))

    t_fam = float(modeled_time(led_fam, NRANKS, block_width=k).total)
    t_seq = float(modeled_time(led_seq, NRANKS, block_width=1).total)
    reds_fam = led_fam.counts()[0]
    reds_one = led_one.counts()[0]
    reds_seq = led_seq.counts()[0]
    return {
        "workload": name,
        "n": int(a.shape[0]),
        "k": k,
        "method": fam.method,
        "all_converged": bool(fam.converged.all()
                              and seq.converged.all()
                              and one.converged.all()),
        "family_iterations": int(fam.iterations),
        "sequential_iterations": int(seq.iterations),
        "max_true_residual": max_gap,
        "reductions": {
            "family_k": reds_fam,
            "single_solve": reds_one,
            "sequential_k": reds_seq,
            "family_over_single": reds_fam / reds_one,
            "sequential_over_family": reds_seq / reds_fam,
        },
        "modeled_seconds": {
            "family": t_fam,
            "sequential": t_seq,
            "nranks": NRANKS,
        },
        "modeled_speedup": t_seq / t_fam,
    }


def run(profile: dict, out_path: Path | None) -> dict:
    wall0 = time.perf_counter()
    k = profile["k"]
    maxwell = measure(maxwell_sweep(profile["mesh_n"], k), "maxwell")
    tikhonov = measure(tikhonov_sweep(profile["tikhonov_n"], k,
                                      profile["tikhonov_restart"]),
                       "tikhonov")
    wall = time.perf_counter() - wall0

    worst_speedup = min(maxwell["modeled_speedup"],
                        tikhonov["modeled_speedup"])
    worst_ratio = max(maxwell["reductions"]["family_over_single"],
                      tikhonov["reductions"]["family_over_single"])
    converged = maxwell["all_converged"] and tikhonov["all_converged"]
    gate = {
        "required_speedup": GATE_SPEEDUP,
        "speedup_maxwell": maxwell["modeled_speedup"],
        "speedup_tikhonov": tikhonov["modeled_speedup"],
        "family_ratio_max": GATE_FAMILY_RATIO,
        "family_over_single_maxwell":
            maxwell["reductions"]["family_over_single"],
        "family_over_single_tikhonov":
            tikhonov["reductions"]["family_over_single"],
        "all_converged": converged,
        "passed": (worst_speedup >= GATE_SPEEDUP
                   and worst_ratio <= GATE_FAMILY_RATIO
                   and converged),
    }
    report = {
        "description": "frequency/regularization sweeps solved as one "
                       "shared-basis shift family vs per-shift sequential "
                       "solves; reductions from the ledger, seconds from "
                       f"the perfmodel at nranks={NRANKS}",
        "profile": {key: profile[key] for key in sorted(profile)},
        "wall_seconds_informational": wall,
        "maxwell_frequency_sweep": maxwell,
        "tikhonov_lambda_sweep": tikhonov,
        "gate": gate,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        payload = dict(report)
        payload.pop("wall_seconds_informational")  # keep the file diffable
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
    return report


def print_report(report: dict) -> None:
    print(f"# shifted-family engine, modeled at nranks={NRANKS}")
    for key in ("maxwell_frequency_sweep", "tikhonov_lambda_sweep"):
        r = report[key]
        reds = r["reductions"]
        print(f"{r['workload']:>9}: n={r['n']} k={r['k']} "
              f"[{r['method']}]  reductions family/single/seq = "
              f"{reds['family_k']}/{reds['single_solve']}/"
              f"{reds['sequential_k']}  "
              f"modeled speedup {r['modeled_speedup']:.1f}x  "
              f"converged {r['all_converged']} "
              f"(worst residual {r['max_true_residual']:.1e})")
    g = report["gate"]
    print(f" gate: speedup >= {g['required_speedup']:.0f}x "
          f"(maxwell {g['speedup_maxwell']:.1f}x, "
          f"tikhonov {g['speedup_tikhonov']:.1f}x) | "
          f"k-family <= {g['family_ratio_max']}x one solve "
          f"(maxwell {g['family_over_single_maxwell']:.2f}x, "
          f"tikhonov {g['family_over_single_tikhonov']:.2f}x) | "
          f"{'PASS' if g['passed'] else 'FAIL'}")


def test_shifted_gates():
    """Pytest entry: the quick gate, runnable as part of the bench suite."""
    report = run(QUICK, out_path=None)
    assert report["gate"]["passed"], report["gate"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized problems instead of the full profile")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless all gates pass")
    ap.add_argument("--out", type=Path, default=None,
                    help=f"JSON output path (default {RESULTS_PATH}; "
                         "--quick runs do not write unless --out is given)")
    args = ap.parse_args(argv)
    profile = QUICK if args.quick else FULL
    out_path = args.out if args.out is not None else (
        None if args.quick else RESULTS_PATH)
    report = run(profile, out_path)
    print_report(report)
    if out_path is not None:
        print(f"\nwrote {out_path}")
    if args.check and not report["gate"]["passed"]:
        print("PERF GATE FAILED:", json.dumps(report["gate"], indent=2))
        return 1
    if args.check:
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
