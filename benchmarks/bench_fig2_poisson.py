"""Fig. 2 — Poisson with four varying RHSs: FGCRO-DR vs FGMRES.

The paper (section IV-B): one 283M-unknown Poisson operator, the RHS
family ``f_i(.; nu_i)``, GAMG preconditioning, FGMRES(30) vs
FGCRO-DR(30,10) with the same-system fast path; recycling cuts 124 -> 90
iterations and ~30% of the cumulative solve time.

Reproduction at laptop scale, two regimes:

* **2a/2b analogue** — the faithful pairing: flexible methods under a
  GMRES(3)-smoothed AMG.  At a few thousand unknowns the AMG leaves no
  slow modes to recycle (see EXPERIMENTS.md), so the assertion is only
  "recycling never hurts".
* **2c/2d analogue** — a moderate-strength linear preconditioner (SSOR)
  that puts per-RHS iteration counts in the paper's range (30-130); here
  the paper's headline reproduces: double-digit relative gain from the
  second RHS on and a >=15% cumulative iteration reduction.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Options, Solver
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.simple import SSORPreconditioner
from repro.problems.poisson import PAPER_NUS, poisson_2d

from common import downsample_history, format_table, write_result

NX = 80
TOL = 1e-8


def _sequence(prob, m, options):
    s = Solver(m, options=options)
    out = []
    for nu in PAPER_NUS:
        t0 = time.perf_counter()
        res = s.solve(prob.a, prob.rhs(nu))
        dt = time.perf_counter() - t0
        assert res.converged.all()
        out.append((nu, res.iterations, dt, res))
    return out


@pytest.fixture(scope="module")
def fig2_data():
    prob = poisson_2d(NX)
    data = {"n": prob.n}

    # --- 2c/2d analogue: SSOR regime (recycling pays) --------------------
    ssor = SSORPreconditioner(prob.a)
    gm = Options(krylov_method="gmres", gmres_restart=30, tol=TOL,
                 variant="right", max_it=20000)
    gc = gm.replace(krylov_method="gcrodr", recycle=10,
                    recycle_same_system=True)
    data["ssor_gmres"] = _sequence(prob, ssor, gm)
    data["ssor_gcrodr"] = _sequence(prob, ssor, gc)

    # --- 2a/2b analogue: variable AMG, flexible methods -------------------
    amg = SmoothedAggregationAMG(prob.a, smoother="gmres",
                                 smoother_iterations=3)
    fgm = gm.replace(variant="flexible")
    fgc = gc.replace(variant="flexible")
    data["amg_fgmres"] = _sequence(prob, amg, fgm)
    data["amg_fgcrodr"] = _sequence(prob, amg, fgc)
    data["prob"] = prob
    data["ssor"] = ssor
    return data


def _totals(seq):
    return sum(r[1] for r in seq), sum(r[2] for r in seq)


def test_fig2_recycling_gain(benchmark, fig2_data):
    """Headline: GCRO-DR needs fewer cumulative iterations than GMRES."""
    benchmark(fig2_data["ssor"].apply,
              fig2_data["prob"].rhs_block())  # kernel: one SSOR block apply
    it_g, t_g = _totals(fig2_data["ssor_gmres"])
    it_r, t_r = _totals(fig2_data["ssor_gcrodr"])
    assert it_r < 0.85 * it_g, f"recycling gain too small: {it_g} vs {it_r}"
    # per-RHS gains from the second solve on (paper Fig. 2b pattern)
    for (nu, ig, _, _), (_, ir, _, _) in list(zip(
            fig2_data["ssor_gmres"], fig2_data["ssor_gcrodr"]))[1:]:
        assert ir <= ig + 12

    it_fg, _ = _totals(fig2_data["amg_fgmres"])
    it_fr, _ = _totals(fig2_data["amg_fgcrodr"])
    assert it_fr <= it_fg + 4  # never substantially worse under strong AMG

    rows = []
    for regime, g_key, r_key, g_lab, r_lab in [
            ("AMG[GMRES(3)] (Fig.2a/b)", "amg_fgmres", "amg_fgcrodr",
             "FGMRES(30)", "FGCRO-DR(30,10)"),
            ("SSOR (Fig.2c/d regime)", "ssor_gmres", "ssor_gcrodr",
             "GMRES(30)", "GCRO-DR(30,10)")]:
        for lab, key in ((g_lab, g_key), (r_lab, r_key)):
            seq = fig2_data[key]
            tot_i, tot_t = _totals(seq)
            rows.append((regime, lab) + tuple(r[1] for r in seq)
                        + (tot_i, round(tot_t, 3)))
    gain = 100.0 * (it_g - it_r) / it_g
    table = format_table(
        ["regime", "method", "rhs1", "rhs2", "rhs3", "rhs4", "total", "time(s)"],
        rows,
        title=f"Fig. 2 reproduction - Poisson ({fig2_data['n']} unknowns), "
              f"4 varying RHSs, tol={TOL:g}",
        note=(f"cumulative recycling gain (SSOR regime): {gain:+.1f}% "
              f"iterations (paper Fig. 2b: +30.5% time).\n"
              "Under the strong AMG the preconditioned spectrum has no "
              "deflatable tail at this scale;\nthe paper's 283M-unknown "
              "GAMG leaves slow modes that a few-thousand-unknown grid "
              "does not."))
    write_result("fig2_poisson", table)


def test_fig2_convergence_curves(benchmark, fig2_data):
    """Fig. 2a analogue: per-iteration residual histories."""
    prob = fig2_data["prob"]
    benchmark(lambda: prob.a @ prob.rhs_block())  # kernel: one SpMM
    lines = ["Fig. 2a analogue - convergence histories (iteration, relative "
             "residual), concatenated over the 4 RHSs", ""]
    for lab, key in [("GMRES(30)+SSOR", "ssor_gmres"),
                     ("GCRO-DR(30,10)+SSOR", "ssor_gcrodr")]:
        all_res = np.concatenate([r[3].history.matrix()[:, 0]
                                  for r in fig2_data[key]])
        lines.append(lab)
        for it, v in downsample_history(all_res):
            lines.append(f"  {it:>5} {v:.3e}")
        # every solve reaches the tolerance
        for r in fig2_data[key]:
            assert r[3].residual_norms[0] <= TOL
    write_result("fig2_convergence", "\n".join(lines) + "\n")


def test_benchmark_fig2_gcrodr_solve(benchmark, fig2_data):
    """Timing row: one recycled GCRO-DR solve over the SSOR preconditioner."""
    prob = fig2_data["prob"]
    ssor = fig2_data["ssor"]
    opts = Options(krylov_method="gcrodr", gmres_restart=30, recycle=10,
                   tol=TOL, variant="right", max_it=20000,
                   recycle_same_system=True)
    s = Solver(ssor, options=opts)
    s.solve(prob.a, prob.rhs(PAPER_NUS[0]))  # warm the recycled space

    def solve_next():
        return s.solve(prob.a, prob.rhs(PAPER_NUS[1]))

    res = benchmark(solve_next)
    assert res.converged.all()
