"""Benchmark of the async service under seeded multi-tenant traffic.

Replays one deterministic :class:`~repro.service.traffic.TrafficConfig`
schedule — Zipf-skewed operator popularity, exponential open-loop
arrivals, bursty tenants — through both service front ends and compares
them on *modeled* time (ledger counts through the perfmodel at
``nranks=64``; no wall clock anywhere, so every number in the report is
byte-deterministic):

* **sync** — the blocking :class:`repro.SolveService` oracle on one
  serial lane (the PR-3 behaviour);
* **async** — :class:`repro.AsyncSolveService`: consistent-hash sharding
  across independent lanes, earliest-deadline-first dispatch, and
  cross-batch pipelining.

A third scenario re-runs the async mode with bursty arrivals against a
bounded per-shard queue (``service_queue_depth``) to measure admission
control: the rejection rate must be strictly positive (backpressure
fires) but bounded (the service still absorbs most of the burst).

A fourth scenario turns on ``family_fraction``: a slice of the schedule
arrives as shifted-family requests (``shifts=[...]``), which the service
coalesces by ``(operator, rhs)`` and solves on one shared block-Arnoldi
basis per dispatch.

Gates (``--check``):

* async modeled throughput >= ``GATE_SPEEDUP`` x sync at equal inputs,
  with every admitted request converged in both modes;
* async p99 latency <= ``GATE_P99_MAX`` modeled seconds;
* bounded-queue rejection rate in ``(0, GATE_REJECTION_MAX]``;
* the family scenario solves every family request it admits, in
  strictly fewer family batches than family requests (coalescing).

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic.py            # full, 10^4
    PYTHONPATH=src python benchmarks/bench_traffic.py --quick    # CI, 10^3
    PYTHONPATH=src python benchmarks/bench_traffic.py --quick --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.service.traffic import TrafficConfig, run_traffic

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_traffic.json"

GATE_SPEEDUP = 1.5        #: async over sync modeled throughput
GATE_P99_MAX = 5e-3       #: modeled seconds, async open-loop p99
GATE_REJECTION_MAX = 0.5  #: bounded-burst scenario must reject <= this

#: open-loop rate just under async capacity (~5.5e5/s at this config):
#: the async queues stay stable so tail latency is bounded, while the
#: sync lane (~2e5/s) saturates — the throughput gap the gate measures
FULL = TrafficConfig(n_requests=10_000, n_operators=8, grid=8, zipf_s=1.1,
                     arrival="open", rate=4.5e5, shards=4, pmax=16,
                     queue_depth=0)
QUICK = dataclasses.replace(FULL, n_requests=1_000)

#: the admission-control scenario: bursty tenants at ~20% overload
#: against bounded per-shard queues (rejections expected, not dominant)
def _burst_config(base: TrafficConfig) -> TrafficConfig:
    return dataclasses.replace(base, rate=6e5, burst_every=16,
                               burst_size=12, queue_depth=16, deadline=2e-3)


#: the shifted-family scenario: 15% of arrivals carry ``shifts=[...]``
#: (frequency-sweep style families); rate is lowered because each family
#: is a k-wide block solve, several times the work of a scalar request
def _family_config(base: TrafficConfig) -> TrafficConfig:
    return dataclasses.replace(base, rate=1e5, family_fraction=0.15,
                               family_shifts=4)


def run(cfg: TrafficConfig, out_path: Path | None) -> dict:
    wall0 = time.perf_counter()
    sync = run_traffic(cfg, "sync")
    async_ = run_traffic(cfg, "async")
    burst = run_traffic(_burst_config(cfg), "async")
    family = run_traffic(_family_config(cfg), "async")
    wall = time.perf_counter() - wall0

    speedup = async_["throughput"] / sync["throughput"]
    equal_correctness = (sync["all_converged"] and async_["all_converged"]
                         and sync["n_admitted"] == async_["n_admitted"])
    fam = family["family"]
    family_ok = (family["all_converged"]
                 and fam["requests"] > 0
                 and 0 < fam["batches"] < fam["requests"])
    gate = {
        "required_speedup": GATE_SPEEDUP,
        "speedup": speedup,
        "p99_max": GATE_P99_MAX,
        "p99": async_["latency"]["p99"],
        "rejection_max": GATE_REJECTION_MAX,
        "burst_rejection_rate": burst["rejection_rate"],
        "equal_correctness": equal_correctness,
        "family_requests": fam["requests"],
        "family_batches": fam["batches"],
        "family_coalesced_and_converged": family_ok,
        "passed": (speedup >= GATE_SPEEDUP
                   and equal_correctness
                   and async_["latency"]["p99"] <= GATE_P99_MAX
                   and 0.0 < burst["rejection_rate"] <= GATE_REJECTION_MAX
                   and family_ok),
    }
    # informational only — everything gated is modeled and deterministic
    report = {
        "description": "seeded Zipf/bursty traffic replayed through the "
                       "sync oracle and the async sharded scheduler; all "
                       "latencies/throughputs are modeled seconds from "
                       "ledger counts (nranks=64)",
        "wall_seconds_informational": wall,
        "sync": sync,
        "async": async_,
        "burst_bounded_queue": burst,
        "family_mix": family,
        "throughput_speedup_async_over_sync": speedup,
        "gate": gate,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        payload = dict(report)
        payload.pop("wall_seconds_informational")  # keep the file diffable
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
    return report


def print_report(report: dict) -> None:
    cfg = report["sync"]["config"]
    print(f"# {cfg['n_requests']} requests, {cfg['n_operators']} operators "
          f"(zipf {cfg['zipf_s']}), {cfg['shards']} shards, "
          f"pmax={cfg['pmax']}, open-loop rate {cfg['rate']:.0e}/s")
    for mode in ("sync", "async"):
        r = report[mode]
        lat = r["latency"]
        print(f"{mode:>6}: throughput {r['throughput']:>12.0f}/s  "
              f"p50 {lat['p50']:.2e}  p99 {lat['p99']:.2e}  "
              f"batches {r['batches']['count']} "
              f"(mean width {r['batches']['mean_width']:.1f})  "
              f"cache hit {r['cache']['hit_rate']:.2f}  "
              f"converged {r['all_converged']}")
    b = report["burst_bounded_queue"]
    print(f" burst: rejection rate {b['rejection_rate']:.3f} "
          f"({b['n_rejected']}/{b['n_requests']}, "
          f"reasons {b['rejection_reasons']}), "
          f"queue high water {max(b['queue_high_water'])}, "
          f"deadline misses {b['deadline_misses']}")
    fam = report["family_mix"]["family"]
    print(f"family: {fam['requests']} family requests coalesced into "
          f"{fam['batches']} batches ({fam['shifts_solved']} shifts "
          f"solved), converged {report['family_mix']['all_converged']}")
    g = report["gate"]
    print(f" speedup async/sync: {g['speedup']:.2f}x "
          f"(gate {g['required_speedup']:.1f}x) | p99 {g['p99']:.2e} "
          f"(max {g['p99_max']:.0e}) | "
          f"burst rejections {g['burst_rejection_rate']:.3f} "
          f"(0 < r <= {g['rejection_max']}) | "
          f"families {g['family_requests']}->{g['family_batches']} batches | "
          f"{'PASS' if g['passed'] else 'FAIL'}")


def test_traffic_gates():
    """Pytest entry: the quick gate, runnable as part of the bench suite."""
    report = run(QUICK, out_path=None)
    assert report["gate"]["passed"], report["gate"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="10^3 requests (CI-sized) instead of 10^4")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless all gates pass")
    ap.add_argument("--out", type=Path, default=None,
                    help=f"JSON output path (default {RESULTS_PATH}; "
                         "--quick runs do not write unless --out is given)")
    args = ap.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    out_path = args.out if args.out is not None else (
        None if args.quick else RESULTS_PATH)
    report = run(cfg, out_path)
    print_report(report)
    if out_path is not None:
        print(f"\nwrote {out_path}")
    if args.check and not report["gate"]["passed"]:
        print("PERF GATE FAILED:", json.dumps(report["gate"], indent=2))
        return 1
    if args.check:
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
