"""Shared utilities: options, cost ledger, misc helpers."""

from . import ledger
from .options import OptionError, Options, parse_hpddm_args

__all__ = ["Options", "OptionError", "parse_hpddm_args", "ledger"]
