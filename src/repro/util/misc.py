"""Small shared helpers: shaping, dtype promotion, norms, RNG discipline."""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_block",
    "column_norms",
    "result_dtype",
    "is_complex_dtype",
    "default_rng",
    "relative_residual_norms",
]


def as_block(x: np.ndarray, *, copy: bool = False) -> np.ndarray:
    """Return ``x`` as a 2-D ``n x p`` block (a vector becomes ``n x 1``).

    The solver stack works exclusively on tall-skinny blocks so single- and
    multiple-RHS code paths are uniform ("pseudo-block" fusion falls out of
    operating on whole blocks at once).
    """
    arr = np.array(x, copy=True) if copy else np.asarray(x)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    elif arr.ndim != 2:
        raise ValueError(f"expected a vector or an n x p block, got ndim={arr.ndim}")
    return arr


def column_norms(x: np.ndarray) -> np.ndarray:
    """2-norm of every column, computed in one fused pass (one 'reduction')."""
    x = as_block(x)
    return np.sqrt(np.einsum("ij,ij->j", x.real, x.real) + (
        np.einsum("ij,ij->j", x.imag, x.imag) if np.iscomplexobj(x) else 0.0
    ))


def result_dtype(*arrays: np.ndarray | np.dtype | type) -> np.dtype:
    """Common floating dtype of the operands (at least float64)."""
    dtypes = []
    for a in arrays:
        if isinstance(a, np.ndarray):
            dtypes.append(a.dtype)
        else:
            dtypes.append(np.dtype(a))
    return np.promote_types(np.result_type(*dtypes), np.float64)


def is_complex_dtype(dtype: np.dtype | type) -> bool:
    return np.issubdtype(np.dtype(dtype), np.complexfloating)


def default_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-or-generator argument to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def relative_residual_norms(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column ||r_j|| / ||b_j|| with a safe fallback for zero columns."""
    nb = column_norms(b)
    nr = column_norms(r)
    safe = np.where(nb > 0.0, nb, 1.0)
    return nr / safe
