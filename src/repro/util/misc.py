"""Small shared helpers: shaping, dtype promotion, norms, RNG discipline."""

from __future__ import annotations

import itertools
import weakref
from typing import Any

import numpy as np

__all__ = [
    "as_block",
    "column_norms",
    "result_dtype",
    "is_complex_dtype",
    "default_rng",
    "relative_residual_norms",
    "next_tag",
    "identity_tag",
]


_TAG_COUNTER = itertools.count(1)
# id(obj) -> (weakref, tag); entries are dropped when the object dies, and
# a stale entry whose id() was recycled is detected by the ref check below.
_TAG_REGISTRY: dict[int, tuple[Any, int]] = {}


def next_tag() -> int:
    """A process-unique monotonic identity tag.

    Unlike ``id()``, a tag is never reused after garbage collection, so it
    is safe for same-system detection across solver sequences (a recycled
    ``id`` could spuriously re-enable the unchanged-operator fast path).
    """
    return next(_TAG_COUNTER)


def _drop_dead_tag(key: int) -> None:
    entry = _TAG_REGISTRY.get(key)
    if entry is not None and entry[0]() is None:
        del _TAG_REGISTRY[key]


def identity_tag(obj: Any) -> int:
    """Stable monotonic tag for a live object (the GC-safe ``id``).

    Repeated calls on the same live object return the same tag; a new
    object always gets a fresh tag even if it reuses the old address.
    Objects that cannot be weak-referenced get a fresh tag on every call —
    same-system detection then degrades to a (safe) false negative.
    """
    key = id(obj)
    entry = _TAG_REGISTRY.get(key)
    if entry is not None and entry[0]() is obj:
        return entry[1]
    tag = next(_TAG_COUNTER)
    try:
        ref = weakref.ref(obj)
        weakref.finalize(obj, _drop_dead_tag, key)
    except TypeError:
        return tag
    _TAG_REGISTRY[key] = (ref, tag)
    return tag


def as_block(x: np.ndarray, *, copy: bool = False) -> np.ndarray:
    """Return ``x`` as a 2-D ``n x p`` block (a vector becomes ``n x 1``).

    The solver stack works exclusively on tall-skinny blocks so single- and
    multiple-RHS code paths are uniform ("pseudo-block" fusion falls out of
    operating on whole blocks at once).
    """
    arr = np.array(x, copy=True) if copy else np.asarray(x)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    elif arr.ndim != 2:
        raise ValueError(f"expected a vector or an n x p block, got ndim={arr.ndim}")
    return arr


def column_norms(x: np.ndarray) -> np.ndarray:
    """2-norm of every column, computed in one fused pass (one 'reduction')."""
    x = as_block(x)
    return np.sqrt(np.einsum("ij,ij->j", x.real, x.real) + (
        np.einsum("ij,ij->j", x.imag, x.imag) if np.iscomplexobj(x) else 0.0
    ))


def result_dtype(*arrays: np.ndarray | np.dtype | type) -> np.dtype:
    """Common floating dtype of the operands (at least float64)."""
    dtypes = []
    for a in arrays:
        if isinstance(a, np.ndarray):
            dtypes.append(a.dtype)
        else:
            dtypes.append(np.dtype(a))
    return np.promote_types(np.result_type(*dtypes), np.float64)


def is_complex_dtype(dtype: np.dtype | type) -> bool:
    return np.issubdtype(np.dtype(dtype), np.complexfloating)


def default_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-or-generator argument to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def relative_residual_norms(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column ||r_j|| / ||b_j|| with a safe fallback for zero columns."""
    nb = column_norms(b)
    nr = column_norms(r)
    safe = np.where(nb > 0.0, nb, 1.0)
    return nr / safe
