"""Execution-mode switch of the simulated-MPI substrate.

The distributed primitives in :mod:`repro.simmpi`, :mod:`repro.distla` and
:mod:`repro.precond.schwarz` each have two numerically equivalent
implementations:

* ``"fused"`` (default) — one vectorized numpy/scipy operation on the
  global array, with the ledger charged in O(1) from a precomputed
  :class:`~repro.util.ledger.CostTable`.  This is the fast path: at
  ``nranks >= 64`` the per-rank Python loops dominate the actual numerics
  by an order of magnitude.
* ``"per_rank"`` — execute every collective, halo exchange and local
  kernel rank-by-rank, charging the ledger event-by-event.  This is the
  validation oracle: the equivalence tests assert that both modes produce
  allclose numerics and *bit-identical* ledger counts, so the paper's
  counting arguments are provably unaffected by the fast path.

The mode is ambient process state (like the ledger stack): primitives
consult :func:`exec_mode` at call time, and solvers install
``Options.exec_mode`` for the duration of a solve when it is set.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["EXEC_MODES", "exec_mode", "set_exec_mode", "use_exec_mode"]

EXEC_MODES = ("fused", "per_rank")

_MODE: list[str] = ["fused"]


def _check(mode: str) -> str:
    if mode not in EXEC_MODES:
        raise ValueError(f"unknown exec_mode {mode!r}; expected one of {EXEC_MODES}")
    return mode


def exec_mode() -> str:
    """The currently active execution mode (``"fused"`` or ``"per_rank"``)."""
    return _MODE[-1]


def set_exec_mode(mode: str) -> str:
    """Set the active mode in place; returns the previous one."""
    previous = _MODE[-1]
    _MODE[-1] = _check(mode)
    return previous


@contextmanager
def use_exec_mode(mode: str) -> Iterator[str]:
    """Temporarily switch the execution mode.

    >>> with use_exec_mode("per_rank"):
    ...     exec_mode()
    'per_rank'
    >>> exec_mode()
    'fused'
    """
    _MODE.append(_check(mode))
    try:
        yield mode
    finally:
        _MODE.pop()
