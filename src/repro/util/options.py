"""HPDDM-style option registry for the solver stack.

The original library (HPDDM) is configured through prefixed command-line
options such as ``-hpddm_krylov_method gcrodr -hpddm_recycle 10``.  This
module provides the Python equivalent: a validated, immutable-ish options
object that every solver in :mod:`repro.krylov` consumes, plus a parser for
HPDDM-flavoured argument lists so that the examples can mirror the paper's
artifact description verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .execmode import EXEC_MODES

__all__ = ["Options", "OptionError", "parse_hpddm_args"]


class OptionError(ValueError):
    """Raised when an option value is out of its validity domain."""


def _scheme_names() -> tuple[tuple[str, ...], tuple[str, ...]]:
    # Single source of truth: the scheme registry in la/orthogonalization
    # (deferred import: util must stay importable before la).
    from ..la.orthogonalization import ORTHO_SCHEME_NAMES, QR_SCHEME_NAMES
    return ORTHO_SCHEME_NAMES, QR_SCHEME_NAMES


_KRYLOV_METHODS = ("gmres", "bgmres", "cg", "bcg", "gcrodr", "bgcrodr",
                   "gmresdr", "lgmres", "richardson", "none")
_VARIANTS = ("left", "right", "flexible")
_STRATEGIES = ("A", "B")
_TARGETS = ("smallest", "largest", "smallest_real", "largest_real")
_VERIFY_LEVELS = ("off", "cheap", "full")
_FLUSH_POLICIES = ("batch_full", "queue_drained", "explicit")
_SERVICE_MODES = ("sync", "async")
_TRACE_LEVELS = ("off", "summary", "full")
_PLAN_MODES = ("interpret", "compiled")
_RECYCLE_SPACES = ("full", "sketched")
_SHIFTED_VARIANTS = ("projected", "unprojected")
_SEQUENCE_MODES = ("operator", "shifted")


@dataclass
class Options:
    """Validated option set for every Krylov method in the library.

    Names deliberately follow the HPDDM command-line options documented in
    the paper's artifact description (``-hpddm_<name>``) so the mapping from
    paper to code is one-to-one.

    Parameters
    ----------
    krylov_method:
        ``"gmres"`` (pseudo-block when ``p > 1``), ``"bgmres"`` (true block),
        ``"cg"``/``"bcg"``, ``"gcrodr"``/``"bgcrodr"`` (recycling),
        ``"lgmres"`` (Loose GMRES baseline), ``"richardson"`` or ``"none"``.
    gmres_restart:
        maximum Krylov subspace dimension ``m`` before restarting.
    recycle:
        dimension ``k`` of the recycled subspace (GCRO-DR only, ``0 < k < m``).
    recycle_strategy:
        ``"A"`` uses eq. (3a) of the paper for the generalized eigenproblem
        right-hand side (one extra global reduction), ``"B"`` uses eq. (3b)
        (communication-free).
    recycle_same_system:
        enable the non-variable fast path: when solving a sequence with an
        unchanged operator, skip re-orthonormalizing ``U_k`` (paper lines 3-7)
        and skip updating the recycled space at restarts (lines 31-38).
    variant:
        preconditioning side: ``"left"``, ``"right"`` or ``"flexible"``
        (FGMRES / FGCRO-DR; stores the preconditioned Krylov basis).
    tol:
        relative convergence tolerance on the (unpreconditioned for
        right/flexible, preconditioned for left) residual of *every* column.
    max_it:
        global cap on iterations (inner iterations for restarted methods).
    orthogonalization:
        Gram-Schmidt scheme used inside the Arnoldi process.
    qr:
        algorithm for the distributed QR of the residual block (paper
        lines 11 and 24): CholQR by default, rank-revealing CholQR
        (``"cholqr_rr"``) additionally detects block breakdowns.
    deflation_tol:
        relative rank tolerance used by rank-revealing CholQR (and, with
        ``block_reduction``, for deciding which residual directions to
        deflate — HPDDM's ``-hpddm_deflation_tol``).
    block_reduction:
        enable block-size reduction at restarts in BGMRES: when the
        residual block is numerically rank deficient, continue with a
        narrower Arnoldi block while still solving for every column (the
        paper cites this as the Robbé-Sadkane / Agullo-Giraud-Jing line of
        work it deliberately does not enable; implemented here as the
        restart-level variant for the ablation study).
    recycle_target:
        which end of the (harmonic) Ritz spectrum to retain.
    recycle_space:
        where GCRO-DR's harvest/update machinery runs
        (``-hpddm_recycle_space``): ``"full"`` (default) computes the
        generalized eigenproblem and the pair repair in the full space —
        the bit-exact oracle; ``"sketched"`` computes recycle candidates
        from the sketched least-squares problem, carries ``(U_k, C_k)``
        in sketch-whitened form with a lazy full-space repair, and fuses
        the recycled-space projection into the sketched Arnoldi engine's
        single reduction per step, making the per-cycle reduction count
        O(1) in ``m``.  Requires ``orthogonalization="sketched"``.  See
        ``docs/ORTHOGONALIZATION.md``.
    exec_mode:
        execution mode of the simulated-MPI substrate for the duration of
        a solve: ``"fused"`` (vectorized global kernels, O(1) ledger
        charges from precomputed cost tables) or ``"per_rank"`` (loop over
        the virtual ranks — the validation oracle).  ``None`` (default)
        inherits the ambient :func:`repro.util.execmode.exec_mode`, whose
        process default is ``"fused"``.  Both modes charge bit-identical
        ledger counts.
    verify:
        runtime invariant-checking level (``-hpddm_verify``): ``"off"``
        (default, zero overhead), ``"cheap"`` (recycled-basis
        orthonormality and reported-vs-true residual gaps — small-matrix
        work only), or ``"full"`` (additionally re-applies the operator to
        verify the Arnoldi relation ``A Z = V H̄``, Krylov-basis
        orthonormality, the recycled map ``A U = C`` — including after the
        same-system skip — and distributed QR factorizations).  Violations
        raise :class:`repro.verify.InvariantViolation`.  Verification work
        is never charged to the cost ledger.
    trace:
        span tracing level (``-hpddm_trace``): ``"off"`` (default, the
        null tracer — zero overhead, byte-identical ledger counts and
        ``info``), ``"summary"`` (solver-phase spans; per-solve summary in
        ``info["trace"]``), or ``"full"`` (additionally per-primitive
        spans inside the simulated-MPI substrate).  An ambient tracer
        installed via :func:`repro.trace.install` takes precedence.  See
        ``docs/OBSERVABILITY.md``.
    plan:
        hot-path execution mode (``-hpddm_plan``): ``"interpret"``
        (default) runs the per-cycle loops directly; ``"compiled"`` lowers
        them to pre-bound execution plans (:mod:`repro.plan`) — fused
        nodes, hoisted cycle-invariant setup, single-allocation basis
        arenas, table-replay cost charging.  Both modes produce
        bit-identical ledger counts and iterates; legacy orthogonalization
        schemes without a lowering fall back to the interpreter.  See
        ``docs/EXECUTION.md``.
    service_pmax:
        maximum block width a :class:`repro.service.SolveService` batch
        may reach (``-hpddm_service_pmax``): queued requests sharing an
        operator fingerprint and compatible options are coalesced into
        one ``n x p`` block solve with ``p <= service_pmax``.
    service_flush:
        batch dispatch policy of the solve service
        (``-hpddm_service_flush``): ``"batch_full"`` dispatches a group as
        soon as it reaches ``service_pmax`` columns (remaining requests go
        out on ``flush()``); ``"queue_drained"`` coalesces maximally and
        dispatches only when the queue is drained via ``flush()`` or a
        result is demanded; ``"explicit"`` dispatches on ``flush()`` only
        and treats demanding an unsolved result as an error.
    service_cache_entries:
        capacity of the service's LRU :class:`repro.service.SetupCache`
        (``-hpddm_service_cache_entries``): number of distinct operators
        whose factorizations / preconditioner setups / recycled subspaces
        are retained.  With ``service_shards > 1`` the capacity applies
        *per shard*.
    service_mode:
        which service front end handles submitted requests
        (``-hpddm_service_mode``): ``"sync"`` (the original blocking
        :class:`repro.service.SolveService` — the oracle) or ``"async"``
        (the deadline-scheduled, sharded, pipelined
        :class:`repro.service.AsyncSolveService` running in simulated
        time).  Both modes produce the same per-request answers and
        conserve cost attribution bit-for-bit.
    service_shards:
        number of :class:`~repro.service.shard.ShardedSetupCache` shards
        — and concurrent batch workers — of the async service
        (``-hpddm_service_shards``).  Operator fingerprints are routed to
        shards by consistent hashing; each shard executes at most one
        batch at a time in simulated time.
    service_deadline:
        default per-request deadline of the async service in *modeled*
        seconds relative to arrival (``-hpddm_service_deadline``); ``0``
        means no deadline.  A request whose batch completes after its
        deadline counts as a deadline miss (``service_deadline_misses``
        metric); requests submitted with an already-expired deadline are
        rejected at admission.
    shifted_variant:
        recycled shifted-family algorithm (``-hpddm_shifted_variant``):
        ``"unprojected"`` (default) follows Burke's unprojected recycled
        shifted method — the recycle pair ``(U_k, C_k)`` is harvested once
        from the shared basis and reused across every shift without any
        per-shift projection, so the per-cycle reduction count is
        independent of the number of shifts; ``"projected"`` is the honest
        contrast: each shift re-establishes ``(A + sigma M) U = C`` and
        runs a projected GCRO-DR solve of its own, paying the per-shift
        reductions the unprojected variant amortizes away.  Only consulted
        by family solves (``api.solve(..., shifts=[...])``) with a
        recycling ``krylov_method``.  See ``docs/SHIFTED.md``.
    service_queue_depth:
        admission-control bound of the async service
        (``-hpddm_service_queue_depth``): maximum queued (not yet
        dispatched) requests *per shard*; ``0`` means unbounded.  A
        submit against a full shard queue returns an explicit rejection
        (``rejected="queue_full"``) instead of queueing.
    sequence_mode:
        how a transient driver (:class:`repro.service.sequence.SequenceDriver`)
        submits the steps of an operator ramp (``-hpddm_sequence_mode``):
        ``"operator"`` (default) submits each epoch's assembled operator
        ``A + sigma_e M`` as its own fingerprint (exercising the setup
        cache and, with ``sequence_adopt``, recycle carry-over across
        epoch boundaries); ``"shifted"`` submits each step as a
        one-shift family request against the ramp's *base* operator —
        the Δt ramp ``A + (1/Δt) M`` rides the shifted-family engine, the
        recycle pair lives under the base fingerprint and no adoption
        repair is ever needed.  See ``docs/TRANSIENT.md``.
    sequence_adopt:
        carry recycled subspaces across transient epoch boundaries
        (``-hpddm_sequence_adopt``, default on): when the operator
        fingerprint changes, the driver seeds the new operator's cache
        entry from the previous one via
        :meth:`repro.service.SetupCache.adopt_from`.  The carried pair
        keeps its original fingerprint stamp, so the first solve against
        the new operator runs the adoption-boundary repair instead of the
        same-system fast path — adopted state is repaired, never trusted.
    sequence_warm_start:
        use step ``t``'s solution as the initial guess of step ``t+1``'s
        solve in a transient sequence (``-hpddm_sequence_warm_start``,
        default off so per-step iteration counts stay comparable across
        the reuse ladder).
    initial_deflation_tol / enlarge... reserved knobs kept for CLI parity.
    """

    krylov_method: str = "gmres"
    gmres_restart: int = 30
    recycle: int = 0
    recycle_strategy: str = "A"
    recycle_same_system: bool = False
    variant: str = "right"
    tol: float = 1.0e-8
    max_it: int = 2000
    orthogonalization: str = "cgs"
    qr: str = "cholqr"
    deflation_tol: float = 1.0e-12
    recycle_target: str = "smallest"
    recycle_space: str = "full"
    block_reduction: bool = False
    exec_mode: str | None = None
    verify: str = "off"
    trace: str = "off"
    plan: str = "interpret"
    service_pmax: int = 16
    service_flush: str = "batch_full"
    service_cache_entries: int = 32
    service_mode: str = "sync"
    service_shards: int = 1
    service_deadline: float = 0.0
    service_queue_depth: int = 0
    shifted_variant: str = "unprojected"
    sequence_mode: str = "operator"
    sequence_adopt: bool = True
    sequence_warm_start: bool = False
    verbosity: int = 0
    check_invariants: bool = False
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        if self.krylov_method not in _KRYLOV_METHODS:
            raise OptionError(
                f"unknown krylov_method {self.krylov_method!r}; expected one of {_KRYLOV_METHODS}"
            )
        if self.variant not in _VARIANTS:
            raise OptionError(f"unknown variant {self.variant!r}; expected one of {_VARIANTS}")
        ortho_names, qr_names = _scheme_names()
        if self.orthogonalization not in ortho_names:
            raise OptionError(
                f"unknown orthogonalization {self.orthogonalization!r}; expected one of {ortho_names}"
            )
        if self.qr not in qr_names:
            raise OptionError(f"unknown qr {self.qr!r}; expected one of {qr_names}")
        if self.recycle_strategy not in _STRATEGIES:
            raise OptionError(
                f"unknown recycle_strategy {self.recycle_strategy!r}; expected one of {_STRATEGIES}"
            )
        if self.recycle_target not in _TARGETS:
            raise OptionError(
                f"unknown recycle_target {self.recycle_target!r}; expected one of {_TARGETS}"
            )
        if self.recycle_space not in _RECYCLE_SPACES:
            raise OptionError(
                f"unknown recycle_space {self.recycle_space!r}; "
                f"expected one of {_RECYCLE_SPACES}"
            )
        if (self.recycle_space == "sketched"
                and self.orthogonalization != "sketched"):
            raise OptionError(
                "recycle_space='sketched' rides on the sketched Arnoldi "
                "engine; it requires orthogonalization='sketched' "
                f"(got {self.orthogonalization!r})"
            )
        if self.exec_mode is not None and self.exec_mode not in EXEC_MODES:
            raise OptionError(
                f"unknown exec_mode {self.exec_mode!r}; expected one of {EXEC_MODES}"
            )
        if self.verify not in _VERIFY_LEVELS:
            raise OptionError(
                f"unknown verify level {self.verify!r}; expected one of {_VERIFY_LEVELS}"
            )
        if self.trace not in _TRACE_LEVELS:
            raise OptionError(
                f"unknown trace level {self.trace!r}; "
                f"expected one of {_TRACE_LEVELS}"
            )
        if self.plan not in _PLAN_MODES:
            raise OptionError(
                f"unknown plan mode {self.plan!r}; "
                f"expected one of {_PLAN_MODES}"
            )
        if self.service_flush not in _FLUSH_POLICIES:
            raise OptionError(
                f"unknown service_flush {self.service_flush!r}; "
                f"expected one of {_FLUSH_POLICIES}"
            )
        if self.service_pmax < 1:
            raise OptionError("service_pmax must be >= 1")
        if self.service_cache_entries < 1:
            raise OptionError("service_cache_entries must be >= 1")
        if self.service_mode not in _SERVICE_MODES:
            raise OptionError(
                f"unknown service_mode {self.service_mode!r}; "
                f"expected one of {_SERVICE_MODES}"
            )
        if self.service_shards < 1:
            raise OptionError("service_shards must be >= 1")
        if self.service_deadline < 0:
            raise OptionError("service_deadline must be >= 0 (0 = none)")
        if self.service_queue_depth < 0:
            raise OptionError("service_queue_depth must be >= 0 "
                              "(0 = unbounded)")
        if self.shifted_variant not in _SHIFTED_VARIANTS:
            raise OptionError(
                f"unknown shifted_variant {self.shifted_variant!r}; "
                f"expected one of {_SHIFTED_VARIANTS}"
            )
        if self.sequence_mode not in _SEQUENCE_MODES:
            raise OptionError(
                f"unknown sequence_mode {self.sequence_mode!r}; "
                f"expected one of {_SEQUENCE_MODES}"
            )
        if self.gmres_restart < 1:
            raise OptionError("gmres_restart must be >= 1")
        if self.max_it < 1:
            raise OptionError("max_it must be >= 1")
        if not (0.0 < self.tol < 1.0):
            raise OptionError("tol must lie strictly between 0 and 1")
        if self.is_recycling or self.krylov_method == "gmresdr":
            if not (0 < self.recycle < self.gmres_restart):
                raise OptionError(
                    "recycle (k) must satisfy 0 < k < gmres_restart (m) for GCRO-DR; "
                    f"got k={self.recycle}, m={self.gmres_restart}"
                )
        elif self.recycle < 0:
            raise OptionError("recycle must be non-negative")

    # -- derived properties ----------------------------------------------
    @property
    def is_block(self) -> bool:
        """True for *true* block methods (block Arnoldi, p-wide blocks)."""
        return self.krylov_method in ("bgmres", "bcg", "bgcrodr")

    @property
    def is_recycling(self) -> bool:
        return self.krylov_method in ("gcrodr", "bgcrodr")

    @property
    def is_deflated(self) -> bool:
        """Deflated restarting without cross-solve recycling (GMRES-DR)."""
        return self.krylov_method == "gmresdr"

    @property
    def is_flexible(self) -> bool:
        return self.variant == "flexible"

    # -- conveniences ------------------------------------------------------
    def replace(self, **kwargs: Any) -> "Options":
        """Return a copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **kwargs)

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def hpddm_args(self) -> list[str]:
        """Render back to HPDDM-style command-line arguments."""
        args = [
            "-hpddm_krylov_method", self.krylov_method,
            "-hpddm_gmres_restart", str(self.gmres_restart),
            "-hpddm_tol", f"{self.tol:g}",
            "-hpddm_variant", self.variant,
            "-hpddm_orthogonalization", self.orthogonalization,
            "-hpddm_qr", self.qr,
            "-hpddm_max_it", str(self.max_it),
        ]
        if self.is_recycling or self.krylov_method == "gmresdr":
            args += [
                "-hpddm_recycle", str(self.recycle),
                "-hpddm_recycle_strategy", self.recycle_strategy,
            ]
            if self.recycle_same_system:
                args.append("-hpddm_recycle_same_system")
            if self.recycle_space != "full":
                args += ["-hpddm_recycle_space", self.recycle_space]
        if self.exec_mode is not None:
            args += ["-hpddm_exec_mode", self.exec_mode]
        if self.verify != "off":
            args += ["-hpddm_verify", self.verify]
        if self.trace != "off":
            args += ["-hpddm_trace", self.trace]
        if self.plan != "interpret":
            args += ["-hpddm_plan", self.plan]
        if self.service_pmax != 16:
            args += ["-hpddm_service_pmax", str(self.service_pmax)]
        if self.service_flush != "batch_full":
            args += ["-hpddm_service_flush", self.service_flush]
        if self.service_cache_entries != 32:
            args += ["-hpddm_service_cache_entries",
                     str(self.service_cache_entries)]
        if self.service_mode != "sync":
            args += ["-hpddm_service_mode", self.service_mode]
        if self.service_shards != 1:
            args += ["-hpddm_service_shards", str(self.service_shards)]
        if self.service_deadline != 0.0:
            args += ["-hpddm_service_deadline", repr(self.service_deadline)]
        if self.service_queue_depth != 0:
            args += ["-hpddm_service_queue_depth",
                     str(self.service_queue_depth)]
        if self.shifted_variant != "unprojected":
            args += ["-hpddm_shifted_variant", self.shifted_variant]
        if self.sequence_mode != "operator":
            args += ["-hpddm_sequence_mode", self.sequence_mode]
        if not self.sequence_adopt:
            args += ["-hpddm_sequence_adopt", "false"]
        if self.sequence_warm_start:
            args.append("-hpddm_sequence_warm_start")
        return args


_BOOL_FLAGS = {"recycle_same_system", "check_invariants", "block_reduction",
               "sequence_adopt", "sequence_warm_start"}
_INT_FIELDS = {"gmres_restart", "recycle", "max_it", "verbosity",
               "service_pmax", "service_cache_entries", "service_shards",
               "service_queue_depth"}
_FLOAT_FIELDS = {"tol", "deflation_tol", "service_deadline"}


def parse_hpddm_args(args: Iterable[str], *, prefix: str = "-hpddm_",
                     defaults: Mapping[str, Any] | None = None) -> Options:
    """Parse an HPDDM-style argument list into an :class:`Options` object.

    Examples
    --------
    >>> opt = parse_hpddm_args(["-hpddm_krylov_method", "gcrodr",
    ...                         "-hpddm_recycle", "10",
    ...                         "-hpddm_gmres_restart", "30",
    ...                         "-hpddm_recycle_same_system"])
    >>> opt.krylov_method, opt.recycle, opt.recycle_same_system
    ('gcrodr', 10, True)
    """
    kv: dict[str, Any] = dict(defaults or {})
    arglist = list(args)
    i = 0
    while i < len(arglist):
        tok = arglist[i]
        if not tok.startswith(prefix):
            i += 1
            continue
        name = tok[len(prefix):]
        if name in _BOOL_FLAGS:
            # a boolean flag may optionally be followed by true/false
            if i + 1 < len(arglist) and arglist[i + 1].lower() in ("true", "false", "0", "1"):
                kv[name] = arglist[i + 1].lower() in ("true", "1")
                i += 2
            else:
                kv[name] = True
                i += 1
            continue
        if i + 1 >= len(arglist):
            raise OptionError(f"option {tok} expects a value")
        raw = arglist[i + 1]
        if name in _INT_FIELDS:
            kv[name] = int(raw)
        elif name in _FLOAT_FIELDS:
            kv[name] = float(raw)
        else:
            kv[name] = raw
        i += 2
    known = {f.name for f in dataclasses.fields(Options)}
    extra = {k: v for k, v in kv.items() if k not in known}
    kv = {k: v for k, v in kv.items() if k in known}
    if extra:
        kv.setdefault("extra", {}).update(extra)
    return Options(**kv)
