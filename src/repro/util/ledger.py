"""Cost ledger: the accounting backbone of the simulated-MPI substrate.

The scalability arguments of the paper are *counting* arguments — e.g. a
GCRO-DR cycle costs ``2(m-k)`` global reductions where a GMRES cycle costs
``m`` (section III-D).  Every distributed primitive in :mod:`repro.simmpi`,
:mod:`repro.distla` and every kernel in the solvers reports to the ledger,
so benchmarks can verify those counts exactly and the performance model in
:mod:`repro.perfmodel` can convert them into modeled wall-clock times for a
target machine.

A ledger is installed with a context manager and consulted through the
module-level :func:`current` accessor; a process-wide null ledger swallows
events when none is installed so instrumentation costs almost nothing in
the serial fast path.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CostLedger", "CostTable", "current", "install", "Kernel"]


class Kernel:
    """Canonical kernel names used for flop accounting.

    Grouping by arithmetic intensity matters: the machine model assigns
    memory-bound kernels (SpMV, BLAS-2 triangular solves) a much lower
    effective flop rate than compute-bound BLAS-3 kernels, which is exactly
    the effect exploited by (pseudo-)block methods in the paper (Fig. 6).
    """

    SPMV = "spmv"              # sparse matrix x vector (memory bound)
    SPMM = "spmm"              # sparse matrix x dense block (higher intensity)
    BLAS1 = "blas1"            # axpy / dot
    BLAS2 = "blas2"            # gemv, single-RHS triangular solve
    BLAS3 = "blas3"            # gemm, blocked triangular solve
    FACTORIZATION = "factorization"
    PRECOND = "precond"
    EIG = "eig"                # small dense (redundant) eigenproblems
    QR = "qr"                  # small dense (redundant) QR


@dataclass
class CostLedger:
    """Accumulates communication and computation events.

    Attributes
    ----------
    reductions:
        number of global all-reduce style synchronizations (each costs
        ``log2(P)`` latency-bound hops on a tree).
    reduction_bytes:
        payload carried by those reductions.
    p2p_messages / p2p_bytes:
        point-to-point (halo exchange) traffic.
    flops:
        Counter keyed by :class:`Kernel` name.
    calls:
        Counter of high-level events (operator applications, preconditioner
        applications, restarts, ...).

    Determinism invariant
    ---------------------
    Every field except ``timers`` is deterministic: two runs that execute
    the same algorithm charge bit-identical values (integers, or floats
    produced by integer-valued arithmetic below 2^53).  ``timers`` is the
    *only* wall-clock quantity on the ledger and is therefore quarantined:
    it never appears in :meth:`counts` (the tuple every conservation and
    fused-vs-per-rank equivalence check is stated over), it is never split
    by :meth:`split` (shares would not be reproducible), and the trace
    layer zeroes it out of span costs.  ``merge`` does carry timers across
    (summing wall-clock is still meaningful for profiling) but nothing
    downstream may treat the result as a conserved quantity.
    ``scripts/lint_repro.py`` enforces the containment: this module is the
    only place under ``src/`` allowed to read the clock.
    """

    reductions: int = 0
    reduction_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    flops: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)
    timers: dict[str, float] = field(default_factory=dict)

    #: False on real ledgers; the null sink overrides it.  Callers that
    #: need actual accounting (e.g. the trace layer) test this instead of
    #: the private class.
    is_null = False

    # -- communication ----------------------------------------------------
    def reduction(self, nbytes: int = 8, count: int = 1) -> None:
        self.reductions += count
        self.reduction_bytes += nbytes * count

    def p2p(self, messages: int, nbytes: int) -> None:
        self.p2p_messages += messages
        self.p2p_bytes += nbytes

    # -- computation -------------------------------------------------------
    def flop(self, kernel: str, count: float) -> None:
        self.flops[kernel] += count

    def event(self, name: str, count: int = 1) -> None:
        self.calls[name] += count

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds under ``name`` (non-deterministic).

        Timers are profiling garnish, excluded from :meth:`counts` and
        :meth:`split` by the determinism invariant above — never assert on
        them and never feed them into modeled-time or trace exports.
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = self.timers.get(name, 0.0) + time.perf_counter() - t0

    # -- arithmetic --------------------------------------------------------
    def merge(self, other: "CostLedger") -> None:
        """Add ``other``'s totals onto this ledger (timers included).

        Used to replay a batch-scoped ledger onto the ambient one after a
        coalesced solve, so nesting a private ledger is invisible to the
        caller's accounting.  The null ledger overrides this as a no-op.
        """
        self.reductions += other.reductions
        self.reduction_bytes += other.reduction_bytes
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.flops.update(other.flops)
        self.calls.update(other.calls)
        for name, seconds in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    def split(self, parts: int) -> "list[CostLedger]":
        """Split into ``parts`` ledgers whose totals sum back *exactly*.

        The per-request attribution of a coalesced block solve: integer
        quantities are divided with the remainder spread over the first
        ``v % parts`` shares; flop counts (floats, but integer-valued in
        practice — every charge is ``2 * nnz * p``-shaped) are split on
        their integer part the same way, with any fractional residue
        credited to share 0.  Summation of the shares is then exact in
        floating point (integer adds below 2^53), so

            merged = CostLedger(); [merged.merge(s) for s in led.split(p)]

        satisfies ``merged.counts() == led.counts()`` bit-for-bit — the
        conservation property ``tests/test_service.py`` asserts.  Timers
        (wall-clock, not conserved quantities) stay on the parent.

        Counter keys are visited in sorted order so the shares are
        independent of charge arrival order: two ledgers with equal
        ``counts()`` split into shares with identical serialized form
        (key order included), which keeps per-request attribution
        reproducible run-to-run.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")

        def ishare(v: int, j: int) -> int:
            return v // parts + (1 if j < v % parts else 0)

        shares = []
        for j in range(parts):
            led = CostLedger(
                reductions=ishare(self.reductions, j),
                reduction_bytes=ishare(self.reduction_bytes, j),
                p2p_messages=ishare(self.p2p_messages, j),
                p2p_bytes=ishare(self.p2p_bytes, j),
            )
            for kern in sorted(self.flops):
                v = self.flops[kern]
                iv = int(v)
                part = float(ishare(iv, j))
                if j == 0:
                    part += v - float(iv)
                if part:
                    led.flops[kern] = part
            for name in sorted(self.calls):
                part = ishare(self.calls[name], j)
                if part:
                    led.calls[name] = part
            shares.append(led)
        return shares

    def snapshot(self) -> "CostLedger":
        """Deep-ish copy for before/after diffing."""
        out = CostLedger(
            reductions=self.reductions,
            reduction_bytes=self.reduction_bytes,
            p2p_messages=self.p2p_messages,
            p2p_bytes=self.p2p_bytes,
        )
        out.flops = Counter(self.flops)
        out.calls = Counter(self.calls)
        out.timers = dict(self.timers)
        return out

    def diff(self, before: "CostLedger") -> "CostLedger":
        """Return the events accumulated since ``before`` (a snapshot)."""
        out = CostLedger(
            reductions=self.reductions - before.reductions,
            reduction_bytes=self.reduction_bytes - before.reduction_bytes,
            p2p_messages=self.p2p_messages - before.p2p_messages,
            p2p_bytes=self.p2p_bytes - before.p2p_bytes,
        )
        out.flops = Counter(self.flops)
        out.flops.subtract(before.flops)
        out.calls = Counter(self.calls)
        out.calls.subtract(before.calls)
        out.timers = {
            k: self.timers.get(k, 0.0) - before.timers.get(k, 0.0)
            for k in set(self.timers) | set(before.timers)
        }
        return out

    def total_flops(self) -> float:
        return float(sum(self.flops.values()))

    def counts(self) -> tuple:
        """Every accounted quantity as an exactly-comparable tuple.

        Timers are excluded (wall-clock is never reproducible); all other
        fields are integer- or exactly-representable-float-valued, so two
        runs that charge the same events compare equal with ``==``.  This
        is the quantity the fused-vs-per-rank conservation invariant (and
        ``tests/test_exec_modes.py``) is stated over.
        """
        return (self.reductions, self.reduction_bytes, self.p2p_messages,
                self.p2p_bytes, dict(self.flops), dict(self.calls))

    def summary(self) -> str:
        lines = [
            f"reductions      : {self.reductions} ({self.reduction_bytes} B)",
            f"p2p messages    : {self.p2p_messages} ({self.p2p_bytes} B)",
        ]
        for k in sorted(self.flops):
            lines.append(f"flops[{k:<13}]: {self.flops[k]:.3e}")
        for k in sorted(self.calls):
            lines.append(f"calls[{k:<13}]: {self.calls[k]}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CostTable:
    """Precomputed aggregate cost of one fused distributed primitive.

    The fused execution engine runs each primitive as a single vectorized
    operation on the global array, so the ledger can no longer be charged
    event-by-event from inside per-rank loops.  Instead, the owning object
    (e.g. :class:`repro.distla.DistributedCSR`) sums its per-rank costs
    once at construction into a ``CostTable`` and replays them in O(1) per
    apply.  ``*_items`` fields count payload *elements per column*; the
    byte volume is ``items * itemsize * p`` at charge time (message counts
    do not scale with the block width ``p`` — paper §V-B2).

    Charging from a table is bit-identical to the per-rank charges it
    summarizes: message/byte/flop totals are integer-valued and exactly
    representable, so ``fused`` and ``per_rank`` runs produce equal
    ledgers.
    """

    p2p_messages: int = 0
    p2p_items: int = 0
    reductions: int = 0
    reduction_items: int = 0
    flops_per_col: float = 0.0
    events_per_col: tuple[tuple[str, int], ...] = ()

    def charge(self, led: "CostLedger", *, itemsize: int = 8, p: int = 1,
               kernel: str | None = None) -> None:
        """Replay this table's events onto ``led`` for a width-``p`` apply."""
        if self.p2p_messages:
            led.p2p(messages=self.p2p_messages,
                    nbytes=self.p2p_items * itemsize * p)
        if self.reductions:
            led.reduction(nbytes=self.reduction_items * itemsize,
                          count=self.reductions)
        if self.flops_per_col and kernel is not None:
            led.flop(kernel, self.flops_per_col * p)
        for name, count in self.events_per_col:
            led.event(name, count * p)


class _NullLedger(CostLedger):
    """Sink that ignores everything — installed when no ledger is active."""

    is_null = True

    def reduction(self, nbytes: int = 8, count: int = 1) -> None:  # noqa: D102
        pass

    def p2p(self, messages: int, nbytes: int) -> None:  # noqa: D102
        pass

    def flop(self, kernel: str, count: float) -> None:  # noqa: D102
        pass

    def event(self, name: str, count: int = 1) -> None:  # noqa: D102
        pass

    def merge(self, other: CostLedger) -> None:  # noqa: D102
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        # The base implementation would accumulate ``timers`` entries on
        # this process-wide singleton forever; swallow them instead.
        yield


_NULL = _NullLedger()
_STACK: list[CostLedger] = []


def current() -> CostLedger:
    """Return the innermost installed ledger (or a null sink)."""
    return _STACK[-1] if _STACK else _NULL


@contextmanager
def install(ledger: CostLedger | None = None) -> Iterator[CostLedger]:
    """Install ``ledger`` (or a fresh one) as the active cost ledger.

    >>> with install() as led:
    ...     current().reduction()
    >>> led.reductions
    1
    """
    led = ledger if ledger is not None else CostLedger()
    _STACK.append(led)
    try:
        yield led
    finally:
        _STACK.pop()
