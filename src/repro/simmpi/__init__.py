"""Simulated MPI: virtual process grids, collectives, halo exchange."""

from .collectives import allgather_rows, allreduce_sum, dot_columns, norm_columns
from .grid import VirtualGrid
from .halo import HaloPlan, build_halo_plans

__all__ = [
    "VirtualGrid",
    "HaloPlan",
    "build_halo_plans",
    "allreduce_sum",
    "allgather_rows",
    "dot_columns",
    "norm_columns",
]
