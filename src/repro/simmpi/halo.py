"""Halo-exchange plans: the peer-to-peer pattern of distributed SpMV/SpMM.

Given a sparsity pattern and a row distribution, each rank needs the values
of the off-rank columns its rows touch — its *halo* (ghost region).  The
plan records, per rank, which neighbours it receives from and how many
entries, exactly like the ``VecScatter`` built by PETSc's ``MatMPIAIJ``.

Section V-B2 of the paper: "It is possible to extend this communication
pattern to the case of sparse matrix–dense matrix products as long as the
MPI buffers are p times bigger" — which is why :meth:`HaloPlan.charge`
multiplies the byte volume (but *not* the message count) by the block
width ``p``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import CostTable
from .grid import VirtualGrid

__all__ = ["HaloPlan", "build_halo_plans", "aggregate_halo_cost"]


class HaloPlan:
    """Receive plan of one rank: ghost column indices grouped by owner."""

    def __init__(self, rank: int, ghost_cols: np.ndarray, owners: np.ndarray):
        self.rank = rank
        self.ghost_cols = ghost_cols          # global indices, sorted
        self.owners = owners                  # owning rank of each ghost col
        unique, counts = (np.unique(owners, return_counts=True)
                          if owners.size else (np.array([], int), np.array([], int)))
        self.neighbours = unique
        self.counts_by_neighbour = counts

    @property
    def n_ghost(self) -> int:
        return int(self.ghost_cols.size)

    @property
    def n_neighbours(self) -> int:
        return int(self.neighbours.size)

    def charge(self, itemsize: int, p: int = 1) -> None:
        """Log this rank's receive traffic for one SpMM with block width p."""
        if self.n_neighbours:
            ledger.current().p2p(messages=self.n_neighbours,
                                 nbytes=self.n_ghost * itemsize * p)


def aggregate_halo_cost(plans: list[HaloPlan], *,
                        flops_per_col: float = 0.0) -> CostTable:
    """Sum per-rank halo traffic into one :class:`CostTable`.

    The fused SpMM replays this table instead of looping
    ``plan.charge(...)`` over every rank; the totals are identical because
    a rank with neighbours always has ghosts (and vice versa), so summing
    over all ranks equals summing over the charging ranks.
    """
    return CostTable(
        p2p_messages=int(sum(pl.n_neighbours for pl in plans)),
        p2p_items=int(sum(pl.n_ghost for pl in plans)),
        flops_per_col=flops_per_col,
    )


def build_halo_plans(a: sp.csr_matrix, grid: VirtualGrid) -> list[HaloPlan]:
    """One :class:`HaloPlan` per rank from the global sparsity pattern."""
    if a.shape[0] != grid.n or a.shape[1] != grid.n:
        raise ValueError(f"matrix shape {a.shape} does not match grid n={grid.n}")
    if grid.nranks == 1:
        # trivial distribution: no ghosts, and no point scanning the pattern
        empty = np.empty(0, dtype=np.int64)
        return [HaloPlan(0, empty, empty)]
    plans = []
    indptr, indices = a.indptr, a.indices
    for r in range(grid.nranks):
        rows = grid.rows(r)
        cols = np.unique(indices[indptr[rows.start]: indptr[rows.stop]])
        ghost = cols[(cols < rows.start) | (cols >= rows.stop)]
        owners = grid.owner(ghost)
        plans.append(HaloPlan(r, ghost, np.asarray(owners)))
    return plans
