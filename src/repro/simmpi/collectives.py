"""Collective operations over a virtual grid.

Each collective computes its result exactly (the data all lives in one
address space) *and* charges the active cost ledger with what a real MPI
implementation would pay: one logical "reduction" event per collective —
the performance model expands that into ``2 log2(P)`` latency hops plus the
bandwidth term.

Every collective has two execution paths selected by the ambient
:func:`repro.util.execmode.exec_mode`:

* ``"fused"`` (default) — one vectorized numpy operation on the global
  array plus one batched ledger charge;
* ``"per_rank"`` — loop over the virtual ranks exactly as a real MPI run
  would partition the work.

The two are numerically equivalent (same operations, different blocking)
and charge *bit-identical* ledger counts: the reduction payload is the
same array either way, so ``nbytes`` matches exactly.
"""

from __future__ import annotations

import numpy as np

from ..trace import tracer as trace
from ..util import ledger
from ..util.execmode import exec_mode
from .grid import VirtualGrid

__all__ = ["allreduce_sum", "allgather_rows", "dot_columns", "norm_columns"]


def allreduce_sum(grid: VirtualGrid, contributions: list[np.ndarray]) -> np.ndarray:
    """Sum per-rank contributions; one global reduction of the payload size.

    ``contributions`` holds one array per rank (all the same shape).
    """
    if len(contributions) != grid.nranks:
        raise ValueError(f"expected {grid.nranks} contributions, got {len(contributions)}")
    with trace.current().detail_span("simmpi.allreduce_sum"):
        if exec_mode() == "fused" and len(contributions) > 1:
            first = np.asarray(contributions[0])
            out = np.stack(contributions).sum(axis=0, dtype=first.dtype)
        else:
            out = np.zeros_like(contributions[0])
            for c in contributions:
                out += c
        ledger.current().reduction(nbytes=out.nbytes)
    return out


def allgather_rows(grid: VirtualGrid, locals_: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-rank row blocks; costs ``P-1`` messages per rank.

    The ledger records the aggregate traffic of a ring allgather (each rank
    receives everyone else's block once).
    """
    if len(locals_) != grid.nranks:
        raise ValueError(f"expected {grid.nranks} blocks, got {len(locals_)}")
    with trace.current().detail_span("simmpi.allgather_rows"):
        out = np.concatenate(locals_, axis=0)
        p = grid.nranks
        if p > 1:
            ledger.current().p2p(messages=p * (p - 1),
                                 nbytes=(p - 1) * out.nbytes)
    return out


def dot_columns(grid: VirtualGrid, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Column-wise inner products: one fused einsum or rank-by-rank parts."""
    if exec_mode() == "fused":
        with trace.current().detail_span("simmpi.dot_columns"):
            out = np.einsum("ij,ij->j", x.conj(), y)
            ledger.current().reduction(nbytes=out.nbytes)
        return out
    with trace.current().detail_span("simmpi.dot_columns"):
        parts = []
        for r in range(grid.nranks):
            rows = grid.rows(r)
            parts.append(np.einsum("ij,ij->j", x[rows].conj(), y[rows]))
        return allreduce_sum(grid, parts)


def norm_columns(grid: VirtualGrid, x: np.ndarray) -> np.ndarray:
    """Column 2-norms via one all-reduce of the squared partial sums."""
    if exec_mode() == "fused":
        with trace.current().detail_span("simmpi.norm_columns"):
            sq = np.einsum("ij,ij->j", x.conj(), x).real
            ledger.current().reduction(nbytes=sq.nbytes)
        return np.sqrt(sq)
    with trace.current().detail_span("simmpi.norm_columns"):
        parts = []
        for r in range(grid.nranks):
            rows = grid.rows(r)
            xr = x[rows]
            parts.append(np.einsum("ij,ij->j", xr.conj(), xr).real)
        return np.sqrt(allreduce_sum(grid, parts))
