"""Virtual process grid: the rank/ownership layer of the simulated MPI.

A :class:`VirtualGrid` partitions ``n`` global row indices over ``P``
virtual ranks (contiguous balanced blocks by default, or a caller-supplied
partition from the mesh decomposer).  Every distributed structure in
:mod:`repro.distla` is built on top of one, and every communication
primitive reports to the active :class:`~repro.util.ledger.CostLedger` with
the counts a real MPI run over this grid would incur.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VirtualGrid"]


class VirtualGrid:
    """Ownership map of ``n`` global indices over ``P`` virtual ranks.

    Parameters
    ----------
    n:
        global problem size.
    nranks:
        number of virtual MPI processes.
    offsets:
        optional explicit partition: array of length ``P + 1`` with
        ``offsets[r] .. offsets[r+1]`` owned by rank ``r``.  Defaults to a
        balanced contiguous split.
    """

    def __init__(self, n: int, nranks: int, *, offsets: np.ndarray | None = None):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if n < nranks:
            raise ValueError(f"cannot split {n} rows over {nranks} ranks")
        self.n = int(n)
        self.nranks = int(nranks)
        if offsets is None:
            offsets = np.linspace(0, n, nranks + 1).astype(np.int64)
        else:
            offsets = np.asarray(offsets, dtype=np.int64)
            if offsets.shape != (nranks + 1,):
                raise ValueError(f"offsets must have length {nranks + 1}")
            if offsets[0] != 0 or offsets[-1] != n:
                raise ValueError("offsets must start at 0 and end at n")
            if np.any(np.diff(offsets) <= 0):
                raise ValueError("every rank must own at least one row")
        self.offsets = offsets

    # ------------------------------------------------------------------
    def owner(self, index: int | np.ndarray) -> np.ndarray | int:
        """Rank(s) owning the given global index/indices."""
        result = np.searchsorted(self.offsets, index, side="right") - 1
        return result

    def rows(self, rank: int) -> slice:
        """Slice of global rows owned by ``rank``."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return slice(int(self.offsets[rank]), int(self.offsets[rank + 1]))

    def local_size(self, rank: int) -> int:
        return int(self.offsets[rank + 1] - self.offsets[rank])

    def local_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def max_local_size(self) -> int:
        return int(self.local_sizes().max())

    def reduction_hops(self) -> int:
        """Latency hops of a tree all-reduce: ``2 * ceil(log2 P)``."""
        if self.nranks == 1:
            return 0
        return 2 * int(np.ceil(np.log2(self.nranks)))

    def __repr__(self) -> str:
        return f"VirtualGrid(n={self.n}, nranks={self.nranks})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, VirtualGrid) and self.n == other.n
                and self.nranks == other.nranks
                and np.array_equal(self.offsets, other.offsets))

    def __hash__(self) -> int:
        return hash((self.n, self.nranks, self.offsets.tobytes()))
