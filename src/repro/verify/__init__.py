"""Numerical invariant verification subsystem (``-hpddm_verify``).

See :mod:`repro.verify.checker` for the contract catalogue and levels.
"""

from .checker import (NULL_CHECKER, VERIFY_LEVELS, InvariantChecker,
                      InvariantViolation, NullChecker, activate, checker_for,
                      current)
from .crosscheck import cross_check_exec_modes, cross_check_plan_modes

__all__ = [
    "NULL_CHECKER",
    "VERIFY_LEVELS",
    "InvariantChecker",
    "InvariantViolation",
    "NullChecker",
    "activate",
    "checker_for",
    "current",
    "cross_check_exec_modes",
    "cross_check_plan_modes",
]
