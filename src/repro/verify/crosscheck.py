"""Fused-vs-per-rank and compiled-vs-interpret conservation cross-checks.

The fused execution engine (PR 1) is required to be a *pure* optimization:
for any workload, the :class:`~repro.util.ledger.CostLedger` counts must be
bit-identical between ``exec_mode="fused"`` and ``exec_mode="per_rank"``,
and the numerics must agree to rounding.  The execution-plan compiler
(``-hpddm_plan compiled``) carries the stronger contract — bit-identical
counts *and* bit-identical iterates against the interpreter.  This module
packages both equivalences as invariant checks so the conformance matrix
(and users debugging a substrate or lowering change) can assert them for
whole solves.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..util import ledger
from ..util.execmode import use_exec_mode
from ..util.ledger import CostLedger
from .checker import InvariantChecker

__all__ = ["cross_check_exec_modes", "cross_check_plan_modes"]


def cross_check_exec_modes(fn: Callable[[], Any], *,
                           checker: InvariantChecker | None = None,
                           extract: Callable[[Any], np.ndarray] | None = None,
                           rtol: float = 1e-9, atol: float = 1e-11,
                           what: str = "workload") -> tuple[Any, Any]:
    """Run ``fn`` under both execution modes and assert conservation.

    Parameters
    ----------
    fn:
        zero-argument workload (e.g. ``lambda: solve(A, b, options=o)``).
        It is invoked twice, each time under a fresh ledger.
    checker:
        records the ledger-conservation drift (a throwaway full-level
        checker is used when omitted).
    extract:
        maps ``fn``'s return value to an array compared across modes
        (skipped when None and the return value is not array-like).
    what:
        label used in violation messages.

    Returns the two results ``(fused_result, per_rank_result)``.
    """
    chk = checker or InvariantChecker("full", context="cross-check")
    results: dict[str, Any] = {}
    ledgers: dict[str, CostLedger] = {}
    for mode in ("fused", "per_rank"):
        with use_exec_mode(mode), ledger.install() as led:
            results[mode] = fn()
        ledgers[mode] = led
    chk.check_ledger_conservation(ledgers["fused"], ledgers["per_rank"],
                                  what=what)
    a, b = results["fused"], results["per_rank"]
    if extract is not None:
        a_arr, b_arr = np.asarray(extract(a)), np.asarray(extract(b))
    elif isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        a_arr, b_arr = a, b
    else:
        a_arr = b_arr = None
    if a_arr is not None:
        if not np.allclose(a_arr, b_arr, rtol=rtol, atol=atol):
            gap = float(np.max(np.abs(a_arr - b_arr)))
            chk._record("exec_mode_numerics", gap, 0.0,
                        f"{what}: fused vs per_rank results diverge")
    return results["fused"], results["per_rank"]


def cross_check_plan_modes(fn: Callable[[str], Any], *,
                           checker: InvariantChecker | None = None,
                           extract: Callable[[Any], np.ndarray] | None = None,
                           what: str = "workload") -> tuple[Any, Any]:
    """Run ``fn`` under both plan modes and assert the oracle contract.

    ``fn`` takes the plan mode (``"interpret"`` / ``"compiled"``) — e.g.
    ``lambda plan: solve(A, b, options=o.replace(plan=plan))`` — and is
    invoked once per mode under a fresh ledger.  Unlike the exec-mode
    cross-check, the compiled plan promises **bit-identical** iterates, so
    the numeric comparison is exact (``np.array_equal``), not a tolerance.

    Returns the two results ``(interpret_result, compiled_result)``.
    """
    chk = checker or InvariantChecker("full", context="cross-check")
    results: dict[str, Any] = {}
    ledgers: dict[str, CostLedger] = {}
    for mode in ("interpret", "compiled"):
        with ledger.install() as led:
            results[mode] = fn(mode)
        ledgers[mode] = led
    chk.check_ledger_conservation(ledgers["interpret"], ledgers["compiled"],
                                  what=what)
    a, b = results["interpret"], results["compiled"]
    if extract is not None:
        a_arr, b_arr = np.asarray(extract(a)), np.asarray(extract(b))
    elif isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        a_arr, b_arr = a, b
    else:
        a_arr = b_arr = None
    if a_arr is not None and not np.array_equal(a_arr, b_arr):
        gap = float(np.max(np.abs(a_arr - b_arr)))
        chk._record("plan_mode_numerics", gap, 0.0,
                    f"{what}: compiled plan iterates diverge from the "
                    "interpreter (bit-identity contract)")
    return results["interpret"], results["compiled"]
