"""Runtime numerical invariant checker for the Krylov solver stack.

The solvers of this library share one uniform implementation across
right/left/flexible preconditioning and across pseudo-block/block/recycling
organizations.  That uniformity rests on a handful of *algebraic contracts*
that finite-precision block orthogonalization degrades silently (Parks,
Soodhalter & Szyld; Thomas, Baker & Gaudreault):

* the (block) Arnoldi relation ``A Z_m = V_{m+1} \\bar H_m`` (plus the
  ``C_k E_k`` term under GCRO-DR's projected operator);
* orthonormality of the Krylov basis, ``\\|V^H V - I\\|``;
* the recycled-space identities ``A U_k = C_k`` and ``C_k^H C_k = I`` —
  including after the same-system skip of Fig. 1 lines 3-7, where the
  solver *assumes* they still hold;
* agreement of the Hessenberg-tail (reported) residual with the explicitly
  recomputed one at restarts and at convergence;
* conservation of the cost ledger between the fused execution engine and
  the per-rank oracle.

Solvers call the checker at checkpoint hooks, gated by the Options level
(``-hpddm_verify {off,cheap,full}``, default off):

* ``off``   — every hook is a no-op on a shared null checker;
* ``cheap`` — only checks that cost small (non-``n``-sized) work: recycled
  basis orthonormality, reported-vs-true residual gaps;
* ``full``  — additionally re-applies the operator and re-forms Gram
  matrices to verify the Arnoldi relation, basis orthonormality, the
  ``A U = C`` map, and every distributed QR factorization.

Verification work never pollutes cost accounting: each check runs under a
throwaway :class:`~repro.util.ledger.CostLedger`, so enabling ``verify``
does not change the reductions/flops a benchmark observes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from ..util import ledger
from ..util.ledger import CostLedger
from ..util.misc import column_norms

__all__ = [
    "VERIFY_LEVELS",
    "InvariantViolation",
    "InvariantChecker",
    "NullChecker",
    "current",
    "activate",
    "checker_for",
]

VERIFY_LEVELS = ("off", "cheap", "full")

#: smallest reference magnitude used in relative drifts (avoids 0/0)
_TINY = 1e-300


class InvariantViolation(FloatingPointError):
    """A numerical invariant drifted beyond its tolerance.

    Subclasses :class:`FloatingPointError` so existing handlers of the
    legacy ``check_invariants`` debug assertions keep working.
    """

    def __init__(self, name: str, value: float, tol: float, what: str):
        self.name = name
        self.value = value
        self.tol = tol
        self.what = what
        super().__init__(
            f"invariant {name!r} violated for {what}: "
            f"drift {value:.3e} > tol {tol:.3e}")


def _trim_zero_tail(v: np.ndarray, hbar: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray | None]:
    """Drop trailing all-zero columns of a basis (lucky-breakdown slots).

    Pseudo-block solvers leave ``v_{j+1}`` unset when a column hits an exact
    breakdown; the matching Hessenberg rows are zero, so trimming both keeps
    the Arnoldi relation intact.
    """
    nrm = column_norms(v)
    keep = v.shape[1]
    while keep > 0 and nrm[keep - 1] == 0.0:
        keep -= 1
    if keep == v.shape[1]:
        return v, hbar
    v = v[:, :keep]
    if hbar is not None:
        hbar = hbar[:keep, :]
    return v, hbar


class InvariantChecker:
    """Records invariant drifts and raises :class:`InvariantViolation`.

    Parameters
    ----------
    level:
        ``"cheap"`` or ``"full"`` (``"off"`` callers should use the shared
        :data:`NULL_CHECKER` via :func:`checker_for`).
    context:
        free-form label (usually the solver name) prefixed to ``what``.
    raise_on_violation:
        when False, violations are only recorded (``report()["violations"]``)
        — used by tests that want to inspect every drift at once.

    Tolerances are instance attributes so callers can tighten or loosen
    individual checks; the defaults are calibrated to pass comfortably on
    healthy solves of well-conditioned problems while firing on the kind of
    orthogonality loss an incorrect block orthogonalization introduces.
    """

    is_off = False

    #: ``||V^H V - I||_F / sqrt(cols)`` ceiling for Krylov bases
    orth_tol: float = 1.0e-6
    #: relative Arnoldi-relation residual ceiling
    arnoldi_tol: float = 1.0e-7
    #: ``||C^H C - I||_F / sqrt(k)`` ceiling for recycled bases
    recycle_orth_tol: float = 1.0e-6
    #: relative ``||A U - C||`` ceiling for the recycled map
    recycle_map_tol: float = 1.0e-6
    #: reported-vs-true residual gap, relative to ``||b||``
    residual_gap_rtol: float = 1.0e-5
    #: factor by which the true residual may exceed the target when the
    #: reported one claims convergence (false-convergence detector)
    false_convergence_factor: float = 100.0
    #: relative ``||Q R - X||`` and ``||Q^H Q - I||`` ceiling for QR checks
    qr_tol: float = 1.0e-8

    def __init__(self, level: str = "full", *, context: str = "",
                 raise_on_violation: bool = True):
        if level not in VERIFY_LEVELS or level == "off":
            raise ValueError(
                f"checker level must be 'cheap' or 'full', got {level!r}")
        self.level = level
        self.context = context
        self.raise_on_violation = raise_on_violation
        self.drifts: dict[str, float] = {}
        self.violations: list[dict[str, Any]] = []
        self.n_checks = 0

    # ------------------------------------------------------------------
    @property
    def wants_full(self) -> bool:
        return self.level == "full"

    def _label(self, what: str) -> str:
        return f"{self.context}: {what}" if self.context else what

    def _record(self, name: str, value: float, tol: float, what: str) -> None:
        self.n_checks += 1
        value = float(value)
        self.drifts[name] = max(self.drifts.get(name, 0.0), value)
        if value > tol or not np.isfinite(value):
            what = self._label(what)
            self.violations.append(
                {"name": name, "value": value, "tol": tol, "what": what})
            if self.raise_on_violation:
                raise InvariantViolation(name, value, tol, what)

    @contextmanager
    def _scratch_ledger(self) -> Iterator[None]:
        """Run verification math without charging the caller's ledger."""
        with ledger.install(CostLedger()):
            yield

    # ------------------------------------------------------------------
    # full-level checks (re-apply the operator / re-form Gram matrices)
    # ------------------------------------------------------------------
    def check_orthonormality(self, v: np.ndarray, *, what: str = "Krylov basis"
                             ) -> None:
        """``||V^H V - I||_F / sqrt(cols)`` must stay below ``orth_tol``."""
        if not self.wants_full or v.size == 0:
            return
        with self._scratch_ledger():
            v, _ = _trim_zero_tail(v)
            if v.shape[1] == 0:
                return
            g = v.conj().T @ v
            drift = np.linalg.norm(g - np.eye(g.shape[0], dtype=g.dtype))
            drift /= max(np.sqrt(g.shape[0]), 1.0)
        self._record("orthonormality", drift, self.orth_tol, what)

    def check_arnoldi(self, op_apply, z: np.ndarray, v: np.ndarray,
                      hbar: np.ndarray, *, ck: np.ndarray | None = None,
                      ek: np.ndarray | None = None,
                      what: str = "Arnoldi relation") -> None:
        """Verify ``A Z = V_{m+1} \\bar H_m`` (``+ C_k E_k`` when projected).

        ``op_apply`` is the operator the solver iterated with (including a
        left preconditioner when applicable); ``z`` holds the preconditioned
        basis blocks (``= v[:, :m]`` without inner preconditioning).
        """
        if not self.wants_full or z.size == 0:
            return
        with self._scratch_ledger():
            az = np.asarray(op_apply(z))
            if ck is not None and ek is not None and ck.shape[1] and ek.size:
                az = az - ck @ ek
            v, hbar = _trim_zero_tail(v, hbar)
            resid = az - v @ hbar
            ref = max(float(np.linalg.norm(az)), float(np.linalg.norm(hbar)),
                      _TINY)
            drift = float(np.linalg.norm(resid)) / ref
        self._record("arnoldi_residual", drift, self.arnoldi_tol, what)

    def check_qr(self, x: np.ndarray, q: np.ndarray, r: np.ndarray, *,
                 rank: int | None = None, what: str = "distributed QR"
                 ) -> None:
        """Verify ``Q^H Q = I`` (on the leading ``rank`` columns) and
        ``Q R ~= X`` for a tall-skinny QR factorization."""
        if not self.wants_full or x.size == 0:
            return
        with self._scratch_ledger():
            k = q.shape[1] if rank is None else int(rank)
            if k:
                qk = q[:, :k]
                g = qk.conj().T @ qk
                orth = np.linalg.norm(g - np.eye(k, dtype=g.dtype))
                orth /= max(np.sqrt(k), 1.0)
            else:
                orth = 0.0
            xref = max(float(np.linalg.norm(x)), _TINY)
            recon = float(np.linalg.norm(q @ r - x)) / xref
        self._record("qr_orthonormality", orth, self.qr_tol, what)
        self._record("qr_reconstruction", recon, self.qr_tol * 100, what)

    # ------------------------------------------------------------------
    # recycled-space identities (cheap: C^H C; full: + A U = C)
    # ------------------------------------------------------------------
    def check_recycle(self, u: np.ndarray | None, c: np.ndarray | None, *,
                      op_apply=None, what: str = "recycled space") -> None:
        """Verify ``C^H C = I`` (cheap+) and ``A U = C`` (full only)."""
        if u is None or c is None or c.shape[1] == 0:
            return
        with self._scratch_ledger():
            k = c.shape[1]
            g = c.conj().T @ c
            orth = np.linalg.norm(g - np.eye(k, dtype=g.dtype))
            orth /= max(np.sqrt(k), 1.0)
        self._record("recycle_orthonormality", orth, self.recycle_orth_tol,
                     what)
        if not self.wants_full or op_apply is None:
            return
        with self._scratch_ledger():
            au = np.asarray(op_apply(u))
            rel = float(np.linalg.norm(au - c))
            rel /= max(float(np.linalg.norm(au)), _TINY)
        self._record("recycle_map", rel, self.recycle_map_tol, what)

    # ------------------------------------------------------------------
    # cheap checks
    # ------------------------------------------------------------------
    def check_residual_gap(self, predicted: np.ndarray, true: np.ndarray,
                           rhs_norms: np.ndarray,
                           targets: np.ndarray | None = None, *,
                           what: str = "restart residual") -> None:
        """Reported (Hessenberg-tail) vs explicitly recomputed residual.

        Both arguments are *absolute* per-column norms.  Two failure modes:
        a large relative gap, and *false convergence* — the reported norm is
        below target while the true one is far above it.
        """
        predicted = np.asarray(predicted, dtype=float)
        true = np.asarray(true, dtype=float)
        scale = np.where(rhs_norms > 0, rhs_norms, 1.0)
        gap = float(np.max(np.abs(predicted - true) / scale, initial=0.0))
        self._record("residual_gap", gap, self.residual_gap_rtol, what)
        if targets is not None:
            claimed = predicted <= targets
            if np.any(claimed):
                worst = float(np.max(
                    np.where(claimed, true / np.maximum(targets, _TINY), 0.0)))
                self._record("false_convergence", worst,
                             self.false_convergence_factor, what)

    def check_final_residual(self, a, x: np.ndarray, b: np.ndarray,
                             reported_rel: np.ndarray, tol: float, *,
                             converged: np.ndarray | None = None,
                             what: str = "final residual") -> None:
        """Reported relative residual vs the true ``||b - A x|| / ||b||``."""
        with self._scratch_ledger():
            from ..krylov.base import true_residual_norms
            true_abs = true_residual_norms(a, x, b)
        rhs = column_norms(np.atleast_2d(np.asarray(b).T).T)
        scale = np.where(rhs > 0, rhs, 1.0)
        reported_abs = np.asarray(reported_rel, dtype=float) * scale
        targets = None
        if converged is not None:
            # columns reported converged must truly be (up to the factor)
            targets = np.where(converged, tol * scale, np.inf)
        self.check_residual_gap(reported_abs, true_abs, rhs, targets,
                                what=what)

    # ------------------------------------------------------------------
    # ledger conservation (fused vs per-rank execution engines)
    # ------------------------------------------------------------------
    def check_ledger_conservation(self, fused: CostLedger,
                                  per_rank: CostLedger, *,
                                  what: str = "exec modes") -> None:
        """Fused and per-rank runs must charge bit-identical ledgers."""
        a, b = fused.counts(), per_rank.counts()
        drift = 0.0 if a == b else 1.0
        self._record("ledger_conservation", drift, 0.5, what)

    # ------------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Summary of every drift observed (max per invariant name)."""
        return {
            "level": self.level,
            "context": self.context,
            "checks": self.n_checks,
            "max_drift": dict(self.drifts),
            "violations": list(self.violations),
        }


class NullChecker:
    """Shared no-op checker installed when verification is off."""

    is_off = True
    level = "off"
    wants_full = False

    def check_orthonormality(self, *a: Any, **k: Any) -> None:
        pass

    def check_arnoldi(self, *a: Any, **k: Any) -> None:
        pass

    def check_qr(self, *a: Any, **k: Any) -> None:
        pass

    def check_recycle(self, *a: Any, **k: Any) -> None:
        pass

    def check_residual_gap(self, *a: Any, **k: Any) -> None:
        pass

    def check_final_residual(self, *a: Any, **k: Any) -> None:
        pass

    def check_ledger_conservation(self, *a: Any, **k: Any) -> None:
        pass

    def report(self) -> dict[str, Any]:
        return {"level": "off", "checks": 0, "max_drift": {},
                "violations": []}


NULL_CHECKER = NullChecker()

_STACK: list[InvariantChecker] = []


def current() -> "InvariantChecker | NullChecker":
    """The innermost active checker (the shared null checker when none)."""
    return _STACK[-1] if _STACK else NULL_CHECKER


@contextmanager
def activate(checker: InvariantChecker) -> Iterator[InvariantChecker]:
    """Install ``checker`` as the ambient checker for a region.

    Distributed primitives (e.g. :mod:`repro.distla.distqr`) consult the
    ambient checker; solvers receive theirs through :func:`checker_for`.
    """
    _STACK.append(checker)
    try:
        yield checker
    finally:
        _STACK.pop()


def checker_for(options, *, context: str = ""
                ) -> "InvariantChecker | NullChecker":
    """Resolve the checker a solver should use.

    An ambient checker (installed by :func:`repro.api.solve` or a test)
    takes precedence, so one checker accumulates the whole solve's report;
    otherwise a fresh checker is built from ``options.verify``.
    """
    amb = current()
    if not amb.is_off:
        # the api-level ambient checker is built without seeing the solver
        # options; scale it here so scheme-dependent ceilings still apply
        if isinstance(amb, InvariantChecker):
            _apply_scheme_tolerances(amb, options)
        return amb
    level = getattr(options, "verify", "off")
    if level == "off":
        return NULL_CHECKER
    chk = InvariantChecker(level, context=context)
    _apply_scheme_tolerances(chk, options)
    return chk


def _apply_scheme_tolerances(chk: InvariantChecker, options) -> InvariantChecker:
    """Scale drift tolerances to the active orthogonalization scheme.

    The ceiling for basis-orthonormality drift is the scheme's theoretical
    loss-of-orthogonality bound from the registry
    (:data:`repro.la.orthogonalization.SCHEMES`): two-pass schemes are held
    to a *tighter* ceiling than the default (so regressions are not masked),
    single-pass and sketched schemes to the looser one their analysis
    guarantees (so ``verify=full`` does not false-positive by design).
    Sketch-space schemes report sketched residual estimates, so their
    residual-gap tolerance widens as well.

    Recycled-space orthonormality follows the same scheme ceiling for
    inexact-basis schemes: their repair of ``C_k`` is *drift-gated* — the
    expensive full-space re-derivation is deferred while a sketch-space
    probe stays below ``info.orth_tol``, so mid-solve ``C_k^H C_k`` may
    legitimately carry that much drift (packaged spaces are still repaired
    to rounding at the adoption boundary).  The mapping identity
    ``A U_k = C_k`` is preserved exactly by the sketch-whitening transform,
    but an ill-conditioned whitening factor amplifies its rounding error,
    so ``recycle_space="sketched"`` widens the map tolerance moderately.
    """
    from ..la.orthogonalization import SCHEMES  # deferred: keep verify light
    info = SCHEMES.get(getattr(options, "orthogonalization", ""))
    if info is not None and info.is_ortho:
        chk.orth_tol = info.orth_tol
        if info.residual_gap_rtol is not None:
            chk.residual_gap_rtol = info.residual_gap_rtol
        if not info.exact_basis:
            chk.recycle_orth_tol = max(chk.recycle_orth_tol, info.orth_tol)
            if getattr(options, "recycle_space", "full") == "sketched":
                chk.recycle_map_tol = max(chk.recycle_map_tol, 1e-4)
    return chk
