"""repro — block iterative methods and Krylov subspace recycling.

A from-scratch Python reproduction of *"Block Iterative Methods and
Recycling for Improved Scalability of Linear Solvers"* (Jolivet &
Tournier, SC16 — the HPDDM paper): (pseudo-)block GMRES and GCRO-DR with
right / left / variable preconditioning, smoothed-aggregation AMG and
optimized Schwarz (ORAS) preconditioners, a sparse direct solver with
blocked multi-RHS triangular solves, PDE problem generators (Poisson,
linear elasticity, time-harmonic Maxwell on Nédélec edge elements), and a
simulated-MPI cost model for scalability studies.

Quickstart
----------
>>> import numpy as np, scipy.sparse as sp
>>> from repro import solve, Options
>>> n = 100
>>> A = sp.diags([-np.ones(n-1), 2*np.ones(n), -np.ones(n-1)], [-1, 0, 1]).tocsr()
>>> res = solve(A, np.ones(n), options=Options(krylov_method="gcrodr",
...             gmres_restart=20, recycle=5, tol=1e-10))
>>> bool(res.converged.all())
True
"""

from .api import Solver, solve
from .krylov.base import (FunctionPreconditioner, Operator, Preconditioner,
                          SolveResult, as_operator, as_preconditioner)
from .krylov.recycling import RecycledSubspace, RecyclingStore
from .service import (AsyncSolveService, SetupCache, ShardedSetupCache,
                      SolveService, make_service, operator_fingerprint)
from .util.execmode import exec_mode, set_exec_mode, use_exec_mode
from .util.ledger import CostLedger, CostTable, install as install_ledger
from .util.options import Options, parse_hpddm_args

__version__ = "1.0.0"

__all__ = [
    "solve",
    "Solver",
    "Options",
    "parse_hpddm_args",
    "Operator",
    "as_operator",
    "Preconditioner",
    "FunctionPreconditioner",
    "as_preconditioner",
    "SolveResult",
    "RecycledSubspace",
    "RecyclingStore",
    "SolveService",
    "AsyncSolveService",
    "make_service",
    "SetupCache",
    "ShardedSetupCache",
    "operator_fingerprint",
    "CostLedger",
    "CostTable",
    "install_ledger",
    "exec_mode",
    "set_exec_mode",
    "use_exec_mode",
]
