"""Incremental QR factorization of the (block) Hessenberg matrix.

The paper's eq. (2) prefers the harmonic-Ritz left-hand side built from the
*incrementally maintained* QR factors of the block Hessenberg matrix —
"our implementation of (Block) GMRES computes the QR factorization of
``H_m`` incrementally, i.e. p column(s) of Q and R are determined per
iteration".  This module is that machinery.

For ``p = 1`` the update degenerates to the classic Givens-rotation sweep of
GMRES; for ``p > 1`` each step applies the stored small unitary factors to
the new block column and triangularizes the trailing ``2p x p`` panel with a
dense QR ("block Givens").  All of this is *redundant* work replicated on
every (virtual) rank — it involves no communication.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import column_norms

__all__ = ["BlockHessenbergQR"]


class BlockHessenbergQR:
    """Maintains ``Q^H H_j = [R_j; 0]`` and ``g = Q^H [S1; 0]`` incrementally.

    Parameters
    ----------
    max_cols:
        maximum number of block columns (the restart parameter ``m``).
    p:
        block width (number of fused right-hand sides).
    rhs0:
        the initial ``p x q`` block ``S1`` from the QR of the starting
        residual (paper line 11/24); for single-RHS GMRES this is the
        scalar ``||r_0||``.  ``q > p`` occurs under block-size reduction:
        the basis is ``p`` wide but all ``q`` original RHS columns are
        tracked through the least-squares problem.
    dtype:
        scalar type (complex for Maxwell systems).
    """

    def __init__(self, max_cols: int, p: int, rhs0: np.ndarray, dtype=np.float64):
        self.m = int(max_cols)
        self.p = int(p)
        self.dtype = np.dtype(dtype)
        n_rows = (self.m + 1) * self.p
        # raw Hessenberg (kept for the harmonic-Ritz eigenproblems)
        self.H = np.zeros((n_rows, self.m * self.p), dtype=self.dtype)
        # triangular factor of H (same storage footprint)
        self.R = np.zeros((n_rows, self.m * self.p), dtype=self.dtype)
        # transformed right-hand side g = Q^H [S1; 0]
        rhs0 = np.asarray(rhs0, dtype=self.dtype)
        if rhs0.ndim != 2 or rhs0.shape[0] != self.p:
            raise ValueError(f"rhs0 must be {self.p} x q, got {rhs0.shape}")
        self.q = rhs0.shape[1]
        self.g = np.zeros((n_rows, self.q), dtype=self.dtype)
        self.g[: self.p] = rhs0
        # small unitary panel factors (q2^H), one per processed block column
        self._panels: list[np.ndarray] = []
        self.ncols = 0  # number of processed block columns (j)

    # ------------------------------------------------------------------
    @property
    def nrows_active(self) -> int:
        """Rows of H currently meaningful: (j+1) * p."""
        return (self.ncols + 1) * self.p

    def hessenberg(self) -> np.ndarray:
        """The raw block Hessenberg ``\\bar H_j`` ((j+1)p x jp)."""
        j = self.ncols
        return self.H[: (j + 1) * self.p, : j * self.p]

    def triangular(self) -> np.ndarray:
        """Current triangular factor ``R_j`` (jp x jp)."""
        j = self.ncols
        return self.R[: j * self.p, : j * self.p]

    def last_subdiagonal_block(self) -> np.ndarray:
        """``h_{j+1,j}`` — needed by the harmonic-Ritz correction (eq. 2)."""
        j = self.ncols
        if j == 0:
            raise ValueError("no column processed yet")
        return self.H[j * self.p: (j + 1) * self.p, (j - 1) * self.p: j * self.p]

    # ------------------------------------------------------------------
    def add_column(self, h_col: np.ndarray, *, charge: bool = True
                   ) -> np.ndarray:
        """Process a new block column of the Hessenberg matrix.

        ``h_col`` has shape ((j+2)p, p) where ``j = self.ncols`` is the number
        of previously processed columns.  Returns the per-column least-squares
        residual norms after including this column.  ``charge=False`` skips
        the ledger flop accounting — used by the compiled plan path, whose
        node replays the same total from a pre-bound table.
        """
        j = self.ncols
        p = self.p
        if j >= self.m:
            raise ValueError("Hessenberg QR is full; restart required")
        h_col = np.asarray(h_col, dtype=self.dtype)
        expected = ((j + 2) * p, p)
        if h_col.shape != expected:
            raise ValueError(f"expected column block of shape {expected}, got {h_col.shape}")
        self.H[: (j + 2) * p, j * p: (j + 1) * p] = h_col

        # apply the stored panel factors to the new column
        work = np.array(h_col, copy=True)
        led = ledger.current()
        for i, q2h in enumerate(self._panels):
            rows = slice(i * p, (i + 2) * p)
            work[rows] = q2h @ work[rows]
            if charge:
                led.flop(Kernel.BLAS3, 2.0 * (2 * p) ** 2 * p)

        # triangularize the trailing 2p x p panel
        panel = work[j * p: (j + 2) * p]
        q2, r2 = np.linalg.qr(panel, mode="complete")
        if charge:
            led.flop(Kernel.QR, 16.0 * p**3)
        q2h = q2.conj().T
        self._panels.append(q2h)
        work[j * p: (j + 1) * p] = r2[:p]
        work[(j + 1) * p: (j + 2) * p] = 0.0
        self.R[: (j + 1) * p, j * p: (j + 1) * p] = work[: (j + 1) * p]

        # update the transformed right-hand side
        rows = slice(j * p, (j + 2) * p)
        self.g[rows] = q2h @ self.g[rows]
        if charge:
            led.flop(Kernel.BLAS3, 2.0 * (2 * p) ** 2 * p)

        self.ncols = j + 1
        return self.residual_norms()

    # ------------------------------------------------------------------
    def residual_norms(self) -> np.ndarray:
        """Per-column 2-norms of the least-squares residual.

        For block GMRES the residual of the projected problem lives in the
        trailing ``p`` rows of ``g``; its column norms bound the true
        residual norms of the corresponding RHS columns.
        """
        j = self.ncols
        tail = self.g[j * self.p: (j + 1) * self.p]
        return column_norms(tail)

    def solve(self) -> np.ndarray:
        """Solve the projected least-squares problem: ``Y = R^{-1} g_top``.

        Returns ``Y`` of shape (jp, p).  Near-singular diagonals (converged
        or broken-down directions) trigger a least-squares fallback.
        """
        j = self.ncols
        if j == 0:
            return np.zeros((0, self.q), dtype=self.dtype)
        r = self.triangular()
        gtop = self.g[: j * self.p]
        diag = np.abs(np.diagonal(r))
        scale = diag.max(initial=0.0)
        led = ledger.current()
        led.flop(Kernel.BLAS2, 1.0 * (j * self.p) ** 2 * self.p)
        if scale == 0.0 or diag.min() < 1e-14 * scale:
            y, *_ = np.linalg.lstsq(r, gtop, rcond=None)
            return y
        return sla.solve_triangular(r, gtop, lower=False)

    def apply_qh(self, block: np.ndarray) -> np.ndarray:
        """Apply the accumulated ``Q^H`` to a ((j+1)p x q) block.

        Used by GCRO-DR when forming ``C_k = V_{m+1} Q`` — the factor ``Q``
        from the Hessenberg QR is exactly the adjoint of the accumulated
        panel product.
        """
        work = np.array(block, dtype=self.dtype, copy=True)
        p = self.p
        if work.shape[0] != self.nrows_active:
            raise ValueError(
                f"expected {self.nrows_active} rows, got {work.shape[0]}")
        for i, q2h in enumerate(self._panels):
            rows = slice(i * p, (i + 2) * p)
            work[rows] = q2h @ work[rows]
        return work

    def apply_q(self, block: np.ndarray) -> np.ndarray:
        """Apply the accumulated ``Q`` ((j+1)p x (j+1)p unitary) to a block."""
        work = np.array(block, dtype=self.dtype, copy=True)
        p = self.p
        if work.shape[0] != self.nrows_active:
            raise ValueError(
                f"expected {self.nrows_active} rows, got {work.shape[0]}")
        for i, q2h in zip(range(len(self._panels) - 1, -1, -1),
                          reversed(self._panels)):
            rows = slice(i * p, (i + 2) * p)
            work[rows] = q2h.conj().T @ work[rows]
        return work

    def q_matrix(self) -> np.ndarray:
        """Materialize the (j+1)p x (j+1)p unitary ``Q`` (small, redundant)."""
        eye = np.eye(self.nrows_active, dtype=self.dtype)
        return self.apply_q(eye)
