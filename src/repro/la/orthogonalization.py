"""Orthogonalization kernels: Gram-Schmidt variants, CholQR, TSQR, sketching.

These are the communication-critical kernels of the paper (section III-D):

* the distributed QR of a tall-skinny block (paper lines 11 and 24) costs a
  **single** global reduction with CholQR or TSQR, but ``k`` reductions with
  Classical Gram-Schmidt and ``k`` (sequential!) reductions with Modified
  Gram-Schmidt;
* Arnoldi orthogonalization against an existing basis costs one reduction
  per *batch* of dot products (CGS), or one per basis vector (MGS);
* the low-synchronization schemes (``cgs2_1r``, ``cholqr2``, ``sketched``)
  cap the count at <= 2 reductions per Arnoldi step at *every* basis depth
  by fusing all Gram blocks of a pass into one stacked GEMM whose result
  travels in a single reduction (Thomas/Baker/Gaudreault low-sync block
  Gram-Schmidt; Burke/Guettel/Soodhalter sketched GMRES).

Every kernel reports its (virtual) reduction count to the active
:class:`repro.util.ledger.CostLedger`, which is how the benchmarks verify
the ``2(m-k)`` vs ``m`` reductions-per-cycle claim.

All kernels accept ``n x p`` blocks and work for real or complex dtypes.

The module also owns the *scheme registry* (:data:`SCHEMES`): one table
driving `Options` validation, the verifier's per-scheme drift tolerances,
the docs matrix and the benchmark sweep, so a scheme added here is wired
through every layer automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms

__all__ = [
    "cholqr",
    "shifted_cholqr",
    "cholqr2",
    "cholqr_rr",
    "tsqr",
    "sketched_qr",
    "classical_gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "qr_factorization",
    "project_out",
    "project_out_fused",
    "arnoldi_orthogonalize",
    "apply_sketch",
    "sketch_size",
    "make_arnoldi_engine",
    "SketchState",
    "PseudoBlockOrthogonalizer",
    "OrthoScheme",
    "SCHEMES",
    "ORTHO_SCHEME_NAMES",
    "QR_SCHEME_NAMES",
    "LOW_SYNC_SCHEMES",
    "SCALE_AWARE_QR",
]


@dataclass(frozen=True)
class OrthoScheme:
    """One row of the orthogonalization scheme registry.

    ``arnoldi_reductions`` / ``loo_bound`` are the human-readable figures
    quoted in docs/ORTHOGONALIZATION.md and the benchmark report;
    ``orth_tol`` is the basis-orthonormality drift ceiling the runtime
    verifier uses for the scheme (see ``verify/checker.py``), and
    ``exact_basis`` records whether the scheme keeps the Krylov basis
    orthonormal to machine precision (two-pass schemes) or only to a
    bounded loss (single-pass / sketched) — recycled spaces harvested
    under inexact schemes get re-orthonormalized explicitly.
    """

    name: str
    is_ortho: bool                      # valid for Options.orthogonalization
    is_qr: bool                         # valid for Options.qr
    arnoldi_reductions: str = "-"       # reductions per Arnoldi step
    loo_bound: str = "-"                # loss of orthogonality, informal
    orth_tol: float = 1.0e-6            # verifier drift ceiling
    residual_gap_rtol: float | None = None  # verifier override (None = keep)
    exact_basis: bool = True
    description: str = ""


#: Single source of truth for every scheme name the options layer accepts.
#: Order matters only for error-message stability (legacy names first).
SCHEMES: dict[str, OrthoScheme] = {s.name: s for s in (
    OrthoScheme("cgs", True, True, "2", "O(eps * kappa^2)", 1.0e-6,
                description="classical Gram-Schmidt, one fused Gram per step"),
    OrthoScheme("mgs", True, True, "j*p + 2", "O(eps * kappa)", 1.0e-6,
                description="modified Gram-Schmidt, sequential reductions"),
    # imgs keeps the default ceiling: its basis is two-pass quality, but the
    # legacy cycle path projects C_k with a *single* pass, so the combined
    # [C_k V] drift the verifier sees is still O(eps * kappa)-ish.
    OrthoScheme("imgs", True, False, "3", "O(eps)", 1.0e-6,
                description="iterated (two-pass) classical Gram-Schmidt"),
    OrthoScheme("cgs2_1r", True, True, "2", "O(eps)", 1.0e-8,
                description="CGS2 with one delayed reorthogonalization pass; "
                            "Gram blocks fused into one stacked GEMM, norm "
                            "by Pythagorean downdate: <=2 reductions/step"),
    OrthoScheme("cholqr2", True, True, "2", "O(eps * kappa)", 1.0e-4,
                exact_basis=False,
                description="single-pass projection + CholQR2 intra-block "
                            "normalizer: <=2 reductions/step"),
    OrthoScheme("sketched", True, True, "1", "eps_s/(1 - eps_s) in sketch "
                "space (exact when s = n)", 64.0, residual_gap_rtol=10.0,
                exact_basis=False,
                description="seeded SRHT sketch applied locally, sketch-space "
                            "QR, one small reduction per step"),
    OrthoScheme("cholqr", False, True, "-", "O(eps * kappa^2)", 1.0e-6,
                description="Cholesky QR with shifted / rank-revealing "
                            "fallbacks (intra-block only)"),
    OrthoScheme("cholqr_rr", False, True, "-", "O(eps)", 1.0e-6,
                description="rank-revealing CholQR (intra-block only)"),
    OrthoScheme("tsqr", False, True, "-", "O(eps)", 1.0e-6,
                description="tall-skinny QR reduction tree (intra-block only)"),
    OrthoScheme("householder", False, True, "-", "O(eps)", 1.0e-6,
                description="Householder QR (intra-block only)"),
)}

ORTHO_SCHEME_NAMES: tuple[str, ...] = tuple(
    s.name for s in SCHEMES.values() if s.is_ortho)
QR_SCHEME_NAMES: tuple[str, ...] = tuple(
    s.name for s in SCHEMES.values() if s.is_qr)
#: Arnoldi schemes routed through the stateful low-sync engine.
LOW_SYNC_SCHEMES: tuple[str, ...] = ("cgs2_1r", "cholqr2", "sketched")
#: QR schemes that accept an absolute ``scale`` for breakdown detection.
SCALE_AWARE_QR: tuple[str, ...] = ("cholqr", "cholqr_rr", "sketched")


def _gram(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """x^H y with flop + single-reduction accounting."""
    led = ledger.current()
    led.flop(Kernel.BLAS3, 2.0 * x.shape[0] * x.shape[1] * y.shape[1])
    led.reduction(nbytes=x.shape[1] * y.shape[1] * x.itemsize)
    return x.conj().T @ y


def _chol_from_gram(x: np.ndarray, g: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Uncharged CholQR back half: factorize a precomputed Gram, whiten x.

    Raises :class:`numpy.linalg.LinAlgError` before any work when ``g`` is
    numerically indefinite.  Shared with the compiled plan path
    (``repro.plan``), whose nodes replay pre-bound charges instead.
    """
    r = np.linalg.cholesky(g).conj().T
    q = sla.solve_triangular(r.T, x.T, lower=True).T
    return q, r


def cholqr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cholesky QR: ``x = Q R`` with one global reduction.

    Returns ``Q`` (n x p, orthonormal columns) and ``R`` (p x p upper
    triangular).  Raises :class:`numpy.linalg.LinAlgError` when the Gram
    matrix is numerically indefinite (severely ill-conditioned block) —
    callers that must survive that case should use :func:`shifted_cholqr`
    or :func:`cholqr_rr`.
    """
    x = as_block(x)
    g = _gram(x, x)
    q, r = _chol_from_gram(x, g)
    ledger.current().flop(Kernel.BLAS3, 1.0 * x.shape[0] * x.shape[1] ** 2)
    return q, r


def shifted_cholqr(x: np.ndarray, *, refine: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """CholQR with a diagonal shift making the Cholesky factorization safe.

    The shift follows the classic ``11(np + p(p+1)) u ||x||^2`` recipe; one
    optional re-orthonormalization pass (CholQR2) restores orthogonality to
    machine precision.  Still one reduction per pass.
    """
    x = as_block(x)
    n, p = x.shape
    g = _gram(x, x)
    normx2 = float(np.trace(g).real)
    u = np.finfo(x.dtype).eps
    shift = 11.0 * (n * p + p * (p + 1)) * u * normx2
    r = np.linalg.cholesky(g + shift * np.eye(p, dtype=g.dtype)).conj().T
    q = sla.solve_triangular(r.T, x.T, lower=True).T
    if refine:
        q2, r2 = cholqr(q)
        return q2, r2 @ r
    return q, r


def cholqr2(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CholQR2: two passes of Cholesky QR — 2 reductions, O(eps) orthogonality.

    The first pass uses the shifted Gram so the factorization cannot break
    down; the second (the "2") restores orthogonality to machine precision.
    This is also the intra-block normalizer of the ``cholqr2`` and
    ``cgs2_1r`` Arnoldi schemes — for a single block the delayed
    reorthogonalization pass of (B)CGS2-1r *is* the second Cholesky pass,
    so both scheme names dispatch here for standalone QR.
    """
    return shifted_cholqr(x, refine=True)


def cholqr_rr(x: np.ndarray, *, tol: float = 1e-12,
              scale: float | None = None) -> tuple[np.ndarray, np.ndarray, int]:
    """Rank-revealing CholQR used for block-breakdown detection (paper §V-C).

    Eigen-decomposes the Gram matrix; directions whose singular value falls
    below ``tol * max(sigma_max, scale)`` are flagged as (near-)colinear.
    ``scale`` lets callers supply an *absolute* reference magnitude — e.g.
    the norm of the candidate block before Arnoldi projection, so that a
    remainder that is numerically zero relative to its input is correctly
    reported as a breakdown even though it is "full rank" relative to its
    own round-off.  Returns ``(Q, R, rank)`` where ``Q`` has ``rank``
    orthonormal columns followed by zero columns, and ``R`` is p x p with
    its trailing rows zeroed, so that ``Q @ R ~= x`` still holds.
    """
    x = as_block(x)
    n, p = x.shape
    led = ledger.current()
    led.flop(Kernel.BLAS3, 2.0 * n * p * p)
    led.reduction(nbytes=p * p * x.itemsize)
    q, r, rank = _cholqr_rr_core(x, tol=tol, scale=scale)
    led.flop(Kernel.EIG, 9.0 * p**3)
    if rank:
        led.flop(Kernel.BLAS3, 2.0 * n * p * p)
    return q, r, rank


def _cholqr_rr_core(x: np.ndarray, *, tol: float, scale: float | None = None
                    ) -> tuple[np.ndarray, np.ndarray, int]:
    """Uncharged rank-revealing CholQR numerics (shared with ``repro.plan``).

    ``x`` must be contiguous for bitwise parity with the interpreted path:
    the self-Gram ``x^H x`` takes NumPy's syrk dispatch only then.
    """
    n, p = x.shape
    g = x.conj().T @ x
    w, v = np.linalg.eigh(g)
    w = np.maximum(w.real, 0.0)
    sig = np.sqrt(w)[::-1]           # descending singular values of x
    v = v[:, ::-1]
    smax = sig[0] if sig.size else 0.0
    ref = max(smax, scale if scale is not None else 0.0, np.finfo(float).tiny)
    rank = int(np.count_nonzero(sig > tol * ref))
    if rank == 0:
        return np.zeros_like(x), np.zeros((p, p), dtype=x.dtype), 0
    # x = (x v) v^H ; orthonormalize the leading rank columns of x v
    xv = x @ v
    q = np.zeros_like(x)
    q[:, :rank] = xv[:, :rank] / sig[:rank]
    r = np.zeros((p, p), dtype=x.dtype)
    r[:rank, :] = (sig[:rank, None]) * v[:, :rank].conj().T
    return q, r, rank


def tsqr(x: np.ndarray, *, nblocks: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Tall-skinny QR with a binary reduction tree (one global reduction).

    The row blocks emulate the per-rank partitions; the tree is actually
    executed so the factorization is unconditionally stable (unlike CholQR).
    """
    x = as_block(x)
    n, p = x.shape
    nblocks = max(1, min(nblocks, n // max(p, 1) or 1))
    bounds = np.linspace(0, n, nblocks + 1).astype(int)
    qs: list[np.ndarray] = []
    rs: list[np.ndarray] = []
    led = ledger.current()
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        q, r = np.linalg.qr(x[lo:hi])
        led.flop(Kernel.QR, 4.0 * (hi - lo) * p**2)
        qs.append(q)
        rs.append(r)
    # reduction tree over the local R factors
    tree: list[list[np.ndarray]] = [[q] for q in qs]
    while len(rs) > 1:
        new_rs, new_tree = [], []
        for i in range(0, len(rs) - 1, 2):
            stacked = np.vstack([rs[i], rs[i + 1]])
            q, r = np.linalg.qr(stacked)
            led.flop(Kernel.QR, 4.0 * stacked.shape[0] * p**2)
            new_rs.append(r)
            new_tree.append(tree[i] + tree[i + 1] + [q])
        if len(rs) % 2:
            new_rs.append(rs[-1])
            new_tree.append(tree[-1])
        rs, tree = new_rs, new_tree
    led.reduction(nbytes=p * p * x.itemsize)
    r = rs[0]
    # reconstruct Q by back-propagating: Q = blkdiag(local Qs) @ (tree Qs)
    q = _tsqr_assemble_q(qs, bounds, r, x)
    return q, r


def _tsqr_assemble_q(qs: list[np.ndarray], bounds: np.ndarray, r: np.ndarray,
                     x: np.ndarray) -> np.ndarray:
    """Recover the explicit thin Q: solve x = Q r (r is small, triangular)."""
    # The clean explicit reconstruction: Q = x @ inv(r).  r may be singular if
    # x is rank deficient; fall back to lstsq in that case.
    try:
        q = sla.solve_triangular(r, x.T, lower=False, trans="T").T \
            if not np.iscomplexobj(x) else \
            sla.solve_triangular(r.conj().T, x.conj().T, lower=True).conj().T
    except (sla.LinAlgError, ValueError):
        q = np.linalg.lstsq(r.conj().T, x.conj().T, rcond=None)[0].conj().T
    ledger.current().flop(Kernel.BLAS3, 1.0 * x.shape[0] * x.shape[1] ** 2)
    return q


def householder_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unconditionally stable thin QR (Householder).

    Communication-wise this stands in for TSQR (one reduction on a tree of
    Householder factorizations, cf. CA-GMRES); numerically it is the safe
    choice when the block may be severely ill-conditioned — e.g. the
    re-orthonormalization of ``A U_k`` at an operator change (paper line 4),
    where the recycled space can be arbitrarily close to rank deficient.
    """
    x = as_block(x)
    led = ledger.current()
    led.flop(Kernel.QR, 4.0 * x.shape[0] * x.shape[1] ** 2)
    led.reduction(nbytes=x.shape[1] ** 2 * x.itemsize)
    return np.linalg.qr(x)


# ---------------------------------------------------------------------------
# Sketching (SRHT): seeded sign flip + orthonormal DCT + row sampling.
# The transform is applied to locally-owned rows; only the s x p sketched
# result needs assembling, which is the single small reduction the callers
# charge.  With s = n the operator is an exact isometry (no distortion), so
# small test problems lose nothing; with s < n it is an eps-embedding of any
# fixed s/4-dimensional subspace with high probability.
# ---------------------------------------------------------------------------

_SKETCH_SEED = 20260705
_SKETCH_CACHE: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}


def _srht_operator(n: int, s: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    key = (n, s, seed)
    if key not in _SKETCH_CACHE:
        if len(_SKETCH_CACHE) > 8:
            _SKETCH_CACHE.clear()
        rng = np.random.default_rng([_SKETCH_SEED, n, s, seed])
        signs = rng.choice(np.array([-1.0, 1.0]), size=n)
        rows = np.sort(rng.choice(n, size=s, replace=False)) if s < n \
            else np.arange(n)
        _SKETCH_CACHE[key] = (signs, rows)
    return _SKETCH_CACHE[key]


def sketch_size(n: int, max_cols: int) -> int:
    """Default sketch dimension for a basis of at most ``max_cols`` columns."""
    return int(min(n, max(32, 4 * max_cols + 16)))


def _apply_sketch_core(w: np.ndarray, s: int, seed: int) -> np.ndarray:
    """Uncharged SRHT application (shared with ``repro.plan``)."""
    from scipy.fft import dct

    n = w.shape[0]
    signs, rows = _srht_operator(n, s, seed)
    y = dct(signs[:, None] * w, axis=0, norm="ortho", type=2)
    return np.ascontiguousarray(y[rows]) * np.sqrt(n / s)


def apply_sketch(w: np.ndarray, s: int, *, seed: int = 0) -> np.ndarray:
    """``S @ w`` for the seeded SRHT ``S = sqrt(n/s) P H D`` (s x p result).

    Local work only (flops are charged here); the caller charges the one
    global reduction that assembles the s x p sketched block.
    """
    w = as_block(w)
    n, p = w.shape
    ledger.current().flop(
        Kernel.BLAS3, 2.0 * n * np.log2(max(n, 2)) * max(p, 1))
    return _apply_sketch_core(w, s, seed)


def sketched_qr(x: np.ndarray, *, tol: float = 1e-12,
                scale: float | None = None, s: int | None = None,
                seed: int = 0) -> tuple[np.ndarray, np.ndarray, int]:
    """Sketched QR: sketch locally, QR the small sketch, whiten ``x``.

    ``Q = x R^{-1}`` with ``R`` from the thin QR of ``S x`` — one small
    reduction total.  ``Q`` is *sketch*-orthonormal: ``||I - Q^H Q|| <=
    eps_s / (1 - eps_s)`` where ``eps_s`` is the embedding distortion
    (0 when ``s = n``).  Rank is judged in sketch space; on deficiency the
    kernel falls back to exact rank-revealing CholQR (extra reduction,
    charged honestly) so the trailing-zero-column contract holds.
    """
    x = as_block(x)
    n, p = x.shape
    if s is None:
        s = sketch_size(n, p)
    sx = apply_sketch(x, s, seed=seed)
    led = ledger.current()
    led.reduction(nbytes=s * p * x.itemsize)
    qs, rs = np.linalg.qr(sx)
    led.flop(Kernel.QR, 4.0 * s * p**2)
    d = np.abs(np.diag(rs))
    smax = float(d.max(initial=0.0))
    ref = max(smax, scale if scale is not None else 0.0, np.finfo(float).tiny)
    rank = int(np.count_nonzero(d > tol * ref))
    if rank < p:
        return cholqr_rr(x, tol=tol, scale=scale)
    q = sla.solve_triangular(rs.T, x.T, lower=True).T
    led.flop(Kernel.BLAS3, 1.0 * n * p**2)
    return q, rs, p


def classical_gram_schmidt_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Column-by-column CGS QR of a block: p reductions (paper section III-D)."""
    x = as_block(x)
    n, p = x.shape
    q = np.array(x, dtype=x.dtype, copy=True)
    r = np.zeros((p, p), dtype=x.dtype)
    led = ledger.current()
    for j in range(p):
        if j > 0:
            # one *batched* projection against all previous columns: 1 reduction
            coeffs = _gram(q[:, :j], q[:, j:j + 1])
            q[:, j:j + 1] -= q[:, :j] @ coeffs
            led.flop(Kernel.BLAS2, 2.0 * n * j)
            r[:j, j] = coeffs[:, 0]
        nrm = np.linalg.norm(q[:, j])
        led.reduction()
        if nrm > 0:
            q[:, j] /= nrm
        r[j, j] = nrm
    return q, r


def modified_gram_schmidt_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """MGS QR: p(p+1)/2 sequential reductions, but maximal robustness."""
    x = as_block(x)
    n, p = x.shape
    q = np.array(x, dtype=x.dtype, copy=True)
    r = np.zeros((p, p), dtype=x.dtype)
    led = ledger.current()
    for j in range(p):
        for i in range(j):
            c = np.vdot(q[:, i], q[:, j])
            led.reduction()
            led.flop(Kernel.BLAS1, 4.0 * n)
            q[:, j] -= c * q[:, i]
            r[i, j] = c
        nrm = np.linalg.norm(q[:, j])
        led.reduction()
        if nrm > 0:
            q[:, j] /= nrm
        r[j, j] = nrm
    return q, r


_QR_DISPATCH = {
    "cholqr": lambda x, tol: cholqr(x) + (x.shape[1],),
    "cgs": lambda x, tol: classical_gram_schmidt_qr(x) + (x.shape[1],),
    "mgs": lambda x, tol: modified_gram_schmidt_qr(x) + (x.shape[1],),
    "cholqr_rr": lambda x, tol: cholqr_rr(x, tol=tol),
    "tsqr": lambda x, tol: tsqr(x) + (x.shape[1],),
    "householder": lambda x, tol: householder_qr(x) + (x.shape[1],),
    "cholqr2": lambda x, tol: cholqr2(x) + (x.shape[1],),
    "cgs2_1r": lambda x, tol: cholqr2(x) + (x.shape[1],),
    "sketched": lambda x, tol: sketched_qr(x, tol=tol),
}
assert set(QR_SCHEME_NAMES) <= set(_QR_DISPATCH), "registry out of sync"


def qr_factorization(x: np.ndarray, scheme: str = "cholqr", *,
                     tol: float = 1e-12, scale: float | None = None
                     ) -> tuple[np.ndarray, np.ndarray, int]:
    """Dispatch a 'distributed' QR by scheme name.

    Returns ``(Q, R, rank)``; non-rank-revealing schemes report full rank.
    CholQR falls back to the shifted variant, then to rank-revealing, when
    the plain Gram Cholesky breaks down.  ``scale`` is forwarded to the
    schemes in :data:`SCALE_AWARE_QR` as the absolute reference magnitude.
    """
    x = as_block(x)
    if scheme not in _QR_DISPATCH:
        raise ValueError(f"unknown QR scheme {scheme!r}; "
                         f"expected one of {sorted(_QR_DISPATCH)}")
    if scheme == "cholqr_rr":
        return cholqr_rr(x, tol=tol, scale=scale)
    if scheme == "sketched":
        return sketched_qr(x, tol=tol, scale=scale)
    if scheme == "cholqr":
        try:
            q, r = cholqr(x)
            return q, r, x.shape[1]
        except np.linalg.LinAlgError:
            try:
                q, r = shifted_cholqr(x)
                return q, r, x.shape[1]
            except np.linalg.LinAlgError:
                return cholqr_rr(x, tol=tol, scale=scale)
    return _QR_DISPATCH[scheme](x, tol)


def _stacked_gram(basis: np.ndarray, w: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """``[basis | w]^H w`` as ONE stacked GEMM / ONE fused reduction.

    Returns ``(coeffs, wgram)``: the projection coefficients ``basis^H w``
    *and* the small Gram ``w^H w``, whose payloads travel together in a
    single reduction.  This is the projector layout shared by the
    low-synchronization Arnoldi engines: the remainder Gram comes for free
    with the reorthogonalization coefficients, so the intra-block
    normalizer needs no further communication.
    """
    n, k = basis.shape
    p = w.shape[1]
    led = ledger.current()
    led.flop(Kernel.BLAS3, 2.0 * n * (k + p) * p)
    led.reduction(nbytes=(k + p) * p * w.itemsize)
    g = np.concatenate([basis, w], axis=1).conj().T @ w
    return g[:k], g[k:]


def project_out_fused(basis: np.ndarray, w: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """CGS2-1r projection: two passes, two fused reductions, free Gram.

    Pass 1 stacks the projection coefficients with ``w^H w`` (which yields
    the pre-projection scale for breakdown detection); pass 2 — the delayed
    reorthogonalization — stacks the correction coefficients with
    ``w1^H w1``, from which the remainder Gram ``w2^H w2`` follows by the
    Pythagorean downdate ``wgram = w1^H w1 - c2^H c2`` without touching the
    network again.  Returns ``(w2, coeffs, wgram, scale)``.

    Compared to the legacy ``imgs`` + separate QR-Gram sequence (3
    reductions, 5 full-length GEMM sweeps) this is 2 reductions and 4
    sweeps — the hoisted double-Gram of the refine path.
    """
    w = as_block(w)
    p = w.shape[1]
    if basis.size == 0:
        g = _gram(w, w)
        scale = float(np.sqrt(max(np.max(np.diag(g).real, initial=0.0), 0.0)))
        return w.copy(), np.zeros((0, p), dtype=w.dtype), g, scale
    c1, wg0 = _stacked_gram(basis, w)
    led = ledger.current()
    w1 = w - basis @ c1
    led.flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * p)
    c2, wg1 = _stacked_gram(basis, w1)
    w2 = w1 - basis @ c2
    led.flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * p)
    wgram = wg1 - c2.conj().T @ c2
    wgram = 0.5 * (wgram + wgram.conj().T)
    # guard the downdate: after a first projection pass the second-pass
    # correction is tiny, so diag(wgram) ~ diag(wg1); severe cancellation
    # means w was (numerically) inside the basis — recompute honestly.
    d, d1 = np.diag(wgram).real, np.diag(wg1).real
    if np.any(d < 0.25 * d1) or np.any(d < 0.0):
        wgram = _gram(w2, w2)
    scale = float(np.sqrt(max(np.max(np.diag(wg0).real, initial=0.0), 0.0)))
    return w2, c1 + c2, wgram, scale


def project_out(basis: np.ndarray, w: np.ndarray, *,
                scheme: str = "cgs") -> tuple[np.ndarray, np.ndarray]:
    """Orthogonalize the block ``w`` against the orthonormal ``basis``.

    Returns ``(w_perp, coeffs)`` with ``w_perp = w - basis @ coeffs``.
    This is the ``(I - C_k C_k^H)`` application of the paper (line 26):
    CGS does it in one reduction, MGS in ``k`` sequential reductions,
    CGS2-1r in two fused reductions (both passes as stacked GEMMs).
    """
    w = as_block(w)
    if basis.size == 0:
        return w.copy(), np.zeros((0, w.shape[1]), dtype=w.dtype)
    if scheme == "cgs2_1r":
        w2, coeffs, _, _ = project_out_fused(basis, w)
        return w2, coeffs
    if scheme in ("cgs", "imgs"):
        coeffs = _gram(basis, w)
        w2 = w - basis @ coeffs
        ledger.current().flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * w.shape[1])
        if scheme == "imgs":  # iterated: one re-orthogonalization pass
            c2 = _gram(basis, w2)
            w2 = w2 - basis @ c2
            coeffs = coeffs + c2
            ledger.current().flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * w.shape[1])
        return w2, coeffs
    if scheme == "mgs":
        led = ledger.current()
        w2 = np.array(w, copy=True)
        k = basis.shape[1]
        coeffs = np.zeros((k, w.shape[1]), dtype=np.promote_types(basis.dtype, w.dtype))
        for i in range(k):
            c = basis[:, i:i + 1].conj().T @ w2
            led.reduction(nbytes=w.shape[1] * w.itemsize)
            led.flop(Kernel.BLAS2, 4.0 * basis.shape[0] * w.shape[1])
            w2 -= basis[:, i:i + 1] @ c
            coeffs[i] = c[0]
        return w2, coeffs
    raise ValueError(f"unknown orthogonalization scheme {scheme!r}")


def arnoldi_orthogonalize(basis_blocks: np.ndarray, w: np.ndarray, *,
                          scheme: str = "cgs",
                          qr_scheme: str = "cholqr",
                          tol: float = 1e-12,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One (block) Arnoldi orthogonalization step.

    Orthogonalizes the candidate block ``w`` (n x p) against the stacked
    orthonormal basis ``basis_blocks`` (n x jp) and normalizes the remainder.

    Returns ``(q, h, s, rank)`` where ``h`` (jp x p) holds the projection
    coefficients, ``s`` (p x p) the normalization factor (the new diagonal
    Hessenberg block ``h_{j+1,j}``), and ``rank`` the numerical rank of the
    remainder (``< p`` signals an exact block breakdown).  Rank is judged
    against the magnitude of ``w`` *before* projection, so a candidate that
    lies entirely inside the basis is reported as rank 0.

    The low-synchronization schemes (:data:`LOW_SYNC_SCHEMES`) carry their
    own fused intra-block normalizer, so ``qr_scheme`` is ignored for them;
    a one-shot ``sketched`` call sketches the basis too (in the stateful
    engine used by the solvers that cost is amortized across the cycle).
    """
    if scheme in LOW_SYNC_SCHEMES:
        engine = make_arnoldi_engine(scheme, tol=tol,
                                     max_cols=basis_blocks.shape[1] + w.shape[1])
        engine.begin_stacked(basis_blocks, dtype=w.dtype)
        q, h, s, rank, _ = engine.step([basis_blocks] if basis_blocks.size
                                       else [], w)
        return q, h, s, rank
    scale = float(np.max(column_norms(w), initial=0.0))
    w2, h = project_out(basis_blocks, w, scheme=scheme)
    if qr_scheme in SCALE_AWARE_QR:
        q, s, rank = qr_factorization(w2, qr_scheme, tol=tol, scale=scale)
    else:
        q, s, rank = qr_factorization(w2, qr_scheme, tol=tol)
    return q, h, s, rank


# ---------------------------------------------------------------------------
# Low-synchronization block Arnoldi engines (tentpole).
#
# One engine instance lives for one Arnoldi cycle.  ``step`` orthogonalizes
# the candidate block against the whole basis *and* the optional recycled
# space C_k with at most two fused reductions (one for ``sketched``),
# returning the same (q, h, s, rank, e_col) contract the legacy inline
# sequence produces.  The recycled-space projection is folded into the same
# stacked projector, so C_k costs no extra reduction.
# ---------------------------------------------------------------------------


def _chol_normalize_core(w2: np.ndarray, gram: np.ndarray, *, shift: bool
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Uncharged Cholesky normalizer from a precomputed remainder Gram.

    Raises :class:`numpy.linalg.LinAlgError` before any work on an
    indefinite Gram.  Shared with the compiled plan path.
    """
    p = gram.shape[0]
    g = gram
    if shift:
        n = w2.shape[0]
        u = np.finfo(w2.dtype).eps
        g = g + (11.0 * (n * p + p * (p + 1)) * u *
                 float(np.trace(g).real)) * np.eye(p, dtype=g.dtype)
    return _chol_from_gram(w2, g)


def _chol_normalize(w2: np.ndarray, gram: np.ndarray, *, shift: bool
                    ) -> tuple[np.ndarray, np.ndarray]:
    """q, r from a precomputed (downdated) remainder Gram — no reduction."""
    p = gram.shape[0]
    q, r = _chol_normalize_core(w2, gram, shift=shift)
    led = ledger.current()
    led.flop(Kernel.FACTORIZATION, p**3 / 3.0)
    led.flop(Kernel.BLAS3, 1.0 * w2.shape[0] * p**2)
    return q, r


class _EngineBase:
    """Shared plumbing: stacked projector [C_k | V] and the fallback path."""

    def __init__(self, *, tol: float, max_cols: int, seed: int = 0):
        self.tol = tol
        self.max_cols = max_cols
        self.seed = seed

    def begin(self, v1: np.ndarray, ck: np.ndarray | None = None) -> None:
        """Start a cycle from the first basis block (stateful schemes)."""

    def begin_stacked(self, basis: np.ndarray, *, dtype) -> None:
        """One-shot entry for ``arnoldi_orthogonalize``."""

    @staticmethod
    def _projector(v_blocks: list[np.ndarray], ck: np.ndarray | None,
                   w: np.ndarray) -> tuple[np.ndarray, int]:
        k = ck.shape[1] if ck is not None and ck.size else 0
        parts = ([ck] if k else []) + [b for b in v_blocks if b.shape[1]]
        if not parts:
            return np.zeros((w.shape[0], 0), dtype=w.dtype), 0
        return np.concatenate(parts, axis=1), k

    @staticmethod
    def _split(coeffs: np.ndarray, k: int
               ) -> tuple[np.ndarray | None, np.ndarray]:
        return (coeffs[:k] if k else None), coeffs[k:]


class _Cgs21rEngine(_EngineBase):
    """CGS2-1r: two stacked-GEMM passes, Gram-downdated normalizer.

    Reduction 1 carries [C_k | V]^H w stacked with w^H w; reduction 2
    carries the delayed reorthogonalization coefficients stacked with
    w1^H w1, from which the remainder Gram follows by downdate — so the
    Cholesky normalizer is communication-free.  <= 2 reductions per step
    at every basis depth (an extra honest reduction only on the rare
    cancellation / breakdown fallback).
    """

    def step(self, v_blocks, w, *, ck=None):
        proj, k = self._projector(v_blocks, ck, w)
        w2, coeffs, wgram, scale = project_out_fused(proj, w)
        e_col, h = self._split(coeffs, k)
        d = np.diag(wgram).real
        floor = max(self.tol * scale, np.finfo(float).tiny) ** 2
        try:
            if np.any(d <= floor):
                raise np.linalg.LinAlgError
            q, r = _chol_normalize(w2, wgram, shift=False)
            rank = w.shape[1]
        except np.linalg.LinAlgError:
            q, r, rank = cholqr_rr(w2, tol=self.tol, scale=scale)
        return q, h, r, rank, e_col


class _Cholqr2Engine(_EngineBase):
    """Single-pass stacked projection + CholQR2 intra-block normalizer.

    Reduction 1 carries [C_k | V]^H w stacked with w^H w; the first
    Cholesky pass runs on the downdated remainder Gram (shifted, so it
    cannot break down), and reduction 2 is the explicit second Cholesky
    pass restoring intra-block orthonormality to machine precision.
    Inter-block orthogonality is single-pass CGS quality — the verifier
    scales its drift tolerance accordingly (see the registry).
    """

    def step(self, v_blocks, w, *, ck=None):
        proj, k = self._projector(v_blocks, ck, w)
        if proj.shape[1] == 0:
            q, r, rank = cholqr_rr(w, tol=self.tol)
            return q, np.zeros((0, w.shape[1]), dtype=w.dtype), r, rank, None
        c1, wg0 = _stacked_gram(proj, w)
        led = ledger.current()
        w1 = w - proj @ c1
        led.flop(Kernel.BLAS3, 2.0 * proj.shape[0] * proj.shape[1] * w.shape[1])
        e_col, h = self._split(c1, k)
        g1 = wg0 - c1.conj().T @ c1
        g1 = 0.5 * (g1 + g1.conj().T)
        d, d0 = np.diag(g1).real, np.diag(wg0).real
        scale = float(np.sqrt(max(np.max(d0, initial=0.0), 0.0)))
        floor = max(self.tol * scale, np.finfo(float).tiny) ** 2
        # downdate accuracy guard: if the remainder kept less than ~1e-10
        # of the candidate's mass the subtraction has cancelled away all
        # significant digits — or the block broke down; both take the
        # honest rank-revealing fallback.
        try:
            if np.any(d <= floor) or np.any(d < 1e-10 * np.maximum(d0, floor)):
                raise np.linalg.LinAlgError
            q1, r1 = _chol_normalize(w1, g1, shift=True)
            q, r2 = cholqr(q1)                     # reduction 2: the "2"
            q, r, rank = q, r2 @ r1, w.shape[1]
        except np.linalg.LinAlgError:
            q, r, rank = cholqr_rr(w1, tol=self.tol, scale=scale)
        return q, h, r, rank, e_col


@dataclass
class SketchState:
    """Snapshot of the sketched engine's state after a cycle.

    ``qs`` has orthonormal columns with ``S V = qs @ blockdiag(t0, I)``
    exactly by construction, so consumers (the sketched recycler) can
    reconstruct the sketch of the whole Krylov basis locally — no
    communication.  ``sck`` is the sketch of the recycled space the
    cycle ran against (``None`` without recycling).
    """

    s: int
    seed: int
    qs: np.ndarray
    t0: np.ndarray
    sck: np.ndarray | None = None

    def sketched_basis(self, cols: int | None = None) -> np.ndarray:
        """``S V`` (s x cols), reconstructed locally from ``qs`` and ``t0``."""
        qs = np.ascontiguousarray(self.qs if cols is None
                                  else self.qs[:, :cols])
        w0 = self.t0.shape[0]
        sv = np.array(qs)
        if w0:
            sv[:, :w0] = qs[:, :w0] @ self.t0
        return sv


class _SketchedEngine(_EngineBase):
    """Sketch-space Arnoldi orthogonalization: ONE reduction per step.

    The engine keeps the sketched basis with *orthonormal* columns (the
    first block is whitened locally; every appended block is sketch-
    orthonormal by construction), so the sketch-space least-squares
    projection and the normalization are local small-matrix work.  The
    produced basis is sketch-orthonormal only; the Arnoldi relation
    ``w = C e + V h + q s`` holds exactly by construction.
    """

    def __init__(self, *, tol, max_cols, seed=0):
        super().__init__(tol=tol, max_cols=max_cols, seed=seed)
        self._qs: np.ndarray | None = None   # s x cols, orthonormal
        self._t0: np.ndarray | None = None   # leading-block whitener
        self._sck: np.ndarray | None = None  # sketched C_k
        self.s = 0

    def _setup(self, blocks: list[np.ndarray], ck, *, dtype, n: int) -> None:
        self.s = sketch_size(n, self.max_cols)
        k = ck.shape[1] if ck is not None and ck.size else 0
        cols = sum(b.shape[1] for b in blocks)
        led = ledger.current()
        led.reduction(nbytes=self.s * (cols + k) * np.dtype(dtype).itemsize)
        if k:
            self._sck = apply_sketch(ck, self.s, seed=self.seed)
        if cols:
            sv = apply_sketch(np.concatenate(blocks, axis=1), self.s,
                              seed=self.seed)
            self._qs, self._t0 = np.linalg.qr(sv)
            led.flop(Kernel.QR, 4.0 * self.s * cols**2)
        else:
            self._qs = np.zeros((self.s, 0), dtype=dtype)
            self._t0 = np.zeros((0, 0), dtype=dtype)

    def begin(self, v1, ck=None):
        self._setup([v1], ck, dtype=v1.dtype, n=v1.shape[0])

    def begin_recycled(self, v1, ck, sck: np.ndarray) -> None:
        """Start a cycle against a *pre-sketched* recycled space.

        The sketched recycler maintains ``sck = S C_k`` across cycles, and
        the caller has already charged the single fused prologue reduction
        assembling ``C_k^H v1`` stacked with ``S v1`` — so this setup is
        local work only (sketch flops + the small whitening QR).  The
        engine adopts the recycler's sketch dimension (the recycler sizes
        it for the *option* ``k``; a rank-trimmed harvest may leave the
        actual ``C_k`` narrower, which only makes the sketch roomier).
        """
        n, cols = v1.shape
        self.s = int(sck.shape[0])
        self._sck = sck
        sv = apply_sketch(v1, self.s, seed=self.seed)
        self._qs, self._t0 = np.linalg.qr(sv)
        ledger.current().flop(Kernel.QR, 4.0 * self.s * cols**2)

    def export_state(self) -> SketchState:
        """Expose the sketch state for the sketched recycling machinery."""
        return SketchState(s=self.s, seed=self.seed, qs=self._qs,
                           t0=self._t0, sck=self._sck)

    def begin_stacked(self, basis, *, dtype):
        self._setup([basis] if basis.size else [], None, dtype=dtype,
                    n=basis.shape[0])

    def step(self, v_blocks, w, *, ck=None):
        led = ledger.current()
        n, p = w.shape
        k = ck.shape[1] if ck is not None and ck.size else 0
        # ONE fused reduction: the sketched candidate stacked with the
        # exact recycled-space Gram C_k^H w (both are global row sums).
        led.reduction(nbytes=(self.s + k) * p * w.itemsize)
        sw = apply_sketch(w, self.s, seed=self.seed)
        scale_s = float(np.max(column_norms(sw), initial=0.0))
        e_col = None
        if k:
            e_col = ck.conj().T @ w
            led.flop(Kernel.BLAS3, 4.0 * n * k * p)
            w = w - ck @ e_col
            sw = sw - self._sck @ e_col
        w0 = self._t0.shape[0]
        c = self._qs.conj().T @ sw                       # local, cols x p
        y = c.copy()
        if w0:
            y[:w0] = sla.solve_triangular(self._t0, c[:w0])
        blocks = [b for b in v_blocks if b.shape[1]]
        basis = np.concatenate(blocks, axis=1) if blocks else \
            np.zeros((n, 0), dtype=w.dtype)
        if basis.shape[1] != self._qs.shape[1]:
            raise ValueError(
                f"sketched engine state holds {self._qs.shape[1]} basis "
                f"columns but step received {basis.shape[1]}; the engine "
                "must see every appended block (begin + successive steps)")
        w2 = w - basis @ y
        led.flop(Kernel.BLAS3, 2.0 * n * basis.shape[1] * p)
        rs = sw - self._qs @ c                           # sketch residual
        qn, rfac = np.linalg.qr(rs)
        led.flop(Kernel.QR, 4.0 * self.s * p**2)
        d = np.abs(np.diag(rfac))
        ref = max(scale_s, np.finfo(float).tiny)
        rank = int(np.count_nonzero(d > self.tol * ref))
        if rank < p:
            # breakdown: hand the remainder to the exact rank-revealing
            # path (its zero-column contract is what the cycle expects);
            # the cycle terminates here, so the sketch state stays valid.
            led.reduction(nbytes=p * 8)
            scale = float(np.max(column_norms(w), initial=0.0))
            q, r, rank = cholqr_rr(w2, tol=self.tol, scale=scale)
            return q, y, r, rank, e_col
        q = sla.solve_triangular(rfac.T, w2.T, lower=True).T
        led.flop(Kernel.BLAS3, 1.0 * n * p**2)
        self._qs = np.concatenate([self._qs, qn], axis=1)
        return q, y, rfac, rank, e_col


_ENGINES = {"cgs2_1r": _Cgs21rEngine, "cholqr2": _Cholqr2Engine,
            "sketched": _SketchedEngine}


def make_arnoldi_engine(scheme: str, *, tol: float = 1e-12,
                        max_cols: int = 0, seed: int = 0) -> _EngineBase:
    """Engine factory for the low-synchronization Arnoldi schemes.

    ``max_cols`` bounds the total basis width of the cycle (used to size
    the sketch).  Legacy schemes (cgs/imgs/mgs) keep the inline
    project-then-QR sequence in the callers and are not built here.
    """
    if scheme not in _ENGINES:
        raise ValueError(f"unknown low-synchronization scheme {scheme!r}; "
                         f"expected one of {LOW_SYNC_SCHEMES}")
    return _ENGINES[scheme](tol=tol, max_cols=max_cols, seed=seed)


# ---------------------------------------------------------------------------
# Pseudo-block per-step cores: the pure numerics of every scheme, with no
# ledger access.  The interpreting PseudoBlockOrthogonalizer calls a core
# and derives its charges per call; the compiled plan path
# (repro.plan.pseudoblock) calls the *same* core and replays a pre-bound
# charge table — bit-identical numerics and counts by construction.
# ---------------------------------------------------------------------------


def _pb_step_mgs(basis: np.ndarray, w: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    w2 = np.array(w, copy=True)
    dots = np.zeros((basis.shape[0], w.shape[1]), dtype=w.dtype)
    for i in range(basis.shape[0]):
        c = np.einsum("np,np->p", basis[i].conj(), w2)
        w2 = w2 - basis[i] * c
        dots[i] = c
    return w2, dots, column_norms(w2)


def _pb_step_cgs(basis: np.ndarray, w: np.ndarray, *, iterated: bool
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    dots = np.einsum("inp,np->ip", basis.conj(), w)
    w2 = w - np.einsum("inp,ip->np", basis, dots)
    if iterated:
        d2 = np.einsum("inp,np->ip", basis.conj(), w2)
        w2 = w2 - np.einsum("inp,ip->np", basis, d2)
        dots = dots + d2
    return w2, dots, column_norms(w2)


def _pb_step_cgs2_1r(basis: np.ndarray, w: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Two fused passes + Pythagorean norm downdate; returns the count of
    columns whose norm had to be honestly recomputed (cancellation guard)
    so the caller can charge the extra reduction."""
    d1 = np.einsum("inp,np->ip", basis.conj(), w)
    w1 = w - np.einsum("inp,ip->np", basis, d1)
    d2 = np.einsum("inp,np->ip", basis.conj(), w1)
    w1sq = np.einsum("np,np->p", w1.conj(), w1).real
    w2 = w1 - np.einsum("inp,ip->np", basis, d2)
    dots = d1 + d2
    nrm2 = w1sq - np.einsum("ip,ip->p", d2.conj(), d2).real
    nrm = np.sqrt(np.maximum(nrm2, 0.0))
    bad = (nrm2 < 0.25 * w1sq) & (w1sq > 0)
    nbad = int(np.count_nonzero(bad))
    if nbad:
        nrm = np.where(bad, column_norms(w2), nrm)
    return w2, dots, nrm, nbad


def _pb_step_sketched(qs: np.ndarray, t0: np.ndarray, basis: np.ndarray,
                      w: np.ndarray, sw: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Sketch-space projection and residual; ``sw`` is the pre-sketched
    candidate.  Returns ``(w2, y, nrm, rs)`` with ``rs`` the sketch
    residual the caller stages for :meth:`commit`."""
    c = np.einsum("isp,sp->ip", qs.conj(), sw)           # local
    y = c.copy()
    w0 = t0.shape[0]
    j1 = qs.shape[0]
    for l in range(w.shape[1]):                          # whiten leading block
        t = t0[:min(w0, j1), :min(w0, j1), l]
        # a singular whitener marks a dead bundle column (zero initial
        # vector, e.g. an already-converged pseudo-block column): its
        # sketch coefficients are zero, so skip the solve
        if t.shape[0] and np.all(np.abs(np.diag(t)) > 0):
            y[:t.shape[0], l] = sla.solve_triangular(t, c[:t.shape[0], l])
    w2 = w - np.einsum("inp,ip->np", basis, y)
    rs = sw - np.einsum("isp,ip->sp", qs, c)
    nrm = np.sqrt(np.einsum("sp,sp->p", rs.conj(), rs).real)
    return w2, y, nrm, rs


def _pb_begin_sketched(sv: np.ndarray, max_cols: int, dtype: np.dtype
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Per-column QR of the pre-sketched ``(s, w0, p)`` initial basis."""
    s, w0, p = sv.shape
    qs = np.zeros((max_cols, s, p), dtype=dtype)
    t0 = np.zeros((w0, w0, p), dtype=dtype)
    for l in range(p):
        q, t = np.linalg.qr(sv[:, :, l])
        qs[:w0, :, l] = q.T
        t0[:, :, l] = t
    return qs, t0


class PseudoBlockOrthogonalizer:
    """Fused per-column Arnoldi orthogonalization for the pseudo-block
    solvers (gmres / pgcrodr / gmresdr).

    The basis is a ``(j+1, n, p)`` tensor whose ``[:, :, l]`` slice is
    column ``l``'s Krylov basis; all ``p`` recurrences advance together, so
    every scheme charges its reductions once per step for the whole bundle
    (payload bytes scale with ``p``; message counts do not, paper §V-B2).

    Per step: ``cgs`` 2 reductions (dots + norms, the legacy sequence),
    ``imgs`` 3, ``mgs`` ``j+2`` (the O(j) oracle), ``cgs2_1r`` 2 (both
    passes fused with the column norms, final norm by Pythagorean
    downdate), ``cholqr2`` 2 (for width-1 recurrences the intra-block
    normalizer degenerates to an exact renormalization, i.e. single-pass
    CGS + exact norms), ``sketched`` 1 (the sketched candidate; the
    projection and normalization are sketch-space local work).
    """

    def __init__(self, scheme: str, *, n: int, p: int, dtype,
                 max_cols: int, seed: int = 0):
        if scheme not in ORTHO_SCHEME_NAMES:
            raise ValueError(f"unknown orthogonalization scheme {scheme!r}; "
                             f"expected one of {ORTHO_SCHEME_NAMES}")
        self.scheme = scheme
        self.n, self.p = n, p
        self.dtype = np.dtype(dtype)
        self.seed = seed
        self.s = sketch_size(n, max_cols) if scheme == "sketched" else 0
        self._qs: np.ndarray | None = None   # (max_cols, s, p) sketch basis
        self._t0: np.ndarray | None = None   # (w0, w0, p) leading whiteners
        self._cols = 0
        self._max_cols = max_cols
        self._pending: tuple[np.ndarray, np.ndarray] | None = None

    # -- sketch state ------------------------------------------------------

    def begin(self, v0: np.ndarray) -> None:
        """Start a cycle from the ``(w0, n, p)`` initial basis tensor.

        For ``sketched`` this sketches the initial columns (one reduction)
        and whitens them per column so later steps are one reduction each;
        for every other scheme it is free.
        """
        if self.scheme != "sketched":
            return
        w0, n, p = v0.shape
        led = ledger.current()
        led.reduction(nbytes=self.s * w0 * p * self.dtype.itemsize)
        sv = apply_sketch(v0.transpose(1, 0, 2).reshape(n, w0 * p),
                          self.s, seed=self.seed).reshape(self.s, w0, p)
        self._qs, self._t0 = _pb_begin_sketched(sv, self._max_cols,
                                                self.dtype)
        led.flop(Kernel.QR, 4.0 * self.s * w0**2 * p)
        self._cols = w0
        self._pending = None

    def commit(self, mask: np.ndarray) -> None:
        """Append the step's new basis column for the columns in ``mask``
        (the ones actually normalized; frozen columns append zero)."""
        if self.scheme != "sketched" or self._pending is None:
            return
        rs, nrm = self._pending
        col = np.zeros((self.s, self.p), dtype=self.dtype)
        use = mask & (nrm > 0)
        if np.any(use):
            col[:, use] = rs[:, use] / nrm[use]
        self._qs[self._cols] = col
        self._cols += 1
        self._pending = None

    # -- the per-step kernel ----------------------------------------------

    def step(self, basis: np.ndarray, w: np.ndarray, j: int
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Orthogonalize ``w`` (n x p) against ``basis`` ((j+1, n, p)).

        Returns ``(w2, dots, nrm)``: the remainder, the ``(j+1) x p``
        projection coefficients and the per-column normalization factors
        (for ``sketched`` these are sketch-space norms).  The caller
        normalizes / freezes columns and then calls :meth:`commit`.
        """
        led = ledger.current()
        n, p = w.shape
        if self.scheme == "mgs":
            w2, dots, nrm = _pb_step_mgs(basis, w)
            led.reduction(nbytes=p * w.itemsize, count=j + 1)
            led.flop(Kernel.BLAS2, 4.0 * n * p * (j + 1))
            led.reduction(nbytes=p * 8)
            return w2, dots, nrm
        if self.scheme in ("cgs", "imgs", "cholqr2"):
            w2, dots, nrm = _pb_step_cgs(basis, w,
                                         iterated=self.scheme == "imgs")
            passes = 2 if self.scheme == "imgs" else 1
            led.reduction(nbytes=(j + 1) * p * w.itemsize, count=passes)
            led.flop(Kernel.BLAS3, 4.0 * (j + 1) * n * p * passes)
            led.reduction(nbytes=p * 8)
            return w2, dots, nrm
        if self.scheme == "cgs2_1r":
            # two fused passes: dots stacked with the column masses, the
            # final norm by Pythagorean downdate; the cancellation guard's
            # honest recompute (rare: near-breakdown only) costs one extra
            # reduction carrying a scalar per affected column.
            w2, dots, nrm, nbad = _pb_step_cgs2_1r(basis, w)
            led.reduction(nbytes=((j + 1) * p + p) * w.itemsize, count=2)
            led.flop(Kernel.BLAS3,
                     (4.0 * (j + 1) * n * p + 2.0 * n * p) * 2)
            if nbad:
                led.reduction(nbytes=nbad * 8)
            return w2, dots, nrm
        # sketched: ONE reduction (the sketched candidate)
        led.reduction(nbytes=self.s * p * self.dtype.itemsize)
        sw = apply_sketch(w, self.s, seed=self.seed)
        w2, y, nrm, rs = _pb_step_sketched(self._qs[:j + 1], self._t0,
                                           basis, w, sw)
        led.flop(Kernel.BLAS3, 4.0 * (j + 1) * n * p)
        self._pending = (rs, nrm)
        return w2, y, nrm
