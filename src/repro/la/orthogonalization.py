"""Orthogonalization kernels: Gram-Schmidt variants, CholQR, TSQR.

These are the communication-critical kernels of the paper (section III-D):

* the distributed QR of a tall-skinny block (paper lines 11 and 24) costs a
  **single** global reduction with CholQR or TSQR, but ``k`` reductions with
  Classical Gram-Schmidt and ``k`` (sequential!) reductions with Modified
  Gram-Schmidt;
* Arnoldi orthogonalization against an existing basis costs one reduction
  per *batch* of dot products (CGS), or one per basis vector (MGS).

Every kernel reports its (virtual) reduction count to the active
:class:`repro.util.ledger.CostLedger`, which is how the benchmarks verify
the ``2(m-k)`` vs ``m`` reductions-per-cycle claim.

All kernels accept ``n x p`` blocks and work for real or complex dtypes.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms

__all__ = [
    "cholqr",
    "shifted_cholqr",
    "cholqr_rr",
    "tsqr",
    "classical_gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "qr_factorization",
    "project_out",
    "arnoldi_orthogonalize",
]


def _gram(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """x^H y with flop + single-reduction accounting."""
    led = ledger.current()
    led.flop(Kernel.BLAS3, 2.0 * x.shape[0] * x.shape[1] * y.shape[1])
    led.reduction(nbytes=x.shape[1] * y.shape[1] * x.itemsize)
    return x.conj().T @ y


def cholqr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cholesky QR: ``x = Q R`` with one global reduction.

    Returns ``Q`` (n x p, orthonormal columns) and ``R`` (p x p upper
    triangular).  Raises :class:`numpy.linalg.LinAlgError` when the Gram
    matrix is numerically indefinite (severely ill-conditioned block) —
    callers that must survive that case should use :func:`shifted_cholqr`
    or :func:`cholqr_rr`.
    """
    x = as_block(x)
    g = _gram(x, x)
    r = np.linalg.cholesky(g).conj().T
    q = sla.solve_triangular(r.T, x.T, lower=True).T
    ledger.current().flop(Kernel.BLAS3, 1.0 * x.shape[0] * x.shape[1] ** 2)
    return q, r


def shifted_cholqr(x: np.ndarray, *, refine: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """CholQR with a diagonal shift making the Cholesky factorization safe.

    The shift follows the classic ``11(np + p(p+1)) u ||x||^2`` recipe; one
    optional re-orthonormalization pass (CholQR2) restores orthogonality to
    machine precision.  Still one reduction per pass.
    """
    x = as_block(x)
    n, p = x.shape
    g = _gram(x, x)
    normx2 = float(np.trace(g).real)
    u = np.finfo(x.dtype).eps
    shift = 11.0 * (n * p + p * (p + 1)) * u * normx2
    r = np.linalg.cholesky(g + shift * np.eye(p, dtype=g.dtype)).conj().T
    q = sla.solve_triangular(r.T, x.T, lower=True).T
    if refine:
        q2, r2 = cholqr(q)
        return q2, r2 @ r
    return q, r


def cholqr_rr(x: np.ndarray, *, tol: float = 1e-12,
              scale: float | None = None) -> tuple[np.ndarray, np.ndarray, int]:
    """Rank-revealing CholQR used for block-breakdown detection (paper §V-C).

    Eigen-decomposes the Gram matrix; directions whose singular value falls
    below ``tol * max(sigma_max, scale)`` are flagged as (near-)colinear.
    ``scale`` lets callers supply an *absolute* reference magnitude — e.g.
    the norm of the candidate block before Arnoldi projection, so that a
    remainder that is numerically zero relative to its input is correctly
    reported as a breakdown even though it is "full rank" relative to its
    own round-off.  Returns ``(Q, R, rank)`` where ``Q`` has ``rank``
    orthonormal columns followed by zero columns, and ``R`` is p x p with
    its trailing rows zeroed, so that ``Q @ R ~= x`` still holds.
    """
    x = as_block(x)
    n, p = x.shape
    g = _gram(x, x)
    w, v = np.linalg.eigh(g)
    ledger.current().flop(Kernel.EIG, 9.0 * p**3)
    w = np.maximum(w.real, 0.0)
    sig = np.sqrt(w)[::-1]           # descending singular values of x
    v = v[:, ::-1]
    smax = sig[0] if sig.size else 0.0
    ref = max(smax, scale if scale is not None else 0.0, np.finfo(float).tiny)
    rank = int(np.count_nonzero(sig > tol * ref))
    if rank == 0:
        return np.zeros_like(x), np.zeros((p, p), dtype=x.dtype), 0
    # x = (x v) v^H ; orthonormalize the leading rank columns of x v
    xv = x @ v
    ledger.current().flop(Kernel.BLAS3, 2.0 * n * p * p)
    q = np.zeros_like(x)
    q[:, :rank] = xv[:, :rank] / sig[:rank]
    r = np.zeros((p, p), dtype=x.dtype)
    r[:rank, :] = (sig[:rank, None]) * v[:, :rank].conj().T
    return q, r, rank


def tsqr(x: np.ndarray, *, nblocks: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Tall-skinny QR with a binary reduction tree (one global reduction).

    The row blocks emulate the per-rank partitions; the tree is actually
    executed so the factorization is unconditionally stable (unlike CholQR).
    """
    x = as_block(x)
    n, p = x.shape
    nblocks = max(1, min(nblocks, n // max(p, 1) or 1))
    bounds = np.linspace(0, n, nblocks + 1).astype(int)
    qs: list[np.ndarray] = []
    rs: list[np.ndarray] = []
    led = ledger.current()
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        q, r = np.linalg.qr(x[lo:hi])
        led.flop(Kernel.QR, 4.0 * (hi - lo) * p**2)
        qs.append(q)
        rs.append(r)
    # reduction tree over the local R factors
    tree: list[list[np.ndarray]] = [[q] for q in qs]
    while len(rs) > 1:
        new_rs, new_tree = [], []
        for i in range(0, len(rs) - 1, 2):
            stacked = np.vstack([rs[i], rs[i + 1]])
            q, r = np.linalg.qr(stacked)
            led.flop(Kernel.QR, 4.0 * stacked.shape[0] * p**2)
            new_rs.append(r)
            new_tree.append(tree[i] + tree[i + 1] + [q])
        if len(rs) % 2:
            new_rs.append(rs[-1])
            new_tree.append(tree[-1])
        rs, tree = new_rs, new_tree
    led.reduction(nbytes=p * p * x.itemsize)
    r = rs[0]
    # reconstruct Q by back-propagating: Q = blkdiag(local Qs) @ (tree Qs)
    q = _tsqr_assemble_q(qs, bounds, r, x)
    return q, r


def _tsqr_assemble_q(qs: list[np.ndarray], bounds: np.ndarray, r: np.ndarray,
                     x: np.ndarray) -> np.ndarray:
    """Recover the explicit thin Q: solve x = Q r (r is small, triangular)."""
    # The clean explicit reconstruction: Q = x @ inv(r).  r may be singular if
    # x is rank deficient; fall back to lstsq in that case.
    try:
        q = sla.solve_triangular(r, x.T, lower=False, trans="T").T \
            if not np.iscomplexobj(x) else \
            sla.solve_triangular(r.conj().T, x.conj().T, lower=True).conj().T
    except (sla.LinAlgError, ValueError):
        q = np.linalg.lstsq(r.conj().T, x.conj().T, rcond=None)[0].conj().T
    ledger.current().flop(Kernel.BLAS3, 1.0 * x.shape[0] * x.shape[1] ** 2)
    return q


def householder_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unconditionally stable thin QR (Householder).

    Communication-wise this stands in for TSQR (one reduction on a tree of
    Householder factorizations, cf. CA-GMRES); numerically it is the safe
    choice when the block may be severely ill-conditioned — e.g. the
    re-orthonormalization of ``A U_k`` at an operator change (paper line 4),
    where the recycled space can be arbitrarily close to rank deficient.
    """
    x = as_block(x)
    led = ledger.current()
    led.flop(Kernel.QR, 4.0 * x.shape[0] * x.shape[1] ** 2)
    led.reduction(nbytes=x.shape[1] ** 2 * x.itemsize)
    return np.linalg.qr(x)


def classical_gram_schmidt_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Column-by-column CGS QR of a block: p reductions (paper section III-D)."""
    x = as_block(x)
    n, p = x.shape
    q = np.array(x, dtype=x.dtype, copy=True)
    r = np.zeros((p, p), dtype=x.dtype)
    led = ledger.current()
    for j in range(p):
        if j > 0:
            # one *batched* projection against all previous columns: 1 reduction
            coeffs = _gram(q[:, :j], q[:, j:j + 1])
            q[:, j:j + 1] -= q[:, :j] @ coeffs
            led.flop(Kernel.BLAS2, 2.0 * n * j)
            r[:j, j] = coeffs[:, 0]
        nrm = np.linalg.norm(q[:, j])
        led.reduction()
        if nrm > 0:
            q[:, j] /= nrm
        r[j, j] = nrm
    return q, r


def modified_gram_schmidt_qr(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """MGS QR: p(p+1)/2 sequential reductions, but maximal robustness."""
    x = as_block(x)
    n, p = x.shape
    q = np.array(x, dtype=x.dtype, copy=True)
    r = np.zeros((p, p), dtype=x.dtype)
    led = ledger.current()
    for j in range(p):
        for i in range(j):
            c = np.vdot(q[:, i], q[:, j])
            led.reduction()
            led.flop(Kernel.BLAS1, 4.0 * n)
            q[:, j] -= c * q[:, i]
            r[i, j] = c
        nrm = np.linalg.norm(q[:, j])
        led.reduction()
        if nrm > 0:
            q[:, j] /= nrm
        r[j, j] = nrm
    return q, r


_QR_DISPATCH = {
    "cholqr": lambda x, tol: cholqr(x) + (x.shape[1],),
    "cgs": lambda x, tol: classical_gram_schmidt_qr(x) + (x.shape[1],),
    "mgs": lambda x, tol: modified_gram_schmidt_qr(x) + (x.shape[1],),
    "cholqr_rr": lambda x, tol: cholqr_rr(x, tol=tol),
    "tsqr": lambda x, tol: tsqr(x) + (x.shape[1],),
    "householder": lambda x, tol: householder_qr(x) + (x.shape[1],),
}


def qr_factorization(x: np.ndarray, scheme: str = "cholqr", *,
                     tol: float = 1e-12, scale: float | None = None
                     ) -> tuple[np.ndarray, np.ndarray, int]:
    """Dispatch a 'distributed' QR by scheme name.

    Returns ``(Q, R, rank)``; non-rank-revealing schemes report full rank.
    CholQR falls back to the shifted variant, then to rank-revealing, when
    the plain Gram Cholesky breaks down.  ``scale`` is forwarded to the
    rank-revealing scheme as the absolute reference magnitude.
    """
    x = as_block(x)
    if scheme not in _QR_DISPATCH:
        raise ValueError(f"unknown QR scheme {scheme!r}")
    if scheme == "cholqr_rr":
        return cholqr_rr(x, tol=tol, scale=scale)
    if scheme == "cholqr":
        try:
            q, r = cholqr(x)
            return q, r, x.shape[1]
        except np.linalg.LinAlgError:
            try:
                q, r = shifted_cholqr(x)
                return q, r, x.shape[1]
            except np.linalg.LinAlgError:
                return cholqr_rr(x, tol=tol, scale=scale)
    return _QR_DISPATCH[scheme](x, tol)


def project_out(basis: np.ndarray, w: np.ndarray, *,
                scheme: str = "cgs") -> tuple[np.ndarray, np.ndarray]:
    """Orthogonalize the block ``w`` against the orthonormal ``basis``.

    Returns ``(w_perp, coeffs)`` with ``w_perp = w - basis @ coeffs``.
    This is the ``(I - C_k C_k^H)`` application of the paper (line 26):
    CGS does it in one reduction, MGS in ``k`` sequential reductions.
    """
    w = as_block(w)
    if basis.size == 0:
        return w.copy(), np.zeros((0, w.shape[1]), dtype=w.dtype)
    if scheme in ("cgs", "imgs"):
        coeffs = _gram(basis, w)
        w2 = w - basis @ coeffs
        ledger.current().flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * w.shape[1])
        if scheme == "imgs":  # iterated: one re-orthogonalization pass
            c2 = _gram(basis, w2)
            w2 = w2 - basis @ c2
            coeffs = coeffs + c2
            ledger.current().flop(Kernel.BLAS3, 2.0 * basis.shape[0] * basis.shape[1] * w.shape[1])
        return w2, coeffs
    if scheme == "mgs":
        led = ledger.current()
        w2 = np.array(w, copy=True)
        k = basis.shape[1]
        coeffs = np.zeros((k, w.shape[1]), dtype=np.promote_types(basis.dtype, w.dtype))
        for i in range(k):
            c = basis[:, i:i + 1].conj().T @ w2
            led.reduction(nbytes=w.shape[1] * w.itemsize)
            led.flop(Kernel.BLAS2, 4.0 * basis.shape[0] * w.shape[1])
            w2 -= basis[:, i:i + 1] @ c
            coeffs[i] = c[0]
        return w2, coeffs
    raise ValueError(f"unknown orthogonalization scheme {scheme!r}")


def arnoldi_orthogonalize(basis_blocks: np.ndarray, w: np.ndarray, *,
                          scheme: str = "cgs",
                          qr_scheme: str = "cholqr",
                          tol: float = 1e-12,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One (block) Arnoldi orthogonalization step.

    Orthogonalizes the candidate block ``w`` (n x p) against the stacked
    orthonormal basis ``basis_blocks`` (n x jp) and normalizes the remainder.

    Returns ``(q, h, s, rank)`` where ``h`` (jp x p) holds the projection
    coefficients, ``s`` (p x p) the normalization factor (the new diagonal
    Hessenberg block ``h_{j+1,j}``), and ``rank`` the numerical rank of the
    remainder (``< p`` signals an exact block breakdown).  Rank is judged
    against the magnitude of ``w`` *before* projection, so a candidate that
    lies entirely inside the basis is reported as rank 0.
    """
    scale = float(np.max(column_norms(w), initial=0.0))
    w2, h = project_out(basis_blocks, w, scheme=scheme)
    if qr_scheme in ("cholqr", "cholqr_rr"):
        q, s, rank = qr_factorization(w2, qr_scheme, tol=tol, scale=scale)
    else:
        q, s, rank = qr_factorization(w2, qr_scheme, tol=tol)
    return q, h, s, rank
