"""Dense/tall-skinny linear algebra kernels."""

from .blockqr import BlockHessenbergQR
from .orthogonalization import (LOW_SYNC_SCHEMES, ORTHO_SCHEME_NAMES,
                                QR_SCHEME_NAMES, SCALE_AWARE_QR, SCHEMES,
                                OrthoScheme, PseudoBlockOrthogonalizer,
                                apply_sketch, arnoldi_orthogonalize, cholqr,
                                cholqr2, cholqr_rr, classical_gram_schmidt_qr,
                                householder_qr, make_arnoldi_engine,
                                modified_gram_schmidt_qr, project_out,
                                project_out_fused, qr_factorization,
                                shifted_cholqr, sketch_size, sketched_qr, tsqr)

__all__ = [
    "BlockHessenbergQR",
    "cholqr",
    "shifted_cholqr",
    "cholqr2",
    "cholqr_rr",
    "tsqr",
    "householder_qr",
    "classical_gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "sketched_qr",
    "apply_sketch",
    "sketch_size",
    "qr_factorization",
    "project_out",
    "project_out_fused",
    "arnoldi_orthogonalize",
    "make_arnoldi_engine",
    "PseudoBlockOrthogonalizer",
    "OrthoScheme",
    "SCHEMES",
    "ORTHO_SCHEME_NAMES",
    "QR_SCHEME_NAMES",
    "LOW_SYNC_SCHEMES",
    "SCALE_AWARE_QR",
]
