"""Dense/tall-skinny linear algebra kernels."""

from .blockqr import BlockHessenbergQR
from .orthogonalization import (arnoldi_orthogonalize, cholqr, cholqr_rr,
                                classical_gram_schmidt_qr, householder_qr,
                                modified_gram_schmidt_qr, project_out,
                                qr_factorization, shifted_cholqr, tsqr)

__all__ = [
    "BlockHessenbergQR",
    "cholqr",
    "shifted_cholqr",
    "cholqr_rr",
    "tsqr",
    "householder_qr",
    "classical_gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "qr_factorization",
    "project_out",
    "arnoldi_orthogonalize",
]
