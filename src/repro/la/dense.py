"""Small dense helpers shared by the Krylov layer.

All of these run redundantly on every (virtual) rank: they never touch
distributed data and therefore never communicate.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..util import ledger
from ..util.ledger import Kernel

__all__ = [
    "sorted_eig",
    "sorted_generalized_eig",
    "solve_upper_triangular",
    "hessenberg_harmonic_lhs",
]


def _sort_key(values: np.ndarray, target: str) -> np.ndarray:
    if target == "smallest":
        return np.argsort(np.abs(values))
    if target == "largest":
        return np.argsort(-np.abs(values))
    if target == "smallest_real":
        return np.argsort(values.real)
    if target == "largest_real":
        return np.argsort(-values.real)
    raise ValueError(f"unknown eigenvalue target {target!r}")


def sorted_eig(a: np.ndarray, k: int, *, target: str = "smallest"
               ) -> tuple[np.ndarray, np.ndarray]:
    """Eigenpairs of a small dense matrix, the ``k`` closest to ``target``.

    Used for the harmonic-Ritz problem of the first GCRO-DR cycle (paper
    line 16).  Infinite/NaN eigenvalues (possible when the Hessenberg is
    singular) are pushed to the back of the ordering.
    """
    vals, vecs = np.linalg.eig(a)
    ledger.current().flop(Kernel.EIG, 25.0 * a.shape[0] ** 3)
    bad = ~np.isfinite(vals)
    vals_for_sort = np.where(bad, np.inf if target.startswith("smallest") else 0.0, vals)
    order = _sort_key(vals_for_sort, target)
    order = order[: k]
    return vals[order], vecs[:, order]


def sorted_generalized_eig(t: np.ndarray, w: np.ndarray, k: int, *,
                           target: str = "smallest"
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Generalized eigenpairs ``T z = theta W z`` (paper line 33).

    Handles infinite eigenvalues from singular ``W`` by deprioritizing
    them; returns the ``k`` eigenpairs closest to the requested target.
    """
    vals, vecs = sla.eig(t, w)
    ledger.current().flop(Kernel.EIG, 50.0 * t.shape[0] ** 3)
    bad = ~np.isfinite(vals)
    vals_for_sort = np.where(bad, np.inf if target.startswith("smallest") else 0.0, vals)
    order = _sort_key(vals_for_sort, target)
    order = order[: k]
    return vals[order], vecs[:, order]


def solve_upper_triangular(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Robust upper-triangular solve with a least-squares fallback."""
    diag = np.abs(np.diagonal(r))
    scale = diag.max(initial=0.0)
    if r.size == 0:
        return np.zeros((0,) + b.shape[1:], dtype=np.promote_types(r.dtype, b.dtype))
    if scale == 0.0 or diag.min() < 1e-14 * scale:
        return np.linalg.lstsq(r, b, rcond=None)[0]
    return sla.solve_triangular(r, b, lower=False)


def hessenberg_harmonic_lhs(hbar: np.ndarray, r_factor: np.ndarray,
                            h_last: np.ndarray, p: int) -> np.ndarray:
    """Left-hand side of the harmonic-Ritz eigenproblem, eq. (2) of the paper.

    .. math::

        H = H_m + (QR)^{-H}
            \\begin{bmatrix} 0 & 0 \\\\ 0 & h_{m+1,m}^H h_{m+1,m} \\end{bmatrix}

    where ``QR`` is the incrementally computed QR of ``\\bar H_m``; using the
    triangular factor makes the correction a pair of triangular solves
    instead of the dense inverse used by Belos (``H_m^{-H}``).

    Parameters
    ----------
    hbar:
        the (m+1)p x mp block Hessenberg.
    r_factor:
        the mp x mp triangular factor of ``\\bar H_m`` from
        :class:`~repro.la.blockqr.BlockHessenbergQR`.  Accepted for API
        symmetry with the paper's formulation (which evaluates the
        correction through the incremental QR factors); this
        implementation solves the equivalent small adjoint system with
        ``H_m`` directly, which is just as cheap at these sizes and
        immune to an ill-conditioned ``R``.  May be ``None``.
    h_last:
        the trailing subdiagonal block ``h_{m+1,m}`` (p x p).
    p:
        block width.
    """
    mp = hbar.shape[1]
    hm = hbar[:mp, :]
    # correction column block: only the last p columns of the correction
    # matrix are nonzero, so solve for those columns only.
    corr_rhs = np.zeros((mp, p), dtype=hbar.dtype)
    corr_rhs[-p:, :] = h_last.conj().T @ h_last
    # (QR)^{-H} corr = R^{-H} Q^{-H}?  No: H_m = Q_{top} R with Q the unitary
    # from the QR of \bar H_m restricted appropriately.  The paper evaluates
    # (QR)^{-H} X as R^{-H} applied after accounting for Q being unitary on
    # the extended space; in exact arithmetic H_m^{-H} X = (QR)^{-H} X.
    # We use the triangular factor: H_m^{-H} = (Q_1 R)^{-H} where Q_1 is the
    # top mp x mp block of the accumulated Q.  To stay faithful *and* robust
    # we solve the small adjoint system directly with the Hessenberg.
    led = ledger.current()
    led.flop(Kernel.BLAS2, 2.0 * mp * mp * p)
    try:
        corr = np.linalg.solve(hm.conj().T, corr_rhs)
    except np.linalg.LinAlgError:
        corr = np.linalg.lstsq(hm.conj().T, corr_rhs, rcond=None)[0]
    h = np.array(hm, copy=True)
    h[:, -p:] += corr
    return h
