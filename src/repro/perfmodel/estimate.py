"""Convert ledger events into modeled wall-clock times on a target machine.

The solvers run at laptop scale; the ledger records what they *did*
(reductions, halo messages, flops by kernel class).  This module answers
"what would that cost on P processes of a Curie-like machine?" — which is
how the strong-scaling figures (Fig. 7) are projected beyond the local
core count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.ledger import CostLedger, Kernel
from .machine import CURIE, MachineModel

__all__ = ["TimeBreakdown", "modeled_time", "strong_scaling_projection"]


@dataclass
class TimeBreakdown:
    """Modeled time split into its components (seconds)."""

    reduction: float
    p2p: float
    compute: float

    @property
    def total(self) -> float:
        return self.reduction + self.p2p + self.compute

    @property
    def communication(self) -> float:
        return self.reduction + self.p2p

    def __repr__(self) -> str:
        return (f"TimeBreakdown(total={self.total:.4g}s, "
                f"reduce={self.reduction:.4g}, p2p={self.p2p:.4g}, "
                f"compute={self.compute:.4g})")


def modeled_time(events: CostLedger, nranks: int, *,
                 machine: MachineModel = CURIE,
                 block_width: int = 1) -> TimeBreakdown:
    """Model the wall time of the recorded events on ``nranks`` processes.

    Assumptions (standard BSP-style accounting):

    * flops are perfectly balanced: each rank executes ``1/nranks`` of the
      recorded totals at the kernel's effective rate;
    * every logged reduction synchronizes all ranks (a ``2 log2 P`` tree);
    * p2p totals are aggregate across ranks; each rank sends/receives its
      ``1/nranks`` share concurrently.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    # --- reductions -----------------------------------------------------
    t_red = 0.0
    if events.reductions:
        avg_bytes = events.reduction_bytes / events.reductions
        t_red = events.reductions * machine.reduction_time(nranks, avg_bytes)
    # --- halo traffic -----------------------------------------------------
    t_p2p = machine.p2p_time(events.p2p_messages / nranks,
                             events.p2p_bytes / nranks) if nranks > 1 else 0.0
    # --- computation -----------------------------------------------------
    t_comp = 0.0
    for kernel, flops in events.flops.items():
        if flops <= 0:
            continue
        rate = machine.rate(kernel, block_width=block_width)
        t_comp += flops / (rate * nranks)
    return TimeBreakdown(reduction=t_red, p2p=t_p2p, compute=t_comp)


def strong_scaling_projection(events: CostLedger, rank_counts: list[int], *,
                              machine: MachineModel = CURIE,
                              block_width: int = 1) -> dict[int, TimeBreakdown]:
    """Model the same workload across a sweep of process counts.

    This is the idealized (perfect load balance, iteration-count-invariant)
    projection; benchmarks that re-run the solver per subdomain count
    capture the *algorithmic* deterioration (more iterations with more
    subdomains) on top of it.
    """
    return {p: modeled_time(events, p, machine=machine,
                            block_width=block_width)
            for p in rank_counts}
