"""Machine model of a Curie-like system.

The paper's experiments ran on Curie: 5,040 nodes of two eight-core Intel
Sandy Bridge sockets at 2.7 GHz, InfiniBand QDR full fat tree, MKL BLAS.
This module captures the handful of rates that matter for Krylov-method
scalability:

* network: latency ``alpha`` and inverse bandwidth ``beta`` (QDR IB);
* a per-kernel effective flop rate, split by *arithmetic intensity* —
  memory-bound kernels (SpMV, BLAS-1/2) run at a small fraction of peak,
  compute-bound BLAS-3 near peak.  This split is the entire story of the
  paper's Fig. 6: multi-RHS solves turn BLAS-2 into BLAS-3;
* per-node memory bandwidth with a saturation model for thread scaling.

The default numbers are order-of-magnitude Sandy Bridge/QDR values; they
are deliberately simple — the benchmarks reproduce the *shape* of the
scaling curves, not Curie's absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.ledger import Kernel

__all__ = ["MachineModel", "CURIE"]


@dataclass(frozen=True)
class MachineModel:
    """Analytic cost model of a distributed-memory machine."""

    name: str = "curie-like"
    cores_per_node: int = 16
    clock_hz: float = 2.7e9
    flops_per_cycle: float = 8.0            # AVX double precision
    #: sustained memory bandwidth of one core / one saturated socket pair
    stream_bw_core: float = 6.0e9           # bytes/s
    stream_bw_node: float = 6.0e10          # bytes/s (saturation)
    #: network: latency (s) and inverse bandwidth (s/byte) per link
    alpha: float = 1.5e-6
    beta: float = 1.0 / 3.2e9               # QDR ~ 3.2 GB/s effective
    #: fraction of peak reached by compute-bound kernels
    blas3_efficiency: float = 0.85
    #: bytes of factor/matrix traffic per flop for memory-bound kernels
    bytes_per_flop_membound: float = 6.0

    @property
    def peak_core(self) -> float:
        return self.clock_hz * self.flops_per_cycle

    def memory_bandwidth(self, threads: int) -> float:
        """Aggregate bandwidth of ``threads`` cores on one node (saturating)."""
        threads = max(1, threads)
        bw = self.stream_bw_core * threads
        return min(bw, self.stream_bw_node)

    def rate(self, kernel: str, *, block_width: int = 1) -> float:
        """Effective flop rate (flops/s/core) of one kernel class.

        ``block_width`` models the arithmetic-intensity gain of fused
        multi-RHS kernels: an SpMM with ``p`` columns streams the matrix
        once for ``p`` times the flops, so its effective rate approaches
        the compute bound as ``p`` grows (paper section V-B2).
        """
        peak = self.peak_core * self.blas3_efficiency
        mem_rate = self.stream_bw_core / self.bytes_per_flop_membound
        if kernel in (Kernel.BLAS3, Kernel.FACTORIZATION, Kernel.EIG, Kernel.QR):
            return peak
        if kernel in (Kernel.SPMV, Kernel.BLAS1, Kernel.BLAS2, Kernel.PRECOND):
            return mem_rate
        if kernel == Kernel.SPMM:
            # streaming the matrix once amortized over block_width columns
            p = max(1, block_width)
            return min(peak, mem_rate * p)
        return mem_rate

    def reduction_time(self, nranks: int, nbytes: int = 8) -> float:
        """One tree all-reduce over ``nranks`` processes."""
        if nranks <= 1:
            return 0.0
        hops = 2.0 * np.ceil(np.log2(nranks))
        return hops * (self.alpha + nbytes * self.beta)

    def p2p_time(self, messages: float, nbytes: float) -> float:
        return messages * self.alpha + nbytes * self.beta


#: the default model used by all scaling benchmarks
CURIE = MachineModel()
