"""Threaded multi-RHS direct-solve model — the analytic half of Fig. 6.

The paper benchmarks PARDISO's solve phase for ``p`` right-hand sides on
``P`` threads (Fig. 6b) and plots the efficiency
``E_{P,p} = p T_{1,1} / (P T_{P,p})`` (Fig. 6a).  Three regimes matter:

* **single thread**: superlinear efficiency in ``p`` — the triangular
  solves stream the factor once per RHS *block* instead of once per RHS
  (BLAS-2 -> BLAS-3), saturating around 2.4x (paper: E(1,128) = 243%);
* **many threads, few RHSs**: abysmal efficiency (10% at P=16, p=2): the
  solve is memory-bandwidth- and synchronization-bound, and engaging the
  blocked multi-RHS kernel path costs a fixed overhead;
* **many threads, many RHSs**: efficiency recovers past a tipping point
  (p = 64 for P = 16) once every elimination-tree level carries enough
  work.

We reproduce the *measured* single-thread regime with our own blocked
triangular solves (:mod:`repro.direct`); thread counts cannot be measured
on this single-core host, so this mechanistic model supplies them.  The
model is

``T(P,p) = M ceil(p/nb)/bw(P) + C p / P^e + S log2(2P) [P>1]
           + (B0 + B1 log2(P)) [p>1]``

* ``M``  — one streaming pass over the factor (amortized over ``nb`` RHSs
  per pass; ``nb`` is the solver's internal RHS panel width);
* ``bw(P) = P / (1 + (P-1)/s)`` — memory bandwidth speedup saturating at
  ``s`` (two-socket Sandy Bridge streams ~3x one core);
* ``C p`` — compute, scaling almost linearly with threads;
* ``S`` — per-solve synchronization (level-schedule barriers);
* ``B0/B1`` — blocked-kernel engagement overhead, only paid when ``p>1``
  (this reproduces PARDISO's measured p=2 anomaly: T(16,2) = 1.95 s vs
  T(16,1) = 0.54 s in the paper's table).

Default constants are calibrated on the paper's own Fig. 6b table
(300k-unknown complex Maxwell system): the model matches every published
entry within ~20%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DirectSolveModel", "efficiency_table"]


@dataclass
class DirectSolveModel:
    """Mechanistic solve-phase model of a threaded sparse direct solver.

    The defaults reproduce the paper's PARDISO measurements; to model a
    different factorization, scale ``mem_pass`` and ``flop_per_rhs``
    proportionally to its factor size (both are in seconds).
    """

    mem_pass: float = 1.0        # M: seconds per streaming pass of the factor
    flop_per_rhs: float = 0.58   # C: compute seconds per RHS on one thread
    panel_width: int = 16        # nb: RHSs per factor pass
    bw_saturation: float = 3.0   # s: max memory-bandwidth speedup
    cpu_exponent: float = 0.95   # e: thread scaling of the compute term
    sync_cost: float = 0.025     # S: per-solve synchronization unit
    block_overhead0: float = 0.39  # B0
    block_overhead1: float = 0.245  # B1

    def bandwidth_speedup(self, threads: int) -> float:
        return threads / (1.0 + (threads - 1) / self.bw_saturation)

    def solve_time(self, threads: int, nrhs: int) -> float:
        """Modeled solve-phase time for ``nrhs`` RHSs on ``threads`` threads."""
        if threads < 1 or nrhs < 1:
            raise ValueError("threads and nrhs must be >= 1")
        passes = int(np.ceil(nrhs / self.panel_width))
        t_mem = self.mem_pass * passes / self.bandwidth_speedup(threads)
        t_cpu = self.flop_per_rhs * nrhs / threads ** self.cpu_exponent
        t_sync = self.sync_cost * np.log2(2 * threads) if threads > 1 else 0.0
        t_blk = (self.block_overhead0
                 + self.block_overhead1 * np.log2(threads)) if nrhs > 1 else 0.0
        return t_mem + t_cpu + t_sync + t_blk

    def efficiency(self, threads: int, nrhs: int) -> float:
        """``E_{P,p} = p T(1,1) / (P T(P,p))`` — the paper's Fig. 6a metric."""
        t11 = self.solve_time(1, 1)
        return nrhs * t11 / (threads * self.solve_time(threads, nrhs))

    @classmethod
    def from_factor(cls, factor_nnz: float, n: int, *, itemsize: int = 16,
                    stream_bw: float = 6.0e9, flop_rate: float = 2.0e9
                    ) -> "DirectSolveModel":
        """Build a model from factor statistics instead of calibration.

        ``mem_pass`` is the time to stream the factor values + indices once;
        ``flop_per_rhs`` is the triangular-solve flops for one RHS at a
        memory-bound effective rate.
        """
        mem_pass = factor_nnz * (itemsize + 4) / stream_bw
        flops = (8.0 if itemsize == 16 else 2.0) * factor_nnz
        scale = mem_pass / 1.0 if mem_pass > 0 else 1.0
        return cls(mem_pass=mem_pass,
                   flop_per_rhs=flops / flop_rate,
                   sync_cost=0.025 * scale,
                   block_overhead0=0.39 * scale,
                   block_overhead1=0.245 * scale)


def efficiency_table(model: DirectSolveModel | None = None,
                     thread_counts=(1, 2, 4, 8, 16),
                     rhs_counts=(1, 2, 4, 8, 16, 32, 64, 128)
                     ) -> dict[str, np.ndarray]:
    """Fig. 6 as arrays: solve times (6b) and efficiencies (6a)."""
    model = model or DirectSolveModel()
    times = np.array([[model.solve_time(tp, p) for p in rhs_counts]
                      for tp in thread_counts])
    eff = np.array([[model.efficiency(tp, p) for p in rhs_counts]
                    for tp in thread_counts])
    return {"threads": np.array(thread_counts), "rhs": np.array(rhs_counts),
            "times": times, "efficiency": eff}


#: the paper's Fig. 6b reference table (seconds), for calibration tests
PAPER_FIG6B = {
    "threads": np.array([1, 2, 4, 8, 16]),
    "rhs": np.array([1, 2, 4, 8, 16, 32, 64, 128]),
    "times": np.array([
        [1.58, 2.55, 5.39, 7.74, 12.42, 21.99, 41.89, 83.13],
        [0.99, 1.68, 2.69, 5.24, 7.65, 13.92, 22.28, 42.39],
        [0.61, 1.83, 1.71, 2.74, 5.36, 7.79, 12.74, 22.96],
        [0.53, 1.80, 1.83, 2.07, 2.94, 5.71, 8.36, 14.45],
        [0.54, 1.95, 2.05, 2.14, 2.17, 3.43, 6.27, 9.20],
    ]),
}
