"""Performance models: machine description, ledger-to-time, direct solves."""

from .directmodel import DirectSolveModel, efficiency_table
from .estimate import TimeBreakdown, modeled_time, strong_scaling_projection
from .machine import CURIE, MachineModel

__all__ = [
    "MachineModel",
    "CURIE",
    "TimeBreakdown",
    "modeled_time",
    "strong_scaling_projection",
    "DirectSolveModel",
    "efficiency_table",
]
