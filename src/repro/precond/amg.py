"""Smoothed-aggregation algebraic multigrid — the GAMG stand-in.

Implements the pieces the paper's experiments exercise:

* strength threshold (``-pc_gamg_threshold``) and graph squaring
  (``-pc_gamg_square_graph``) controlling setup cost vs robustness
  (Fig. 2a/b vs 2c/d);
* near-nullspace vectors — the six rigid-body modes for elasticity
  (``MatNullSpaceCreateRigidBody`` in the paper's ex56 run);
* pluggable smoothers: Chebyshev (PETSc's default — keeps the cycle
  linear), or a fixed number of GMRES / CG iterations
  (``-mg_levels_ksp_type gmres/cg``) which makes the preconditioner
  *variable* and forces flexible outer Krylov methods (section III-C).

The V-cycle is standard SA: smoothed prolongation
``P = (I - omega D^{-1} A) T`` and Galerkin coarse operators, with a
sparse-LU coarse solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..direct.solver import SparseLU
from ..krylov.base import Preconditioner, as_operator
from ..krylov.chebyshev import chebyshev_iteration, estimate_lambda_max
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import CostLedger, Kernel
from ..util.misc import as_block
from .aggregation import greedy_aggregation, strength_graph, tentative_prolongator

__all__ = ["SmoothedAggregationAMG", "AMGLevel"]


@dataclass
class AMGLevel:
    """One level of the hierarchy."""

    a: sp.csr_matrix
    p: sp.csr_matrix | None          # prolongator to THIS level from coarser
    diag: np.ndarray
    lam_max: float
    smoother_state: dict


def _condense_to_nodes(a: sp.csr_matrix, block_size: int) -> sp.csr_matrix:
    """Sum |entries| of each bs x bs block to get the node-graph matrix."""
    if block_size == 1:
        return a
    n_nodes = a.shape[0] // block_size
    coo = a.tocoo()
    rows = coo.row // block_size
    cols = coo.col // block_size
    return sp.csr_matrix((np.abs(coo.data), (rows, cols)),
                         shape=(n_nodes, n_nodes))


class SmoothedAggregationAMG(Preconditioner):
    """SA-AMG V-cycle preconditioner.

    Parameters
    ----------
    a:
        system matrix (CSR).
    threshold:
        strength-of-connection drop tolerance (``-pc_gamg_threshold``).
    square_graph:
        number of levels on which to square the strength graph
        (``-pc_gamg_square_graph``).
    nullspace:
        near-nullspace block (n x nvec); defaults to the constant vector.
    block_size:
        DOFs per mesh node (3 for 3-D elasticity) — aggregation is per node.
    smoother:
        ``"chebyshev"`` (linear), ``"gmres"`` or ``"cg"`` (variable!),
        or ``"jacobi"``.
    smoother_iterations:
        sweeps per pre/post smoothing application
        (``-mg_levels_ksp_max_it``).
    coarse_size:
        stop coarsening below this many unknowns; solve directly.
    max_levels:
        hierarchy depth cap.
    coarse_solver:
        ``"lu"`` (exact, default) or ``"cg"`` — a fixed number of CG sweeps
        (``coarse_iterations``) on the coarsest level.  An inexact coarse
        solve leaves a low-dimensional error subspace exactly like the
        approximately-solved coarse problems of extreme-scale multigrid;
        it also makes the preconditioner *variable*.
    """

    def __init__(self, a: sp.spmatrix, *, threshold: float = 0.0,
                 square_graph: int = 0,
                 nullspace: np.ndarray | None = None,
                 block_size: int = 1,
                 smoother: str = "chebyshev",
                 smoother_iterations: int = 2,
                 coarse_size: int = 300,
                 max_levels: int = 10,
                 omega: float = 4.0 / 3.0,
                 coarse_solver: str = "lu",
                 coarse_iterations: int = 10):
        a = sp.csr_matrix(a)
        self.dtype = np.promote_types(a.dtype, np.float64)
        a = a.astype(self.dtype)
        if smoother not in ("chebyshev", "jacobi", "gmres", "cg"):
            raise ValueError(f"unknown smoother {smoother!r}")
        if coarse_solver not in ("lu", "cg"):
            raise ValueError(f"unknown coarse_solver {coarse_solver!r}")
        self.smoother = smoother
        self.smoother_iterations = int(smoother_iterations)
        self.coarse_solver = coarse_solver
        self.coarse_iterations = int(coarse_iterations)
        #: Krylov smoothers / inexact coarse solves are nonlinear:
        #: the preconditioner is variable
        self.is_variable = smoother in ("gmres", "cg") or coarse_solver == "cg"
        self.levels: list[AMGLevel] = []
        # private setup ledger, replayed onto the ambient one: totals are
        # unchanged, and ``setup_cost`` records what a setup cache amortizes
        led = CostLedger()

        # the span sits on the *ambient* ledger and encloses the merge, so
        # its window records the full setup cost; the inner SparseLU span
        # opens against the private ledger and is skipped by ``exclusive``
        with trace.current().span("setup.amg", threshold=threshold,
                                  smoother=smoother):
            with ledger.install(led), led.timer("amg_setup"):
                ns = nullspace
                if ns is None:
                    ns = np.ones((a.shape[0], 1), dtype=self.dtype)
                ns = np.asarray(ns, dtype=self.dtype)
                if ns.ndim == 1:
                    ns = ns.reshape(-1, 1)
                bs = block_size
                current = a
                for lvl in range(max_levels):
                    diag = np.asarray(current.diagonal())
                    lam = estimate_lambda_max(as_operator(current), diag)
                    self.levels.append(AMGLevel(a=current, p=None, diag=diag,
                                                lam_max=lam, smoother_state={}))
                    if current.shape[0] <= coarse_size:
                        break
                    node_mat = _condense_to_nodes(current, bs)
                    sq = 1 if lvl < square_graph else 0
                    graph = strength_graph(node_mat, threshold=threshold,
                                           square=sq)
                    agg = greedy_aggregation(graph)
                    n_agg = int(agg.max()) + 1
                    if n_agg * ns.shape[1] >= current.shape[0]:
                        break  # coarsening stalled
                    t, coarse_ns = tentative_prolongator(agg, ns, block_size=bs)
                    # smoothed prolongator: P = (I - omega D^{-1} A) T
                    dinv = 1.0 / np.where(np.abs(diag) > 0, diag, 1.0)
                    p = t - sp.diags(omega / max(lam, 1e-12) * dinv) @ (current @ t)
                    p = sp.csr_matrix(p)
                    coarse = sp.csr_matrix(p.conj().T @ current @ p)
                    led.flop(Kernel.SPMM, 4.0 * current.nnz * t.shape[1])
                    self.levels[-1].p = p
                    current = coarse
                    ns = coarse_ns
                    bs = ns.shape[1]   # coarse DOFs per aggregate = nvec
                # coarse solver
                self._coarse_lu = (SparseLU(self.levels[-1].a, engine="auto")
                                   if coarse_solver == "lu" else None)
            self.setup_cost = led
            ledger.current().merge(led)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """sum(nnz over levels) / nnz(fine) — the standard AMG metric."""
        fine = self.levels[0].a.nnz
        return sum(l.a.nnz for l in self.levels) / max(fine, 1)

    # ------------------------------------------------------------------
    def _smooth(self, level: AMGLevel, b: np.ndarray, x: np.ndarray | None
                ) -> np.ndarray:
        """One pre/post smoothing application on a level."""
        its = self.smoother_iterations
        if self.smoother == "chebyshev":
            return chebyshev_iteration(
                as_operator(level.a), level.diag, b, degree=its,
                lam_min=level.lam_max / 10.0, lam_max=1.1 * level.lam_max,
                x0=x)
        if self.smoother == "jacobi":
            dinv = (0.7 / np.where(np.abs(level.diag) > 0, level.diag, 1.0))
            xk = np.zeros_like(b) if x is None else x
            for _ in range(its):
                xk = xk + dinv[:, None] * (b - level.a @ xk)
            return xk
        # Krylov smoothers (variable preconditioning!)
        from ..krylov.cg import cg as cg_solve
        from ..krylov.gmres import gmres as gmres_solve
        from ..util.options import Options
        opts = Options(tol=1e-25, max_it=its,
                       gmres_restart=max(its, 1))
        fn = cg_solve if self.smoother == "cg" else gmres_solve
        res = fn(level.a, b, options=opts, x0=x)
        return as_block(res.x)

    def _vcycle(self, lvl: int, b: np.ndarray) -> np.ndarray:
        level = self.levels[lvl]
        if lvl == len(self.levels) - 1:
            if self._coarse_lu is not None:
                return self._coarse_lu.solve(b)
            from ..krylov.cg import cg as cg_solve
            from ..util.options import Options
            res = cg_solve(level.a, b, options=Options(
                tol=1e-12, max_it=self.coarse_iterations))
            return as_block(res.x)
        x = self._smooth(level, b, None)
        r = b - level.a @ x
        ledger.current().flop(Kernel.SPMM, 2.0 * level.a.nnz * b.shape[1])
        rc = level.p.conj().T @ r
        xc = self._vcycle(lvl + 1, rc)
        x = x + level.p @ xc
        x = self._smooth(level, b, x)
        return x

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = as_block(x).astype(self.dtype, copy=False)
        ledger.current().event("amg_vcycle", x.shape[1])
        return self._vcycle(0, x)

    def __repr__(self) -> str:
        sizes = " -> ".join(str(l.a.shape[0]) for l in self.levels)
        return (f"SmoothedAggregationAMG(levels={self.n_levels} [{sizes}], "
                f"smoother={self.smoother!r}, "
                f"complexity={self.operator_complexity:.2f})")
