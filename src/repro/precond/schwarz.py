"""Overlapping Schwarz preconditioners: ASM, RAS, and ORAS (eq. 6).

The one-level preconditioners of the paper's Maxwell solver:

.. math::

    M^{-1}_{ASM}  = \\sum_i R_i^T        B_i^{-1} R_i \\qquad
    M^{-1}_{ORAS} = \\sum_i R_i^T D_i    B_i^{-1} R_i

* ``R_i`` — Boolean restriction to the delta-overlap subdomain;
* ``D_i`` — diagonal partition of unity with ``sum R_i^T D_i R_i = I``;
* ``B_i`` — the local operator: the plain submatrix ``R_i A R_i^T`` for
  ASM/RAS, or a matrix with **optimized transmission conditions** for ORAS
  (impedance/Robin conditions on the subdomain interfaces — supplied by
  the discretization, or approximated algebraically with a complex
  interface shift).

Every subdomain solve is a :class:`repro.direct.SparseLU` factorization
applied to the whole ``n x p`` RHS block at once — the coupling between
Schwarz methods and blocked direct solves that Fig. 6 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..direct.solver import SparseLU
from ..direct.triangular import TriangularFactor, concat_factors
from ..krylov.base import Preconditioner
from ..problems.partition import OverlappingDecomposition, decompose
from ..trace import tracer as trace
from ..util import ledger
from ..util.execmode import exec_mode
from ..util.ledger import CostLedger, CostTable
from ..util.misc import as_block

__all__ = ["SchwarzPreconditioner", "algebraic_interface_shift"]


@dataclass
class _FusedBatch:
    """Block-diagonal batching of the per-subdomain direct solves.

    All subdomain systems are solved in ONE pair of level-scheduled
    triangular sweeps (levels = max over subdomains, each level a wide
    BLAS-3 block), then scattered back through a single SpMM whose values
    carry the partition-of-unity weights.  The ledger is charged exactly
    what the per-subdomain loop charges: the concatenated factors' flop
    counts sum to the per-factor totals, and ``events`` replays the
    remaining per-subdomain event counts in O(1).
    """

    cat_dofs: np.ndarray          # concatenated subdomain index sets
    perm_r: np.ndarray            # row permutations, offset per block
    perm_c: np.ndarray            # column permutations, offset per block
    l_factor: TriangularFactor    # block-diagonal L
    u_factor: TriangularFactor    # block-diagonal U
    scatter: sp.csr_matrix        # (n x sum n_i) R_i^T D_i scatter-add
    scipy_convention: bool
    solver_dtype: np.dtype
    events: CostTable


def algebraic_interface_shift(a: sp.csr_matrix, subdomain: np.ndarray,
                              shift: complex) -> sp.csr_matrix:
    """Local matrix with a Robin-like complex shift on interface DOFs.

    An *algebraic* stand-in for optimized transmission conditions when no
    discretization is available: interface DOFs (those coupled to the
    exterior) get ``shift * |diag|`` added, mimicking the absorbing
    impedance condition ``dE/dn - i omega E`` that makes ORAS effective on
    indefinite time-harmonic problems.
    """
    local = sp.csr_matrix(a[subdomain][:, subdomain])
    n = a.shape[0]
    mask = np.zeros(n, dtype=bool)
    mask[subdomain] = True
    # interface = subdomain rows with at least one exterior neighbour
    rows = a[subdomain]
    interface_local = np.zeros(len(subdomain), dtype=bool)
    for k in range(len(subdomain)):
        cols = rows.indices[rows.indptr[k]: rows.indptr[k + 1]]
        if np.any(~mask[cols]):
            interface_local[k] = True
    diag = np.abs(local.diagonal())
    bump = np.where(interface_local, shift * np.where(diag > 0, diag, 1.0), 0.0)
    return sp.csr_matrix(local + sp.diags(bump))


class SchwarzPreconditioner(Preconditioner):
    """One-level overlapping Schwarz preconditioner.

    Parameters
    ----------
    a:
        global system matrix.
    nparts:
        number of subdomains (ignored if ``decomposition`` is given).
    overlap:
        delta, in graph layers (``-pc_asm_overlap`` analogue).
    variant:
        ``"asm"`` (symmetric, no weighting), ``"ras"`` (restricted:
        boolean PoU on the way back), ``"oras"`` (RAS with optimized local
        operators).
    local_matrices:
        per-subdomain operators ``B_i`` for ORAS, as built by the
        discretization (e.g. :func:`repro.problems.maxwell.local_impedance_matrices`).
        When omitted for ORAS, an algebraic interface shift is used.
    interface_shift:
        the algebraic Robin shift (complex for time-harmonic problems).
    decomposition:
        a prebuilt :class:`OverlappingDecomposition` (e.g. from mesh
        coordinates); otherwise the matrix graph is band-partitioned.
    points:
        node coordinates forwarded to the RCB partitioner.
    engine:
        direct-solver engine for the subdomain factorizations ("scipy" by
        default: the factor-once/solve-thousands pattern wants the fastest
        numeric phase, while all solves still run through this library's
        blocked level-scheduled kernels).
    coarse:
        add a Nicolaides coarse correction: one coarse DOF per subdomain
        (the partition-of-unity vector ``R_i^T D_i 1``), solved directly
        and applied additively.  The classic cure for the one-level
        iteration growth the paper observes in its strong-scaling study
        ("the number of iterations slightly increases with the number of
        MPI processes", Fig. 7) — kept off by default to stay faithful to
        the paper's one-level eq. (6).
    """

    is_variable = False

    def __init__(self, a: sp.spmatrix, *, nparts: int = 4, overlap: int = 1,
                 variant: str = "ras",
                 local_matrices: list[sp.spmatrix] | None = None,
                 interface_shift: complex = 0.0,
                 decomposition: OverlappingDecomposition | None = None,
                 points: np.ndarray | None = None,
                 engine: str = "scipy",
                 coarse: bool = False):
        if variant not in ("asm", "ras", "oras"):
            raise ValueError(f"unknown Schwarz variant {variant!r}")
        a = sp.csr_matrix(a)
        self.a = a
        self.variant = variant
        self.n = a.shape[0]
        # private setup ledger, replayed onto the ambient one: totals are
        # unchanged, and ``setup_cost`` records what a setup cache amortizes
        led = CostLedger()
        # the span sits on the *ambient* ledger and encloses the merge, so
        # its window records the full setup cost; per-subdomain SparseLU
        # spans open against the private ledger and are skipped by
        # ``exclusive``
        with trace.current().span("setup.schwarz", variant=variant,
                                  coarse=bool(coarse)):
            with ledger.install(led), led.timer("schwarz_setup"):
                if decomposition is None:
                    pou_kind = ("boolean" if variant in ("ras", "oras")
                                else "multiplicity")
                    decomposition = decompose(a, nparts, overlap=overlap,
                                              points=points, pou=pou_kind)
                self.decomposition = decomposition
                self.subdomains = decomposition.overlapping
                self.pou = decomposition.pou
                self.solvers: list[SparseLU] = []
                for i, dofs in enumerate(self.subdomains):
                    if local_matrices is not None:
                        b_i = sp.csc_matrix(local_matrices[i])
                        if b_i.shape[0] != len(dofs):
                            raise ValueError(
                                f"local matrix {i} has size {b_i.shape[0]}, "
                                f"subdomain has {len(dofs)} DOFs")
                    elif variant == "oras" and interface_shift != 0.0:
                        b_i = algebraic_interface_shift(a, dofs, interface_shift)
                    else:
                        b_i = sp.csc_matrix(a[dofs][:, dofs])
                    self.solvers.append(SparseLU(b_i, engine=engine))
                led.event("schwarz_factorizations", len(self.subdomains))
                self._fused_batch: _FusedBatch | None = None

                # optional Nicolaides coarse space: Z[:, i] = R_i^T D_i 1
                self._coarse_z = None
                self._coarse_solve = None
                if coarse:
                    dtype = np.promote_types(a.dtype, np.float64)
                    z = np.zeros((self.n, len(self.subdomains)), dtype=dtype)
                    for i, (dofs, d) in enumerate(
                            zip(self.subdomains, self.pou)):
                        z[dofs, i] = d
                    e = z.conj().T @ (a @ z)
                    led.reduction(nbytes=e.nbytes)
                    try:
                        e_inv = np.linalg.inv(e)
                    except np.linalg.LinAlgError:
                        e_inv = np.linalg.pinv(e)
                    self._coarse_z = z
                    self._coarse_solve = e_inv
                    led.event("schwarz_coarse_setup")
            self.setup_cost = led
            ledger.current().merge(led)

    # ------------------------------------------------------------------
    @property
    def nparts(self) -> int:
        return len(self.subdomains)

    def _local_solves(self, x: np.ndarray, dtype) -> np.ndarray:
        """One-level sum: ``sum_i R_i^T (D_i) B_i^{-1} R_i x``."""
        if exec_mode() == "fused" and len(self.solvers) > 1:
            return self._batched_local_solves(x, dtype)
        y = np.zeros((self.n, x.shape[1]), dtype=dtype)
        for dofs, d, lu in zip(self.subdomains, self.pou, self.solvers):
            local = lu.solve(x[dofs])
            if self.variant in ("ras", "oras"):
                local = local * d[:, None]
            y[dofs] += local
            # halo traffic: the overlap values cross subdomain boundaries
        return y

    def _build_fused_batch(self) -> _FusedBatch:
        solvers = self.solvers
        sizes = np.array([len(dofs) for dofs in self.subdomains])
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        cat_dofs = np.concatenate(self.subdomains)
        ncat = int(cat_dofs.size)
        if self.variant in ("ras", "oras"):
            weights = np.concatenate(self.pou)
        else:
            weights = np.ones(ncat)
        scatter = sp.csr_matrix(
            (weights, (cat_dofs, np.arange(ncat))), shape=(self.n, ncat))
        nparts = len(solvers)
        return _FusedBatch(
            cat_dofs=cat_dofs,
            perm_r=np.concatenate([s.perm_r + o
                                   for s, o in zip(solvers, offsets)]),
            perm_c=np.concatenate([s.perm_c + o
                                   for s, o in zip(solvers, offsets)]),
            l_factor=concat_factors([s._ltri for s in solvers]),
            u_factor=concat_factors([s._utri for s in solvers]),
            scatter=scatter,
            scipy_convention=solvers[0]._scipy_convention,
            solver_dtype=np.result_type(*(s.dtype for s in solvers)),
            # the combined triangular solves charge ONE event pair and the
            # batched path never enters SparseLU.solve; replay the rest so
            # the calls Counter matches the per-subdomain loop exactly
            events=CostTable(events_per_col=(
                ("triangular_solve", 2 * (nparts - 1)),
                ("direct_solve", nparts),
            )),
        )

    def _batched_local_solves(self, x: np.ndarray, dtype) -> np.ndarray:
        """All subdomain solves through one block-diagonal factor pair."""
        if self._fused_batch is None:
            self._fused_batch = self._build_fused_batch()
        batch = self._fused_batch
        cat = x[batch.cat_dofs]
        if batch.scipy_convention:
            bp = np.empty(cat.shape,
                          dtype=np.promote_types(batch.solver_dtype, cat.dtype))
            bp[batch.perm_r] = cat
        else:
            bp = cat[batch.perm_r]
        z = batch.u_factor.solve(batch.l_factor.solve(bp))
        if batch.scipy_convention:
            solved = z[batch.perm_c]
        else:
            solved = np.empty_like(z)
            solved[batch.perm_c] = z
        batch.events.charge(ledger.current(), p=x.shape[1])
        return np.asarray(batch.scatter @ solved).astype(dtype, copy=False)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``M^{-1} X`` — all ``p`` columns through every subdomain solve
        in one blocked forward/backward substitution (paper section V-A)."""
        x = as_block(x)
        p = x.shape[1]
        dtype = np.promote_types(self.a.dtype, x.dtype)
        led = ledger.current()
        if self._coarse_z is None:
            y = self._local_solves(x, dtype)
        else:
            # hybrid (multiplicative) two-level: coarse solve first, local
            # solves on the remaining residual — the standard balancing form
            zx = self._coarse_z.conj().T @ x
            led.reduction(nbytes=zx.nbytes)
            y0 = self._coarse_z @ (self._coarse_solve @ zx)
            r = x - np.asarray(self.a @ y0)
            y = y0 + self._local_solves(r, dtype)
        led.p2p(messages=2 * self.nparts,
                nbytes=int(sum(len(s) for s in self.subdomains) - self.n)
                * np.dtype(dtype).itemsize * p)
        led.event("schwarz_apply", p)
        return y

    def __repr__(self) -> str:
        return (f"SchwarzPreconditioner(variant={self.variant!r}, "
                f"nparts={self.nparts}, n={self.n})")
