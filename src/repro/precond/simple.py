"""Point preconditioners: Jacobi and SSOR baselines."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..krylov.base import Preconditioner
from ..util.misc import as_block

__all__ = ["JacobiPreconditioner", "SSORPreconditioner"]


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``M^{-1} = D^{-1}``."""

    is_variable = False

    def __init__(self, a: sp.spmatrix):
        diag = np.asarray(sp.csr_matrix(a).diagonal())
        if np.any(diag == 0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._dinv = 1.0 / diag

    def apply(self, x: np.ndarray) -> np.ndarray:
        return as_block(x) * self._dinv[:, None]


class SSORPreconditioner(Preconditioner):
    """Symmetric SOR: ``M = (D/w + L) (D/w)^{-1} (D/w + U) * w/(2-w)``.

    Applied with two sparse triangular sweeps; supports blocks of RHSs.
    """

    is_variable = False

    def __init__(self, a: sp.spmatrix, *, omega: float = 1.0):
        if not 0.0 < omega < 2.0:
            raise ValueError("SSOR requires 0 < omega < 2")
        a = sp.csr_matrix(a)
        diag = np.asarray(a.diagonal())
        if np.any(diag == 0):
            raise ValueError("SSOR requires a nonzero diagonal")
        self.omega = omega
        from ..direct.triangular import TriangularFactor
        d_over_w = sp.diags(diag / omega)
        lower = sp.tril(a, k=-1) + d_over_w
        upper = sp.triu(a, k=1) + d_over_w
        self._lower = TriangularFactor(lower.tocsr(), lower=True)
        self._upper = TriangularFactor(upper.tocsr(), lower=False)
        self._diag_over_w = diag / omega
        self._front = (2.0 - omega) / omega  # 1/(w/(2-w))

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = as_block(x)
        y = self._lower.solve(x)
        y = y * self._diag_over_w[:, None]
        y = self._upper.solve(y)
        return y * self._front
