"""Preconditioners: AMG, overlapping Schwarz, and point baselines."""

from .amg import SmoothedAggregationAMG
from .schwarz import SchwarzPreconditioner, algebraic_interface_shift
from .simple import JacobiPreconditioner, SSORPreconditioner

__all__ = [
    "SmoothedAggregationAMG",
    "SchwarzPreconditioner",
    "algebraic_interface_shift",
    "JacobiPreconditioner",
    "SSORPreconditioner",
]
