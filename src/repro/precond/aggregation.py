"""Strength-of-connection graphs and greedy aggregation for SA-AMG.

Mirrors the knobs of PETSc's GAMG used in the paper's command lines:

* ``threshold`` — ``-pc_gamg_threshold``: edge ``(i, j)`` is *strong* when
  ``|a_ij| > threshold * sqrt(|a_ii a_jj|)``; raising it drops more edges,
  giving smaller/cheaper coarse grids at the price of more iterations
  (exactly the trade-off of Fig. 2c/d);
* ``square_graph`` — ``-pc_gamg_square_graph``: aggregate on the square of
  the strength graph (distance-2 aggregates, coarser grids).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["strength_graph", "greedy_aggregation", "tentative_prolongator"]


def strength_graph(a: sp.spmatrix, *, threshold: float = 0.0,
                   square: int = 0) -> sp.csr_matrix:
    """Boolean strength-of-connection graph of ``a``.

    For vector problems callers should pass the scalar *block* matrix (one
    row per node); this routine treats the matrix entries as given.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    coo = a.tocoo()
    absval = np.abs(coo.data)
    diag = np.abs(a.diagonal())
    diag_safe = np.where(diag > 0, diag, 1.0)
    scale = np.sqrt(diag_safe[coo.row] * diag_safe[coo.col])
    keep = (absval > threshold * scale) & (coo.row != coo.col)
    g = sp.csr_matrix((np.ones(np.count_nonzero(keep), dtype=np.int8),
                       (coo.row[keep], coo.col[keep])), shape=(n, n))
    g = ((g + g.T) > 0).astype(np.int8)
    for _ in range(square):
        g = ((g @ g + g) > 0).astype(np.int8)
        g.setdiag(0)
        g.eliminate_zeros()
    return g.tocsr()


def greedy_aggregation(strength: sp.csr_matrix) -> np.ndarray:
    """Root-based greedy aggregation (standard SA pass 1 + 2 + 3).

    Returns ``agg`` of length n with ``agg[i]`` = aggregate id of node i.

    * pass 1: any node whose strong neighbourhood is fully unaggregated
      becomes a root and absorbs that neighbourhood;
    * pass 2: remaining nodes join the aggregate most of their strong
      neighbours belong to;
    * pass 3: still-isolated nodes become singleton aggregates.
    """
    n = strength.shape[0]
    indptr, indices = strength.indptr, strength.indices
    agg = np.full(n, -1, dtype=np.int64)
    next_id = 0
    # pass 1
    for i in range(n):
        if agg[i] != -1:
            continue
        neigh = indices[indptr[i]: indptr[i + 1]]
        if np.all(agg[neigh] == -1):
            agg[i] = next_id
            agg[neigh] = next_id
            next_id += 1
    # pass 2
    for i in range(n):
        if agg[i] != -1:
            continue
        neigh = indices[indptr[i]: indptr[i + 1]]
        assigned = agg[neigh]
        assigned = assigned[assigned >= 0]
        if assigned.size:
            vals, counts = np.unique(assigned, return_counts=True)
            agg[i] = vals[np.argmax(counts)]
    # pass 3
    for i in range(n):
        if agg[i] == -1:
            agg[i] = next_id
            next_id += 1
    return agg


def tentative_prolongator(agg: np.ndarray, nullspace: np.ndarray,
                          *, block_size: int = 1
                          ) -> tuple[sp.csr_matrix, np.ndarray]:
    """Build the tentative prolongator from aggregates and near-nullspace.

    Each aggregate contributes ``nvec`` coarse degrees of freedom: the
    restriction of the near-nullspace vectors to the aggregate's rows,
    orthonormalized by a local QR.  Returns ``(T, coarse_nullspace)`` where
    the R factors stack into the coarse-level near-nullspace (standard SA).

    ``block_size`` expands a *node*-based aggregation to vector problems:
    ``agg`` has one entry per node and rows ``node*bs .. node*bs+bs-1``
    belong to that node.
    """
    nullspace = np.asarray(nullspace, dtype=nullspace.dtype)
    if nullspace.ndim == 1:
        nullspace = nullspace.reshape(-1, 1)
    n_rows, nvec = nullspace.shape
    n_nodes = agg.shape[0]
    if n_nodes * block_size != n_rows:
        raise ValueError(f"{n_nodes} nodes x block {block_size} != {n_rows} rows")
    n_agg = int(agg.max()) + 1
    rows_by_agg: list[list[int]] = [[] for _ in range(n_agg)]
    for node, a_id in enumerate(agg):
        base = node * block_size
        rows_by_agg[a_id].extend(range(base, base + block_size))

    data, rows, cols = [], [], []
    coarse_ns = np.zeros((n_agg * nvec, nvec), dtype=nullspace.dtype)
    for a_id, agg_rows in enumerate(rows_by_agg):
        agg_rows = np.asarray(agg_rows, dtype=np.int64)
        local = nullspace[agg_rows]                   # (rows, nvec)
        q, r = np.linalg.qr(local)
        keep = min(q.shape[1], nvec)
        for v in range(keep):
            col = a_id * nvec + v
            rows.extend(agg_rows.tolist())
            cols.extend([col] * len(agg_rows))
            data.extend(q[:, v].tolist())
        coarse_ns[a_id * nvec: a_id * nvec + keep, :] = r[:keep, :]
    t = sp.csr_matrix((data, (rows, cols)), shape=(n_rows, n_agg * nvec))
    return t, coarse_ns
