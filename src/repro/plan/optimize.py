"""Plan optimizer: hoist, fuse, batch, pre-bind.

Four passes over a lowered :class:`~repro.plan.ir.Plan`, applied in order.
Every pass is charge-conserving — the per-cycle ledger totals replayed by
the optimized plan are identical to the unoptimized plan's (the unit tests
pin this with :meth:`Plan.total_cost` before/after comparisons):

1. ``hoist_invariants`` — nodes tagged with an ``invariant_key`` perform
   cycle-invariant setup (projector stacking, Hessenberg QR scaffolding).
   The first occurrence moves to the prologue; later occurrences are
   dropped.  Only charge-free nodes are eligible, so per-cycle charges
   are untouched by construction.
2. ``fuse_adjacent`` — maximal runs of consecutive ``fusable``,
   branch-free, same-phase nodes merge into one node whose body chains
   the originals and whose cost is the sum.  A charge-free ``next``-phase
   basis advance additionally fuses across the step boundary into the
   following step's leading ``pre`` node.
3. ``batch_parallel`` — consecutive nodes sharing a ``batch_key`` (i.e.
   independent small GEMMs lowered separately) merge into one batched
   node.
4. ``prebind`` — every remaining ``cost_thunk`` is evaluated once into a
   bound :class:`NodeCost`, making execution-time charging a table lookup.
"""

from __future__ import annotations

from .ir import Plan, PlanNode

__all__ = ["optimize"]


def _merge(nodes: list[PlanNode], kind: str) -> PlanNode:
    """Fold a run of branch-free nodes into one chained node."""
    runs = [n.run for n in nodes if n.run is not None]

    def chained(ctx, _runs=tuple(runs)):
        for r in _runs:
            r(ctx)

    thunks = [n.cost_thunk for n in nodes if n.cost_thunk is not None]
    static = [n.cost for n in nodes if n.cost_thunk is None]

    def cost_thunk(_thunks=tuple(thunks), _static=tuple(static)):
        total = None
        for part in list(_static) + [t() for t in _thunks]:
            total = part if total is None else total + part
        return total

    merged = PlanNode(kind=kind,
                      label="+".join(n.label for n in nodes),
                      phase=nodes[0].phase,
                      run=chained if runs else None,
                      fusable=all(n.fusable for n in nodes))
    if thunks:
        merged.cost_thunk = cost_thunk
    else:
        merged.cost = cost_thunk()
    return merged


def _fuse_list(nodes: list[PlanNode], stats: dict[str, int]) -> list[PlanNode]:
    out: list[PlanNode] = []
    run: list[PlanNode] = []

    def flush() -> None:
        if len(run) > 1:
            stats["fused"] += len(run) - 1
            out.append(_merge(run, "fused"))
        elif run:
            out.append(run[0])
        run.clear()

    for node in nodes:
        eligible = node.fusable and not node.branches
        if run and (not eligible or node.phase != run[0].phase):
            flush()
        if eligible:
            run.append(node)
        else:
            flush()
            out.append(node)
    flush()
    return out


def _hoist(plan: Plan, stats: dict[str, int]) -> None:
    # keys already satisfied by an explicit prologue node stay there; their
    # (idempotent) step occurrences are simply dropped
    seen: set[str] = {n.invariant_key for n in plan.prologue
                      if n.invariant_key is not None}
    for si, step in enumerate(plan.steps):
        kept: list[PlanNode] = []
        for node in step:
            key = node.invariant_key
            if key is None or not node.is_free:
                kept.append(node)
                continue
            if key not in seen:
                seen.add(key)
                plan.prologue.append(node)
            stats["hoisted"] += 1
        plan.steps[si] = kept


def _batch(nodes: list[PlanNode], stats: dict[str, int]) -> list[PlanNode]:
    out: list[PlanNode] = []
    run: list[PlanNode] = []

    def flush() -> None:
        if len(run) > 1:
            stats["batched"] += len(run) - 1
            out.append(_merge(run, "batched"))
        elif run:
            out.append(run[0])
        run.clear()

    for node in nodes:
        key = node.batch_key
        eligible = key is not None and not node.branches
        if run and (not eligible or key != run[0].batch_key):
            flush()
        if eligible:
            run.append(node)
        else:
            flush()
            out.append(node)
    flush()
    return out


def _fuse_cross_step(plan: Plan, stats: dict[str, int]) -> None:
    """Defer each step's charge-free ``next``-phase advance into the
    following step's ``pre`` head (merging with it when fusable)."""
    for si in range(len(plan.steps) - 1):
        step = plan.steps[si]
        if not step or step[-1].phase != "next" or not step[-1].is_free:
            continue
        advance = step.pop()
        advance.phase = "pre"
        nxt = plan.steps[si + 1]
        if (nxt and nxt[0].fusable and not nxt[0].branches
                and advance.fusable and nxt[0].phase == "pre"):
            nxt[0] = _merge([advance, nxt[0]], "fused")
            stats["fused"] += 1
        else:
            nxt.insert(0, advance)


def _prebind(plan: Plan, stats: dict[str, int]) -> None:
    for node in plan.all_nodes():
        if node.cost_thunk is not None:
            node.cost = node.cost_thunk()
            node.cost_thunk = None
            stats["prebound"] += 1


def optimize(plan: Plan) -> Plan:
    """Apply all passes in order; records counters in ``plan.stats``."""
    stats = {"hoisted": 0, "fused": 0, "batched": 0, "prebound": 0,
             "nodes": 0}
    _hoist(plan, stats)
    plan.prologue = _batch(plan.prologue, stats)
    plan.prologue = _fuse_list(plan.prologue, stats)
    plan.steps = [_fuse_list(_batch(step, stats), stats)
                  for step in plan.steps]
    _fuse_cross_step(plan, stats)
    _prebind(plan, stats)
    stats["nodes"] = sum(1 for _ in plan.all_nodes())
    plan.stats = stats
    return plan
