"""Compiled pseudo-block orthogonalization (gmres / pgcrodr / gmresdr).

:class:`CompiledPseudoBlockOrthogonalizer` executes the exact numerics of
:class:`~repro.la.orthogonalization.PseudoBlockOrthogonalizer` — the two
share the uncharged ``_pb_*`` step cores — but replaces the interpreter's
per-call charge derivation with a pre-bound :class:`~repro.plan.ir.NodeCost`
per ``(scheme, j)``, cached across restarts, so the hot loop's ledger
accounting is a table replay.  Counts are bit-identical by construction;
the only data-dependent charge (the cgs2_1r cancellation guard's honest
re-norm) is a ``per_unit`` spec scaled by the core's reported column count.
"""

from __future__ import annotations

import numpy as np

from ..la.orthogonalization import (PseudoBlockOrthogonalizer,
                                    _apply_sketch_core, _pb_begin_sketched,
                                    _pb_step_cgs, _pb_step_cgs2_1r,
                                    _pb_step_mgs, _pb_step_sketched)
from ..util.ledger import Kernel
from .ir import NodeCost, flop_cost, per_unit_reduction, reduction_cost

__all__ = ["CompiledPseudoBlockOrthogonalizer",
           "make_pseudo_block_orthogonalizer"]


class CompiledPseudoBlockOrthogonalizer(PseudoBlockOrthogonalizer):
    """Same contract as the interpreting parent; charges via bound tables."""

    def __init__(self, scheme: str, *, n: int, p: int, dtype,
                 max_cols: int, seed: int = 0):
        super().__init__(scheme, n=n, p=p, dtype=dtype, max_cols=max_cols,
                         seed=seed)
        self._step_costs: dict[int, NodeCost] = {}
        self._guard_cost = per_unit_reduction(8)

    # -- lowering-time charge formulas (the interpreter's, verbatim) -------

    def _bind_step(self, j: int) -> NodeCost:
        n, p = self.n, self.p
        itemsize = self.dtype.itemsize
        if self.scheme == "mgs":
            return (reduction_cost(p * itemsize, count=j + 1)
                    + flop_cost(Kernel.BLAS2, 4.0 * n * p * (j + 1))
                    + reduction_cost(p * 8))
        if self.scheme in ("cgs", "imgs", "cholqr2"):
            passes = 2 if self.scheme == "imgs" else 1
            return (reduction_cost((j + 1) * p * itemsize, count=passes)
                    + flop_cost(Kernel.BLAS3, 4.0 * (j + 1) * n * p * passes)
                    + reduction_cost(p * 8))
        if self.scheme == "cgs2_1r":
            return (reduction_cost(((j + 1) * p + p) * itemsize, count=2)
                    + flop_cost(Kernel.BLAS3,
                                (4.0 * (j + 1) * n * p + 2.0 * n * p) * 2))
        # sketched: the fused candidate reduction, then the sketch flops and
        # the projection flops in the interpreter's charge order (same
        # floating-point accumulation sequence for the BLAS3 counter)
        return (reduction_cost(self.s * p * itemsize)
                + flop_cost(Kernel.BLAS3,
                            2.0 * n * np.log2(max(n, 2)) * max(p, 1))
                + flop_cost(Kernel.BLAS3, 4.0 * (j + 1) * n * p))

    def _step_cost(self, j: int) -> NodeCost:
        cost = self._step_costs.get(j)
        if cost is None:
            cost = self._step_costs[j] = self._bind_step(j)
        return cost

    # -- the hot path ------------------------------------------------------

    def begin(self, v0: np.ndarray) -> None:
        if self.scheme != "sketched":
            return
        w0, n, p = v0.shape
        cost = (reduction_cost(self.s * w0 * p * self.dtype.itemsize)
                + flop_cost(Kernel.BLAS3,
                            2.0 * n * np.log2(max(n, 2)) * max(w0 * p, 1))
                + flop_cost(Kernel.QR, 4.0 * self.s * w0**2 * p))
        sv = _apply_sketch_core(v0.transpose(1, 0, 2).reshape(n, w0 * p),
                                self.s, self.seed).reshape(self.s, w0, p)
        self._qs, self._t0 = _pb_begin_sketched(sv, self._max_cols,
                                                self.dtype)
        cost.charge()
        self._cols = w0
        self._pending = None

    def step(self, basis: np.ndarray, w: np.ndarray, j: int
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        cost = self._step_cost(j)
        if self.scheme == "mgs":
            w2, dots, nrm = _pb_step_mgs(basis, w)
            cost.charge()
            return w2, dots, nrm
        if self.scheme in ("cgs", "imgs", "cholqr2"):
            w2, dots, nrm = _pb_step_cgs(basis, w,
                                         iterated=self.scheme == "imgs")
            cost.charge()
            return w2, dots, nrm
        if self.scheme == "cgs2_1r":
            w2, dots, nrm, nbad = _pb_step_cgs2_1r(basis, w)
            cost.charge()
            if nbad:
                self._guard_cost.charge(units=nbad)
            return w2, dots, nrm
        sw = _apply_sketch_core(w, self.s, self.seed)
        w2, y, nrm, rs = _pb_step_sketched(self._qs[:j + 1], self._t0,
                                           basis, w, sw)
        cost.charge()
        self._pending = (rs, nrm)
        return w2, y, nrm


def make_pseudo_block_orthogonalizer(scheme: str, *, plan: str = "interpret",
                                     n: int, p: int, dtype, max_cols: int,
                                     seed: int = 0
                                     ) -> PseudoBlockOrthogonalizer:
    """Factory: the interpreting orthogonalizer, or its compiled twin."""
    cls = (CompiledPseudoBlockOrthogonalizer if plan == "compiled"
           else PseudoBlockOrthogonalizer)
    return cls(scheme, n=n, p=p, dtype=dtype, max_cols=max_cols, seed=seed)
