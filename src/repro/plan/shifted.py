"""Compiled-plan lowering of the shifted-family post-cycle update.

The family engine's hot path has two halves: the shared block-Arnoldi
cycle (lowered by :mod:`repro.plan.block_cycle`, unchanged — shift
invariance means the cycle never sees the shifts) and the post-cycle
family update — per-shift least-squares solves on ``H-bar + sigma E-bar``
(or the whitened augmented problem of the unprojected recycled variant),
the solution update, and the stacked restart residual.  This module
lowers that second half.

Node bodies call the silent math cores on the shared
:class:`~repro.krylov.shifted.FamilyUpdateCtx`, so iterates are
bit-identical to the interpreter by construction; every ledger charge is
pre-bound from :func:`~repro.krylov.shifted.family_update_charges` — the
same formula list the interpreter replays — so ``counts()`` is
bit-identical too.  Per the plan-ledger lint rule, nothing here touches
the ledger's charging surface directly.
"""

from __future__ import annotations

from ..trace import tracer as trace
from ..util import ledger
from .ir import NodeCost, PlanNode, ZERO_COST, flop_cost, reduction_cost, \
    run_nodes

__all__ = ["lower_family_update", "compiled_family_update"]


def _cost(pairs) -> NodeCost:
    total = ZERO_COST
    for kernel, count in pairs:
        total = total + flop_cost(kernel, count)
    return total


def lower_family_update(ctx) -> list[PlanNode]:
    """Lower one family update into pre-bound plan nodes.

    The node stream mirrors the interpreter's steps one-to-one; the
    ``ls`` phase runs inside the ``least_squares`` span, the ``tail``
    phase (stacked residual + fused norm) after it.
    """
    flops, reductions = ctx.charges()
    k = ctx.nshifts
    nodes: list[PlanNode] = []
    if ctx.kr:
        nodes.append(PlanNode(
            "family_gram", f"gram[C|U]^H[U|V] kr={ctx.kr}", "ls",
            run=lambda c: c.run_gram(),
            cost=_cost(flops[:1]) + reduction_cost(reductions[0])))
        nodes.append(PlanNode(
            "family_metric", "chol(W^H W)", "ls",
            run=lambda c: c.run_metric(),
            cost=_cost(flops[1:2])))
        nodes.append(PlanNode(
            "family_ls", f"augmented-ls x{k}", "ls",
            run=lambda c: c.run_recycled_ls(),
            cost=_cost(flops[2:5])))
    else:
        nodes.append(PlanNode(
            "family_ls", f"shifted-hessenberg-ls x{k}", "ls",
            run=lambda c: c.run_shared_ls(),
            cost=_cost(flops[:4])))
    # the stacked SpMM inside run_residual charges through the operator
    # itself (opaque, like the cycle's SpMM slot); the node cost carries
    # only the column-wise sigma_i x_i correction
    nodes.append(PlanNode(
        "family_residual", f"restart-residual x{k}", "tail",
        run=lambda c: c.run_residual(),
        cost=_cost(flops[-1:])))
    nodes.append(PlanNode(
        "family_norms", "fused-residual-norms", "tail",
        run=lambda c: c.run_norms(),
        cost=reduction_cost(reductions[-1])))
    return nodes


def compiled_family_update(ctx) -> None:
    """Execute the lowered family update (bit-identical to interpret)."""
    led = ledger.current()
    tr = trace.current()
    nodes = lower_family_update(ctx)
    ls_nodes = [n for n in nodes if n.phase == "ls"]
    tail_nodes = [n for n in nodes if n.phase == "tail"]
    with tr.span("least_squares", shifts=ctx.nshifts, recycled=bool(ctx.kr)):
        run_nodes(ls_nodes, ctx, led)
    run_nodes(tail_nodes, ctx, led)
