"""Execution-plan IR: nodes, pre-bound costs, and the node runner.

The plan layer lowers the solver hot path (one block-Arnoldi cycle, or one
pseudo-block orthogonalization step) into a flat stream of primitive
:class:`PlanNode` objects — SpMM, stacked-Gram, project, normalize,
small-GEMM, AXPY, allreduce — each carrying a **pre-bound** ledger charge.

Pre-binding is the point: the interpreted kernels in ``la/`` and
``distla/`` re-derive their :class:`~repro.util.ledger.CostLedger` charges
on every call from the operand shapes; a compiled plan evaluates those same
formulas once at lowering time into :class:`NodeCost` tables
(:class:`~repro.util.ledger.CostTable` bundles), so executing a node charges
the ledger with an O(1) table replay.  Charge totals are **identical by
construction** to what the interpreter derives — the conservation tests and
the ``plan-equivalence`` CI stage pin that bit-for-bit.

This module is the *only* place in ``repro.plan`` allowed to touch the
ledger's charging surface (``flop``/``reduction``/``p2p``/``event``);
``scripts/lint_repro.py`` enforces that node bodies charge exclusively
through their pre-bound :class:`NodeCost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..util import ledger
from ..util.ledger import CostLedger, CostTable

__all__ = [
    "ChargeSpec",
    "NodeCost",
    "PlanNode",
    "Plan",
    "ZERO_COST",
    "flop_cost",
    "reduction_cost",
    "event_cost",
    "per_unit_reduction",
    "run_nodes",
]


@dataclass(frozen=True)
class ChargeSpec:
    """One :class:`CostTable` replay bound to its charge-time parameters.

    ``per_unit`` marks a charge whose byte payload scales with a runtime
    count the node body reports (e.g. the honest re-norm of the cgs2_1r
    cancellation guard, whose reduction carries one scalar per affected
    column): the effective itemsize is ``itemsize * units``.
    """

    table: CostTable
    itemsize: int = 8
    p: int = 1
    kernel: str | None = None
    per_unit: bool = False

    def replay(self, led: CostLedger, units: int = 1) -> None:
        itemsize = self.itemsize * units if self.per_unit else self.itemsize
        self.table.charge(led, itemsize=itemsize, p=self.p,
                          kernel=self.kernel)


@dataclass(frozen=True)
class NodeCost:
    """Pre-bound charge bundle of one plan node (or one branch of it)."""

    specs: tuple[ChargeSpec, ...] = ()

    def charge(self, led: CostLedger | None = None, *, units: int = 1) -> None:
        led = led if led is not None else ledger.current()
        for spec in self.specs:
            spec.replay(led, units)

    def __add__(self, other: "NodeCost") -> "NodeCost":
        return NodeCost(self.specs + other.specs)

    @property
    def is_zero(self) -> bool:
        return not self.specs


ZERO_COST = NodeCost()


def flop_cost(kernel: str, count: float) -> NodeCost:
    """Pre-bound ``led.flop(kernel, count)``."""
    if not count:
        return ZERO_COST
    return NodeCost((ChargeSpec(CostTable(flops_per_col=float(count)),
                                kernel=kernel),))


def reduction_cost(nbytes: int, count: int = 1) -> NodeCost:
    """Pre-bound ``led.reduction(nbytes=nbytes, count=count)``."""
    if not count:
        return ZERO_COST
    return NodeCost((ChargeSpec(CostTable(reductions=count,
                                          reduction_items=1),
                                itemsize=int(nbytes)),))


def event_cost(name: str, count: int = 1) -> NodeCost:
    """Pre-bound ``led.event(name, count)``."""
    return NodeCost((ChargeSpec(CostTable(events_per_col=((name, count),))),))


def per_unit_reduction(itemsize: int = 8) -> NodeCost:
    """One reduction whose payload is ``itemsize`` bytes per reported unit."""
    return NodeCost((ChargeSpec(CostTable(reductions=1, reduction_items=1),
                                itemsize=itemsize, per_unit=True),))


@dataclass
class PlanNode:
    """One primitive of the lowered stream.

    ``run(ctx)`` performs the numerics and returns the charge outcome:
    ``None`` charges the static ``cost``; a branch name charges
    ``branches[name]``; a ``(name, units)`` pair charges ``branches[name]``
    scaled by ``units`` (per-unit specs only).  ``cost_thunk`` holds the
    lowering-time charge formula; the optimizer's pre-bind pass evaluates
    it once into ``cost`` so execution is a pure table lookup.

    ``phase`` drives trace-span placement so compiled execution closes
    spans at exactly the interpreter's boundaries: ``prologue`` (before the
    step loop), ``pre`` (inside ``arnoldi_step``, before ``ortho``),
    ``ortho`` (inside the ``ortho`` span), ``post`` (after ``ortho``,
    still inside ``arnoldi_step``), ``tail`` (after the ``arnoldi_step``
    span closes) and ``next`` (basis advance, deferred into the following
    step's ``pre`` phase by the cross-boundary fusion pass).
    """

    kind: str
    label: str
    phase: str
    run: Callable[[Any], Any] | None = None
    cost: NodeCost = ZERO_COST
    cost_thunk: Callable[[], NodeCost] | None = None
    branches: dict[str, NodeCost] = field(default_factory=dict)
    fusable: bool = False
    invariant_key: str | None = None
    batch_key: str | None = None

    def bound_cost(self) -> NodeCost:
        """The node's static cost, deriving it if not yet pre-bound."""
        if self.cost_thunk is not None:
            return self.cost_thunk()
        return self.cost

    @property
    def is_free(self) -> bool:
        """True when the node charges nothing on any path (safe to move
        across trace-span boundaries)."""
        return (self.cost_thunk is None and self.cost.is_zero
                and all(b.is_zero for b in self.branches.values()))


@dataclass
class Plan:
    """A lowered cycle: prologue nodes + one node list per Arnoldi step."""

    prologue: list[PlanNode] = field(default_factory=list)
    steps: list[list[PlanNode]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)

    def all_nodes(self):
        yield from self.prologue
        for step in self.steps:
            yield from step

    def total_cost(self) -> CostLedger:
        """Replay every node's static cost *and* every branch cost onto a
        scratch ledger — the conserved quantity the optimizer-pass tests
        compare before/after a transform."""
        led = CostLedger()
        for node in self.all_nodes():
            node.bound_cost().charge(led)
            for branch in node.branches.values():
                branch.charge(led)
        return led


def run_nodes(nodes: list[PlanNode], ctx: Any, led: CostLedger) -> None:
    """Execute a node list: run each body, replay its pre-bound charge."""
    for node in nodes:
        outcome = node.run(ctx) if node.run is not None else None
        if outcome is None:
            if node.cost_thunk is not None:   # un-prebound (unoptimized) plan
                node.cost_thunk().charge(led)
            else:
                node.cost.charge(led)
        elif isinstance(outcome, tuple):
            name, units = outcome
            node.branches[name].charge(led, units=units)
        else:
            node.branches[outcome].charge(led)
