"""Compiled block-Arnoldi cycle: lowering, optimization, execution.

``compiled_block_arnoldi_cycle`` is the ``-hpddm_plan compiled`` twin of
:func:`repro.krylov.cycle.block_arnoldi_cycle` for the low-synchronization
schemes (``cgs2_1r``, ``cholqr2``, ``sketched``).  The per-cycle loop is
lowered once into a flat stream of :class:`~repro.plan.ir.PlanNode`
primitives (SpMM, stacked-Gram, project, normalize, small-GEMM, allreduce),
the optimizer hoists / fuses / batches / pre-binds the stream, and the
executor replays it under the interpreter's exact trace-span boundaries.

The interpreter remains the oracle.  Three disciplines keep the compiled
path bit-identical in both iterates and ``CostLedger.counts()``:

* every node body computes the *same NumPy expression* the interpreted
  kernel computes, via the shared uncharged cores in
  ``la/orthogonalization.py`` — arena views substitute for the
  interpreter's freshly concatenated operands (bitwise-equal GEMMs), and
  every self-Gram materializes ``np.ascontiguousarray`` first so NumPy's
  syrk dispatch matches the interpreter's contiguous operand;
* node charges are the interpreter's formulas evaluated at lowering time
  into pre-bound tables; data-dependent paths (breakdown fallbacks,
  cancellation guards) are explicit branch outcomes with their own tables;
* the operator and preconditioner stay opaque callables that charge
  themselves (their costs are already table-driven in ``distla``), so the
  compiled cycle inherits their exec-mode-exact accounting.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..la.orthogonalization import (_apply_sketch_core, _chol_from_gram,
                                    _chol_normalize_core, _cholqr_rr_core,
                                    sketch_size)
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import column_norms
from .arena import BasisArena, SketchArena
from .ir import (Plan, PlanNode, ZERO_COST, event_cost, flop_cost,
                 reduction_cost, run_nodes)
from .optimize import optimize

__all__ = ["compiled_block_arnoldi_cycle", "lower_cycle"]


def _cycle_state(**kw):
    # CycleState lives in krylov.cycle, which imports this module lazily;
    # mirror the laziness to keep the import graph acyclic.
    from ..krylov.cycle import CycleState
    return CycleState(**kw)


class _Ctx:
    """Mutable execution context threaded through one cycle's nodes."""

    def __init__(self, *, op_apply, inner_m, v1, s1, ck, k, n, p, dtype,
                 tol, seed, identity_m, max_steps, steps):
        self.op_apply = op_apply
        self.inner_m = inner_m
        self.v1 = v1
        self.s1 = s1
        self.ck = ck if k else None
        self.k = k
        self.n, self.p = n, p
        self.dtype = dtype
        self.tol = tol
        self.seed = seed
        self.identity_m = identity_m
        self.max_steps = max_steps
        self.steps = steps
        self.arena: BasisArena | None = None
        self.qs_arena: SketchArena | None = None
        self.hqr = None
        self.z_blocks: list[np.ndarray] = []
        self.e_cols: list[np.ndarray] = []
        self.s = 0          # sketch dimension
        self.sck = None     # sketched C_k
        self.t0 = None      # sketch whitener
        self.e0 = None      # C_k^H v1 seed coefficients
        self.j = 0
        self.rank = p
        self.res = None


# ---------------------------------------------------------------------------
# node bodies (module-level so the lowered stream is closure-light; per-step
# shape data rides on ctx / default args)
# ---------------------------------------------------------------------------


def _run_ck_seed(ctx):
    e0 = np.asarray(ctx.ck).conj().T @ ctx.v1
    ctx.v1 = ctx.v1 - ctx.ck @ e0
    ctx.e0 = e0


def _run_scaffold(ctx):
    """Cycle-invariant setup: Hessenberg-QR scaffolding + arena bind.

    Idempotent — emitted once in the prologue and once per step (the hoist
    pass drops the step copies), so un-optimized plans still execute.
    """
    if ctx.hqr is None:
        from ..la.blockqr import BlockHessenbergQR
        ctx.hqr = BlockHessenbergQR(ctx.max_steps, ctx.p,
                                    np.asarray(ctx.s1, dtype=ctx.dtype),
                                    dtype=ctx.dtype)
    if ctx.arena.cols == 0:
        ctx.arena.bind(ctx.v1, ctx.ck if ctx.arena.k else None)


def _run_precond(ctx):
    vj = np.ascontiguousarray(ctx.arena.block(ctx.j))
    zj = vj if ctx.identity_m else \
        np.asarray(ctx.inner_m(vj)).astype(ctx.dtype, copy=False)
    ctx.z_blocks.append(zj)
    ctx.zj = zj


def _run_spmm_slot(ctx):
    ctx.arena.slot()[:] = ctx.op_apply(ctx.zj)


def _run_spmm_fresh(ctx):
    ctx.w = ctx.op_apply(ctx.zj)


def _p1_contig(x, p):
    """Bit-identity guard for the ``p == 1`` GEMV regime.

    At ``p == 1`` the stacked products are matrix-*vector* calls, and
    BLAS's trans-GEMV (the interpreter's F-contiguous transpose of a fresh
    ``np.concatenate``) and notrans-GEMV (NumPy's C-order copy of the
    arena's strided view) accumulate in different orders.  Materializing
    the contiguous layout reproduces the interpreter's kernel dispatch
    exactly.  At ``p > 1`` GEMM packing makes the strided view
    bit-identical (validated), so the zero-copy view is kept.
    """
    return np.ascontiguousarray(x) if p == 1 else x


def _run_gram1(ctx):
    g = _p1_contig(ctx.arena.stacked(), ctx.p).conj().T \
        @ _p1_contig(ctx.arena.slot(), ctx.p)
    c = ctx.arena.cols
    ctx.c1, ctx.wg0 = g[:c], g[c:]


def _run_project1(ctx):
    slot = ctx.arena.slot()
    np.subtract(slot, ctx.arena.basis() @ ctx.c1, out=slot)


def _run_gram2(ctx):
    g = _p1_contig(ctx.arena.stacked(), ctx.p).conj().T \
        @ _p1_contig(ctx.arena.slot(), ctx.p)
    c = ctx.arena.cols
    ctx.c2, ctx.wg1 = g[:c], g[c:]


def _run_project2(ctx):
    slot = ctx.arena.slot()
    np.subtract(slot, ctx.arena.basis() @ ctx.c2, out=slot)


def _run_downdate_cgs2(ctx):
    wgram = ctx.wg1 - ctx.c2.conj().T @ ctx.c2
    wgram = 0.5 * (wgram + wgram.conj().T)
    d, d1 = np.diag(wgram).real, np.diag(ctx.wg1).real
    out = "ok"
    if np.any(d < 0.25 * d1) or np.any(d < 0.0):
        w2c = np.ascontiguousarray(ctx.arena.slot())
        wgram = w2c.conj().T @ w2c
        out = "recompute"
    ctx.wgram = wgram
    ctx.scale = float(np.sqrt(max(np.max(np.diag(ctx.wg0).real,
                                         initial=0.0), 0.0)))
    coeffs = ctx.c1 + ctx.c2
    ctx.e_col = coeffs[:ctx.k] if ctx.k else None
    ctx.h = coeffs[ctx.k:]
    return out


def _run_normalize_cgs2(ctx):
    slot = ctx.arena.slot()
    d = np.diag(ctx.wgram).real
    floor = max(ctx.tol * ctx.scale, np.finfo(float).tiny) ** 2
    try:
        if np.any(d <= floor):
            raise np.linalg.LinAlgError
        q, r = _chol_normalize_core(slot, ctx.wgram, shift=False)
        rank = ctx.p
        out = "chol"
    except np.linalg.LinAlgError:
        q, r, rank = _cholqr_rr_core(np.ascontiguousarray(slot),
                                     tol=ctx.tol, scale=ctx.scale)
        out = "rr" if rank else "rr0"
    slot[:] = q
    ctx.s_fac, ctx.rank = r, rank
    if ctx.k:
        ctx.e_cols.append(ctx.e_col)
    return out


def _run_downdate_cholqr2(ctx):
    g1 = ctx.wg0 - ctx.c1.conj().T @ ctx.c1
    ctx.g1 = 0.5 * (g1 + g1.conj().T)
    ctx.d0 = np.diag(ctx.wg0).real
    ctx.scale = float(np.sqrt(max(np.max(ctx.d0, initial=0.0), 0.0)))
    ctx.e_col = ctx.c1[:ctx.k] if ctx.k else None
    ctx.h = ctx.c1[ctx.k:]


def _run_normalize_cholqr2(ctx):
    slot = ctx.arena.slot()
    d = np.diag(ctx.g1).real
    floor = max(ctx.tol * ctx.scale, np.finfo(float).tiny) ** 2
    stage = "pre"
    try:
        if np.any(d <= floor) or np.any(d < 1e-10 * np.maximum(ctx.d0,
                                                               floor)):
            raise np.linalg.LinAlgError
        q1, r1 = _chol_normalize_core(slot, ctx.g1, shift=True)
        stage = "chol1"
        gq = q1.conj().T @ q1
        q, r2 = _chol_from_gram(q1, gq)        # reduction 2: the "2"
        r, rank = r2 @ r1, ctx.p
        out = "chol2"
    except np.linalg.LinAlgError:
        q, r, rank = _cholqr_rr_core(np.ascontiguousarray(slot),
                                     tol=ctx.tol, scale=ctx.scale)
        if stage == "pre":
            out = "rr" if rank else "rr0"
        else:
            out = "chol2f_rr" if rank else "chol2f_rr0"
    slot[:] = q
    ctx.s_fac, ctx.rank = r, rank
    if ctx.k:
        ctx.e_cols.append(ctx.e_col)
    return out


def _run_sketch_ck(ctx):
    ctx.sck = _apply_sketch_core(ctx.ck, ctx.s, ctx.seed)


def _run_sketch_v1(ctx):
    ctx.sv = _apply_sketch_core(np.concatenate([ctx.v1], axis=1), ctx.s,
                                ctx.seed)


def _run_sketch_whiten(ctx):
    qs, t0 = np.linalg.qr(ctx.sv)
    ctx.t0 = t0
    ctx.qs_arena.seed(qs)
    del ctx.sv


def _run_sketch_w(ctx):
    ctx.sw = _apply_sketch_core(ctx.w, ctx.s, ctx.seed)
    ctx.scale_s = float(np.max(column_norms(ctx.sw), initial=0.0))


def _run_sketch_ck_project(ctx):
    e_col = ctx.ck.conj().T @ ctx.w
    ctx.w = ctx.w - ctx.ck @ e_col
    ctx.sw = ctx.sw - ctx.sck @ e_col
    ctx.e_cols.append(e_col)


def _run_sketch_coeffs(ctx):
    qs = _p1_contig(ctx.qs_arena.view(), ctx.p)
    c = qs.conj().T @ ctx.sw
    y = c.copy()
    w0 = ctx.t0.shape[0]
    if w0:
        y[:w0] = sla.solve_triangular(ctx.t0, c[:w0])
    ctx.c_sk, ctx.y = c, y


def _run_sketch_project(ctx):
    basis = ctx.arena.basis()
    if basis.shape[1] != ctx.qs_arena.cols:
        raise ValueError(
            f"sketched engine state holds {ctx.qs_arena.cols} basis "
            f"columns but step received {basis.shape[1]}; the engine "
            "must see every appended block (begin + successive steps)")
    ctx.w2 = ctx.w - basis @ ctx.y


def _run_sketch_residual(ctx):
    rs = ctx.sw - ctx.qs_arena.view() @ ctx.c_sk
    qn, rfac = np.linalg.qr(rs)
    d = np.abs(np.diag(rfac))
    ref = max(ctx.scale_s, np.finfo(float).tiny)
    ctx.sk_rank = int(np.count_nonzero(d > ctx.tol * ref))
    ctx.qn, ctx.rfac = qn, rfac


def _run_sketch_finish(ctx):
    slot = ctx.arena.slot()
    ctx.h = ctx.y
    if ctx.sk_rank < ctx.p:
        # breakdown: exact rank-revealing fallback, as the interpreter
        scale = float(np.max(column_norms(ctx.w), initial=0.0))
        q, r, rank = _cholqr_rr_core(ctx.w2, tol=ctx.tol, scale=scale)
        slot[:] = q
        ctx.s_fac, ctx.rank = r, rank
        return "bd_rr" if rank else "bd_rr0"
    q = sla.solve_triangular(ctx.rfac.T, ctx.w2.T, lower=True).T
    slot[:] = q
    ctx.qs_arena.append(ctx.qn)
    ctx.s_fac, ctx.rank = ctx.rfac, ctx.sk_rank
    return "norm"


def _run_hqr(ctx):
    h_col = np.concatenate([ctx.h, ctx.s_fac], axis=0)
    ctx.res = ctx.hqr.add_column(h_col, charge=False)


def _run_advance(ctx):
    ctx.arena.advance()


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


def _rr_cost(n: int, p: int, itemsize: int, rank_nonzero: bool):
    """Pre-bound charge of ``cholqr_rr`` on an n x p block."""
    cost = (flop_cost(Kernel.BLAS3, 2.0 * n * p * p)
            + reduction_cost(p * p * itemsize)
            + flop_cost(Kernel.EIG, 9.0 * p**3))
    if rank_nonzero:
        cost = cost + flop_cost(Kernel.BLAS3, 2.0 * n * p * p)
    return cost


def lower_cycle(*, ortho: str, n: int, p: int, k: int, steps: int,
                max_steps: int, dtype, sck_s: int = 0) -> Plan:
    """Lower one block-Arnoldi cycle to a plan (un-optimized).

    ``sck_s`` (sketched scheme only) is the sketch dimension of a
    *pre-sketched* recycled space carried by the sketched recycler: the
    prologue then fuses the ``C_k^H v1`` seed projection with the ``S v1``
    assembly into ONE reduction and skips the ``S C_k`` sketch entirely,
    mirroring the interpreter's ``begin_recycled`` path.
    """
    itemsize = np.dtype(dtype).itemsize
    plan = Plan(meta={"ortho": ortho, "n": n, "p": p, "k": k,
                      "steps": steps, "sck_s": sck_s})

    recycled_sketch = bool(sck_s and k and ortho == "sketched")
    if k and not recycled_sketch:
        plan.prologue.append(PlanNode(
            kind="project", label="ck_seed_project", phase="prologue",
            run=_run_ck_seed,
            cost=flop_cost(Kernel.BLAS3, 4.0 * n * k * p)
            + reduction_cost(k * p * itemsize)))
    if ortho == "sketched":
        s = sck_s if recycled_sketch \
            else sketch_size(n, (max_steps + 1) * p + k)
        log_n = np.log2(max(n, 2))
        if recycled_sketch:
            # sketched recycling: S C_k is maintained across cycles, so the
            # seed projection and the S v1 assembly share ONE fused
            # reduction (the interpreter's begin_recycled charge)
            plan.prologue.append(PlanNode(
                kind="project", label="ck_seed_project", phase="prologue",
                run=_run_ck_seed,
                cost=flop_cost(Kernel.BLAS3, 4.0 * n * k * p)
                + reduction_cost((s + k) * p * itemsize)))
        else:
            plan.prologue.append(PlanNode(
                kind="allreduce", label="sketch_setup_assemble",
                phase="prologue",
                cost=reduction_cost(s * (p + k) * itemsize)))
            if k:
                plan.prologue.append(PlanNode(
                    kind="sketch", label="sketch_ck", phase="prologue",
                    run=_run_sketch_ck, batch_key="sketch_setup",
                    cost=flop_cost(Kernel.BLAS3, 2.0 * n * log_n * k)))
        plan.prologue.append(PlanNode(
            kind="sketch", label="sketch_v1", phase="prologue",
            run=_run_sketch_v1, batch_key="sketch_setup",
            cost=flop_cost(Kernel.BLAS3, 2.0 * n * log_n * p)))
        plan.prologue.append(PlanNode(
            kind="small_qr", label="sketch_whiten", phase="prologue",
            run=_run_sketch_whiten,
            cost=flop_cost(Kernel.QR, 4.0 * s * p**2)))
    plan.prologue.append(PlanNode(
        kind="setup", label="scaffold", phase="prologue",
        run=_run_scaffold, invariant_key="cycle_scaffold"))

    if ortho == "sketched":
        for j in range(steps):
            plan.steps.append(_lower_step_sketched(
                j, n=n, p=p, k=k, itemsize=itemsize, s=s))
    else:
        lower_step = {"cgs2_1r": _lower_step_cgs2_1r,
                      "cholqr2": _lower_step_cholqr2}[ortho]
        for j in range(steps):
            plan.steps.append(lower_step(j, n=n, p=p, k=k,
                                         itemsize=itemsize))
    return plan


def _pre_nodes(j: int, *, sketched: bool) -> list[PlanNode]:
    return [
        PlanNode(kind="setup", label="scaffold", phase="pre",
                 run=_run_scaffold, invariant_key="cycle_scaffold"),
        PlanNode(kind="precond", label=f"precond[{j}]", phase="pre",
                 run=_run_precond, fusable=True),
        PlanNode(kind="spmm", label=f"spmm[{j}]", phase="pre",
                 run=_run_spmm_fresh if sketched else _run_spmm_slot,
                 fusable=True),
    ]


def _post_nodes(j: int, *, p: int) -> list[PlanNode]:
    return [
        PlanNode(kind="small_gemm", label=f"hqr[{j}]", phase="post",
                 run=_run_hqr,
                 cost_thunk=lambda j=j, p=p:
                 flop_cost(Kernel.BLAS3, 2.0 * (2 * p) ** 2 * p * (j + 1))
                 + flop_cost(Kernel.QR, 16.0 * p**3)),
        PlanNode(kind="event", label=f"step_event[{j}]", phase="tail",
                 cost=event_cost("arnoldi_step")),
        PlanNode(kind="advance", label=f"advance[{j}]", phase="next",
                 run=_run_advance, fusable=True),
    ]


def _lower_step_cgs2_1r(j: int, *, n: int, p: int, k: int,
                        itemsize: int) -> list[PlanNode]:
    cols = k + (j + 1) * p
    gram_cost = lambda cols=cols: (
        flop_cost(Kernel.BLAS3, 2.0 * n * (cols + p) * p)
        + reduction_cost((cols + p) * p * itemsize))
    proj_cost = lambda cols=cols: flop_cost(Kernel.BLAS3, 2.0 * n * cols * p)
    rr = _rr_cost(n, p, itemsize, True)
    rr0 = _rr_cost(n, p, itemsize, False)
    nodes = _pre_nodes(j, sketched=False)
    nodes += [
        PlanNode(kind="stacked_gram", label=f"gram1[{j}]", phase="ortho",
                 run=_run_gram1, cost_thunk=gram_cost, fusable=True),
        PlanNode(kind="project", label=f"project1[{j}]", phase="ortho",
                 run=_run_project1, cost_thunk=proj_cost, fusable=True),
        PlanNode(kind="stacked_gram", label=f"gram2[{j}]", phase="ortho",
                 run=_run_gram2, cost_thunk=gram_cost, fusable=True),
        PlanNode(kind="project", label=f"project2[{j}]", phase="ortho",
                 run=_run_project2, cost_thunk=proj_cost, fusable=True),
        PlanNode(kind="small_gemm", label=f"downdate[{j}]", phase="ortho",
                 run=_run_downdate_cgs2,
                 branches={"ok": ZERO_COST,
                           "recompute":
                           flop_cost(Kernel.BLAS3, 2.0 * n * p * p)
                           + reduction_cost(p * p * itemsize)}),
        PlanNode(kind="normalize", label=f"normalize[{j}]", phase="ortho",
                 run=_run_normalize_cgs2,
                 branches={"chol":
                           flop_cost(Kernel.FACTORIZATION, p**3 / 3.0)
                           + flop_cost(Kernel.BLAS3, 1.0 * n * p**2),
                           "rr": rr, "rr0": rr0}),
    ]
    return nodes + _post_nodes(j, p=p)


def _lower_step_cholqr2(j: int, *, n: int, p: int, k: int,
                        itemsize: int) -> list[PlanNode]:
    cols = k + (j + 1) * p
    gram_pp = (flop_cost(Kernel.BLAS3, 2.0 * n * p * p)
               + reduction_cost(p * p * itemsize))
    chol1 = (flop_cost(Kernel.FACTORIZATION, p**3 / 3.0)
             + flop_cost(Kernel.BLAS3, 1.0 * n * p**2))
    rr = _rr_cost(n, p, itemsize, True)
    rr0 = _rr_cost(n, p, itemsize, False)
    nodes = _pre_nodes(j, sketched=False)
    nodes += [
        PlanNode(kind="stacked_gram", label=f"gram1[{j}]", phase="ortho",
                 run=_run_gram1,
                 cost_thunk=lambda cols=cols: (
                     flop_cost(Kernel.BLAS3, 2.0 * n * (cols + p) * p)
                     + reduction_cost((cols + p) * p * itemsize)),
                 fusable=True),
        PlanNode(kind="project", label=f"project1[{j}]", phase="ortho",
                 run=_run_project1,
                 cost_thunk=lambda cols=cols:
                 flop_cost(Kernel.BLAS3, 2.0 * n * cols * p),
                 fusable=True),
        PlanNode(kind="small_gemm", label=f"downdate[{j}]", phase="ortho",
                 run=_run_downdate_cholqr2, fusable=True),
        PlanNode(kind="normalize", label=f"normalize[{j}]", phase="ortho",
                 run=_run_normalize_cholqr2,
                 branches={"chol2": chol1 + gram_pp
                           + flop_cost(Kernel.BLAS3, 1.0 * n * p**2),
                           "rr": rr, "rr0": rr0,
                           "chol2f_rr": chol1 + gram_pp + rr,
                           "chol2f_rr0": chol1 + gram_pp + rr0}),
    ]
    return nodes + _post_nodes(j, p=p)


def _lower_step_sketched(j: int, *, n: int, p: int, k: int,
                         itemsize: int, s: int) -> list[PlanNode]:
    log_n = np.log2(max(n, 2))
    rr = _rr_cost(n, p, itemsize, True)
    rr0 = _rr_cost(n, p, itemsize, False)
    nodes = _pre_nodes(j, sketched=True)
    # ONE fused step reduction: the sketched candidate stacked with the
    # exact C_k^H w payload
    nodes.append(PlanNode(
        kind="sketch", label=f"sketch[{j}]", phase="ortho",
        run=_run_sketch_w,
        cost_thunk=lambda: (
            reduction_cost((s + k) * p * itemsize)
            + flop_cost(Kernel.BLAS3, 2.0 * n * log_n * p))))
    if k:
        nodes.append(PlanNode(
            kind="project", label=f"ck_project[{j}]", phase="ortho",
            run=_run_sketch_ck_project,
            cost_thunk=lambda: flop_cost(Kernel.BLAS3, 4.0 * n * k * p)))
    nodes += [
        PlanNode(kind="small_gemm", label=f"sk_coeffs[{j}]", phase="ortho",
                 run=_run_sketch_coeffs, fusable=True),
        PlanNode(kind="project", label=f"sk_project[{j}]", phase="ortho",
                 run=_run_sketch_project,
                 cost_thunk=lambda j=j:
                 flop_cost(Kernel.BLAS3, 2.0 * n * (j + 1) * p * p),
                 fusable=True),
        PlanNode(kind="small_qr", label=f"sk_residual[{j}]", phase="ortho",
                 run=_run_sketch_residual,
                 cost_thunk=lambda: flop_cost(Kernel.QR, 4.0 * s * p**2),
                 fusable=True),
        PlanNode(kind="normalize", label=f"sk_finish[{j}]", phase="ortho",
                 run=_run_sketch_finish,
                 branches={"norm":
                           flop_cost(Kernel.BLAS3, 1.0 * n * p**2),
                           "bd_rr": reduction_cost(p * 8) + rr,
                           "bd_rr0": reduction_cost(p * 8) + rr0}),
    ]
    return nodes + _post_nodes(j, p=p)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

_PHASES = ("pre", "ortho", "post", "tail", "next")


def _split_phases(nodes: list[PlanNode]) -> dict[str, list[PlanNode]]:
    groups: dict[str, list[PlanNode]] = {ph: [] for ph in _PHASES}
    for node in nodes:
        groups[node.phase].append(node)
    return groups


def compiled_block_arnoldi_cycle(op_apply, inner_m, v1, s1, *,
                                 max_steps: int,
                                 ck: np.ndarray | None = None,
                                 ortho: str = "cgs2_1r",
                                 qr_scheme: str = "cholqr",
                                 deflation_tol: float = 1e-12,
                                 targets: np.ndarray | None = None,
                                 history=None,
                                 identity_m: bool = False,
                                 iteration_budget: int | None = None,
                                 sck: np.ndarray | None = None):
    """Plan-compiled twin of ``block_arnoldi_cycle`` (low-sync schemes).

    Same signature and contract; ``qr_scheme`` is accepted for symmetry but
    unused (the low-sync engines carry their own normalizers, exactly as in
    the interpreter).  ``sck`` is the pre-sketched recycled space of
    ``recycle_space="sketched"`` (see the interpreter's docstring).  The
    returned :class:`CycleState` additionally carries ``plan_stats``
    (optimizer counters).
    """
    del qr_scheme
    dtype = v1.dtype
    n, p = v1.shape
    k = ck.shape[1] if ck is not None else 0
    led = ledger.current()
    tr = trace.current()
    recycled_sketch = sck is not None and k and ortho == "sketched"

    steps = max_steps
    if iteration_budget is not None:
        steps = min(steps, max(iteration_budget, 0))

    ctx = _Ctx(op_apply=op_apply, inner_m=inner_m, v1=v1,
               s1=s1, ck=ck, k=k, n=n, p=p, dtype=dtype,
               tol=deflation_tol, seed=0, identity_m=identity_m,
               max_steps=max_steps, steps=steps)
    arena_k = k if ortho != "sketched" else 0
    ctx.arena = BasisArena(n, p, arena_k, steps, dtype)
    if ortho == "sketched":
        ctx.s = int(sck.shape[0]) if recycled_sketch \
            else sketch_size(n, (max_steps + 1) * p + k)
        ctx.qs_arena = SketchArena(ctx.s, (steps + 1) * p, dtype)
        if recycled_sketch:
            ctx.sck = sck

    plan = optimize(lower_cycle(ortho=ortho, n=n, p=p, k=k, steps=steps,
                                max_steps=max_steps, dtype=dtype,
                                sck_s=ctx.s if recycled_sketch else 0))
    phased = [_split_phases(step) for step in plan.steps]

    run_nodes(plan.prologue, ctx, led)
    breakdown = False
    converged_early = False
    steps_taken = 0
    for j in range(steps):
        ctx.j = j
        groups = phased[j]
        with tr.span("arnoldi_step", j=j):
            run_nodes(groups["pre"], ctx, led)
            with tr.span("ortho", scheme=ortho):
                run_nodes(groups["ortho"], ctx, led)
            run_nodes(groups["post"], ctx, led)
            steps_taken = j + 1
        if history is not None:
            history.append(ctx.res)
        run_nodes(groups["tail"], ctx, led)
        if ctx.rank < p:
            breakdown = True
            break
        run_nodes(groups["next"], ctx, led)
        if targets is not None and np.all(ctx.res <= targets):
            converged_early = True
            break

    nblocks = steps_taken + (0 if breakdown else 1)
    state = _cycle_state(
        v_blocks=[ctx.arena.block(i) for i in range(nblocks)],
        z_blocks=ctx.z_blocks, hqr=ctx.hqr, e_cols=ctx.e_cols,
        steps=steps_taken, breakdown=breakdown,
        converged_early=converged_early, e0=ctx.e0)
    if ortho == "sketched":
        # same state surface the interpreter's engine exports, so the
        # sketched recycling machinery works identically under both plans
        from ..la.orthogonalization import SketchState
        state.sketch = SketchState(s=ctx.s, seed=ctx.seed,
                                   qs=ctx.qs_arena.view(), t0=ctx.t0,
                                   sck=ctx.sck)
    state.plan_stats = dict(plan.stats)
    return state
