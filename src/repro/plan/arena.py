"""Single-allocation basis arenas for the compiled hot path.

The interpreted cycle stores the Krylov basis as a Python list of per-step
blocks and re-materializes the stacked basis with ``np.concatenate`` /
``np.column_stack`` on every orthogonalization step — an O(n·cols) copy per
step that dominates wall-clock once the charged kernels are cheap table
replays.  The arenas here preallocate one slab for the whole cycle and
hand out *views*: advancing a step is a pointer bump, and the stacked
basis is a zero-copy slice.

Bitwise parity caveat: NumPy dispatches BLAS ``syrk`` for a detected
self-product ``x.conj().T @ x`` only when ``x`` is one contiguous array,
so a self-gram taken on a strided slab view can differ in the last ulp
from the interpreter's (which grams a fresh contiguous block).  Every
self-product site in the compiled path must therefore materialize
``np.ascontiguousarray`` of the p-column block first; plain GEMMs
(``A.conj().T @ B`` with distinct operands, ``A @ C``) are bit-identical
on strided views and need no copy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BasisArena",
    "SketchArena",
    "AugmentedTensorArena",
    "TransposedBasisArena",
]


class BasisArena:
    """Preallocated ``n x (k + (max_steps+1)p + p)`` slab for V (+ ck).

    Column layout: ``[ck | V_0 | V_1 | ... | slot]`` where ``cols`` counts
    the committed columns (including the k recycle columns) and ``slot``
    is the p-column scratch region the step under construction writes into.
    """

    def __init__(self, n: int, p: int, k: int, max_steps: int,
                 dtype: np.dtype) -> None:
        self.n = n
        self.p = p
        self.k = k
        self.slab = np.zeros((n, k + (max_steps + 1) * p + p), dtype=dtype,
                             order="C")
        self.cols = 0

    def bind(self, v1: np.ndarray, ck: np.ndarray | None) -> None:
        """Copy the starting block (and recycle basis) into the slab."""
        if ck is not None:
            self.slab[:, :self.k] = ck
            self.cols = self.k
        self.slab[:, self.cols:self.cols + self.p] = v1
        self.cols += self.p

    def basis(self) -> np.ndarray:
        """View of the committed columns ``[ck | V_0..V_{j}]``."""
        return self.slab[:, :self.cols]

    def stacked(self) -> np.ndarray:
        """View of committed columns plus the in-flight slot."""
        return self.slab[:, :self.cols + self.p]

    def slot(self) -> np.ndarray:
        """The p-column scratch block of the step under construction."""
        return self.slab[:, self.cols:self.cols + self.p]

    def advance(self) -> None:
        """Commit the slot as the next basis block (pointer bump only)."""
        self.cols += self.p

    def block(self, j: int) -> np.ndarray:
        """View of committed block ``V_j`` (past the k recycle columns)."""
        lo = self.k + j * self.p
        return self.slab[:, lo:lo + self.p]

    def v_blocks(self, nblocks: int) -> list[np.ndarray]:
        return [self.block(j) for j in range(nblocks)]


class SketchArena:
    """Preallocated ``s x max_cols`` slab for the sketched basis Q_s."""

    def __init__(self, s: int, max_cols: int, dtype: np.dtype) -> None:
        self.slab = np.zeros((s, max_cols), dtype=dtype, order="C")
        self.cols = 0

    def seed(self, qs: np.ndarray) -> None:
        self.slab[:, :qs.shape[1]] = qs
        self.cols = qs.shape[1]

    def view(self) -> np.ndarray:
        return self.slab[:, :self.cols]

    def append(self, qn: np.ndarray) -> None:
        self.slab[:, self.cols:self.cols + qn.shape[1]] = qn
        self.cols += qn.shape[1]


class AugmentedTensorArena:
    """Preallocated ``(kmax + steps + 1, n, p)`` tensor ``[C_k | V]``.

    Replaces pgcrodr's per-step ``np.concatenate([ck_blocks, v[:j+1]])``
    (an O(n·cols) copy every step) with a prefix view of one tensor.
    """

    def __init__(self, kmax: int, steps: int, n: int, p: int,
                 dtype: np.dtype) -> None:
        self.kmax = kmax
        self.aug = np.zeros((kmax + steps + 1, n, p), dtype=dtype)

    @property
    def ck(self) -> np.ndarray:
        return self.aug[:self.kmax]

    @property
    def v(self) -> np.ndarray:
        return self.aug[self.kmax:]

    def stacked(self, j: int) -> np.ndarray:
        """View ``[C_k | V_0..V_j]`` for the step-``j`` projection."""
        return self.aug[:self.kmax + j + 1]


class TransposedBasisArena:
    """Preallocated ``(max_cols, n, 1)`` transposed basis for GMRES-DR.

    GMRES-DR's interpreted loop re-transposes the basis every step
    (``np.ascontiguousarray(v[:, :j+1].T)[:, :, np.newaxis]``); here each
    committed column is written once and ``prefix(j)`` is a view.
    """

    def __init__(self, max_cols: int, n: int, dtype: np.dtype) -> None:
        self.vt = np.zeros((max_cols, n, 1), dtype=dtype)
        self.cols = 0

    def seed(self, v: np.ndarray, count: int) -> None:
        """Load the first ``count`` columns of ``v`` (n x cols)."""
        self.vt[:count, :, 0] = v[:, :count].T
        self.cols = count

    def append(self, col: np.ndarray) -> None:
        self.vt[self.cols, :, 0] = col
        self.cols += 1

    def prefix(self, j: int) -> np.ndarray:
        """View of columns ``0..j`` as a ``(j+1, n, 1)`` tensor."""
        return self.vt[:j + 1]
