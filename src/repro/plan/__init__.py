"""Execution-plan compiler for the Krylov hot path (``-hpddm_plan``).

Lowers the solver inner loops — the block-Arnoldi cycle and the
pseudo-block per-step orthogonalization — into flat streams of primitive
:class:`~repro.plan.ir.PlanNode` objects with **pre-bound** ledger
charges, optimizes the stream (hoist cycle-invariant setup, fuse adjacent
nodes across step boundaries, batch independent small GEMMs), and
executes it over single-allocation basis arenas.

The interpreter remains the oracle: compiled execution must produce
bit-identical :meth:`~repro.util.ledger.CostLedger.counts` and identical
iterates, in both exec modes.  See ``docs/EXECUTION.md``.
"""

from .arena import (AugmentedTensorArena, BasisArena, SketchArena,
                    TransposedBasisArena)
from .block_cycle import compiled_block_arnoldi_cycle, lower_cycle
from .ir import (ChargeSpec, NodeCost, Plan, PlanNode, ZERO_COST,
                 event_cost, flop_cost, per_unit_reduction, reduction_cost,
                 run_nodes)
from .optimize import optimize
from .pseudoblock import make_pseudo_block_orthogonalizer

__all__ = [
    "AugmentedTensorArena",
    "BasisArena",
    "SketchArena",
    "TransposedBasisArena",
    "compiled_block_arnoldi_cycle",
    "lower_cycle",
    "ChargeSpec",
    "NodeCost",
    "Plan",
    "PlanNode",
    "ZERO_COST",
    "event_cost",
    "flop_cost",
    "per_unit_reduction",
    "reduction_cost",
    "run_nodes",
    "optimize",
    "make_pseudo_block_orthogonalizer",
]
