"""SparseLU facade: factor once, solve many (the PARDISO role).

Combines a fill-reducing ordering, a numeric LU and level-scheduled
blocked triangular solves into the interface the Schwarz preconditioner
consumes: ``factor = SparseLU(B_i); factor.solve(R_i x)`` where the solve
handles an ``n x p`` block in one forward elimination + backward
substitution pass ("it can be done in a single forward elimination and
backward substitution as long as the vectors are stored contiguously" —
paper section V-A).

Two factorization engines:

* ``"gp"`` — the from-scratch Gilbert-Peierls LU of
  :mod:`repro.direct.numeric` (reference, pure Python);
* ``"scipy"`` — SuperLU via :func:`scipy.sparse.linalg.splu`, used for
  large subdomains; its factors are *extracted* and all solves still run
  through our own level-scheduled kernels, so multi-RHS measurements
  benchmark this library's code, not SuperLU's.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import CostLedger, Kernel
from ..util.misc import as_block
from .numeric import gilbert_peierls_lu
from .ordering import compute_ordering
from .triangular import TriangularFactor

__all__ = ["SparseLU"]


class SparseLU:
    """Sparse LU factorization with blocked multi-RHS solves.

    Parameters
    ----------
    a:
        square sparse matrix (real or complex).
    engine:
        ``"gp"`` (from-scratch Gilbert-Peierls), ``"scipy"`` (SuperLU
        numeric phase), or ``"auto"`` (GP below 1500 unknowns).
    ordering:
        fill-reducing ordering for the GP engine (``"amd"``, ``"rcm"``,
        ``"natural"``); SuperLU applies its own COLAMD.
    """

    def __init__(self, a: sp.spmatrix, *, engine: str = "auto",
                 ordering: str = "amd"):
        a = sp.csc_matrix(a)
        if a.shape[0] != a.shape[1]:
            raise ValueError("SparseLU requires a square matrix")
        self.n = a.shape[0]
        self.dtype = np.promote_types(a.dtype, np.float64)
        if engine == "auto":
            engine = "gp" if self.n <= 1500 else "scipy"
        self.engine = engine
        # run the whole numeric phase under a private ledger and replay it
        # onto the ambient one: totals are unchanged, and ``setup_cost``
        # records exactly what this factorization charged — the quantity a
        # setup cache amortizes (charged once per operator, not per solve)
        led = CostLedger()
        # the span is opened against the *ambient* ledger, so its window
        # sees the merged total; work inside runs under the private ledger
        # and is therefore excluded from any enclosing span's exclusive cost
        with trace.current().span("setup.lu", engine=engine, n=self.n):
            with ledger.install(led):
                self._factorize(a, engine, ordering)
            self.setup_cost = led
            ledger.current().merge(led)

    def _factorize(self, a: sp.spmatrix, engine: str, ordering: str) -> None:
        led = ledger.current()
        if engine == "gp":
            perm_c = compute_ordering(a, ordering)
            factors = gilbert_peierls_lu(a, perm_c=perm_c)
            l_mat, u_mat = factors.l, factors.u
            self.perm_r = factors.perm_r       # factored row i = A row perm_r[i]
            self.perm_c = factors.perm_c
            self._scipy_convention = False
        elif engine == "scipy":
            with led.timer("superlu_factor"):
                lu = spla.splu(a.astype(self.dtype))
            l_mat = sp.csr_matrix(lu.L)
            u_mat = sp.csr_matrix(lu.U)
            self.perm_r = lu.perm_r            # Pr[perm_r[i], i] = 1
            self.perm_c = lu.perm_c
            # standard LU flop estimate: 2 sum_j nnz(L(:,j)) * nnz(U(j,:))
            l_cols = np.diff(sp.csc_matrix(lu.L).indptr)
            u_rows = np.diff(u_mat.indptr)
            led.flop(Kernel.FACTORIZATION,
                     2.0 * float(np.dot(l_cols.astype(float), u_rows)))
            led.event("lu_factorization")
            self._scipy_convention = True
        else:
            raise ValueError(f"unknown engine {engine!r}")

        self.factor_nnz = int(l_mat.nnz + u_mat.nnz)
        self._ltri = TriangularFactor(l_mat, lower=True, unit_diagonal=True)
        self._utri = TriangularFactor(u_mat, lower=False)

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A X = B`` for an ``n x p`` block in one sweep pair."""
        squeeze = np.asarray(b).ndim == 1
        b = as_block(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        if self._scipy_convention:
            # SuperLU: Pr A Pc = L U with Pr[perm_r[i], i] = 1,
            # Pc[i, perm_c[i]] = 1  =>  x = Pc U^{-1} L^{-1} Pr b
            bp = np.empty_like(b, dtype=np.promote_types(self.dtype, b.dtype))
            bp[self.perm_r] = b
        else:
            # Gilbert-Peierls: L U = A[perm_r][:, perm_c]
            bp = b[self.perm_r]
        y = self._ltri.solve(bp)
        z = self._utri.solve(y)
        if self._scipy_convention:
            x = z[self.perm_c]
        else:
            x = np.empty_like(z)
            x[self.perm_c] = z
        ledger.current().event("direct_solve", b.shape[1])
        return x[:, 0] if squeeze else x

    def as_preconditioner(self):
        """Wrap as a :class:`repro.Preconditioner` (exact local solver)."""
        from ..krylov.base import FunctionPreconditioner
        return FunctionPreconditioner(self.solve)

    @property
    def n_levels(self) -> tuple[int, int]:
        """(L levels, U levels) of the solve schedules."""
        return self._ltri.n_levels, self._utri.n_levels

    def __repr__(self) -> str:
        return (f"SparseLU(n={self.n}, engine={self.engine!r}, "
                f"factor_nnz={self.factor_nnz})")
