"""Fill-reducing orderings for the sparse direct solver.

Two classic schemes built from scratch (plus scipy's RCM as a cross-check
oracle in the tests):

* **minimum degree** on the symmetrized graph — greedy elimination of the
  lowest-degree vertex with clique formation, the workhorse behind AMD;
* **reverse Cuthill-McKee** — BFS banding, cheap and predictable.

The subdomain matrices of the Schwarz preconditioner are factored once and
solved thousands of times, so even a simple fill-reducing pass pays for
itself immediately.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

__all__ = ["minimum_degree", "reverse_cuthill_mckee", "compute_ordering"]


def _symmetric_adjacency(a: sp.spmatrix) -> list[set[int]]:
    """Adjacency sets of the symmetrized pattern, no self-loops."""
    pattern = (a != 0).astype(np.int8)
    pattern = (pattern + pattern.T).tocsr()
    n = a.shape[0]
    adj: list[set[int]] = []
    for i in range(n):
        row = set(pattern.indices[pattern.indptr[i]: pattern.indptr[i + 1]].tolist())
        row.discard(i)
        adj.append(row)
    return adj


def minimum_degree(a: sp.spmatrix) -> np.ndarray:
    """Greedy minimum-degree ordering with clique update.

    Returns the permutation ``perm`` such that eliminating rows/columns in
    the order ``perm[0], perm[1], ...`` keeps fill low.  Quadratic-ish in
    the worst case — intended for the subdomain sizes of this library
    (up to a few tens of thousands of unknowns).
    """
    n = a.shape[0]
    adj = _symmetric_adjacency(a)
    eliminated = np.zeros(n, dtype=bool)
    heap = [(len(adj[i]), i) for i in range(n)]
    heapq.heapify(heap)
    perm = np.empty(n, dtype=np.int64)
    count = 0
    while count < n:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            if not eliminated[v]:
                heapq.heappush(heap, (len(adj[v]), v))
            continue
        perm[count] = v
        count += 1
        eliminated[v] = True
        neigh = adj[v]
        # clique formation: neighbours of v become mutually adjacent
        for u in neigh:
            adj[u].discard(v)
            adj[u].update(w for w in neigh if w != u and not eliminated[w])
        for u in neigh:
            if not eliminated[u]:
                heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    return perm


def reverse_cuthill_mckee(a: sp.spmatrix) -> np.ndarray:
    """RCM ordering from scratch: BFS from a pseudo-peripheral vertex."""
    n = a.shape[0]
    pattern = (a != 0).astype(np.int8)
    pattern = (pattern + pattern.T).tocsr()
    degrees = np.diff(pattern.indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for start_comp in np.argsort(degrees):
        if visited[start_comp]:
            continue
        # pseudo-peripheral search: run two BFS sweeps
        start = int(start_comp)
        for _ in range(2):
            frontier = [start]
            visited_local = {start}
            last = start
            while frontier:
                nxt = []
                for v in frontier:
                    for u in pattern.indices[pattern.indptr[v]: pattern.indptr[v + 1]]:
                        if u not in visited_local:
                            visited_local.add(int(u))
                            nxt.append(int(u))
                if nxt:
                    last = min(nxt, key=lambda w: degrees[w])
                frontier = nxt
            start = last
        # Cuthill-McKee BFS from the chosen start
        queue = [start]
        visited[start] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            neigh = [int(u) for u in
                     pattern.indices[pattern.indptr[v]: pattern.indptr[v + 1]]
                     if not visited[u]]
            neigh.sort(key=lambda w: degrees[w])
            for u in neigh:
                visited[u] = True
            queue.extend(neigh)
    return np.asarray(order[::-1], dtype=np.int64)


def compute_ordering(a: sp.spmatrix, method: str = "amd") -> np.ndarray:
    """Dispatch by name: ``"amd"`` (minimum degree), ``"rcm"``, ``"natural"``."""
    n = a.shape[0]
    if method == "natural":
        return np.arange(n, dtype=np.int64)
    if method == "amd":
        return minimum_degree(a)
    if method == "rcm":
        return reverse_cuthill_mckee(a)
    raise ValueError(f"unknown ordering {method!r}")
