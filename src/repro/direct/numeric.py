"""Gilbert-Peierls sparse LU factorization (left-looking, partial pivoting).

The classic algorithm behind SuperLU's simple driver: for each column ``j``

1. *symbolic*: depth-first search from the nonzeros of ``A[:, j]`` through
   the pattern of the already-computed columns of ``L`` determines the
   nonzero pattern of the solution of ``L x = A[:, j]`` (the "reach");
2. *numeric*: sparse lower-triangular solve restricted to that pattern, in
   the topological order the DFS produced;
3. *pivot*: the largest entry of the sub-diagonal part is swapped into the
   diagonal (threshold partial pivoting).

Pure-Python/NumPy with per-nonzero cost proportional to the flops — exact
and dependency-free, used as the reference engine and for the modest
subdomain sizes of the Schwarz preconditioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import Kernel

__all__ = ["LUFactors", "gilbert_peierls_lu"]


@dataclass
class LUFactors:
    """Result of the factorization: ``P_r A P_c = L U`` (rows permuted)."""

    l: sp.csr_matrix          # unit lower triangular
    u: sp.csr_matrix          # upper triangular
    perm_r: np.ndarray        # row permutation: factored row i is A row perm_r[i]
    perm_c: np.ndarray        # column permutation (fill-reducing ordering)

    @property
    def fill_nnz(self) -> int:
        return int(self.l.nnz + self.u.nnz)


def gilbert_peierls_lu(a: sp.spmatrix, *, perm_c: np.ndarray | None = None,
                       pivot_threshold: float = 1.0) -> LUFactors:
    """Factor ``A[:, perm_c]`` into ``L U`` with threshold partial pivoting.

    ``pivot_threshold`` in (0, 1]: 1.0 is classic partial pivoting, smaller
    values prefer the diagonal entry when it is within the threshold of the
    column maximum (keeps fill closer to the symbolic prediction).
    """
    a = sp.csc_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("LU requires a square matrix")
    if perm_c is None:
        perm_c = np.arange(n, dtype=np.int64)
    dtype = np.promote_types(a.dtype, np.float64)

    # L columns under construction: per-column (rows, values) in final row
    # numbering; row_perm maps original row -> pivot position (or -1)
    lcols_rows: list[np.ndarray] = []
    lcols_vals: list[np.ndarray] = []
    ucols_rows: list[np.ndarray] = []
    ucols_vals: list[np.ndarray] = []
    pinv = np.full(n, -1, dtype=np.int64)       # original row -> pivot index
    perm_r = np.empty(n, dtype=np.int64)

    # pattern of L columns in *original* row indices for the DFS
    lpat: list[np.ndarray] = []

    x = np.zeros(n, dtype=dtype)                # dense scatter workspace
    flops = 0.0

    for j in range(n):
        col = perm_c[j]
        a_rows = a.indices[a.indptr[col]: a.indptr[col + 1]]
        a_vals = a.data[a.indptr[col]: a.indptr[col + 1]]

        # ---- symbolic: DFS through eliminated columns ------------------
        visited = set()
        topo: list[int] = []
        for r in a_rows:
            r = int(r)
            if r in visited:
                continue
            # iterative DFS
            stack = [(r, 0)]
            visited.add(r)
            while stack:
                node, ptr = stack[-1]
                k = pinv[node]
                children = lpat[k] if k >= 0 else ()
                advanced = False
                while ptr < len(children):
                    child = int(children[ptr])
                    ptr += 1
                    if child not in visited:
                        visited.add(child)
                        stack[-1] = (node, ptr)
                        stack.append((child, 0))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    topo.append(node)
        # topo holds original row indices in reverse topological order of
        # the dependency DAG: dependencies appear AFTER their dependents,
        # so process in reversed order.
        topo.reverse()

        # ---- numeric: sparse triangular solve --------------------------
        x[a_rows] = a_vals
        for node in topo:
            k = pinv[node]
            if k < 0:
                continue
            xk = x[node]
            if xk == 0:
                continue
            rows_k = lcols_rows[k]
            vals_k = lcols_vals[k]
            x[rows_k] -= xk * vals_k
            flops += 2.0 * len(rows_k)

        # ---- pivot ------------------------------------------------------
        below = [r for r in topo if pinv[r] < 0]
        if not below:
            raise np.linalg.LinAlgError(f"structurally singular at column {j}")
        vals_below = np.array([x[r] for r in below])
        vmax = np.max(np.abs(vals_below))
        if vmax == 0.0:
            raise np.linalg.LinAlgError(f"numerically singular at column {j}")
        # prefer the natural (diagonal) row within the threshold
        pivot_row = None
        diag_row = perm_c[j]
        if pinv[diag_row] < 0 and abs(x[diag_row]) >= pivot_threshold * vmax:
            pivot_row = int(diag_row)
        if pivot_row is None:
            pivot_row = int(below[int(np.argmax(np.abs(vals_below)))])
        pivot_val = x[pivot_row]

        pinv[pivot_row] = j
        perm_r[j] = pivot_row

        # ---- harvest the column ----------------------------------------
        u_rows, u_vals = [], []
        l_rows, l_vals = [], []
        for node in topo:
            v = x[node]
            x[node] = 0.0
            if v == 0:
                continue
            k = pinv[node]
            if node == pivot_row:
                pass                       # the diagonal of U
            elif 0 <= k < j:               # already-pivoted row: U entry
                u_rows.append(k)
                u_vals.append(v)
            else:                          # unpivoted row: L entry (scaled)
                l_rows.append(node)
                l_vals.append(v / pivot_val)
        u_rows.append(j)
        u_vals.append(pivot_val)
        flops += len(l_rows)

        lcols_rows.append(np.asarray(l_rows, dtype=np.int64))
        lcols_vals.append(np.asarray(l_vals, dtype=dtype))
        lpat.append(lcols_rows[-1])
        ucols_rows.append(np.asarray(u_rows, dtype=np.int64))
        ucols_vals.append(np.asarray(u_vals, dtype=dtype))

    ledger.current().flop(Kernel.FACTORIZATION, flops)
    ledger.current().event("lu_factorization")

    # assemble CSC then renumber L's rows into pivot order
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    u_indptr = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        l_indptr[j + 1] = l_indptr[j] + len(lcols_rows[j]) + 1  # + unit diag
        u_indptr[j + 1] = u_indptr[j] + len(ucols_rows[j])
    l_idx = np.empty(l_indptr[-1], dtype=np.int64)
    l_val = np.empty(l_indptr[-1], dtype=dtype)
    u_idx = np.empty(u_indptr[-1], dtype=np.int64)
    u_val = np.empty(u_indptr[-1], dtype=dtype)
    for j in range(n):
        lo = l_indptr[j]
        l_idx[lo] = j
        l_val[lo] = 1.0
        rows = pinv[lcols_rows[j]]
        l_idx[lo + 1: l_indptr[j + 1]] = rows
        l_val[lo + 1: l_indptr[j + 1]] = lcols_vals[j]
        u_idx[u_indptr[j]: u_indptr[j + 1]] = ucols_rows[j]
        u_val[u_indptr[j]: u_indptr[j + 1]] = ucols_vals[j]

    l = sp.csc_matrix((l_val, l_idx, l_indptr), shape=(n, n)).tocsr()
    u = sp.csc_matrix((u_val, u_idx, u_indptr), shape=(n, n)).tocsr()
    return LUFactors(l=l, u=u, perm_r=perm_r, perm_c=np.asarray(perm_c))
