"""Sparse direct solver: orderings, LU, blocked triangular solves."""

from .numeric import LUFactors, gilbert_peierls_lu
from .ordering import compute_ordering, minimum_degree, reverse_cuthill_mckee
from .solver import SparseLU
from .triangular import LevelSchedule, TriangularFactor

__all__ = [
    "SparseLU",
    "LUFactors",
    "gilbert_peierls_lu",
    "compute_ordering",
    "minimum_degree",
    "reverse_cuthill_mckee",
    "LevelSchedule",
    "TriangularFactor",
]
