"""Level-scheduled blocked triangular solves — the Fig. 6 kernel.

A sparse triangular solve is a DAG traversal: row ``i`` can be computed as
soon as every row it references is done.  Grouping rows into *levels*
(rows with equal longest-path depth) turns the solve into a short sequence
of dense-ish operations:

    for each level:  x[rows] = (b[rows] - L[rows, :] @ x) / diag[rows]

With ``p`` right-hand sides the update ``L[rows, :] @ X`` is a sparse-times
-dense-block product — the BLAS-2 -> BLAS-3 transition that gives direct
solvers their superlinear multi-RHS efficiency (paper section V-B3).  The
level structure is computed once at factorization time and reused by every
solve.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block

__all__ = ["LevelSchedule", "TriangularFactor", "concat_factors"]


def _levels_by_row_reference(n: int, indptr: np.ndarray, indices: np.ndarray
                             ) -> np.ndarray:
    """Reference per-row longest-path levels (python loop over rows).

    Kept as the oracle for the vectorized frontier propagation below
    (property-tested in ``tests/test_direct.py``) and as the baseline of
    the ``level_schedule`` entry in ``benchmarks/bench_micro_kernels.py``.
    """
    level = np.zeros(n, dtype=np.int64)
    for i in range(n):
        row_cols = indices[indptr[i]: indptr[i + 1]]
        deps = row_cols[row_cols < i]
        if deps.size:
            level[i] = level[deps].max() + 1
    return level


def _levels_frontier(n: int, indptr: np.ndarray, indices: np.ndarray,
                     *, fallback_width: int = 32) -> np.ndarray:
    """Frontier-batched longest-path levels over the CSR dependency DAG.

    Topological breadth-first sweep in whole-frontier numpy batches
    (Kahn's algorithm): the rows with no unresolved dependencies form
    frontier 0; resolving a frontier decrements the dependency counters
    of its dependents (one ``bincount`` per wave), and the rows whose
    counter hits zero form the next frontier.  A row only becomes ready
    once its *deepest* dependency is resolved, so wave ``k`` contains
    exactly the rows of level ``k`` — levels are the wave counter, no
    per-edge max propagation needed.  Each edge is touched exactly once:
    ``O(nnz)`` vectorized work in ``n_levels`` batches.

    Wide DAGs (block-diagonal Schwarz factors, shallow fill patterns)
    amortize the per-wave numpy overhead over hundreds of rows and win by
    an order of magnitude over the per-row python loop.  Deep, skinny
    DAGs (the tail of a global LU factor, median frontier of a few rows)
    do not — so once the frontier narrows below ``fallback_width`` the
    remaining rows are resolved with the per-row recurrence, which is
    valid in plain index order: every dependency of a pending row is
    either already resolved or a smaller-index pending row that the loop
    reaches first.
    """
    rows = np.repeat(np.arange(n, dtype=np.int64),
                     np.diff(indptr).astype(np.int64))
    strict = indices < rows          # ignore diagonal / upper entries
    src = indices[strict]            # dependency j ...
    dst = rows[strict]               # ... of row i > j
    remaining = np.bincount(dst, minlength=n)
    # reverse adjacency (edges grouped by source), CSR-style
    order = np.argsort(src, kind="stable")
    out_dst = dst[order]
    out_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=out_ptr[1:])

    level = np.zeros(n, dtype=np.int64)
    frontier = np.flatnonzero(remaining == 0)
    wave = 0
    while frontier.size >= fallback_width:
        wave += 1
        starts = out_ptr[frontier]
        counts = out_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return level
        # flatten the frontier's out-edge index ranges in one shot
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat = np.repeat(starts - offsets, counts) + np.arange(total)
        touched = np.bincount(out_dst[flat], minlength=n)
        remaining -= touched
        frontier = np.flatnonzero((touched > 0) & (remaining == 0))
        level[frontier] = wave
    # skinny tail: per-row recurrence over the still-unresolved rows
    for i in np.flatnonzero(remaining > 0):
        row_cols = indices[indptr[i]: indptr[i + 1]]
        deps = row_cols[row_cols < i]
        level[i] = level[deps].max() + 1
    return level


class LevelSchedule:
    """Topological level partition of a (lower) triangular matrix's rows."""

    def __init__(self, lower_csr: sp.csr_matrix):
        n = lower_csr.shape[0]
        level = _levels_frontier(n, lower_csr.indptr, lower_csr.indices)
        self._init_from_levels(level)

    @classmethod
    def from_levels(cls, level: np.ndarray) -> "LevelSchedule":
        """Build a schedule from a precomputed per-row level array."""
        obj = cls.__new__(cls)
        obj._init_from_levels(np.asarray(level, dtype=np.int64))
        return obj

    def _init_from_levels(self, level: np.ndarray) -> None:
        self.level_of_row = level
        self.n_levels = int(level.max()) + 1 if level.size else 0
        order = np.argsort(level, kind="stable")
        bounds = np.searchsorted(level[order], np.arange(self.n_levels + 1))
        self.rows_by_level = [order[bounds[k]: bounds[k + 1]]
                              for k in range(self.n_levels)]

    def __len__(self) -> int:
        return self.n_levels


class TriangularFactor:
    """A triangular factor prepared for repeated blocked solves.

    Parameters
    ----------
    mat:
        sparse triangular matrix (lower or upper).
    lower:
        orientation; an upper factor is handled by reversing row order.
    unit_diagonal:
        True when the diagonal is implicitly 1 (the L of an LU).
    """

    def __init__(self, mat: sp.spmatrix, *, lower: bool, unit_diagonal: bool = False):
        mat = sp.csr_matrix(mat)
        n = mat.shape[0]
        self.n = n
        self.lower = bool(lower)
        self.unit_diagonal = bool(unit_diagonal)
        self.dtype = mat.dtype
        self.nnz = mat.nnz

        if unit_diagonal:
            diag = np.ones(n, dtype=mat.dtype)
        else:
            diag = np.asarray(mat.diagonal())
            if np.any(diag == 0):
                raise np.linalg.LinAlgError("singular triangular factor")
        self.diag = diag

        # orient everything as a *lower* solve on possibly reversed indices
        if lower:
            work = mat
            self._reorder = None
        else:
            rev = np.arange(n)[::-1]
            work = sp.csr_matrix(mat[rev][:, rev])
            self._reorder = rev
            self.diag = diag[rev]

        strict = sp.tril(work, k=-1).tocsr()
        self.schedule = LevelSchedule(strict)
        self._finish_init(strict)

    def _finish_init(self, strict: sp.csr_matrix) -> None:
        # oriented strictly-lower part, kept for block-diagonal batching
        self._strict = strict
        # pre-sliced per-level strictly-lower blocks
        self._level_rows = self.schedule.rows_by_level
        self._level_mats = [sp.csr_matrix(strict[rows]) if rows.size else None
                            for rows in self._level_rows]
        # fully materialized solve steps: (rows, lmat-or-None, diag column).
        # Empty levels are dropped and the per-level diagonal slice
        # ``diag[rows][:, None]`` is taken once here instead of on every
        # solve — repeated solves run the level sweep with zero slicing.
        self._steps = [
            (rows,
             lmat if (lmat is not None and lmat.nnz) else None,
             self.diag[rows][:, None])
            for rows, lmat in zip(self._level_rows, self._level_mats)
            if rows.size
        ]

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T x = b`` for one or many right-hand sides at once."""
        b = as_block(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        p = b.shape[1]
        dtype = np.promote_types(self.dtype, b.dtype)
        if self._reorder is not None:
            b = b[self._reorder]
        x = np.zeros((self.n, p), dtype=dtype)
        led = ledger.current()
        for rows, lmat, diag_col in self._steps:
            rhs = b[rows]
            if lmat is not None:
                rhs = rhs - lmat @ x
            x[rows] = rhs / diag_col
        kern = Kernel.BLAS2 if p == 1 else Kernel.BLAS3
        led.flop(kern, 2.0 * self.nnz * p)
        led.event("triangular_solve", p)
        if self._reorder is not None:
            x = x[self._reorder]
        return x

    @property
    def n_levels(self) -> int:
        return len(self.schedule)


def concat_factors(factors: list[TriangularFactor]) -> TriangularFactor:
    """Block-diagonal concatenation of same-orientation triangular factors.

    The combined factor solves all the subproblems in one level-scheduled
    sweep: its level count is the *maximum* over the inputs (not the sum),
    and each level update is one wide sparse-times-dense-block product —
    the BLAS-3 batching that lets the Schwarz preconditioner push dozens of
    small per-subdomain solves through a single kernel.  Its flop charge
    (``2 * nnz * p``) equals the sum of the per-factor charges exactly.

    Block-diagonal structure means no cross-block dependencies, so the
    per-row levels of each input carry over unchanged — no reanalysis.
    """
    if not factors:
        raise ValueError("need at least one factor")
    lower = factors[0].lower
    unit = factors[0].unit_diagonal
    if any(f.lower != lower or f.unit_diagonal != unit for f in factors):
        raise ValueError("factors must share orientation and diagonal kind")
    if len(factors) == 1:
        return factors[0]
    # Internals live in the *oriented* (lower-triangular) frame.  Lower
    # factors concatenate in order; an upper concatenation is reversed as a
    # whole, which reverses the block order and each block internally — and
    # each internally-reversed block is exactly that factor's oriented form.
    ordered = factors if lower else factors[::-1]
    obj = TriangularFactor.__new__(TriangularFactor)
    obj.n = int(sum(f.n for f in factors))
    obj.lower = lower
    obj.unit_diagonal = unit
    obj.dtype = np.result_type(*(f.dtype for f in factors))
    obj.nnz = int(sum(f.nnz for f in factors))
    obj.diag = np.concatenate([f.diag for f in ordered])
    obj._reorder = None if lower else np.arange(obj.n)[::-1]
    strict = sp.block_diag([f._strict for f in ordered], format="csr")
    levels = np.concatenate([f.schedule.level_of_row for f in ordered])
    obj.schedule = LevelSchedule.from_levels(levels)
    obj._finish_init(strict)
    return obj
