"""Public solve API: one entry point, HPDDM-style method dispatch.

Two levels of convenience:

* :func:`solve` — one-shot functional interface;
* :class:`Solver` — stateful interface for *sequences* of linear systems
  ``A_i X_i = B_i`` (paper eq. 1): it owns the recycled subspace between
  solves, auto-detects unchanged operators (the non-variable fast path of
  section III-B) and re-orthonormalizes the recycled space when the
  operator does change.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any

import numpy as np

from .krylov.base import SolveResult, as_operator
from .krylov.bcg import bcg
from .krylov.bgmres import bgmres
from .krylov.cg import cg
from .krylov.gcrodr import gcrodr
from .krylov.gmres import gmres
from .krylov.gmresdr import gmresdr
from .krylov.lgmres import lgmres
from .krylov.pgcrodr import PseudoBlockRecycle, pgcrodr
from .krylov.recycling import RecycledSubspace
from .krylov.shifted import (ShiftedFamilyResult, shifted_matrix,
                             solve_shifted_family)
from .service.cache import SetupCache
from .service.fingerprint import operator_fingerprint
from .util import ledger
from .util.execmode import use_exec_mode
from .util.misc import as_block
from .util.options import OptionError, Options
from . import trace, verify

__all__ = ["solve", "Solver"]


def solve(a, b, m=None, *, options: Options | None = None,
          x0: np.ndarray | None = None,
          recycle: "RecycledSubspace | PseudoBlockRecycle | None" = None,
          same_system: bool | None = None,
          shifts=None, mass=None) -> SolveResult:
    """Solve ``A X = B`` with the method selected by ``options.krylov_method``.

    Parameters mirror the individual solver functions; ``recycle`` and
    ``same_system`` are only consumed by the recycling methods.

    With ``shifts=[sigma_1, ..., sigma_k]`` the call solves the *family*
    ``(A + sigma_i M) x_i = b_i`` on one shared block-Arnoldi basis
    (:mod:`repro.krylov.shifted`) and returns a
    :class:`~repro.krylov.shifted.ShiftedFamilyResult` with one
    :class:`SolveResult` per shift; ``mass`` is the optional ``M``
    (identity by default).  Preconditioning is rejected for family solves
    — it breaks the shift invariance the shared basis relies on.

    With ``options.verify != "off"`` one :class:`~repro.verify.InvariantChecker`
    is activated around the whole solve (so solver hooks and distributed-QR
    hooks feed a single report, returned in ``result.info["verify"]``), and
    the reported final residual is cross-checked against ``||B - A X||``.

    >>> import scipy.sparse as sp, numpy as np
    >>> A = sp.diags([2.0] * 100)
    >>> b = np.ones(100)
    >>> res = solve(A, b, options=Options(krylov_method="gmres"))
    >>> bool(res.converged.all())
    True
    """
    options = options or Options()
    if shifts is not None:
        if m is not None:
            raise OptionError(
                "preconditioning breaks the shift invariance family solves "
                "rely on; solve shifted families unpreconditioned (or fold "
                "the preconditioner into the operator before shifting)")
        return _solve_family(a, b, options=options, shifts=shifts,
                             mass=mass, x0=x0, recycle=recycle)
    if mass is not None:
        raise OptionError("mass is only meaningful together with shifts")
    tracer = trace.tracer_for(options)
    if not tracer.enabled:
        # trace=off default: no spans, no extra info keys, no extra ledger —
        # counts() and info stay byte-identical to the untraced behavior
        return _solve_checked(a, b, m, options=options, x0=x0,
                              recycle=recycle, same_system=same_system)
    with ExitStack() as stack:
        if ledger.current().is_null:
            # spans diff the ambient ledger; give them a real one so the
            # trace carries counts even when the caller installed none
            stack.enter_context(ledger.install())
        stack.enter_context(trace.install(tracer))
        with tracer.span("solve", method=options.krylov_method,
                         variant=options.variant) as root:
            res = _solve_checked(a, b, m, options=options, x0=x0,
                                 recycle=recycle, same_system=same_system)
    tracer.metrics.counter("solve_total").inc(method=options.krylov_method)
    tracer.metrics.histogram("solve_iterations").observe(
        res.iterations, method=options.krylov_method)
    for cyc in root.find("cycle"):
        if cyc.cost is not None:
            tracer.metrics.histogram("reductions_per_cycle").observe(
                cyc.cost.reductions, method=options.krylov_method)
    res.info["trace"] = {
        "level": tracer.level,
        "span": root.to_dict(),
        "summary": tracer.summary(),
    }
    return res


def _solve_family(a, b, *, options: Options, shifts, mass, x0,
                  recycle) -> ShiftedFamilyResult:
    """Family dispatch: trace + verify wrapping for shifted solves."""
    tracer = trace.tracer_for(options)
    if not tracer.enabled:
        return _solve_family_checked(a, b, options=options, shifts=shifts,
                                     mass=mass, x0=x0, recycle=recycle)
    with ExitStack() as stack:
        if ledger.current().is_null:
            stack.enter_context(ledger.install())
        stack.enter_context(trace.install(tracer))
        with tracer.span("solve", method=options.krylov_method,
                         variant=options.variant,
                         shifts=len(list(shifts))) as root:
            res = _solve_family_checked(a, b, options=options,
                                        shifts=shifts, mass=mass, x0=x0,
                                        recycle=recycle)
    tracer.metrics.counter("solve_total").inc(method=res.method)
    tracer.metrics.histogram("solve_iterations").observe(
        res.iterations, method=res.method)
    for cyc in root.find("cycle"):
        if cyc.cost is not None:
            tracer.metrics.histogram("reductions_per_cycle").observe(
                cyc.cost.reductions, method=res.method)
    res.info["trace"] = {
        "level": tracer.level,
        "span": root.to_dict(),
        "summary": tracer.summary(),
    }
    return res


def _solve_family_checked(a, b, *, options: Options, shifts, mass, x0,
                          recycle) -> ShiftedFamilyResult:
    rec = recycle if isinstance(recycle, RecycledSubspace) else None

    def _run() -> ShiftedFamilyResult:
        if options.exec_mode is not None:
            with use_exec_mode(options.exec_mode):
                return solve_shifted_family(a, b, shifts, mass=mass,
                                            options=options, x0=x0,
                                            recycle=rec)
        return solve_shifted_family(a, b, shifts, mass=mass,
                                    options=options, x0=x0, recycle=rec)

    if options.verify == "off":
        return _run()
    chk = verify.InvariantChecker(options.verify, context="shifted")
    with verify.activate(chk):
        res = _run()
        if mass is None:
            # with a mass matrix the engine solves the M^{-1}-transformed
            # system, so its reported residual is the transformed one — a
            # gap against ||b - (A + sigma M) x|| is expected, not a
            # defect (the left-preconditioning rule, same as _solve_checked)
            b_blk = as_block(np.asarray(b))
            for i, (sres, sigma) in enumerate(zip(res.results, res.shifts)):
                if not sres.history.records:
                    continue
                b_col = b_blk[:, [0]] if b_blk.shape[1] == 1 \
                    else b_blk[:, [i]]
                chk.check_final_residual(
                    shifted_matrix(a, sigma), as_block(np.asarray(sres.x)),
                    b_col, sres.history.records[-1], options.tol,
                    converged=sres.converged,
                    what=f"final residual (shift {i})")
    res.info["verify"] = chk.report()
    return res


def _solve_checked(a, b, m, *, options: Options, x0, recycle,
                   same_system) -> SolveResult:
    """The verify-wrapped dispatch body shared by both trace paths."""
    if options.verify != "off":
        chk = verify.InvariantChecker(options.verify,
                                      context=options.krylov_method)
        with verify.activate(chk):
            res = _dispatch_mode(a, b, m, options=options, x0=x0,
                                 recycle=recycle, same_system=same_system)
            # reported-vs-true residual at convergence.  Skipped under left
            # preconditioning: the solver's residual is the *preconditioned*
            # one, so a gap against ||B - A X|| is expected, not a defect.
            if not (options.variant == "left" and m is not None):
                reported = res.history.records[-1] if res.history.records \
                    else None
                if reported is not None:
                    chk.check_final_residual(
                        a, as_block(np.asarray(res.x)), as_block(np.asarray(b)),
                        reported, options.tol, converged=res.converged,
                        what="final residual")
        res.info["verify"] = chk.report()
        return res
    return _dispatch_mode(a, b, m, options=options, x0=x0,
                          recycle=recycle, same_system=same_system)


def _dispatch_mode(a, b, m, *, options: Options, x0, recycle,
                   same_system) -> SolveResult:
    if options.exec_mode is not None:
        with use_exec_mode(options.exec_mode):
            return _dispatch(a, b, m, options=options, x0=x0,
                             recycle=recycle, same_system=same_system)
    return _dispatch(a, b, m, options=options, x0=x0,
                     recycle=recycle, same_system=same_system)


def _dispatch(a, b, m, *, options: Options, x0, recycle,
              same_system) -> SolveResult:
    method = options.krylov_method
    if method in ("gmres", "richardson", "none"):
        if method in ("richardson", "none"):
            raise NotImplementedError(
                f"method {method!r} is accepted for option parity but has no "
                "standalone driver; use gmres")
        return gmres(a, b, m, options=options, x0=x0)
    if method == "bgmres":
        return bgmres(a, b, m, options=options, x0=x0)
    if method == "cg":
        return cg(a, b, m, options=options, x0=x0)
    if method == "bcg":
        return bcg(a, b, m, options=options, x0=x0)
    if method == "gmresdr":
        return gmresdr(a, b, m, options=options, x0=x0)
    if method == "lgmres":
        return lgmres(a, b, m, options=options, x0=x0)
    if method == "gcrodr":
        # pseudo-block fusion for multiple RHSs: independent recurrences
        # with batched kernels (paper section V-B1); "bgcrodr" selects the
        # true block method instead.
        p = as_block(np.asarray(b)).shape[1]
        if p > 1:
            rec = recycle if isinstance(recycle, PseudoBlockRecycle) else None
            return pgcrodr(a, b, m, options=options, x0=x0,
                           recycle=rec, same_system=same_system)
        rec = recycle if isinstance(recycle, RecycledSubspace) else None
        return gcrodr(a, b, m, options=options, x0=x0,
                      recycle=rec, same_system=same_system)
    if method == "bgcrodr":
        rec = recycle if isinstance(recycle, RecycledSubspace) else None
        return gcrodr(a, b, m, options=options, x0=x0,
                      recycle=rec, same_system=same_system)
    raise ValueError(f"unknown krylov_method {method!r}")


class Solver:
    """Stateful solver for sequences of linear systems.

    Keeps the recycled Krylov subspace alive between calls (the paper's
    "persistent memory ... allocated using a singleton class") and resolves
    the same-system fast path automatically:

    * same operator object (equal ``tag``) *and* unchanged entries (equal
      value :class:`~repro.service.fingerprint.Fingerprint`) as the
      previous call — skip the ``qr(A U_k)`` re-orthonormalization and
      freeze the recycled space at restarts
      (``-hpddm_recycle_same_system``).  The fingerprint guard means
      mutating a matrix's ``data`` in place between solves correctly
      disables the fast path (an identity tag alone cannot see that);
    * different operator — run the full variable-sequence update.

    ``reset()`` drops the recycled subspace *and* both identity markers
    (tag and fingerprint), so a reused Solver never silently adopts a
    recycle space or the same-system fast path across a reset.

    With a shared ``setup_cache`` (a :class:`repro.service.SetupCache`),
    recycled subspaces are published under the operator's value
    fingerprint, so repeat traffic against the same operator hits the
    fast path even across *distinct* Solver instances.

    Example
    -------
    >>> import numpy as np, scipy.sparse as sp
    >>> A = sp.diags([-np.ones(99), 2*np.ones(100), -np.ones(99)], [-1,0,1]).tocsr()
    >>> s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=20,
    ...                            recycle=5, tol=1e-8))
    >>> r1 = s.solve(A, np.ones(100))
    >>> r2 = s.solve(A, np.arange(100.0))   # reuses the recycled subspace
    >>> bool(r2.converged.all()) and r2.info["same_system"]
    True
    """

    def __init__(self, m=None, *, options: Options | None = None,
                 setup_cache: SetupCache | None = None):
        self.options = options or Options()
        self.preconditioner = m
        self.setup_cache = setup_cache
        self.recycled: RecycledSubspace | PseudoBlockRecycle | None = None
        self._last_tag: Any = None
        self._last_fingerprint = None
        self.results: list[SolveResult] = []

    def _cache_kind(self) -> str:
        from .service.service import _options_key, _recycle_kind
        return _recycle_kind(_options_key(self.options))

    def solve(self, a, b, *, x0: np.ndarray | None = None,
              m=None, same_system: bool | None = None) -> SolveResult:
        """Solve the next system in the sequence."""
        op = as_operator(a)
        fp = operator_fingerprint(a)
        if same_system is None:
            if self.options.recycle_same_system:
                same_system = True
            elif self._last_tag is not None:
                # identity alone is not enough: an in-place update of the
                # matrix values keeps the tag but changes the fingerprint,
                # and must re-establish A U = C, not skip it
                same_system = (op.tag == self._last_tag
                               and fp == self._last_fingerprint)
        if self.recycled is None and self.setup_cache is not None:
            space = self.setup_cache.get(fp, self._cache_kind())
            if space is not None:
                self.recycled = space
                if same_system is None and not fp.opaque \
                        and space.matches_fingerprint(fp):
                    # a value-fingerprint hit proves the operator equals the
                    # one the cached space was built for — unless the space
                    # was adopted from a neighboring operator
                    # (``SetupCache.adopt_from``), whose foreign stamp forces
                    # the adoption-boundary repair instead
                    same_system = True
        prec = m if m is not None else self.preconditioner
        res = solve(op, b, prec, options=self.options, x0=x0,
                    recycle=self.recycled, same_system=same_system)
        self._last_tag = op.tag
        self._last_fingerprint = fp
        new_space = res.info.get("recycle")
        if new_space is not None:
            self.recycled = new_space
            if self.setup_cache is not None:
                new_space.fingerprint = fp
                self.setup_cache.put(fp, self._cache_kind(), new_space)
        self.results.append(res)
        return res

    def reset(self) -> None:
        """Drop the recycled subspace, history, and both identity markers.

        After a reset the next solve can never be treated as same-system
        (and never adopts this instance's previous recycle space), even
        against the very same operator object.
        """
        self.recycled = None
        self._last_tag = None
        self._last_fingerprint = None
        self.results.clear()

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.results)
