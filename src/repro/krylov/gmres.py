"""(Pseudo-block, flexible) restarted GMRES.

``gmres`` fuses the ``p`` independent single-RHS GMRES recursions into block
kernels — the *pseudo-block* method of section V-B1 of the paper:

* one SpMM (``A @ V_j``) instead of ``p`` SpMVs,
* one preconditioner application on an ``n x p`` block,
* one global reduction for the batched Arnoldi dot products instead of
  ``p`` separate reductions per iteration (``m`` instead of ``m * p`` for a
  whole cycle, in the paper's accounting).

Each RHS keeps its own Hessenberg matrix and Givens (Householder-panel)
machinery; convergence is per column, and converged columns are frozen
while the remaining ones iterate.

Preconditioning sides follow HPDDM semantics:

* ``variant="left"``: run on ``z -> M(A z)`` and the preconditioned residual;
* ``variant="right"`` / ``"flexible"``: store ``Z_j = M(V_j)`` and update the
  iterate from ``Z`` (for a constant ``M`` this is algebraically right
  preconditioning; for a variable ``M`` it is FGMRES).
"""

from __future__ import annotations

import numpy as np

from ..la.blockqr import BlockHessenbergQR
from ..plan.pseudoblock import make_pseudo_block_orthogonalizer
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from ..verify import checker_for
from .base import (ConvergenceHistory, IdentityPreconditioner, Operator,
                   Preconditioner, SolveResult, as_operator, as_preconditioner,
                   initial_state, residual_targets)

__all__ = ["gmres"]


def setup_preconditioning(a: Operator, m: Preconditioner | None, options: Options):
    """Normalize the preconditioning side into (op_apply, inner_m, left_m).

    Returns
    -------
    op_apply:
        the operator the Krylov method actually iterates with (A, or M∘A for
        left preconditioning).
    inner_m:
        the preconditioner applied inside the Arnoldi loop (identity for
        left preconditioning, M for right/flexible).
    left_m:
        M when left preconditioning is active (used to transform the RHS),
        else None.
    """
    prec = as_preconditioner(m)
    if prec.is_variable and options.variant != "flexible":
        raise ValueError(
            "variable (nonlinear) preconditioners require variant='flexible' "
            "(FGMRES / FGCRO-DR) — cf. paper section III-C")
    if isinstance(prec, IdentityPreconditioner):
        return a.matmat, prec, None
    if options.variant == "left":
        def op_apply(x: np.ndarray) -> np.ndarray:
            return prec(a.matmat(x))
        return op_apply, IdentityPreconditioner(), prec
    return a.matmat, prec, None


def _freeze_column(arrs: list[np.ndarray], col: int) -> None:
    for arr in arrs:
        arr[:, col] = 0.0


def gmres(a, b, m=None, *, options: Options | None = None,
          x0: np.ndarray | None = None) -> SolveResult:
    """Solve ``A X = B`` column-wise with fused (pseudo-block) GMRES(m).

    Parameters
    ----------
    a:
        operator (scipy sparse, dense array, or :class:`Operator`).
    b:
        right-hand side(s), shape ``(n,)`` or ``(n, p)``.
    m:
        preconditioner (None, callable, sparse matrix, or
        :class:`Preconditioner`).
    options:
        solver options; ``gmres_restart``, ``tol``, ``max_it``, ``variant``,
        and ``orthogonalization`` are honoured.
    x0:
        initial guess (zeros by default).
    """
    options = options or Options()
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n, p = b2.shape
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    history.append(column_norms(r))

    restart = min(options.gmres_restart, n)
    identity_m = isinstance(inner_m, IdentityPreconditioner)
    led = ledger.current()
    tr = trace.current()
    chk = checker_for(options, context="gmres")

    total_it = 0
    cycles = 0
    converged = column_norms(r) <= targets

    while not np.all(converged) and total_it < options.max_it:
        cycles += 1
        with tr.span("cycle", index=cycles - 1):
            # ---- start of a restart cycle -------------------------------
            v = np.zeros((restart + 1, n, p), dtype=dtype)
            z = v if identity_m else np.zeros((restart, n, p), dtype=dtype)
            beta = column_norms(r)
            led.reduction(nbytes=p * 8)
            active = ~converged & (beta > 0)
            v0 = np.zeros_like(r)
            nz = beta > 0
            v0[:, nz] = r[:, nz] / beta[nz]
            v[0] = v0
            hqrs = [BlockHessenbergQR(restart, 1, np.array([[beta[l]]]),
                                      dtype=dtype)
                    for l in range(p)]
            col_iters = np.zeros(p, dtype=int)  # Arnoldi columns per RHS
            orth = make_pseudo_block_orthogonalizer(
                options.orthogonalization, plan=options.plan, n=n, p=p,
                dtype=dtype, max_cols=restart + 1)
            orth.begin(v[:1])

            j = 0
            while j < restart and np.any(active) and total_it < options.max_it:
                with tr.span("arnoldi_step", j=j):
                    zj = v[j] if identity_m else \
                        np.asarray(inner_m(v[j])).astype(dtype, copy=False)
                    if not identity_m:
                        z[j] = zj
                    w = op_apply(zj)
                    # fused orthogonalization against each column's own
                    # basis: the whole bundle advances with the active
                    # scheme's reduction count (cgs 2, imgs 3, mgs j+2,
                    # cgs2_1r 2, sketched 1 per step)
                    with tr.span("ortho", scheme=options.orthogonalization):
                        w, dots, nrm = orth.step(v[: j + 1], w, j)
                    appended = np.zeros(p, dtype=bool)

                    new_res = np.zeros(p)
                    for l in range(p):
                        if not active[l]:
                            continue
                        scale = max(history.rhs_norms[l], 1.0)
                        if nrm[l] <= 1e-300 or not np.isfinite(nrm[l]):
                            # exact (lucky) breakdown for this column: the
                            # Krylov space is invariant; solve and freeze.
                            hcol = np.concatenate(
                                [dots[:, l], [0.0]]).reshape(-1, 1)
                            res = hqrs[l].add_column(hcol.astype(dtype))
                            col_iters[l] = j + 1
                            active[l] = False
                            new_res[l] = float(res[0])
                            continue
                        v[j + 1, :, l] = w[:, l] / nrm[l]
                        appended[l] = True
                        hcol = np.concatenate(
                            [dots[:, l], [nrm[l]]]).reshape(-1, 1)
                        res = hqrs[l].add_column(hcol.astype(dtype))
                        col_iters[l] = j + 1
                        new_res[l] = float(res[0])
                        if new_res[l] <= targets[l]:
                            active[l] = False
                    orth.commit(appended)
                # history: converged/frozen columns keep their last value
                prev = history.records[-1] * np.where(history.rhs_norms > 0,
                                                      history.rhs_norms, 1.0)
                rec = np.where(col_iters == j + 1, new_res, prev)
                history.append(rec)
                total_it += 1
                j += 1

            # ---- end of cycle: update the iterate -----------------------
            with tr.span("least_squares"):
                for l in range(p):
                    jc = col_iters[l]
                    if jc == 0:
                        continue
                    y = hqrs[l].solve()[:, 0]
                    zl = z[:jc, :, l]
                    x[:, l] += zl.T @ y
                    led.flop(Kernel.BLAS2, 2.0 * n * jc)
        if chk.wants_full:
            # per-column Arnoldi relation and basis orthonormality: each RHS
            # keeps its own recurrence, so each is checked independently
            for l in range(p):
                jc = col_iters[l]
                if jc == 0:
                    continue
                v_l = np.ascontiguousarray(v[: jc + 1, :, l].T)
                z_l = v_l[:, :jc] if identity_m else \
                    np.ascontiguousarray(z[:jc, :, l].T)
                chk.check_orthonormality(v_l, what=f"GMRES basis (column {l})")
                chk.check_arnoldi(op_apply, z_l, v_l,
                                  hqrs[l].hessenberg(),
                                  what=f"GMRES Arnoldi relation (column {l})")
        # explicit residual at restart (cheap insurance against drift)
        r = b2 - op_apply(x) if left_m is None else np.asarray(left_m(
            b_in.astype(dtype) - a.matmat(x)))
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        converged = rn <= targets
        if not chk.is_off:
            safe = np.where(history.rhs_norms > 0, history.rhs_norms, 1.0)
            chk.check_residual_gap(history.records[-1] * safe, rn,
                                   history.rhs_norms, targets,
                                   what=f"GMRES restart {cycles}")
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)

    result_x = x[:, 0] if squeeze else x
    method = "fgmres" if options.variant == "flexible" else "gmres"
    info = {"variant": options.variant, "restart": restart}
    if not chk.is_off:
        info["verify"] = chk.report()
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method=method, restarts=cycles,
        info=info,
    )
