"""Block Conjugate Gradient (O'Leary 1980) — the paper's reference [32].

"One of the first iterative methods to be adapted to handle multiple
right-hand sides at once was the Conjugate Gradient method."  Block CG
iterates all ``p`` columns in one shared Krylov space: per iteration one
SpMM, two small ``p x p`` system solves, and two global reductions — the
SPD counterpart of Block GMRES, used here for multi-load elasticity.

Breakdown handling: the ``p x p`` pencils ``P^H A P`` and ``R^H Z`` become
singular when search directions or residuals grow dependent; following the
library's block-GMRES policy (no block-size reduction, cf. paper §V-C) a
rank-revealing factorization detects the defect and the affected
directions are deflated out of the update by a pseudo-inverse step.
"""

from __future__ import annotations

import numpy as np

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, as_preconditioner, initial_state,
                   residual_targets)

__all__ = ["bcg"]


def _gram(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    led = ledger.current()
    led.reduction(nbytes=x.shape[1] * y.shape[1] * x.itemsize)
    led.flop(Kernel.BLAS3, 2.0 * x.shape[0] * x.shape[1] * y.shape[1])
    return x.conj().T @ y


def _solve_small(g: np.ndarray, rhs: np.ndarray, *, rtol: float = 1e-12
                 ) -> tuple[np.ndarray, bool]:
    """Solve the small p x p system, falling back to a pseudo-inverse when
    the pencil is (near-)singular; returns (solution, breakdown_flag)."""
    try:
        cond_bound = np.linalg.cond(g)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        cond_bound = np.inf
    if not np.isfinite(cond_bound) or cond_bound > 1.0 / rtol:
        return np.linalg.pinv(g, rcond=rtol) @ rhs, True
    return np.linalg.solve(g, rhs), False


def bcg(a, b, m=None, *, options: Options | None = None,
        x0: np.ndarray | None = None) -> SolveResult:
    """Solve the SPD system ``A X = B`` with (preconditioned) Block CG.

    One block iteration advances every column; with well-separated RHSs
    the iteration count drops by up to a factor ``p`` against single CG
    (the shared Krylov space "sees" p directions per SpMM).
    """
    options = options or Options(krylov_method="bcg")
    a = as_operator(a)
    prec = as_preconditioner(m)
    if prec.is_variable:
        raise ValueError("Block CG requires a fixed (linear) preconditioner")
    identity_m = isinstance(prec, IdentityPreconditioner)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    n, p = b2.shape
    targets = residual_targets(b2, options.tol)
    led = ledger.current()

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets
    breakdown_seen = False

    z = r if identity_m else np.asarray(prec(r))
    d = z.copy()
    rz = _gram(r, z)                      # p x p

    it = 0
    while not np.all(converged) and it < options.max_it:
        ad = a.matmat(d)
        dad = _gram(d, ad)
        alpha, bad1 = _solve_small(dad, rz)
        x = x + d @ alpha
        r = r - ad @ alpha
        led.flop(Kernel.BLAS3, 4.0 * n * p * p)
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        history.append(rn)
        converged = rn <= targets
        it += 1
        if np.all(converged):
            breakdown_seen |= bad1
            break
        z = r if identity_m else np.asarray(prec(r))
        rz_new = _gram(r, z)
        beta, bad2 = _solve_small(rz, rz_new)
        d = z + d @ beta
        led.flop(Kernel.BLAS3, 2.0 * n * p * p)
        rz = rz_new
        breakdown_seen |= bad1 or bad2
        if breakdown_seen and np.all(rn <= np.maximum(targets, 1e-14)):
            break

    result_x = x[:, 0] if squeeze else x
    return SolveResult(
        x=result_x, converged=converged, iterations=it,
        history=history, method="bcg", breakdown=breakdown_seen,
        info={"block_size": p},
    )
