"""Chebyshev iteration — the *linear* multigrid smoother.

PETSc's GAMG defaults to Chebyshev smoothing; because the iteration is a
fixed polynomial in ``A`` it is a **linear** operator, so the multigrid
cycles stay linear and plain right-preconditioned GCRO-DR applies (the
paper's Fig. 3c/d experiment, as opposed to the CG-smoothed flexible one).

The eigenvalue bounds follow the usual GAMG recipe: estimate
``lambda_max(D^{-1} A)`` with a few power iterations, then smooth on the
interval ``[lambda_max / ratio, 1.1 * lambda_max]``.
"""

from __future__ import annotations

import numpy as np

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, default_rng
from .base import Operator, Preconditioner, as_operator

__all__ = ["estimate_lambda_max", "ChebyshevSmoother", "chebyshev_iteration"]


def estimate_lambda_max(a: Operator, diag: np.ndarray, *, iterations: int = 10,
                        seed: int = 1234) -> float:
    """Power-iteration estimate of the largest eigenvalue of ``D^{-1} A``."""
    n = a.shape[0]
    rng = default_rng(seed)
    v = rng.standard_normal(n)
    if np.issubdtype(a.dtype, np.complexfloating):
        v = v + 1j * rng.standard_normal(n)
    v = v.astype(a.dtype if np.issubdtype(a.dtype, np.floating) or
                 np.issubdtype(a.dtype, np.complexfloating) else np.float64)
    v /= np.linalg.norm(v)
    dinv = 1.0 / np.where(np.abs(diag) > 0, diag, 1.0)
    lam = 1.0
    for _ in range(iterations):
        w = dinv[:, None] * a.matmat(v.reshape(-1, 1))
        w = w[:, 0]
        nrm = np.linalg.norm(w)
        ledger.current().reduction()
        if nrm == 0:
            break
        lam = float(abs(np.vdot(v, w)))
        v = w / nrm
    return max(lam, 1e-12)


def chebyshev_iteration(a: Operator, diag: np.ndarray, b: np.ndarray,
                        *, degree: int, lam_min: float, lam_max: float,
                        x0: np.ndarray | None = None) -> np.ndarray:
    """Run ``degree`` Chebyshev iterations on ``D^{-1}A x = D^{-1}b``.

    Standard three-term recurrence on the interval ``[lam_min, lam_max]``;
    returns the smoothed iterate (all columns fused).
    """
    b = as_block(b)
    n, p = b.shape
    dinv = (1.0 / np.where(np.abs(diag) > 0, diag, 1.0)).astype(b.dtype)
    x = np.zeros_like(b) if x0 is None else as_block(x0).astype(b.dtype, copy=True)
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    if delta <= 0:
        delta = 0.5 * theta if theta > 0 else 1.0
    sigma1 = theta / delta
    rho = 1.0 / sigma1
    r = dinv[:, None] * (b - a.matmat(x)) if x0 is not None else dinv[:, None] * b
    d = r / theta
    led = ledger.current()
    for _ in range(degree):
        x = x + d
        r = r - dinv[:, None] * a.matmat(d)
        led.flop(Kernel.BLAS1, 4.0 * n * p)
        rho_new = 1.0 / (2.0 * sigma1 - rho)
        d = rho_new * rho * d + (2.0 * rho_new / delta) * r
        rho = rho_new
    return x


class ChebyshevSmoother(Preconditioner):
    """Chebyshev polynomial preconditioner ``M^{-1} ~ p(A)``.

    ``is_variable`` is False: applying a fixed polynomial of ``A`` is a
    linear operation, so right-preconditioned (non-flexible) outer Krylov
    methods remain valid.
    """

    is_variable = False

    def __init__(self, a, *, degree: int = 2, eig_ratio: float = 10.0,
                 lam_max: float | None = None):
        self.a = as_operator(a)
        self.degree = int(degree)
        self.diag = _operator_diagonal(self.a)
        if lam_max is None:
            lam_max = estimate_lambda_max(self.a, self.diag)
        self.lam_max = 1.1 * lam_max
        self.lam_min = self.lam_max / eig_ratio

    def apply(self, x: np.ndarray) -> np.ndarray:
        return chebyshev_iteration(self.a, self.diag, x, degree=self.degree,
                                   lam_min=self.lam_min, lam_max=self.lam_max)


def _operator_diagonal(a: Operator) -> np.ndarray:
    """Diagonal of the operator (explicit for wrapped matrices)."""
    return a.diagonal()
