"""Pseudo-block GCRO-DR — fused independent recurrences (paper §V-B1).

The pseudo-block idea ("operations for each RHS are fused together"):
every right-hand side keeps its *own* Krylov recurrence, Hessenberg matrix
and recycled pair ``(U_l, C_l)``, but the expensive distributed kernels —
the SpMM, the preconditioner application, the batched inner products —
process all columns at once.  Fig. 8's alternatives 3, 5 and 6 are this
method (for GMRES the fusion lives in :func:`repro.krylov.gmres.gmres`).

Cycles run in lockstep: all active columns restart together after
``m - k`` inner steps (or ``m`` during the initial harvest cycle), and
converged columns are frozen.  This is the natural fused organization —
it trades a handful of extra iterations on early-converging columns for
one global synchronization pattern shared by the whole block, which is
the entire point of pseudo-blocking (fewer, fatter messages).
"""

from __future__ import annotations

import numpy as np

from ..la.blockqr import BlockHessenbergQR
from ..la.orthogonalization import SCHEMES
from ..plan.arena import AugmentedTensorArena
from ..plan.pseudoblock import make_pseudo_block_orthogonalizer
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from ..verify import checker_for
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, initial_state, residual_targets)
from .deflation import harmonic_ritz_vectors, generalized_ritz_vectors
from .gcrodr import (_exact_pair, _harvest, _project_solve, _strategy_w,
                     _tidy_pair)
from .gmres import setup_preconditioning
from .recycling import RecycledSubspace
from .sketch_recycle import SketchedRecycler

__all__ = ["pgcrodr", "PseudoBlockRecycle"]


class PseudoBlockRecycle:
    """Per-column recycled pairs for a pseudo-block sequence.

    ``fingerprint`` is the optional value-level operator identity stamped
    by cache-backed callers (see
    :class:`repro.krylov.recycling.RecycledSubspace`).
    """

    def __init__(self, spaces: list[RecycledSubspace | None], op_tag=None,
                 fingerprint=None):
        self.spaces = spaces
        self.op_tag = op_tag
        self.fingerprint = fingerprint

    @property
    def p(self) -> int:
        return len(self.spaces)

    def matches_operator(self, tag) -> bool:
        return self.op_tag is not None and self.op_tag == tag

    def matches_fingerprint(self, fingerprint) -> bool:
        """Value-level match (stricter than ``matches_operator``)."""
        return self.fingerprint is not None and self.fingerprint == fingerprint


def _sketch_tidy_column(rec: SketchedRecycler, u: np.ndarray, c: np.ndarray,
                        op_apply) -> tuple[np.ndarray, np.ndarray, bool]:
    """Sketch-whiten one column's fresh pair, falling back to exact repair.

    Returns ``(u, c, exact)`` with the same contract as the block solver's
    ``_sketch_tidy``: ``exact=False`` means the pair is sketch-whitened
    only, and the caller owes one :func:`_exact_pair` before packaging.
    """
    u2, c2, ok = rec.whiten(u, c)
    if ok:
        return u2, c2, False
    with trace.current().span("recycle_repair", kind="sketch_drift"):
        ledger.current().event("recycle_repair")
        rec.repairs += 1
        u2, c2 = _exact_pair(u, c, op_apply)
        rec.adopt(u2, c2)
    return u2, c2, True


class _Column:
    """One RHS's private GCRO-DR state."""

    def __init__(self, l: int, dtype):
        self.l = l
        self.dtype = dtype
        self.u: np.ndarray | None = None      # n x k
        self.c: np.ndarray | None = None
        self.hqr: BlockHessenbergQR | None = None
        self.e_cols: list[np.ndarray] = []
        self.active = True
        self.steps = 0
        self.chr_prev: np.ndarray | None = None

    @property
    def k(self) -> int:
        return 0 if self.u is None else self.u.shape[1]


def pgcrodr(a, b, m=None, *, options: Options | None = None,
            x0: np.ndarray | None = None,
            recycle: PseudoBlockRecycle | None = None,
            same_system: bool | None = None) -> SolveResult:
    """Solve ``A X = B`` with pseudo-block GCRO-DR(m, k).

    Accepts/returns a :class:`PseudoBlockRecycle` (one recycled pair per
    column) through ``recycle`` / ``result.info["recycle"]``.
    """
    options = options or Options(krylov_method="gcrodr", recycle=10)
    k = options.recycle
    if k <= 0:
        raise ValueError("GCRO-DR requires options.recycle (k) > 0")
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n, p = b2.shape
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)
    identity_m = isinstance(inner_m, IdentityPreconditioner)
    led = ledger.current()
    tr = trace.current()
    chk = checker_for(options, context="pgcrodr")

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets

    m_restart = options.gmres_restart
    total_it = 0
    cycles = 0

    cols = [_Column(l, dtype) for l in range(p)]
    # sketched recycle carrying: one recycler (maintained S U_l, S C_l) per
    # column; whitening replaces the per-cycle full-space re-derivation and
    # the exact repair is deferred to the packaging boundary
    sketched_mode = options.recycle_space == "sketched"
    skr_cols: list[SketchedRecycler | None] = [None] * p
    pair_exact = [True] * p

    def _col_recycler(l: int) -> SketchedRecycler:
        if skr_cols[l] is None:
            skr_cols[l] = SketchedRecycler(n=n, max_cols=m_restart + 1 + k)
        return skr_cols[l]

    # ---- adopt incoming recycled spaces ---------------------------------
    if recycle is not None and recycle.p == p:
        if same_system is None:
            same_system = options.recycle_same_system or \
                recycle.matches_operator(a.tag)
        for col, space in zip(cols, recycle.spaces):
            if space is None or space.k == 0:
                continue
            col.u = np.asarray(space.u, dtype=dtype).copy()
            col.c = np.asarray(space.c, dtype=dtype).copy()
        if not same_system:
            import scipy.linalg as sla
            for col in cols:
                if col.u is None:
                    continue
                au = op_apply(col.u)
                q, rfac, piv = sla.qr(au, mode="economic", pivoting=True)
                led.reduction(nbytes=col.k ** 2 * au.itemsize)
                d = np.abs(np.diagonal(rfac))
                rank = int(np.count_nonzero(
                    d > options.deflation_tol * max(d[0], 1e-300))) if d.size else 0
                if rank == 0:
                    col.u = col.c = None
                else:
                    col.c = np.ascontiguousarray(q[:, :rank])
                    col.u = _project_solve(col.u[:, piv[:rank]],
                                           rfac[:rank, :rank])
        if not chk.is_off:
            # same story as gcrodr: whether the pairs were re-established
            # (different operator) or assumed intact (same-system skip),
            # each column's identities must hold before we project with them
            for l, col in enumerate(cols):
                if col.u is None:
                    continue
                chk.check_recycle(
                    col.u, col.c, op_apply=op_apply,
                    what=f"adopted recycle space (column {l})"
                    + (" (same-system skip)" if same_system else ""))
        # fused init projection: X += U_l C_l^H r_l per column
        led.reduction(nbytes=p * 8)
        for l, col in enumerate(cols):
            if col.u is None:
                continue
            chr0 = col.c.conj().T @ r[:, l]
            x[:, l] += col.u @ chr0
            r[:, l] -= col.c @ chr0
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        history.append(rn)
        converged = rn <= targets
    else:
        same_system = False

    have_recycle = any(col.u is not None for col in cols)

    # ------------------------------------------------------------------
    while not np.all(converged) and total_it < options.max_it:
        cycles += 1
        harvesting = not have_recycle
        steps = m_restart if harvesting else max(m_restart - k, 1)
        steps = min(steps, max(options.max_it - total_it, 1))

        beta = column_norms(r)
        led.reduction(nbytes=p * 8)
        # cgs2_1r folds each column's C_l into both of its fused passes by
        # stacking the (zero-padded) recycle blocks onto the basis tensor:
        # the C cross terms get two-pass quality and the separate projection
        # reduction disappears — 2 reductions/step with recycling, like the
        # block engine.  The other schemes keep the single-pass C loop
        # (their orth_tol covers it; sketched *must*, since its sketch basis
        # tracks only V).
        fold_ck = (options.orthogonalization == "cgs2_1r" and not harvesting
                   and any(col.c is not None for col in cols))
        kmax = max((col.k for col in cols if col.c is not None), default=0) \
            if fold_ck else 0
        arena = None
        if fold_ck and options.plan == "compiled":
            # one tensor [C | V]: the per-step augmented projector becomes a
            # contiguous prefix view instead of a concatenate copy
            arena = AugmentedTensorArena(kmax, steps, n, p, dtype)
            v, ck_blocks = arena.v, arena.ck
        else:
            v = np.zeros((steps + 1, n, p), dtype=dtype)
            ck_blocks = np.zeros((kmax, n, p), dtype=dtype) if fold_ck \
                else None
        z = v if identity_m else np.zeros((steps, n, p), dtype=dtype)
        for l, col in enumerate(cols):
            col.active = (not converged[l]) and beta[l] > 0
            col.steps = 0
            col.e_cols = []
            col.chr_prev = None
            if col.active:
                v[0, :, l] = r[:, l] / beta[l]
                col.hqr = BlockHessenbergQR(steps, 1,
                                            np.array([[beta[l]]]), dtype=dtype)
                if col.u is not None and not harvesting:
                    col.chr_prev = col.c.conj().T @ r[:, l]
        if any(col.chr_prev is not None for col in cols):
            led.reduction(nbytes=p * 8)   # fused C^H r across columns
        if fold_ck:
            for l, col in enumerate(cols):
                if col.c is not None:
                    ck_blocks[: col.k, :, l] = col.c.T
            # The folded projector treats [C_l V_l] as one orthonormal basis
            # per column, so each column's v1 must start C_l-orthogonal.
            # C_l^H r only vanishes up to the previous cycle's least-squares
            # roundoff, and that cross term compounds across cycles and
            # same-system solves; one fused projection per cycle caps the
            # seed at rounding (the removed component is O(drift), so the
            # normalization beta is unaffected to first order).
            for l, col in enumerate(cols):
                if col.active and col.c is not None:
                    v[0, :, l] -= col.c @ (col.c.conj().T @ v[0, :, l])
            led.flop(Kernel.BLAS3, 4.0 * n * kmax * p)
            led.reduction(nbytes=p * kmax * v.itemsize)
        orth = make_pseudo_block_orthogonalizer(
            options.orthogonalization, plan=options.plan, n=n, p=p,
            dtype=dtype, max_cols=steps + 1)
        orth.begin(v[:1])

        j = 0
        with tr.span("cycle", index=cycles - 1,
                     kind="harvest" if harvesting else "pgcrodr",
                     same_system=bool(same_system)):
            while j < steps and any(c.active for c in cols) \
                    and total_it < options.max_it:
                with tr.span("arnoldi_step", j=j):
                    zj = v[j] if identity_m else \
                        np.asarray(inner_m(v[j])).astype(dtype, copy=False)
                    if not identity_m:
                        z[j] = zj
                    w = op_apply(zj)
                    with tr.span("ortho", scheme=options.orthogonalization):
                        if fold_ck:
                            aug = arena.stacked(j) if arena is not None \
                                else np.concatenate([ck_blocks, v[: j + 1]],
                                                    axis=0)
                            w, adots, nrm = orth.step(aug, w, kmax + j)
                            dots = adots[kmax:]
                            for l, col in enumerate(cols):
                                if col.active and col.c is not None:
                                    col.e_cols.append(
                                        adots[: col.k, l].reshape(-1, 1))
                        else:
                            # fused projection against each column's own C_l
                            # (1 reduction), then the scheme engine on V
                            any_ck = False
                            for l, col in enumerate(cols):
                                if col.active and col.c is not None \
                                        and not harvesting:
                                    e_col = col.c.conj().T @ w[:, l]
                                    w[:, l] -= col.c @ e_col
                                    col.e_cols.append(e_col.reshape(-1, 1))
                                    any_ck = True
                            if any_ck:
                                led.reduction(nbytes=p * k * w.itemsize)
                            w, dots, nrm = orth.step(v[: j + 1], w, j)

                    appended = np.zeros(p, dtype=bool)
                    new_res = np.zeros(p)
                    prev = history.records[-1] * np.where(
                        history.rhs_norms > 0, history.rhs_norms, 1.0)
                    for l, col in enumerate(cols):
                        if not col.active:
                            new_res[l] = prev[l]
                            continue
                        if nrm[l] <= 1e-300 or not np.isfinite(nrm[l]):
                            hcol = np.concatenate(
                                [dots[:, l], [0.0]]).reshape(-1, 1)
                            res_l = col.hqr.add_column(hcol.astype(dtype))
                            col.steps = j + 1
                            col.active = False
                            new_res[l] = float(res_l[0])
                            continue
                        v[j + 1, :, l] = w[:, l] / nrm[l]
                        appended[l] = True
                        hcol = np.concatenate(
                            [dots[:, l], [nrm[l]]]).reshape(-1, 1)
                        res_l = col.hqr.add_column(hcol.astype(dtype))
                        col.steps = j + 1
                        new_res[l] = float(res_l[0])
                        if new_res[l] <= targets[l]:
                            col.active = False
                    orth.commit(appended)
                history.append(new_res)
                total_it += 1
                j += 1

        # ---- end of cycle: per-column updates ----------------------------
        with tr.span("least_squares"):
            for l, col in enumerate(cols):
                jc = col.steps
                if jc == 0:
                    continue
                y = col.hqr.solve()[:, 0]
                zl = z[:jc, :, l]
                dx = zl.T @ y
                if col.u is not None and not harvesting:
                    ek = (np.concatenate(col.e_cols, axis=1)
                          if col.e_cols else np.zeros((col.k, jc),
                                                      dtype=dtype))
                    yk = col.chr_prev - ek @ y
                    dx = dx + col.u @ yk
                x[:, l] += dx
                led.flop(Kernel.BLAS2, 2.0 * n * jc)
        if chk.wants_full:
            # per-column (projected) Arnoldi relation and orthonormality of
            # [C_l V_l]; trailing lucky-breakdown zero columns are trimmed
            # inside the checker
            for l, col in enumerate(cols):
                jc = col.steps
                if jc == 0:
                    continue
                vst = np.ascontiguousarray(v[: jc + 1, :, l].T)
                zst = vst[:, :jc] if identity_m else \
                    np.ascontiguousarray(z[:jc, :, l].T)
                if col.u is not None and not harvesting:
                    ek = (np.concatenate(col.e_cols, axis=1)
                          if col.e_cols else np.zeros((col.k, jc),
                                                      dtype=dtype))
                    chk.check_orthonormality(
                        np.concatenate([col.c, vst], axis=1),
                        what=f"[C V] augmented basis (column {l})")
                    chk.check_arnoldi(
                        op_apply, zst, vst, col.hqr.hessenberg(),
                        ck=col.c, ek=ek,
                        what=f"projected Arnoldi relation (column {l})")
                else:
                    chk.check_orthonormality(
                        vst, what=f"Arnoldi basis (column {l})")
                    chk.check_arnoldi(
                        op_apply, zst, vst, col.hqr.hessenberg(),
                        what=f"Arnoldi relation (column {l})")
        # fused explicit residual (one SpMM)
        if left_m is None:
            r = b2 - op_apply(x)
        else:
            r = np.asarray(left_m(b_in.astype(dtype) - a.matmat(x)))
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        converged = rn <= targets
        if not chk.is_off:
            safe = np.where(history.rhs_norms > 0, history.rhs_norms, 1.0)
            chk.check_residual_gap(history.records[-1] * safe, rn,
                                   history.rhs_norms, targets,
                                   what=f"PGCRO-DR restart {cycles}")
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)

        # ---- recycle harvest / update ------------------------------------
        for l, col in enumerate(cols):
            jc = col.steps
            if jc == 0:
                continue
            if harvesting:
                if jc < 2:
                    continue
                with tr.span("recycle_update", kind="harvest", column=l):
                    hbar = col.hqr.hessenberg()
                    with tr.span("eig", kind="harmonic_ritz"):
                        pk = harmonic_ritz_vectors(
                            hbar, col.hqr.triangular(),
                            col.hqr.last_subdiagonal_block(),
                            1, k, dtype=dtype, target=options.recycle_target)
                    if pk.shape[1]:
                        qf, s = _harvest(hbar, pk)
                        vstack = np.column_stack(
                            [v[i, :, l] for i in range(jc + 1)])
                        zstack = vstack[:, :jc] if identity_m else \
                            np.column_stack([z[i, :, l] for i in range(jc)])
                        col.c = vstack @ qf
                        col.u = zstack @ s
                        if sketched_mode:
                            col.u, col.c, pair_exact[l] = _sketch_tidy_column(
                                _col_recycler(l), col.u, col.c, op_apply)
                        else:
                            col.u, col.c, pair_exact[l] = _tidy_pair(
                                col.u, col.c, op_apply,
                                options.orthogonalization)
                        chk.check_recycle(
                            col.u, col.c, op_apply=op_apply,
                            what=f"harvested recycle space (column {l})")
            elif not same_system and col.u is not None:
                with tr.span("recycle_update", column=l,
                             strategy=options.recycle_strategy):
                    led.event("recycle_update")
                    rec = _col_recycler(l) if sketched_mode else None
                    # exact column norms: one tiny k*8-byte reduction,
                    # O(1) in the restart length either way
                    dk = np.linalg.norm(col.u, axis=0)
                    led.reduction(nbytes=col.k * 8)
                    dk_safe = np.where(dk > 0, dk, 1.0)
                    u_tilde = col.u / dk_safe
                    hbar = col.hqr.hessenberg()
                    kc = col.k
                    ek = (np.concatenate(col.e_cols, axis=1)
                          if col.e_cols else np.zeros((kc, jc), dtype=dtype))
                    gm = np.zeros((kc + hbar.shape[0], kc + jc), dtype=dtype)
                    gm[:kc, :kc] = np.diag((1.0 / dk_safe).astype(dtype))
                    gm[:kc, kc:] = ek
                    gm[kc:, kc:] = hbar
                    vstack = np.column_stack(
                        [v[i, :, l] for i in range(jc + 1)])
                    zstack = vstack[:, :jc] if identity_m else \
                        np.column_stack([z[i, :, l] for i in range(jc)])
                    w_mat = _strategy_w(options.recycle_strategy, gm, col.c,
                                        vstack, u_tilde, kc, jc)
                    with tr.span("eig", kind="generalized_ritz"):
                        pk = generalized_ritz_vectors(
                            gm, w_mat, k, dtype=dtype,
                            target=options.recycle_target)
                    if pk.shape[1]:
                        qf, s = _harvest(gm, pk)
                        cv = np.concatenate([col.c, vstack], axis=1)
                        uz = np.concatenate([u_tilde, zstack], axis=1)
                        col.c = cv @ qf
                        col.u = uz @ s
                        if sketched_mode:
                            col.u, col.c, pair_exact[l] = _sketch_tidy_column(
                                rec, col.u, col.c, op_apply)
                        else:
                            col.u, col.c, pair_exact[l] = _tidy_pair(
                                col.u, col.c, op_apply,
                                options.orthogonalization)
                        chk.check_recycle(
                            col.u, col.c, op_apply=op_apply,
                            what=f"updated recycle space (column {l})")
        if harvesting and any(col.u is not None for col in cols):
            have_recycle = True

    for l, col in enumerate(cols):
        if col.u is not None and col.u.shape[1] and not pair_exact[l]:
            # adoption boundary: packaged spaces must be exactly orthonormal
            with tr.span("recycle_repair", kind="adoption_boundary",
                         column=l):
                led.event("recycle_repair")
                col.u, col.c = _exact_pair(col.u, col.c, op_apply)
            pair_exact[l] = True
            chk.check_recycle(col.u, col.c, op_apply=op_apply,
                              what=f"packaged recycle space (column {l})")

    spaces = [RecycledSubspace(col.u, col.c, op_tag=a.tag)
              if col.u is not None else None for col in cols]
    out_recycle = PseudoBlockRecycle(spaces, op_tag=a.tag)

    result_x = x[:, 0] if squeeze else x
    name = "pgcrodr" if p > 1 else "gcrodr"
    if options.variant == "flexible":
        name = "f" + name
    info = {"variant": options.variant, "restart": m_restart, "k": k,
            "block_size": p, "recycle": out_recycle,
            "strategy": options.recycle_strategy,
            "same_system": bool(same_system)}
    if not chk.is_off:
        info["verify"] = chk.report()
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method=name, restarts=cycles,
        info=info,
    )
