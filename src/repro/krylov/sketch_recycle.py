"""Sketch-whitened carrying of the recycled pair ``(U_k, C_k)``.

With ``-hpddm_recycle_space sketched`` GCRO-DR stops re-deriving the pair
in the full space every cycle (``_tidy_pair``'s ``[Q,R] = qr(A U_k)``, one
operator application plus a distributed QR).  Instead the pair travels in
*sketch-whitened* form: the recycler maintains the sketch ``S C_k`` under
the same seeded SRHT the sketched Arnoldi engine uses, and each
harvest/update re-orthonormalizes the fresh candidates against the
**sketch** inner product.

The candidates are linear combinations of columns whose sketches are
already held locally — ``S C_k`` (maintained here) and ``S V`` (the
engine's per-step fused reductions) — so the candidate sketch
``S C_new = [S C_k | S V] @ coeffs`` is *local algebra*: the whitening
step (:meth:`SketchedRecycler.whiten_local`) costs ZERO reductions.  The
re-sketching variant (:meth:`SketchedRecycler.whiten`) pays one ``s x k``
assembly reduction and exists for callers without an engine sketch state
(the pseudo-block per-column path) and as the refresh at adoption
boundaries (:meth:`SketchedRecycler.adopt`).

Because the whitening multiplies ``U`` and ``C`` by the same triangular
factor, the exact map ``A U_k = C_k`` survives verbatim; only the
orthonormality of ``C_k`` is relaxed from machine precision to the sketch
distortion ``eps_s / (1 - eps_s)`` (zero when ``s = n``).  The full-space
re-derivation becomes a *lazy repair*: it runs only when the whitening
factor signals drift (rank loss in sketch space), charged honestly under
a ``recycle_repair`` trace span, and once at the solve's adoption
boundary so packaged/recycled spaces are exactly orthonormal again.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..la.orthogonalization import apply_sketch, sketch_size
from ..util import ledger
from ..util.ledger import Kernel

__all__ = ["SketchedRecycler", "sketch_drift", "sketch_drift_probe"]


def sketch_drift(sc: np.ndarray) -> float:
    """Scaled orthonormality drift ``||sc^H sc - I|| / sqrt(k)`` (local)."""
    k = sc.shape[1]
    if k == 0:
        return 0.0
    g = sc.conj().T @ sc
    return float(np.linalg.norm(g - np.eye(k, dtype=g.dtype)) / np.sqrt(k))


def sketch_drift_probe(c_k: np.ndarray, *, seed: int = 0) -> float:
    """One-reduction sketch-space estimate of the drift of a *full* basis.

    Used by the drift-gated ``_tidy_pair``: for inexact schemes the exact
    full-space repair (operator application + distributed QR) is skipped
    whenever this estimate stays below the scheme's registry tolerance.
    Cost: the single reduction assembling the ``s x k`` sketch.
    """
    n, k = c_k.shape
    if k == 0:
        return 0.0
    s = sketch_size(n, max(k, 1))
    ledger.current().reduction(nbytes=s * k * c_k.itemsize)
    sc = apply_sketch(c_k, s, seed=seed)
    return sketch_drift(sc)


class SketchedRecycler:
    """Maintains ``S C_k`` and performs the sketch-whitened repair.

    The sketch dimension matches the Arnoldi engine's
    (``sketch_size(n, max_cols)`` with the same seed), so the maintained
    ``S C_k`` can be handed straight to
    :meth:`~repro.la.orthogonalization._SketchedEngine.begin_recycled` —
    the cycle prologue then needs a single fused reduction.
    """

    #: relative diagonal floor of the whitening factor below which the
    #: sketch-space repair is abandoned for the exact full-space one
    repair_rtol = 1e-10

    #: every ``refresh_every``-th whitening re-sketches the candidates
    #: (one ``s x k`` reduction) instead of trusting the local algebra:
    #: the maintained ``S C_k`` and the true sketch of the carried ``C_k``
    #: round differently (s-space vs n-space triangular solves), and a
    #: bounded cadence keeps that gap from compounding over long runs
    #: while the amortized cost stays a fraction of the full path's
    #: per-cycle drift probe (selection quality is insensitive to the
    #: period on every measured problem; see
    #: ``benchmarks/results/ablation_sketched_recycle.txt``)
    refresh_every = 8

    def __init__(self, *, n: int, max_cols: int, seed: int = 0):
        self.n = n
        self.s = sketch_size(n, max_cols)
        self.seed = seed
        self.sc: np.ndarray | None = None
        self.repairs = 0
        self._since_refresh = 0

    @property
    def k(self) -> int:
        return 0 if self.sc is None else self.sc.shape[1]

    # -- sketching --------------------------------------------------------
    def _sketch_c(self, c_k: np.ndarray) -> np.ndarray:
        """Sketch ``C_k`` in one ``s x k`` assembly reduction."""
        ledger.current().reduction(
            nbytes=self.s * c_k.shape[1] * c_k.itemsize)
        return np.ascontiguousarray(
            apply_sketch(c_k, self.s, seed=self.seed))

    def adopt(self, u_k: np.ndarray, c_k: np.ndarray) -> np.ndarray:
        """Sketch an exactly orthonormalized pair (adoption boundary).

        One reduction; returns the maintained ``S C_k`` for the engine.
        """
        self.sc = self._sketch_c(c_k)
        self._since_refresh = 0
        return self.sc

    # -- lazy repair ------------------------------------------------------
    def needs_repair(self, t_c: np.ndarray) -> bool:
        """Drift detector: near rank loss of the whitening factor.

        Monkeypatchable seam for the mutation tests — disabling it must
        make the runtime verifier trip under forced drift.
        """
        d = np.abs(np.diagonal(t_c))
        if d.size == 0:
            return False
        ref = float(d.max())
        return ref == 0.0 or float(d.min()) < self.repair_rtol * ref

    def _whiten_against(self, u_new: np.ndarray, c_new: np.ndarray,
                        sc_raw: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Shared whitening core: QR the candidate sketch, gate, solve.

        ``A u_new = c_new`` holds by construction of the harvest (the
        candidates are combinations of columns satisfying the Arnoldi
        relation), and the right-multiplication by ``t_c^{-1}`` preserves
        it exactly.  All work is local: a small ``s x k`` QR plus two
        triangular solves on the full-space candidates.

        Returns ``(u, c, ok)``; ``ok=False`` flags detected drift — the
        caller must fall back to the exact full-space repair.
        """
        led = ledger.current()
        q_c, t_c = np.linalg.qr(sc_raw)
        led.flop(Kernel.QR, 4.0 * self.s * sc_raw.shape[1] ** 2)
        if self.needs_repair(t_c):
            return u_new, c_new, False
        c = sla.solve_triangular(t_c.T, c_new.T, lower=True).T
        u = sla.solve_triangular(t_c.T, u_new.T, lower=True).T
        led.flop(Kernel.BLAS3, 4.0 * self.n * t_c.shape[0] ** 2)
        self.sc = q_c
        return u, c, True

    def whiten_local(self, u_new: np.ndarray, c_new: np.ndarray,
                     sc_raw: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Whiten against a *locally derived* candidate sketch.

        ``sc_raw = [S C_k | S V] @ coeffs`` is replicated local algebra
        (the engine's fused step reductions already assembled ``S V``),
        so this path costs ZERO communication — except on every
        ``refresh_every``-th call, which re-sketches (one reduction) so
        the local-algebra rounding gap between the maintained ``S C_k``
        and the true sketch of the carried pair stays bounded.
        """
        if self._since_refresh + 1 >= self.refresh_every:
            return self.whiten(u_new, c_new)
        out = self._whiten_against(u_new, c_new, sc_raw)
        if out[2]:
            self._since_refresh += 1
        return out

    def whiten(self, u_new: np.ndarray, c_new: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Re-sketch + whiten a freshly harvested/updated pair.

        ONE ``s x k`` assembly reduction; for callers that cannot derive
        the candidate sketch locally (no engine sketch state, e.g. the
        pseudo-block per-column recyclers), and as the periodic refresh so
        local-algebra rounding never accumulates across cycles.
        """
        out = self._whiten_against(u_new, c_new, self._sketch_c(c_new))
        if out[2]:
            self._since_refresh = 0
        return out

    # -- sketch-space observables -----------------------------------------
    def drift(self) -> float:
        """Local drift estimate of the maintained ``S C_k``."""
        return 0.0 if self.sc is None else sketch_drift(self.sc)
