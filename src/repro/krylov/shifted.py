"""Shifted-system family engine: k solves for the reductions of one.

Families ``(A + sigma_i M) x_i = b_i`` share their Krylov subspace — the
shift invariance ``K_m(A, R) = K_m(A + sigma I, R)`` means ONE block
Arnoldi sweep (one set of global reductions) can answer an entire
frequency / regularization / time-step sweep.  Two engines live here:

* **shifted block GMRES** (Soodhalter, arXiv:1412.0393): the per-shift
  residuals are stacked into one ``n x k`` block, a single block Arnoldi
  cycle is run on the *unshifted* operator, and each shift solves its own
  small least-squares problem against the shifted Hessenberg
  ``H-bar + sigma E-bar`` — redundant dense work replicated on every rank,
  zero additional communication;
* **unprojected recycled shifted block GCRO-DR** (Burke,
  arXiv:2209.06922): a recycle pair ``(U_k, C_k)`` with ``A U_k = C_k``
  is harvested ONCE from the shared basis and reused across every shift
  *without per-shift projection* — ``(A + sigma) U = C + sigma U`` is
  exact algebra, so augmenting the search space costs one fused Gram
  reduction per cycle regardless of the number of shifts.

Both compose with the existing low-synchronization orthogonalization
schemes (cgs2_1r / cholqr2 / sketched), so the per-step reduction budget
is **unchanged by the number of shifts**: a cycle pays

====================  =========================================
phase                 global reductions
====================  =========================================
restart CholQR-RR     1
Arnoldi step          <= 2 per step (scheme-dependent, as before)
per-shift LS solves   0  (dense, redundant, local)
fused family Gram     1  (recycled variant only)
explicit residuals    1  (one stacked SpMM + one fused norm)
====================  =========================================

Per-shift *sequential* solves (:func:`sequential_shifted_solves`) remain
the bit-exact convergence oracle — they pay the full per-shift reduction
bill the family engine amortizes away.  ``options.shifted_variant ==
"projected"`` selects the honest contrast for recycling methods: one
projected GCRO-DR solve per shift, chaining the recycle space with a
per-shift re-orthonormalization.

See ``docs/SHIFTED.md`` for the algorithm walkthrough and the
reduction-count table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

from ..la.blockqr import BlockHessenbergQR
from ..la.orthogonalization import qr_factorization
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import OptionError, Options
from .base import (ConvergenceHistory, SolveResult, as_operator,
                   residual_targets)
from .cycle import block_arnoldi_cycle, complete_block
from .deflation import harmonic_ritz_vectors
from .gcrodr import _exact_pair, _harvest
from .recycling import RecycledSubspace

__all__ = [
    "ShiftedFamilyResult",
    "solve_shifted_family",
    "sequential_shifted_solves",
    "shifted_matrix",
    "family_update_charges",
]


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class ShiftedFamilyResult:
    """Per-shift solutions of one family solve ``(A + sigma_i M) x = b_i``.

    ``results[i]`` is a full :class:`SolveResult` for shift ``shifts[i]``
    (its ``info["shift"]`` records sigma); family-level counters live on
    this object and in ``info``.
    """

    shifts: tuple
    results: list[SolveResult]
    iterations: int
    restarts: int
    method: str
    breakdown: bool = False
    info: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SolveResult:
        return self.results[i]

    @property
    def converged(self) -> np.ndarray:
        return np.array([bool(np.all(r.converged)) for r in self.results])

    @property
    def x(self) -> np.ndarray:
        """Solutions stacked column-wise (n x k)."""
        return np.column_stack([np.asarray(r.x).reshape(-1)
                                for r in self.results])


# ---------------------------------------------------------------------------
# shifted operators (oracles, projected variant, verification)
# ---------------------------------------------------------------------------

def shifted_matrix(a, sigma, mass=None):
    """Materialize ``A + sigma M`` (``M = I`` by default), sparse-aware."""
    if sp.issparse(a):
        n = a.shape[0]
        dtype = np.result_type(a.dtype, np.asarray(sigma).dtype)
        if mass is None:
            m_mat = sp.identity(n, dtype=dtype, format="csr")
        else:
            m_mat = mass
        return (a + sigma * m_mat).tocsr()
    a = np.asarray(a)
    m_mat = np.eye(a.shape[0], dtype=a.dtype) if mass is None \
        else np.asarray(mass)
    return a + sigma * m_mat


def sequential_shifted_solves(a, b, shifts, *, mass=None,
                              options: Options | None = None,
                              x0: np.ndarray | None = None
                              ) -> ShiftedFamilyResult:
    """Solve every shift with its own sequential solve — the oracle.

    Each shift pays the full reduction bill of one standalone solve; for
    recycling methods the recycle space is chained shift-to-shift with the
    per-shift re-orthonormalization (``same_system=False``) — exactly the
    *projected* contrast the unprojected family engine amortizes away.
    """
    from .. import api  # deferred: api imports this module

    options = options or Options()
    sig = _shift_array(shifts)
    b_in = as_block(np.asarray(b))
    squeeze = np.asarray(b).ndim == 1
    results: list[SolveResult] = []
    space = None
    for i, sigma in enumerate(sig):
        a_sig = shifted_matrix(a, sigma, mass)
        b_col = b_in[:, 0] if b_in.shape[1] == 1 else b_in[:, i]
        if not squeeze:
            b_col = b_col.reshape(-1, 1)
        x0_col = _x0_column(x0, i, squeeze)
        kwargs: dict[str, Any] = {}
        if options.is_recycling:
            kwargs = {"recycle": space, "same_system": False}
        res = api.solve(a_sig, b_col, options=options, x0=x0_col, **kwargs)
        res.info["shift"] = complex(sigma) if np.iscomplexobj(sig) \
            else float(sigma)
        if options.is_recycling and res.info.get("recycle") is not None:
            space = res.info["recycle"]
        results.append(res)
    method = "shifted_sequential"
    return ShiftedFamilyResult(
        shifts=tuple(np.asarray(sig).tolist()), results=results,
        iterations=sum(r.iterations for r in results),
        restarts=sum(r.restarts for r in results),
        method=method,
        breakdown=any(r.breakdown for r in results),
        info={"variant": "sequential", "shifts": len(results)},
    )


def _shift_array(shifts) -> np.ndarray:
    sig = np.atleast_1d(np.asarray(shifts))
    if sig.ndim != 1 or sig.size == 0:
        raise ValueError("shifts must be a non-empty 1-D sequence")
    return sig


def _x0_column(x0, i: int, squeeze: bool):
    if x0 is None:
        return None
    x0a = np.asarray(x0)
    col = x0a if x0a.ndim == 1 else x0a[:, i]
    return col if squeeze else col.reshape(-1, 1)


# ---------------------------------------------------------------------------
# charge formulas — the single source both the interpreter and the compiled
# plan lowering (src/repro/plan/shifted.py) evaluate, so counts() is
# bit-identical across plan modes by construction.
# ---------------------------------------------------------------------------

def family_update_charges(*, n: int, nshifts: int, steps: int, kblk: int,
                          kr: int, rows: int, itemsize: int
                          ) -> tuple[list[tuple[Any, float]], list[int]]:
    """Ledger charges of one family update (post-cycle work).

    Returns ``(flops, reductions)`` where ``flops`` is a list of
    ``(Kernel, count)`` pairs and ``reductions`` a list of payload byte
    counts (one fused reduction each).  Everything except the recycled
    variant's single fused Gram and the final stacked residual norm is
    communication-free — note no term scales the *reduction* list by
    ``nshifts``.
    """
    cols = steps * kblk
    flops: list[tuple[Any, float]] = []
    reductions: list[int] = []
    if kr:
        # one fused Gram [C|U]^H [U|V_{j+1}] — the only extra reduction
        flops.append((Kernel.BLAS3, 2.0 * n * (2 * kr) * (kr + rows)))
        reductions.append((2 * kr) * (kr + rows) * itemsize)
        dim = 2 * kr + rows
        zdim = kr + cols
        # Cholesky of the W-metric, shared by every shift
        flops.append((Kernel.FACTORIZATION, dim ** 3 / 3.0))
        # per-shift whitened LS: F = L^H T_sigma, rhs = L^H rho, dense QR
        flops.append((Kernel.BLAS3, nshifts * 2.0 * dim * dim * (zdim + 1)))
        flops.append((Kernel.QR, nshifts * 4.0 * dim * zdim ** 2))
        # X += U A + Z Y
        flops.append((Kernel.BLAS3, 2.0 * n * zdim * nshifts))
    else:
        # per-shift incremental QR of H-bar + sigma E-bar (block Givens)
        flops.append((Kernel.BLAS3,
                      nshifts * (steps * (steps - 1) / 2.0 + steps)
                      * 2.0 * (2 * kblk) ** 2 * kblk))
        flops.append((Kernel.QR, nshifts * steps * 16.0 * kblk ** 3))
        # per-shift triangular solve
        flops.append((Kernel.BLAS2, nshifts * 1.0 * cols ** 2))
        # X += Z Y
        flops.append((Kernel.BLAS3, 2.0 * n * cols * nshifts))
    # explicit restart residuals: ONE stacked SpMM (charged by the
    # operator itself) + the column-wise sigma_i x_i axpy
    flops.append((Kernel.BLAS1, 3.0 * n * nshifts))
    # one fused norm reduction over all k shift residuals
    reductions.append(nshifts * 8)
    return flops, reductions


# ---------------------------------------------------------------------------
# silent math cores — shared verbatim by the interpreter and the compiled
# plan's node bodies; they never touch the ledger (charges flow through
# family_update_charges / the pre-bound NodeCosts).
# ---------------------------------------------------------------------------

def _per_shift_ls(hbar: np.ndarray, s1_col: np.ndarray, sigma,
                  steps: int, kblk: int, dtype
                  ) -> tuple[np.ndarray, np.ndarray]:
    """One shift's dense LS ``min ||S1 e_i - (H + sigma E) y||``.

    Incremental block-Givens QR of the shifted Hessenberg: redundant local
    work, no communication.  Returns ``(y, tails)`` where ``tails[j]`` is
    the LS residual norm after step ``j+1`` (the shift's convergence
    history inside the cycle).
    """
    hq = BlockHessenbergQR(steps, kblk, s1_col, dtype=dtype)
    eye = np.eye(kblk, dtype=dtype)
    tails = np.empty(steps)
    for j in range(steps):
        h_col = np.array(hbar[: (j + 2) * kblk, j * kblk: (j + 1) * kblk],
                         copy=True)
        h_col[j * kblk: (j + 1) * kblk, :] += sigma * eye
        tails[j] = float(hq.add_column(h_col, charge=False)[0])
    with ledger.install(ledger.CostLedger()):
        y = hq.solve()
    return y, tails


def _metric_factor(gw: np.ndarray) -> np.ndarray:
    """``L`` with ``L L^H = G_W`` so ``||W v|| = ||L^H v||``.

    Cholesky when the Gram is numerically SPD; eigenvalue-clipped square
    root otherwise (U nearly inside span(V) makes W rank deficient — the
    LS then minimizes over the well-determined subspace, and the explicit
    restart residual restores exactness).
    """
    gw = 0.5 * (gw + gw.conj().T)
    try:
        return np.linalg.cholesky(gw)
    except np.linalg.LinAlgError:
        w, q = np.linalg.eigh(gw)
        w = np.clip(w, 0.0, None)
        return q * np.sqrt(w)[None, :]


def _assemble_metric(g: np.ndarray, kr: int, rows: int, dtype) -> np.ndarray:
    """G_W = W^H W for W = [C | U | V] from the fused Gram
    ``g = [C|U]^H [U|V]`` (C and V are each orthonormal)."""
    dim = 2 * kr + rows
    gw = np.eye(dim, dtype=dtype)
    gw[:kr, kr:2 * kr] = g[:kr, :kr]          # C^H U
    gw[:kr, 2 * kr:] = g[:kr, kr:]            # C^H V
    gw[kr:2 * kr, kr:2 * kr] = g[kr:, :kr]    # U^H U
    gw[kr:2 * kr, 2 * kr:] = g[kr:, kr:]      # U^H V
    gw[kr:2 * kr, :kr] = gw[:kr, kr:2 * kr].conj().T
    gw[2 * kr:, :kr] = gw[:kr, 2 * kr:].conj().T
    gw[2 * kr:, kr:2 * kr] = gw[kr:2 * kr, 2 * kr:].conj().T
    return gw


def _per_shift_augmented_ls(lfac: np.ndarray, hbar: np.ndarray,
                            s1_col: np.ndarray, sigma,
                            steps: int, kblk: int, kr: int, rows: int,
                            dtype) -> tuple[np.ndarray, np.ndarray, float]:
    """One shift's whitened augmented LS over ``W = [C, U, V_{j+1}]``.

    ``(A + sigma)[U, V_j] = W T_sigma`` with
    ``T_sigma = [[I, 0], [sigma I, 0], [0, H + sigma E]]`` — pure local
    dense algebra shared-metric-factored by ``lfac``.  Returns
    ``(a, y, resnorm)``: recycle coefficients, basis coefficients, and the
    LS residual norm in the W-metric.
    """
    cols = steps * kblk
    dim = 2 * kr + rows
    zdim = kr + cols
    t = np.zeros((dim, zdim), dtype=dtype)
    t[:kr, :kr] = np.eye(kr, dtype=dtype)
    t[kr:2 * kr, :kr] = sigma * np.eye(kr, dtype=dtype)
    hsig = np.array(hbar[:rows, :cols], copy=True)
    idx = np.arange(min(rows, cols))
    hsig[idx, idx] += sigma
    t[2 * kr:, kr:] = hsig
    rho = np.zeros((dim, 1), dtype=dtype)
    rho[2 * kr: 2 * kr + kblk, 0] = s1_col[:, 0]
    lh = lfac.conj().T
    f = lh @ t
    rhs = lh @ rho
    z, *_ = np.linalg.lstsq(f, rhs, rcond=None)
    resnorm = float(np.linalg.norm(rhs - f @ z))
    return z[:kr], z[kr:], resnorm


# ---------------------------------------------------------------------------
# family update context — one restart's post-cycle work
# ---------------------------------------------------------------------------

@dataclass
class FamilyUpdateCtx:
    """Inputs/outputs of one family update, shared by interpreter and plan.

    The compiled lowering's node bodies operate on this object; the math
    cores above keep both paths bit-identical in iterates, and
    :func:`family_update_charges` keeps them bit-identical in counts.
    """

    op_apply: Callable[[np.ndarray], np.ndarray]
    x: np.ndarray                 # n x k solutions, updated in place
    b2: np.ndarray                # n x k (transformed) right-hand sides
    sig: np.ndarray               # (k,) shifts
    s1: np.ndarray                # kblk x kblk seed coefficients
    hbar: np.ndarray              # ((j+1)kblk x j kblk) base Hessenberg
    zstack: np.ndarray            # n x (j kblk) basis
    steps: int
    kblk: int
    dtype: Any
    # recycled (unprojected) variant only:
    u_k: np.ndarray | None = None
    c_k: np.ndarray | None = None
    vfull: np.ndarray | None = None   # n x rows, V_{j+1}
    # populated by the update:
    g: np.ndarray | None = None
    lfac: np.ndarray | None = None
    ymat: np.ndarray | None = None
    amat: np.ndarray | None = None
    r: np.ndarray | None = None
    rn: np.ndarray | None = None
    tails: list[np.ndarray] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def nshifts(self) -> int:
        return int(self.sig.shape[0])

    @property
    def kr(self) -> int:
        return 0 if self.u_k is None else int(self.u_k.shape[1])

    @property
    def rows(self) -> int:
        return 0 if self.vfull is None else int(self.vfull.shape[1])

    def charges(self) -> tuple[list[tuple[Any, float]], list[int]]:
        return family_update_charges(
            n=self.n, nshifts=self.nshifts, steps=self.steps,
            kblk=self.kblk, kr=self.kr, rows=self.rows,
            itemsize=np.dtype(self.dtype).itemsize)

    # -- silent math steps (no ledger access) ---------------------------
    def run_shared_ls(self) -> None:
        ys = []
        self.tails = []
        for i in range(self.nshifts):
            y, tails = _per_shift_ls(self.hbar, self.s1[:, i: i + 1],
                                     self.sig[i], self.steps, self.kblk,
                                     self.dtype)
            ys.append(y[:, 0])
            self.tails.append(tails)
        self.ymat = np.column_stack(ys)
        self.x += self.zstack @ self.ymat

    def run_gram(self) -> None:
        xg = np.concatenate([self.c_k, self.u_k], axis=1)
        yg = np.concatenate([self.u_k, self.vfull], axis=1)
        self.g = xg.conj().T @ yg

    def run_metric(self) -> None:
        gw = _assemble_metric(self.g, self.kr, self.rows, self.dtype)
        self.lfac = _metric_factor(gw)

    def run_recycled_ls(self) -> None:
        ys, ams = [], []
        self.tails = []
        for i in range(self.nshifts):
            a_i, y_i, res = _per_shift_augmented_ls(
                self.lfac, self.hbar, self.s1[:, i: i + 1], self.sig[i],
                self.steps, self.kblk, self.kr, self.rows, self.dtype)
            ams.append(a_i[:, 0])
            ys.append(y_i[:, 0])
            self.tails.append(np.array([res]))
        self.amat = np.column_stack(ams)
        self.ymat = np.column_stack(ys)
        self.x += self.u_k @ self.amat + self.zstack @ self.ymat

    def run_residual(self) -> None:
        # ONE stacked operator application covers every shift; the
        # sigma_i x_i correction is column-wise local work.
        ax = self.op_apply(self.x)
        self.r = self.b2 - ax - self.x * self.sig[None, :]

    def run_norms(self) -> None:
        self.rn = column_norms(self.r)


def _family_update(ctx: FamilyUpdateCtx, plan: str) -> None:
    """Post-cycle family update: per-shift LS + X update + restart residual.

    ``plan="compiled"`` lowers the same steps to pre-bound plan nodes
    (:mod:`repro.plan.shifted`); both paths produce bit-identical iterates
    and ledger counts.
    """
    if plan == "compiled":
        from ..plan.shifted import compiled_family_update
        compiled_family_update(ctx)
        return
    led = ledger.current()
    tr = trace.current()
    flops, reductions = ctx.charges()
    with tr.span("least_squares", shifts=ctx.nshifts,
                 recycled=bool(ctx.kr)):
        if ctx.kr:
            ctx.run_gram()
            ctx.run_metric()
            ctx.run_recycled_ls()
            led.reduction(nbytes=reductions[0])   # the fused family Gram
        else:
            ctx.run_shared_ls()
        for kernel, count in flops[:-1]:
            led.flop(kernel, count)
    ctx.run_residual()
    led.flop(flops[-1][0], flops[-1][1])
    ctx.run_norms()
    led.reduction(nbytes=reductions[-1])


# ---------------------------------------------------------------------------
# the family solve
# ---------------------------------------------------------------------------

def solve_shifted_family(a, b, shifts, *, mass=None,
                         options: Options | None = None,
                         x0: np.ndarray | None = None,
                         recycle: RecycledSubspace | None = None
                         ) -> ShiftedFamilyResult:
    """Solve the family ``(A + sigma_i M) x_i = b_i`` on one shared basis.

    Parameters
    ----------
    a:
        the base operator ``A`` (matrix or :class:`Operator`).
    b:
        right-hand side(s): an ``(n,)`` vector shared by every shift, or
        an ``(n, k)`` block whose column ``i`` belongs to ``shifts[i]``.
    shifts:
        the family's ``sigma_i`` values (real or complex).
    mass:
        optional mass matrix ``M`` (default: identity).  A sparse ``M`` is
        factored once (:class:`repro.direct.SparseLU`) and the family is
        solved in transformed form ``(M^{-1} A + sigma I) x = M^{-1} b``;
        a prefactored :class:`SparseLU` is accepted directly (the solve
        service caches one per family fingerprint).
    options:
        ``krylov_method`` in the GMRES family selects the shared-basis
        engine; a recycling method (``gcrodr``/``bgcrodr`` with
        ``recycle=k``) selects the recycled engine, whose flavor is
        ``options.shifted_variant`` (``"unprojected"`` default /
        ``"projected"`` contrast).  Preconditioning is rejected — it
        breaks the shift invariance the engine is built on.
    recycle:
        optional :class:`RecycledSubspace` of the *base* operator to adopt
        (unprojected variant only) instead of harvesting one.
    """
    options = options or Options()
    sig = _shift_array(shifts)
    if options.is_recycling and options.shifted_variant == "projected":
        return _projected_family(a, b, sig, mass=mass, options=options,
                                 x0=x0)

    a_op = as_operator(a)
    n = a_op.shape[0]
    k = int(sig.size)
    dtype = np.result_type(a_op.dtype, np.asarray(b).dtype, sig.dtype,
                           np.float64)
    sig = sig.astype(dtype, copy=False)
    led = ledger.current()
    tr = trace.current()

    op_apply, b2, mass_lu = _setup_family_operator(a_op, b, k, mass, dtype)
    x = _initial_x(x0, n, k, dtype)
    if x0 is None:
        r = b2.copy()
    else:
        r = b2 - op_apply(x) - x * sig[None, :]
        led.flop(Kernel.BLAS1, 3.0 * n * k)

    targets = residual_targets(b2, options.tol)
    rhs_norms = column_norms(b2)
    histories = [ConvergenceHistory(rhs_norms=rhs_norms[i: i + 1])
                 for i in range(k)]
    rn = column_norms(r)
    led.reduction(nbytes=k * 8)
    for i in range(k):
        histories[i].append(rn[i: i + 1])
    converged = rn <= targets

    recycled_mode = options.is_recycling
    kr_target = options.recycle if recycled_mode else 0
    restart = min(options.gmres_restart, max(n // k, 1))
    u_k: np.ndarray | None = None
    c_k: np.ndarray | None = None
    if recycled_mode and recycle is not None and recycle.k > 0:
        u_k = np.asarray(recycle.u, dtype=dtype).copy()
        c_k = np.asarray(recycle.c, dtype=dtype).copy()

    total_it = 0
    cycles = 0
    breakdown_seen = False
    safe = np.where(rhs_norms > 0, rhs_norms, 1.0)

    while not np.all(converged) and total_it < options.max_it:
        have_space = u_k is not None and u_k.shape[1] > 0
        inner = max(restart - u_k.shape[1], 1) if have_space else restart
        with tr.span("cycle", index=cycles, kind="shifted", shifts=k,
                     recycled=have_space):
            v1, s1, rank = qr_factorization(r, "cholqr_rr",
                                            tol=options.deflation_tol)
            if rank == 0:
                break
            if rank < k:
                breakdown_seen = True
                v1 = complete_block(v1, rank)
            state = block_arnoldi_cycle(
                op_apply, None, v1, s1, max_steps=inner,
                ortho=options.orthogonalization, qr_scheme=options.qr,
                deflation_tol=options.deflation_tol, targets=None,
                history=None, identity_m=True,
                iteration_budget=options.max_it - total_it,
                plan=options.plan)
            total_it += state.steps
            cycles += 1
            breakdown_seen |= state.breakdown
            if state.steps == 0:
                break
            hbar = state.hqr.hessenberg()
            zstack = state.z_stack(state.steps)
            ctx = FamilyUpdateCtx(
                op_apply=op_apply, x=x, b2=b2, sig=sig,
                s1=np.asarray(s1, dtype=dtype), hbar=hbar, zstack=zstack,
                steps=state.steps, kblk=k, dtype=dtype,
                u_k=u_k if have_space else None,
                c_k=c_k if have_space else None,
                vfull=state.v_stack() if have_space else None)
            _family_update(ctx, options.plan)
            r, rn = ctx.r, ctx.rn
            if recycled_mode and not have_space:
                # harvest the recycle pair ONCE from this base-operator
                # cycle; it is reused across every shift and every later
                # cycle without per-shift projection (Burke's unprojected
                # recycled shifted method).
                u_k, c_k = _harvest_family_pair(
                    state, zstack, kr_target, dtype, op_apply, options)
        converged = rn <= targets
        for i in range(k):
            for tail in ctx.tails[i]:
                histories[i].append(np.array([tail]))
            histories[i].records[-1] = rn[i: i + 1] / safe[i: i + 1]

    out_recycle = None
    if u_k is not None and u_k.shape[1]:
        out_recycle = RecycledSubspace(
            u_k, c_k, op_tag=(a_op.tag if mass is None else None),
            meta={"k": u_k.shape[1], "family": True})

    method = "shifted_bgcrodr" if recycled_mode else "shifted_bgmres"
    fam_info: dict[str, Any] = {
        "shifts": k, "restart": restart, "variant":
        (options.shifted_variant if recycled_mode else "shared"),
        "mass": mass is not None,
    }
    if recycled_mode:
        fam_info["k"] = 0 if u_k is None else int(u_k.shape[1])
        fam_info["recycle"] = out_recycle
    results = []
    squeeze = np.asarray(b).ndim == 1
    for i in range(k):
        xi = x[:, i].copy() if squeeze else x[:, i: i + 1].copy()
        results.append(SolveResult(
            x=xi, converged=converged[i: i + 1].copy(),
            iterations=total_it, history=histories[i], method=method,
            restarts=cycles, breakdown=breakdown_seen,
            info={"shift": (complex(sig[i]) if np.iscomplexobj(sig)
                            else float(sig[i].real)),
                  "family": fam_info}))
    return ShiftedFamilyResult(
        shifts=tuple(np.asarray(sig).tolist()), results=results,
        iterations=total_it, restarts=cycles, method=method,
        breakdown=breakdown_seen, info=dict(fam_info))


def _setup_family_operator(a_op, b, k: int, mass, dtype):
    """Build the family operator/rhs: identity mass, or ``M^{-1}``-transform."""
    b_in = as_block(np.asarray(b)).astype(dtype, copy=False)
    if b_in.shape[1] == 1 and k > 1:
        b_in = np.tile(b_in, (1, k))
    if b_in.shape[1] != k:
        raise ValueError(
            f"b must have 1 or {k} columns for a {k}-shift family; "
            f"got {b_in.shape[1]}")
    if mass is None:
        return a_op.matmat, b_in, None
    from ..direct.solver import SparseLU
    lu = mass if isinstance(mass, SparseLU) else SparseLU(mass)

    def op_apply(block: np.ndarray) -> np.ndarray:
        return np.asarray(lu.solve(a_op.matmat(block))).astype(dtype,
                                                               copy=False)

    b2 = np.asarray(lu.solve(b_in)).astype(dtype, copy=False)
    return op_apply, b2, lu


def _initial_x(x0, n: int, k: int, dtype) -> np.ndarray:
    if x0 is None:
        return np.zeros((n, k), dtype=dtype)
    x0a = np.asarray(x0, dtype=dtype)
    if x0a.ndim == 1:
        return np.tile(x0a.reshape(-1, 1), (1, k))
    if x0a.shape != (n, k):
        raise ValueError(f"x0 must have shape ({n},) or ({n}, {k})")
    return x0a.copy()


def _harvest_family_pair(state, zstack, kr: int, dtype, op_apply,
                         options: Options
                         ) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Harvest ``(U_k, C_k)`` with ``A U = C`` from a base-operator cycle.

    Harmonic Ritz vectors of the *unshifted* Hessenberg — by shift
    invariance they deflate every member of the family.  Costs one
    operator application on k columns plus one Householder QR reduction,
    paid once per family.
    """
    if state.breakdown or state.steps * state.hqr.p <= kr:
        return None, None
    led = ledger.current()
    tr = trace.current()
    hbar = state.hqr.hessenberg()
    with tr.span("eig", kind="harmonic_ritz"):
        pk = harmonic_ritz_vectors(
            hbar, state.hqr.triangular(), state.hqr.last_subdiagonal_block(),
            state.hqr.p, kr, dtype=dtype, target=options.recycle_target)
    if not pk.shape[1]:
        return None, None
    with tr.span("recycle_update", kind="harvest"):
        qf, s = _harvest(hbar, pk)
        vstack = state.v_stack()
        if qf.shape[0] != vstack.shape[1]:
            return None, None
        c_k = vstack @ qf
        u_k = zstack @ s
        led.flop(Kernel.BLAS3, 4.0 * vstack.shape[0] * vstack.shape[1]
                 * qf.shape[1])
        u_k, c_k = _exact_pair(u_k, c_k, op_apply)
    return u_k, c_k


# ---------------------------------------------------------------------------
# the projected contrast
# ---------------------------------------------------------------------------

def _projected_family(a, b, sig: np.ndarray, *, mass, options: Options,
                      x0) -> ShiftedFamilyResult:
    """``shifted_variant="projected"``: one projected GCRO-DR per shift.

    The recycle space is chained shift-to-shift but must be re-projected
    for each shifted operator (``qr((A + sigma M) U)`` — per-shift
    reductions), which is exactly the cost the unprojected variant
    amortizes away.  Kept as the honest baseline the benchmarks and the
    trace gate compare against.
    """
    from ..direct.solver import SparseLU
    if isinstance(mass, SparseLU):
        raise OptionError(
            "shifted_variant='projected' forms A + sigma M explicitly and "
            "needs the mass *matrix*, not a prefactored SparseLU")
    fam = sequential_shifted_solves(a, b, sig, mass=mass, options=options,
                                    x0=x0)
    fam.method = "shifted_projected"
    fam.info["variant"] = "projected"
    return fam
