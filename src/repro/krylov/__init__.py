"""Krylov solvers: (pseudo-)block GMRES, GCRO-DR, CG, LGMRES, Chebyshev."""

from .base import (ConvergenceHistory, FunctionPreconditioner, Operator,
                   Preconditioner, SolveResult, as_operator, as_preconditioner)
from .bcg import bcg
from .bgmres import bgmres
from .cg import cg
from .chebyshev import ChebyshevSmoother
from .gcrodr import gcrodr
from .pgcrodr import PseudoBlockRecycle, pgcrodr
from .gmres import gmres
from .gmresdr import gmresdr
from .lgmres import lgmres
from .recycling import GLOBAL_STORE, RecycledSubspace, RecyclingStore

__all__ = [
    "gmres",
    "gmresdr",
    "bgmres",
    "bcg",
    "gcrodr",
    "pgcrodr",
    "PseudoBlockRecycle",
    "lgmres",
    "cg",
    "ChebyshevSmoother",
    "Operator",
    "as_operator",
    "Preconditioner",
    "FunctionPreconditioner",
    "as_preconditioner",
    "SolveResult",
    "ConvergenceHistory",
    "RecycledSubspace",
    "RecyclingStore",
    "GLOBAL_STORE",
]
