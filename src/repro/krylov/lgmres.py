"""Loose GMRES (Baker, Jessup & Manteuffel) — the PETSc baseline of Fig. 3c/d.

LGMRES(m, l) augments each restart cycle's Krylov space with the ``l`` most
recent *error approximations* ``z_i = x_{i} - x_{i-1}`` (the correction made
by cycle ``i``).  Unlike GCRO-DR the augmentation vectors are not deflated
eigendirections and carry no spectral information across *different*
operators, which is why the paper finds GCRO-DR converges in 96 fewer
iterations on the elasticity sequence (269 vs 173).

Single right-hand side only, mirroring the PETSc implementation
(``-ksp_type lgmres -ksp_lgmres_augment l``); flexible preconditioning is
likewise unsupported in PETSc ("unfortunately, the flexible variant of
LGMRES is not in PETSc"), so only left/right variants are allowed here.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..la.blockqr import BlockHessenbergQR
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, initial_state, residual_targets)
from .gmres import setup_preconditioning

__all__ = ["lgmres"]


def lgmres(a, b, m=None, *, options: Options | None = None,
           x0: np.ndarray | None = None, augment: int | None = None) -> SolveResult:
    """Solve ``A x = b`` with LGMRES(m, l).

    ``augment`` (aka ``-ksp_lgmres_augment``) defaults to ``options.recycle``
    so LGMRES(30, 10) and GCRO-DR(30, 10) can be compared with identical
    option objects, as in the paper's elasticity experiment.
    """
    options = options or Options(krylov_method="lgmres")
    if options.variant == "flexible":
        raise ValueError("LGMRES does not support flexible preconditioning "
                         "(matching PETSc's implementation)")
    l_aug = options.recycle if augment is None else int(augment)
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_arr = as_block(b)
    if b_arr.shape[1] != 1:
        raise ValueError("LGMRES handles a single right-hand side "
                         "(PETSc parity); loop over columns for multiple RHSs")
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_arr, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n = b2.shape[0]
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)
    identity_m = isinstance(inner_m, IdentityPreconditioner)

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets

    m_total = min(options.gmres_restart, n)   # total space per cycle (Krylov + aug)
    led = ledger.current()
    total_it = 0
    cycles = 0
    # stored error approximations, most recent first
    corrections: deque[np.ndarray] = deque(maxlen=max(l_aug, 0))

    while not np.all(converged) and total_it < options.max_it:
        cycles += 1
        beta = float(column_norms(r)[0])
        led.reduction()
        if beta == 0.0:
            break
        v = np.zeros((m_total + 1, n), dtype=dtype)
        z = np.zeros((m_total, n), dtype=dtype)
        v[0] = r[:, 0] / beta
        hqr = BlockHessenbergQR(m_total, 1, np.array([[beta]]), dtype=dtype)
        n_aug = min(len(corrections), l_aug)
        n_kry = m_total - n_aug

        j = 0
        broke = False
        while j < m_total and total_it < options.max_it:
            # augmented directions are appended after the Krylov ones;
            # both go through the same generalized-Arnoldi machinery.
            if j < n_kry:
                c_dir = v[j]
            else:
                c_dir = corrections[j - n_kry][:, 0]
            zj = c_dir if identity_m else np.asarray(
                inner_m(c_dir.reshape(-1, 1))).astype(dtype, copy=False)[:, 0]
            z[j] = zj
            w = op_apply(zj.reshape(-1, 1))[:, 0]
            basis = v[: j + 1]
            dots = basis.conj() @ w
            led.reduction(nbytes=(j + 1) * w.itemsize)
            led.flop(Kernel.BLAS3, 4.0 * (j + 1) * n)
            w = w - basis.T @ dots
            if options.orthogonalization == "imgs":
                d2 = basis.conj() @ w
                led.reduction(nbytes=(j + 1) * w.itemsize)
                w = w - basis.T @ d2
                dots = dots + d2
            nrm = float(np.linalg.norm(w))
            led.reduction()
            hcol = np.concatenate([dots, [nrm]]).reshape(-1, 1).astype(dtype)
            res = hqr.add_column(hcol)
            history.append(res)
            total_it += 1
            j += 1
            if nrm <= 1e-300:
                broke = True
                break
            v[j] = w / nrm
            if float(res[0]) <= targets[0]:
                break

        if j == 0:
            break
        y = hqr.solve()[:, 0]
        dx = z[:j].T @ y
        led.flop(Kernel.BLAS2, 2.0 * n * j)
        x[:, 0] += dx
        # store the (normalized) error approximation for the next cycles
        ndx = float(np.linalg.norm(dx))
        led.reduction()
        if l_aug > 0 and ndx > 0:
            corrections.appendleft((dx / ndx).reshape(-1, 1))
        if left_m is None:
            r = b2 - op_apply(x)
        else:
            r = np.asarray(left_m(b_arr.astype(dtype) - a.matmat(x)))
        rn = column_norms(r)
        led.reduction()
        converged = rn <= targets
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)
        if broke and not np.all(converged):
            continue  # lucky breakdown mid-cycle: restart from the new residual

    result_x = x[:, 0] if squeeze else x
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method="lgmres", restarts=cycles,
        info={"variant": options.variant, "restart": m_total, "augment": l_aug},
    )
