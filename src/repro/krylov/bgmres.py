"""True Block GMRES(m) — block Arnoldi over all RHS columns at once.

Unlike the pseudo-block method (which fuses ``p`` independent Krylov
recursions), Block GMRES searches the *sum* of the Krylov spaces of all
columns: every iteration enlarges the space by ``p`` directions shared by
all RHSs, which typically slashes iteration counts (paper Fig. 8:
BGMRES(50) needs 158 block iterations where 32 consecutive GMRES(50)
solves need 20,068) at the price of ``p x p``-denser small operations and
``p``-times-thicker basis blocks.

Rank-revealing CholQR is applied to the residual block at every restart to
detect breakdowns (near-colinear residuals), as the paper does in
section V-C; deficient directions are replaced by random orthonormal
completions so the block keeps full width (no block-size reduction, again
following the paper).
"""

from __future__ import annotations

import numpy as np

from ..la.orthogonalization import qr_factorization
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from ..verify import checker_for
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, initial_state, residual_targets)
from .cycle import block_arnoldi_cycle, complete_block
from .gmres import setup_preconditioning

__all__ = ["bgmres"]


def bgmres(a, b, m=None, *, options: Options | None = None,
           x0: np.ndarray | None = None) -> SolveResult:
    """Solve ``A X = B`` with Block GMRES(m) (BGMRES).

    Accepts the same arguments as :func:`repro.krylov.gmres.gmres`; the
    ``qr`` option selects the distributed QR used on the residual block
    (CholQR by default; ``"cholqr_rr"`` is always used at restarts for
    breakdown detection).
    """
    options = options or Options()
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n, p = b2.shape
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)
    identity_m = isinstance(inner_m, IdentityPreconditioner)

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets

    restart = min(options.gmres_restart, max(n // p, 1))
    led = ledger.current()
    tr = trace.current()
    chk = checker_for(options, context="bgmres")
    total_it = 0
    cycles = 0
    breakdown_seen = False

    while not np.all(converged) and total_it < options.max_it:
        cycles += 1
        v1, s1, rank = qr_factorization(r, "cholqr_rr", tol=options.deflation_tol)
        if rank == 0:
            break  # residual numerically zero in every direction
        if rank < p:
            breakdown_seen = True
            if options.block_reduction:
                # block-size reduction: continue the cycle with only the
                # `rank` independent directions; the least-squares problem
                # still tracks every RHS column through the p-wide S1.
                v1 = np.ascontiguousarray(v1[:, :rank])
                s1 = s1[:rank, :]
                led.event("block_reduction")
            else:
                v1 = complete_block(v1, rank)
        with tr.span("cycle", index=cycles - 1, kind="bgmres"):
            state = block_arnoldi_cycle(
                op_apply, inner_m, v1, s1,
                max_steps=restart, ortho=options.orthogonalization,
                qr_scheme=options.qr, deflation_tol=options.deflation_tol,
                targets=targets, history=history, identity_m=identity_m,
                iteration_budget=options.max_it - total_it,
                plan=options.plan)
        total_it += state.steps
        breakdown_seen |= state.breakdown
        if state.steps == 0:
            break
        with tr.span("least_squares"):
            y = state.hqr.solve()
            z = state.z_stack(state.steps)
            x += z @ y
            led.flop(Kernel.BLAS3, 2.0 * n * z.shape[1] * p)
        if chk.wants_full and not state.breakdown:
            vst = state.v_stack()
            chk.check_orthonormality(vst, what="block-Arnoldi basis")
            chk.check_arnoldi(op_apply, z, vst, state.hqr.hessenberg(),
                              what="block-Arnoldi relation")
        # explicit residual at restart
        if left_m is None:
            r = b2 - op_apply(x)
        else:
            r = np.asarray(left_m(b_in.astype(dtype) - a.matmat(x)))
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        converged = rn <= targets
        if not chk.is_off and not state.breakdown:
            safe = np.where(history.rhs_norms > 0, history.rhs_norms, 1.0)
            chk.check_residual_gap(history.records[-1] * safe, rn,
                                   history.rhs_norms, targets,
                                   what=f"BGMRES restart {cycles}")
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)

    result_x = x[:, 0] if squeeze else x
    method = "fbgmres" if options.variant == "flexible" else "bgmres"
    info = {"variant": options.variant, "restart": restart, "block_size": p}
    if not chk.is_off:
        info["verify"] = chk.report()
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method=method, restarts=cycles,
        breakdown=breakdown_seen,
        info=info,
    )
